GO ?= go

# Packages with a BenchmarkHotPath microbenchmark of the per-access pipeline.
BENCH_PKGS := ./internal/cache ./internal/pmu ./internal/dram ./internal/machine

.PHONY: all build test race fuzz-smoke fault-smoke resume-smoke serve-smoke worker-smoke vet lint fmt check bench bench-smoke

all: build test vet lint

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 10m ./...

race:
	$(GO) test -race -timeout 20m ./...

# Ten seconds per fuzz target: enough to shake out regressions in the
# mapper round-trip and cache-policy invariants without stalling CI.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMapperRoundTrip -fuzztime 10s ./internal/dram
	$(GO) test -run '^$$' -fuzz FuzzPolicyInvariants -fuzztime 10s ./internal/cache
	$(GO) test -run '^$$' -fuzz FuzzFaultSpec -fuzztime 10s ./internal/fault
	$(GO) test -run '^$$' -fuzz FuzzJournal -fuzztime 10s ./internal/journal

# The degraded-hardware experiments under the hardened runner: per-replicate
# timeouts and keep-going failure reporting exercised end to end.
fault-smoke:
	$(GO) run ./cmd/tables -quick -seed 7 -timeout 5m -keep-going \
		-only degraded-sampling,fault-matrix

# Durable sweeps end to end: a replicate budget truncates a journaled
# fault-matrix run; the resumed run must merge byte-identically with an
# uninterrupted golden.
resume-smoke:
	rm -rf /tmp/anvil-resume-smoke && mkdir -p /tmp/anvil-resume-smoke
	$(GO) run ./cmd/tables -quick -seed 7 -only fault-matrix \
		-out /tmp/anvil-resume-smoke/golden.json
	$(GO) run ./cmd/tables -quick -seed 7 -only fault-matrix \
		-journal /tmp/anvil-resume-smoke/jnl -budget 2 \
		-out /tmp/anvil-resume-smoke/truncated.json
	$(GO) run ./cmd/tables -quick -seed 7 -only fault-matrix \
		-journal /tmp/anvil-resume-smoke/jnl -resume \
		-out /tmp/anvil-resume-smoke/resumed.json
	diff /tmp/anvil-resume-smoke/golden.json /tmp/anvil-resume-smoke/resumed.json
	@echo "resume-smoke: resumed run is byte-identical to the golden"

# The crash-safe sweep service end to end. First the chaos harness under the
# race detector: submit → kill -9 at a seeded replicate → restart →
# byte-diff against an uninterrupted golden, plus the SIGTERM drain variant.
# Then a live-binary smoke: boot anvilserved on an ephemeral port, submit a
# registry experiment with curl, poll to completion, fetch the artifact, and
# drain the server with SIGTERM.
serve-smoke:
	$(GO) test -race -run 'TestChaos' -v ./internal/sweepd
	rm -rf /tmp/anvil-serve-smoke && mkdir -p /tmp/anvil-serve-smoke
	$(GO) build -o /tmp/anvil-serve-smoke/anvilserved ./cmd/anvilserved
	set -e; \
	/tmp/anvil-serve-smoke/anvilserved -addr 127.0.0.1:0 \
		-data /tmp/anvil-serve-smoke/data \
		-portfile /tmp/anvil-serve-smoke/port & \
	pid=$$!; trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 100); do \
		[ -s /tmp/anvil-serve-smoke/port ] && break; sleep 0.1; done; \
	addr=$$(cat /tmp/anvil-serve-smoke/port); \
	id=$$(curl -sf -X POST "http://$$addr/v1/jobs" \
		-d '{"experiment":"fault-matrix","quick":true,"seed":7}' \
		| sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
	echo "serve-smoke: submitted $$id to $$addr"; \
	for i in $$(seq 1 600); do \
		code=$$(curl -s -o /tmp/anvil-serve-smoke/result.json \
			-w '%{http_code}' "http://$$addr/v1/jobs/$$id/result"); \
		[ "$$code" = 200 ] && break; [ "$$code" = 409 ] && exit 1; sleep 0.5; done; \
	[ "$$code" = 200 ]; \
	[ -s /tmp/anvil-serve-smoke/result.json ]; \
	kill -TERM $$pid; trap - EXIT; wait $$pid
	@echo "serve-smoke: artifact fetched and server drained cleanly"

# The distributed sweep plane end to end. First the worker-fleet chaos
# harness under the race detector: three real worker subprocesses sharing one
# job, one SIGKILLed mid-replicate, one network-partitioned by the netchaos
# proxy, with the artifact byte-diffed against an uninterrupted golden — plus
# the SIGTERM graceful-handoff and in-process soft-stop variants. Then a
# live-binary smoke: anvilserved -distribute plus two anvilworkerd processes
# computing a shardable registry job, fetched over curl, everything drained
# with SIGTERM.
worker-smoke:
	$(GO) test -race -run 'TestWorkerFleetChaos|TestWorkerSIGTERMGraceful|TestSoftStopFinishesInFlightReplicate' -v ./internal/workerd
	rm -rf /tmp/anvil-worker-smoke && mkdir -p /tmp/anvil-worker-smoke
	$(GO) build -o /tmp/anvil-worker-smoke/anvilserved ./cmd/anvilserved
	$(GO) build -o /tmp/anvil-worker-smoke/anvilworkerd ./cmd/anvilworkerd
	set -e; \
	/tmp/anvil-worker-smoke/anvilserved -addr 127.0.0.1:0 \
		-data /tmp/anvil-worker-smoke/data \
		-distribute -lease-chunk 2 -worker-grace 60s \
		-portfile /tmp/anvil-worker-smoke/port & \
	spid=$$!; trap 'kill $$spid 2>/dev/null' EXIT; \
	for i in $$(seq 1 100); do \
		[ -s /tmp/anvil-worker-smoke/port ] && break; sleep 0.1; done; \
	addr=$$(cat /tmp/anvil-worker-smoke/port); \
	/tmp/anvil-worker-smoke/anvilworkerd -coordinator "http://$$addr" -id smoke-w1 -seed 1 \
		> /tmp/anvil-worker-smoke/w1.log 2>&1 & w1=$$!; \
	/tmp/anvil-worker-smoke/anvilworkerd -coordinator "http://$$addr" -id smoke-w2 -seed 2 \
		> /tmp/anvil-worker-smoke/w2.log 2>&1 & w2=$$!; \
	trap 'kill $$spid $$w1 $$w2 2>/dev/null' EXIT; \
	id=$$(curl -sf -X POST "http://$$addr/v1/jobs" \
		-d '{"experiment":"fault-matrix","quick":true,"seed":7}' \
		| sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
	echo "worker-smoke: submitted $$id to $$addr"; \
	for i in $$(seq 1 600); do \
		code=$$(curl -s -o /tmp/anvil-worker-smoke/result.json \
			-w '%{http_code}' "http://$$addr/v1/jobs/$$id/result"); \
		[ "$$code" = 200 ] && break; sleep 0.5; done; \
	[ "$$code" = 200 ]; \
	[ -s /tmp/anvil-worker-smoke/result.json ]; \
	grep -q 'released after' /tmp/anvil-worker-smoke/w1.log /tmp/anvil-worker-smoke/w2.log; \
	kill -TERM $$w1 $$w2; wait $$w1; wait $$w2; \
	kill -TERM $$spid; trap - EXIT; wait $$spid
	@echo "worker-smoke: fleet computed the job; workers and coordinator drained cleanly"

vet:
	$(GO) vet ./...

# The project's own determinism/correctness analyzers (see internal/lint).
# Run through `go vet -vettool` so the build cache skips unchanged packages
# and cross-package facts flow through vetx files exactly as in CI. The
# standalone driver remains available as `go run ./cmd/anvillint ./...`.
ANVILLINT := bin/anvillint

lint:
	$(GO) build -o $(ANVILLINT) ./cmd/anvillint
	$(GO) vet -vettool=$(abspath $(ANVILLINT)) ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full benchmark run: the component hot paths (5 repetitions, median-
# reduced) plus the end-to-end replicates/second sweep, reported two ways —
# BENCH_PR3.json against the PR-3 pre-refactor baseline (recorded on a
# different host; see bench/NOTES.md) and BENCH_PR7.json against the
# same-machine pre-batching baseline in bench/baseline_pr7.txt, which also
# carries the throughput metric.
bench:
	$(GO) test -run '^$$' -bench BenchmarkHotPath -benchmem -count 5 $(BENCH_PKGS) | tee bench/current_pr7.txt
	$(GO) test -run '^$$' -bench BenchmarkEndToEnd -count 3 ./internal/experiments | tee -a bench/current_pr7.txt
	$(GO) run ./cmd/benchreport -baseline bench/baseline_pr3.txt -current bench/current_pr7.txt -out BENCH_PR3.json
	$(GO) run ./cmd/benchreport -baseline bench/baseline_pr7.txt -current bench/current_pr7.txt -out BENCH_PR7.json

# CI-sized benchmark smoke: a handful of iterations proves the benchmarks
# compile and run (and -benchmem keeps alloc regressions visible) without
# spending CI minutes on stable timings. The end-to-end sweep then runs once
# and benchreport's guardrail fails the target if quick replicates/second
# drops below 80% of the committed same-machine baseline.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkHotPath -benchtime 100x -benchmem $(BENCH_PKGS)
	$(GO) test -run '^$$' -bench BenchmarkEndToEnd ./internal/experiments | tee bench-smoke-e2e.txt
	$(GO) run ./cmd/benchreport -baseline bench/baseline_pr7.txt -current bench-smoke-e2e.txt \
		-min-ratio replicates/s=0.8 -out /dev/null

check: fmt build vet lint test race
