GO ?= go

.PHONY: all build test race fuzz-smoke vet lint fmt check

all: build test vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Ten seconds per fuzz target: enough to shake out regressions in the
# mapper round-trip and cache-policy invariants without stalling CI.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMapperRoundTrip -fuzztime 10s ./internal/dram
	$(GO) test -run '^$$' -fuzz FuzzPolicyInvariants -fuzztime 10s ./internal/cache

vet:
	$(GO) vet ./...

# The project's own determinism/correctness analyzers (see internal/lint).
# Also usable as a vet tool:
#   go build -o anvillint ./cmd/anvillint && go vet -vettool=./anvillint ./...
lint:
	$(GO) run ./cmd/anvillint ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: fmt build vet lint test race
