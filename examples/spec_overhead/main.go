// SPEC-like workloads under ANVIL vs the doubled-refresh-rate mitigation
// (Figure 3): run a fixed amount of work per benchmark under each
// configuration and compare completion times against the unprotected 64 ms
// machine. Each configuration is one scenario.Spec; the unprotected /
// ANVIL / 2x-refresh triples for the five benchmarks fan out across
// scenario.RunMany's worker pool.
package main

import (
	"fmt"
	"log"

	"repro/internal/report"
	"repro/internal/scenario"
)

// measure runs one benchmark for `ops` memory operations under a defense
// and returns the completion time in cycles.
func measure(name string, ops uint64, def scenario.DefenseKind, refreshScale int) (uint64, error) {
	in, err := scenario.Run(scenario.Spec{
		Workloads:    []scenario.Workload{{Name: name, OpLimit: ops}},
		Defense:      def,
		RefreshScale: refreshScale,
	})
	if err != nil {
		return 0, err
	}
	return uint64(in.Machine.Cores[0].Now), nil
}

func main() {
	log.SetFlags(0)
	// A representative subset keeps the example quick; cmd/tables -only
	// figure3 runs the full suite.
	names := []string{"mcf", "libquantum", "gcc", "h264ref", "sjeng"}
	const ops = 400_000

	type ratios struct{ anvil, dbl float64 }
	rows, err := scenario.RunMany(len(names), 0, func(rep int) (ratios, error) {
		base, err := measure(names[rep], ops, scenario.NoDefense, 1)
		if err != nil {
			return ratios{}, err
		}
		anv, err := measure(names[rep], ops, scenario.ANVILBaseline, 1)
		if err != nil {
			return ratios{}, err
		}
		dbl, err := measure(names[rep], ops, scenario.NoDefense, 2)
		if err != nil {
			return ratios{}, err
		}
		return ratios{
			anvil: float64(anv) / float64(base),
			dbl:   float64(dbl) / float64(base),
		}, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	t := report.New("Normalized execution time (1.0 = unprotected, 64ms refresh)",
		"benchmark", "ANVIL", "2x refresh")
	var sumA, sumD float64
	for i, r := range rows {
		sumA += r.anvil
		sumD += r.dbl
		t.AddStrings(names[i], fmt.Sprintf("%.4f", r.anvil), fmt.Sprintf("%.4f", r.dbl))
	}
	t.AddStrings("mean",
		fmt.Sprintf("%.4f", sumA/float64(len(names))),
		fmt.Sprintf("%.4f", sumD/float64(len(names))))
	fmt.Println(t)
	fmt.Println("memory-intensive benchmarks pay for both protections; ANVIL stays ~1-3%")
	fmt.Println("while shielding against attacks that beat the 32ms refresh window outright.")
}
