// SPEC-like workloads under ANVIL vs the doubled-refresh-rate mitigation
// (Figure 3): run a fixed amount of work per benchmark under each
// configuration and compare completion times against the unprotected 64 ms
// machine.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/anvil"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/workload"
)

// measure runs prof for `ops` memory operations and returns the completion
// time in cycles.
func measure(prof workload.Profile, ops uint64, withANVIL bool, refreshScale int) uint64 {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	if refreshScale > 1 {
		cfg.Memory.DRAM.Timing = cfg.Memory.DRAM.Timing.WithRefreshScale(refreshScale)
	}
	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Spawn(0, workload.MustNew(prof).WithOpLimit(ops)); err != nil {
		log.Fatal(err)
	}
	if withANVIL {
		det, err := anvil.New(m, anvil.Baseline(), nil)
		if err != nil {
			log.Fatal(err)
		}
		det.Start()
	}
	if err := m.Run(1 << 62); err != nil && !errors.Is(err, machine.ErrAllDone) {
		log.Fatal(err)
	}
	return uint64(m.Cores[0].Now)
}

func main() {
	log.SetFlags(0)
	// A representative subset keeps the example quick; cmd/tables -only
	// figure3 runs the full suite.
	names := []string{"mcf", "libquantum", "gcc", "h264ref", "sjeng"}
	const ops = 400_000

	t := report.New("Normalized execution time (1.0 = unprotected, 64ms refresh)",
		"benchmark", "ANVIL", "2x refresh")
	var sumA, sumD float64
	for _, name := range names {
		prof, ok := workload.ByName(name)
		if !ok {
			log.Fatalf("unknown profile %s", name)
		}
		base := measure(prof, ops, false, 1)
		anv := float64(measure(prof, ops, true, 1)) / float64(base)
		dbl := float64(measure(prof, ops, false, 2)) / float64(base)
		sumA += anv
		sumD += dbl
		t.AddStrings(name, fmt.Sprintf("%.4f", anv), fmt.Sprintf("%.4f", dbl))
	}
	t.AddStrings("mean",
		fmt.Sprintf("%.4f", sumA/float64(len(names))),
		fmt.Sprintf("%.4f", sumD/float64(len(names))))
	fmt.Println(t)
	fmt.Println("memory-intensive benchmarks pay for both protections; ANVIL stays ~1-3%")
	fmt.Println("while shielding against attacks that beat the 32ms refresh window outright.")
}
