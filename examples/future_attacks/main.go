// Robustness to next-generation attacks (§4.5): on DRAM twice as weak
// (flips at 110K double-sided accesses), a flat-out attack evades nothing
// but a slowed attack evades ANVIL-baseline's stage-1 threshold — until the
// detector is retuned. ANVIL-heavy (2ms windows) catches the fast attack;
// ANVIL-light (halved threshold) catches the slow one.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/anvil"
	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/sim"
)

// scenario runs a double-sided CLFLUSH attack (optionally slowed by delay)
// on half-threshold DRAM under the given detector parameters.
func scenario(name string, delay sim.Cycles, params *anvil.Params) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory.DRAM.Disturb = cfg.Memory.DRAM.Disturb.Scaled(0.5) // future, weaker DRAM
	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a, err := attack.NewDoubleSidedFlush(attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
		ExtraDelay: delay,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		log.Fatal(err)
	}
	v := a.Victim()
	// Flips at ~110K accesses.
	if err := m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 200_000); err != nil {
		log.Fatal(err)
	}

	var det *anvil.Detector
	if params != nil {
		det, err = anvil.New(m, *params, nil)
		if err != nil {
			log.Fatal(err)
		}
		det.Start()
	}
	if err := m.Run(m.Freq.Cycles(256 * time.Millisecond)); err != nil && !errors.Is(err, machine.ErrAllDone) {
		log.Fatal(err)
	}
	flips := m.Mem.DRAM.FlipCount()
	detections := 0
	crossing := 0.0
	if det != nil {
		st := det.Stats()
		detections = len(st.Detections)
		crossing = st.CrossingFraction()
	}
	fmt.Printf("%-52s flips=%-3d detections=%-4d stage-1 crossing=%3.0f%%\n",
		name, flips, detections, 100*crossing)
}

func main() {
	log.SetFlags(0)
	base, light, heavy := anvil.Baseline(), anvil.Light(), anvil.Heavy()
	// A delay of ~1200 cycles/iteration spreads ~110K iterations across a
	// full 64ms refresh period, holding the miss rate under 20K/6ms.
	const slow = 1200

	fmt.Println("future DRAM: weakest cells flip at 110K double-sided accesses")
	fmt.Println()
	scenario("fast attack, no protection", 0, nil)
	scenario("slow attack, no protection", slow, nil)
	fmt.Println()
	scenario("fast attack vs ANVIL-baseline", 0, &base)
	scenario("slow attack vs ANVIL-baseline (evades stage 1!)", slow, &base)
	fmt.Println()
	scenario("fast attack vs ANVIL-heavy (tc=ts=2ms)", 0, &heavy)
	scenario("slow attack vs ANVIL-light (threshold 10K)", slow, &light)
}
