// Robustness to next-generation attacks (§4.5): on DRAM twice as weak
// (flips at 110K double-sided accesses), a flat-out attack evades nothing
// but a slowed attack evades ANVIL-baseline's stage-1 threshold — until the
// detector is retuned. ANVIL-heavy (2ms windows) catches the fast attack;
// ANVIL-light (halved threshold) catches the slow one. Each configuration
// is one declarative scenario.Spec.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// run hammers half-threshold DRAM with a double-sided CLFLUSH attack
// (optionally slowed by delay) under the given defense.
func run(name string, delay sim.Cycles, def scenario.DefenseKind) {
	in, err := scenario.Run(scenario.Spec{
		DisturbScale: 0.5, // future, weaker DRAM: flips at ~110K accesses
		Attack: &scenario.Attack{
			Kind:       scenario.DoubleSidedFlush,
			WeakUnits:  200_000,
			ExtraDelay: delay,
		},
		Defense:  def,
		Duration: 256 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	flips := in.Machine.Mem.DRAM.FlipCount()
	detections := 0
	crossing := 0.0
	if in.Detector != nil {
		st := in.Detector.Stats()
		detections = len(st.Detections)
		crossing = st.CrossingFraction()
	}
	fmt.Printf("%-52s flips=%-3d detections=%-4d stage-1 crossing=%3.0f%%\n",
		name, flips, detections, 100*crossing)
}

func main() {
	log.SetFlags(0)
	// A delay of ~1200 cycles/iteration spreads ~110K iterations across a
	// full 64ms refresh period, holding the miss rate under 20K/6ms.
	const slow = 1200

	fmt.Println("future DRAM: weakest cells flip at 110K double-sided accesses")
	fmt.Println()
	run("fast attack, no protection", 0, scenario.NoDefense)
	run("slow attack, no protection", slow, scenario.NoDefense)
	fmt.Println()
	run("fast attack vs ANVIL-baseline", 0, scenario.ANVILBaseline)
	run("slow attack vs ANVIL-baseline (evades stage 1!)", slow, scenario.ANVILBaseline)
	fmt.Println()
	run("fast attack vs ANVIL-heavy (tc=ts=2ms)", 0, scenario.ANVILHeavy)
	run("slow attack vs ANVIL-light (threshold 10K)", slow, scenario.ANVILLight)
}
