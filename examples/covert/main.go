// A CLFLUSH-free Evict+Reload covert channel (the §2.2 corollary: "our
// CLFLUSH-free cache flushing method can extend [Flush+Reload] to
// situations where the CLFLUSH instruction is not available"). A sender and
// a receiver share one read-only page; the receiver evicts the probe line
// with a pagemap-built eviction set, waits, reloads it and classifies the
// sender's bit from the measured load latency.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/machine"
)

func main() {
	log.SetFlags(0)
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The "shared library" page both processes map.
	frame, err := m.Kernel.Alloc.Alloc()
	if err != nil {
		log.Fatal(err)
	}
	cc := attack.DefaultCovertConfig(attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		BufferMB:   16,
		Contiguous: true,
	})
	cc.SharedFrame = frame

	msg := []byte("no clflush needed")
	bits := attack.EncodeBits(msg)
	snd, err := attack.NewCovertSender(cc, bits)
	if err != nil {
		log.Fatal(err)
	}
	rcv, err := attack.NewCovertReceiver(cc, len(bits))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Spawn(0, snd); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Spawn(1, rcv); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, machine.ErrAllDone) {
		log.Fatal(err)
	}

	got := rcv.Bits()
	match := 0
	for i := range bits {
		if i < len(got) && bits[i] == got[i] {
			match++
		}
	}
	slotNS := m.Freq.Nanos(cc.SlotCycles)
	fmt.Printf("sent     %q (%d bits, %.0f ns per bit => %.0f kbit/s)\n",
		msg, len(bits), slotNS, 1e6/slotNS)
	fmt.Printf("received %q\n", attack.DecodeBits(got))
	fmt.Printf("bit accuracy %.1f%%, CLFLUSH instructions executed: %d\n",
		100*float64(match)/float64(len(bits)),
		m.Cores[0].Stats.Flushes+m.Cores[1].Stats.Flushes)
}
