// The CLFLUSH-free attack end to end (§2.2): infer the LLC's replacement
// policy from performance counters, build pagemap-based eviction sets,
// derive the Fig. 1b access pattern, and flip a bit using nothing but
// ordinary loads — then show that restricting pagemap (the kernel
// mitigation) breaks this particular construction.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/sim"
)

func newMachine() *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func opts(m *machine.Machine) attack.Options {
	return attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	}
}

func main() {
	log.SetFlags(0)

	// Step 1: identify the replacement policy the way the authors did.
	fmt.Println("step 1: replacement-policy inference from the LLC miss counter")
	m := newMachine()
	scores, err := attack.RunInference(m, opts(m), 60, cache.AllPolicies())
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range scores {
		fmt.Printf("  %-10s agreement %.3f\n", s.Policy, s.Match)
	}
	fmt.Printf("  => the LLC behaves like %s\n\n", scores[0].Policy)

	// Step 2: build the attack on a fresh machine.
	fmt.Println("step 2: eviction sets via pagemap + policy-aware access pattern")
	m = newMachine()
	a, err := attack.NewClflushFree(opts(m))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		log.Fatal(err)
	}
	x, y := a.Patterns()
	fmt.Printf("  set X: %d accesses/iteration, %d steady-state misses, aggressor slot %d\n",
		len(x.Seq), x.MissesPerIteration, x.AggressorSlot)
	fmt.Printf("  set Y: %d accesses/iteration, %d steady-state misses, aggressor slot %d\n\n",
		len(y.Seq), y.MissesPerIteration, y.AggressorSlot)

	// Step 3: hammer with loads only.
	v := a.Victim()
	if err := m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 3: hammering victim row %d (bank %d) with loads only...\n", v.VictimRow, v.Bank)
	slice := m.Freq.Cycles(time.Millisecond)
	for now := sim.Cycles(0); now < m.Freq.Cycles(192*time.Millisecond); now += slice {
		if err := m.Run(now + slice); err != nil && !errors.Is(err, machine.ErrAllDone) {
			log.Fatal(err)
		}
		if m.Mem.DRAM.FlipCount() > 0 {
			break
		}
	}
	if m.Mem.DRAM.FlipCount() == 0 {
		log.Fatal("no flip — calibration drift?")
	}
	f := m.Mem.DRAM.Flips()[0]
	fmt.Printf("  BIT FLIP %v after %.1f ms, %d aggressor accesses, %d CLFLUSH instructions\n\n",
		f, m.Freq.Millis(f.Time), a.AggressorAccesses(), m.Cores[0].Stats.Flushes)

	// Step 4: the kernel mitigation (restricting pagemap) breaks this
	// construction — but, as the paper notes, attackers retain other ways
	// to learn physical layout.
	fmt.Println("step 4: with /proc/pagemap restricted (the deployed kernel patch):")
	m = newMachine()
	m.Kernel.Pagemap.Restricted = true
	b, err := attack.NewClflushFree(opts(m))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Spawn(0, b); err != nil {
		fmt.Printf("  attack setup fails: %v\n", err)
	} else {
		fmt.Println("  unexpected: attack built eviction sets without pagemap")
	}
}
