// The NaCl-style sandbox escape (the paper's §5.1, first weaponization):
// a sandboxed program's code is validated at load time — only safe
// instructions, jumps constrained to bundle-aligned targets. The program
// then rowhammers *its own code segment*. Bit flips happen below the
// sandbox's sight: a flipped bit can turn a validated instruction into an
// unconstrained jump into the middle of an instruction bundle, where bytes
// re-parse as illegal operations. Seaborn & Dullien measured that ~13% of
// possible bit flips in an instruction are exploitable; this model uses the
// same rate (4 exploitable bit positions of 32).
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/machine"
)

const (
	codeVA   = uint64(0x7000_0000) // the sandboxed module's code segment
	codeMB   = 16
	instBits = 32 // one "instruction" per 32 bits
)

// exploitable reports whether flipping the given bit position within an
// instruction word yields an unconstrained jump (the opcode-class field):
// 4 of 32 bit positions, matching the paper's ~13%.
func exploitable(bitInWord int) bool { return bitInWord >= 28 }

type retargetable struct{ hammer machine.Program }

func (r *retargetable) Name() string               { return "nacl-module" }
func (r *retargetable) Init(p *machine.Proc) error { return nil }
func (r *retargetable) Next() machine.Op {
	if r.hammer == nil {
		return machine.Op{Kind: machine.OpCompute, Cycles: 1000}
	}
	return r.hammer.Next()
}

func main() {
	log.SetFlags(0)
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	prog := &retargetable{}
	proc, err := m.Spawn(0, prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := proc.AS.MapContiguous(codeVA, codeMB<<20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sandbox: validated %d MB of module code — all instructions safe, all jumps bundle-aligned\n", codeMB)

	mapper := m.Mem.DRAM.Mapper()
	basePA, err := proc.AS.Translate(codeVA)
	if err != nil {
		log.Fatal(err)
	}
	baseCoord := mapper.Map(basePA)

	// The module hammers rows inside its own (validated!) code segment.
	start := time.Now() //lint:allow detrand example reports real elapsed time next to simulated time
	for trial := 0; trial < 60; trial++ {
		victim := dram.Coord{Bank: baseCoord.Bank, Row: baseCoord.Row + 4 + trial*2}
		a, err := attack.NewDoubleSidedFlush(attack.Options{
			Mapper:   mapper,
			LLC:      cache.SandyBridgeConfig().Levels[2],
			Target:   attack.Target{Bank: victim.Bank, VictimRow: victim.Row},
			BufferMB: codeMB,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Init(proc); err != nil {
			log.Fatal(err)
		}
		prog.hammer = a

		before := m.Mem.DRAM.FlipCount()
		deadline := m.Cores[0].Now + m.Freq.Cycles(64*time.Millisecond)
		for m.Cores[0].Now < deadline && m.Mem.DRAM.FlipCount() == before {
			if err := m.Run(m.Cores[0].Now + m.Freq.Cycles(2*time.Millisecond)); err != nil &&
				!errors.Is(err, machine.ErrAllDone) {
				log.Fatal(err)
			}
		}
		for _, f := range m.Mem.DRAM.Flips()[before:] {
			pa := mapper.Unmap(dram.Coord{Bank: f.Bank, Row: f.Row})
			if pa < basePA || pa >= basePA+codeMB<<20 {
				continue // flip outside the code segment
			}
			inst := (pa - basePA + uint64(f.Bit/8)) / (instBits / 8)
			bit := f.Bit % instBits
			if exploitable(bit) {
				fmt.Printf("  flip in instruction %d, bit %d: VALIDATED instruction became an\n", inst, bit)
				fmt.Println("  unconstrained jump — control transfers into the middle of a bundle")
				fmt.Printf("\nsandbox escaped after hammering %d rows (%.1fs host, %.0f ms simulated)\n",
					//lint:allow detrand example reports real elapsed time next to simulated time
					trial+1, time.Since(start).Seconds(), m.Freq.Millis(m.Cores[0].Now))
				fmt.Println("the validator never re-runs: hardware changed the code after the check")
				return
			}
			fmt.Printf("  flip in instruction %d, bit %d: still a safe instruction, rehammering\n", inst, bit)
		}
	}
	fmt.Println("no exploitable flip among the hammered rows (weak cells elsewhere); rerun with another seed")
}
