// Quickstart: declare the paper's double-sided CLFLUSH rowhammer as a
// scenario.Spec, run it unprotected and then with ANVIL enabled, and watch
// the detector selectively refresh the victim — zero bit flips, while the
// unprotected run of the same attack flips in ~17 simulated milliseconds.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/anvil"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	fmt.Println("== run 1: unprotected machine ==")
	flips, _ := run(scenario.NoDefense)
	fmt.Printf("bit flips without ANVIL: %d\n\n", flips)

	fmt.Println("== run 2: same attack, ANVIL enabled ==")
	flips, det := run(scenario.ANVILBaseline)
	fmt.Printf("bit flips with ANVIL: %d\n", flips)
	st := det.Stats()
	fmt.Printf("detections: %d, selective refreshes: %d\n", len(st.Detections), st.Refreshes)
	if len(st.Detections) > 0 {
		fmt.Printf("first detection: %.1f ms after the attack started, aggressors %v\n",
			float64(st.Detections[0].Time)/2.6e6, st.Detections[0].Aggressors)
	}
}

func run(def scenario.DefenseKind) (int, *anvil.Detector) {
	// The paper's machine (2.6 GHz Sandy Bridge caches over 4 GB DDR3) with
	// the attack on core 0 and the victim row planted as weak as the paper's
	// module: it flips after 400K disturbance units (≈220K double-sided
	// accesses).
	in, err := scenario.Build(scenario.Spec{
		Attack:  &scenario.Attack{Kind: scenario.DoubleSidedFlush},
		Defense: def,
	})
	if err != nil {
		log.Fatal(err)
	}
	v := in.Hammer.Victim()
	fmt.Printf("hammering rows %d/%d around victim row %d of bank %d\n",
		v.VictimRow-1, v.VictimRow+1, v.VictimRow, v.Bank)

	// Three refresh windows of simulated time.
	if err := in.RunFor(192 * time.Millisecond); err != nil {
		log.Fatal(err)
	}
	m := in.Machine
	for _, f := range m.Mem.DRAM.Flips() {
		fmt.Printf("  %v (t=%.1f ms)\n", f, m.Freq.Millis(f.Time))
	}
	return m.Mem.DRAM.FlipCount(), in.Detector
}
