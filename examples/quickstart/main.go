// Quickstart: build the paper's machine, launch a double-sided CLFLUSH
// rowhammer against a weak DRAM row, and watch ANVIL detect the attack and
// selectively refresh the victim — zero bit flips, while an unprotected run
// of the same attack flips in ~17 simulated milliseconds.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/anvil"
	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/machine"
)

func main() {
	log.SetFlags(0)
	fmt.Println("== run 1: unprotected machine ==")
	flips, _ := run(false)
	fmt.Printf("bit flips without ANVIL: %d\n\n", flips)

	fmt.Println("== run 2: same attack, ANVIL enabled ==")
	flips, det := run(true)
	fmt.Printf("bit flips with ANVIL: %d\n", flips)
	st := det.Stats()
	fmt.Printf("detections: %d, selective refreshes: %d\n", len(st.Detections), st.Refreshes)
	if len(st.Detections) > 0 {
		fmt.Printf("first detection: %.1f ms after the attack started, aggressors %v\n",
			float64(st.Detections[0].Time)/2.6e6, st.Detections[0].Aggressors)
	}
}

func run(protect bool) (int, *anvil.Detector) {
	// The paper's machine: 2.6 GHz Sandy Bridge caches over 4 GB DDR3.
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The attack only needs loads, CLFLUSH, pagemap and the reverse-
	// engineered address maps.
	hammer, err := attack.NewDoubleSidedFlush(attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Spawn(0, hammer); err != nil {
		log.Fatal(err)
	}

	// Make the victim row as weak as the paper's module: it flips after
	// 400K disturbance units (≈220K double-sided accesses).
	v := hammer.Victim()
	if err := m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hammering rows %d/%d around victim row %d of bank %d\n",
		v.VictimRow-1, v.VictimRow+1, v.VictimRow, v.Bank)

	var det *anvil.Detector
	if protect {
		det, err = anvil.New(m, anvil.Baseline(), nil)
		if err != nil {
			log.Fatal(err)
		}
		det.Start()
	}

	// Three refresh windows of simulated time.
	if err := m.Run(m.Freq.Cycles(192 * time.Millisecond)); err != nil && !errors.Is(err, machine.ErrAllDone) {
		log.Fatal(err)
	}
	for _, f := range m.Mem.DRAM.Flips() {
		fmt.Printf("  %v (t=%.1f ms)\n", f, m.Freq.Millis(f.Time))
	}
	return m.Mem.DRAM.FlipCount(), det
}
