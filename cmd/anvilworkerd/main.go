// Command anvilworkerd is the stateless replicate worker of the distributed
// sweep plane. Point it at an anvilserved coordinator started with
// -distribute; it claims replicate slot leases, recomputes them through the
// shared experiment registry (replicate seeds are pure functions of the job
// seed and slot index, so worker results are byte-identical to coordinator
// results), uploads each result as it completes, and heartbeats its leases
// so the coordinator knows it is alive.
//
// Usage:
//
//	anvilworkerd -coordinator URL [-id NAME] [-api-key KEY] [-max-slots N]
//	             [-poll D] [-grace D] [-seed N]
//
// Workers hold no durable state: SIGKILLing one loses nothing (its leases
// expire and the slots are reassigned), and SIGTERM stops it gracefully —
// the in-flight replicate finishes and uploads, unstarted slots are
// abandoned, the lease is released explicitly, and the process exits within
// the -grace bound.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	_ "repro/internal/experiments" // registers every table and figure
	"repro/internal/workerd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("anvilworkerd: ")
	var (
		coordinator = flag.String("coordinator", "", "anvilserved base URL, e.g. http://127.0.0.1:8356 (required)")
		id          = flag.String("id", "", "worker name in leases and logs (default worker-<pid>)")
		apiKey      = flag.String("api-key", "", "X-API-Key identifying this worker")
		maxSlots    = flag.Int("max-slots", 0, "slots per claim (0 = coordinator's chunk size)")
		poll        = flag.Duration("poll", workerd.DefaultPoll, "claim polling interval while idle")
		grace       = flag.Duration("grace", workerd.DefaultGrace, "bound on finishing in-flight work after SIGTERM")
		seed        = flag.Uint64("seed", 0, "retry-jitter seed (vary across a fleet)")
	)
	flag.Parse()
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "anvilworkerd: -coordinator is required")
		flag.Usage()
		os.Exit(2)
	}
	w := workerd.New(workerd.Options{
		Coordinator: *coordinator,
		APIKey:      *apiKey,
		ID:          *id,
		MaxSlots:    *maxSlots,
		Poll:        *poll,
		Grace:       *grace,
		Seed:        *seed,
		Logf:        log.Printf,
	})
	if err := run(w); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

// run is the audited single-exit body of the worker: every failure funnels
// back here as an error and exits through main's one os.Exit. The first
// SIGTERM/SIGINT starts the graceful stop; a second signal kills the
// process the default way.
func run(w *workerd.Worker) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := w.Run(ctx)
	stop()
	return err
}
