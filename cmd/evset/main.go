// Command evset demonstrates the attacker-side machinery of §2.2: building
// an eviction set through /proc/pagemap, inferring the LLC replacement
// policy by correlating performance-counter hit/miss traces against policy
// simulators, and deriving the miss-controlled access pattern of Fig. 1b.
//
// Usage:
//
//	evset [-policy bit-plru|lru|tree-plru|nru|srrip|random] [-rounds N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evset: ")
	policy := flag.String("policy", "bit-plru", "replacement policy of the machine's LLC")
	rounds := flag.Int("rounds", 60, "probe passes over the eviction set")
	flag.Parse()
	if err := run(cache.PolicyKind(*policy), *rounds); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run(policy cache.PolicyKind, rounds int) error {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory.Cache.Levels[2].Policy = policy
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	opts := attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cfg.Memory.Cache.Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	}

	fmt.Printf("machine LLC: %dKB %d-way, %d slices, policy %s\n",
		opts.LLC.SizeKB, opts.LLC.Ways, opts.LLC.Slices, policy)
	fmt.Printf("probing: cyclic access over a %d-address eviction set, classifying each access\n",
		opts.LLC.Ways+1)
	fmt.Println("via the LLC miss counter, then correlating against policy simulators...")
	fmt.Println()

	scores, err := attack.RunInference(m, opts, rounds, cache.AllPolicies())
	if err != nil {
		return err
	}
	t := report.New("Inference ranking", "candidate policy", "trace agreement")
	for _, s := range scores {
		t.AddStrings(string(s.Policy), fmt.Sprintf("%.3f", s.Match))
	}
	fmt.Println(t)
	if scores[0].Policy == policy {
		fmt.Printf("=> correctly identified %s\n\n", policy)
	} else {
		fmt.Printf("=> best match %s (actual %s)\n\n", scores[0].Policy, policy)
	}

	// Show the derived attack pattern for the identified policy.
	m2, err := machine.New(cfg)
	if err != nil {
		return err
	}
	opts.Mapper = m2.Mem.DRAM.Mapper()
	opts.LLC.Policy = scores[0].Policy
	a, err := attack.NewClflushFree(opts)
	if err != nil {
		return err
	}
	if _, err := m2.Spawn(0, a); err != nil {
		return fmt.Errorf("pattern derivation: %w (policy %s may not admit a stable 2-miss pattern)", err, scores[0].Policy)
	}
	x, _ := a.Patterns()
	fmt.Printf("derived CLFLUSH-free pattern for %s: %d accesses/iteration, %d steady-state misses,\n",
		scores[0].Policy, len(x.Seq), x.MissesPerIteration)
	fmt.Printf("aggressor in slot %d (misses — i.e. reaches DRAM — every iteration)\n", x.AggressorSlot)
	return nil
}
