// Command hammer demonstrates the three rowhammer attacks of the paper on
// an unprotected simulated machine, reporting time-to-first-flip and the
// access counts of Table 1.
//
// Usage:
//
//	hammer [-kind single-flush|double-flush|clflush-free] [-refresh-scale N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hammer: ")
	kind := flag.String("kind", "double-flush", "attack: single-flush, double-flush, clflush-free")
	refreshScale := flag.Int("refresh-scale", 1, "DRAM refresh-rate multiplier (2 = the 32ms mitigation)")
	deadline := flag.Duration("deadline", 192*time.Millisecond, "give up after this much simulated time")
	flag.Parse()
	if err := run(*kind, *refreshScale, *deadline); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run(kind string, refreshScale int, deadline time.Duration) error {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	if refreshScale != 1 {
		t, err := cfg.Memory.DRAM.Timing.RefreshScaled(refreshScale)
		if err != nil {
			return err
		}
		cfg.Memory.DRAM.Timing = t
	}
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	opts := attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	}
	var (
		prog machine.Program
		h    interface {
			Victim() attack.Target
			AggressorAccesses() uint64
			Iterations() uint64
		}
	)
	switch kind {
	case "single-flush":
		a, err := attack.NewSingleSidedFlush(opts)
		if err != nil {
			return err
		}
		prog, h = a, a
	case "double-flush":
		a, err := attack.NewDoubleSidedFlush(opts)
		if err != nil {
			return err
		}
		prog, h = a, a
	case "clflush-free":
		a, err := attack.NewClflushFree(opts)
		if err != nil {
			return err
		}
		prog, h = a, a
		defer func() {
			x, y := a.Patterns()
			fmt.Printf("eviction patterns: %d accesses/iteration, %d misses steady-state (sets X/Y aggressor slots %d/%d)\n",
				len(x.Seq), x.MissesPerIteration, x.AggressorSlot, y.AggressorSlot)
		}()
	default:
		return fmt.Errorf("unknown attack kind %q", kind)
	}
	if _, err := m.Spawn(0, prog); err != nil {
		return err
	}
	v := h.Victim()
	if err := m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000); err != nil {
		return err
	}
	fmt.Printf("%s hammering bank %d rows %d/%d around victim row %d (refresh window %v)\n",
		kind, v.Bank, v.VictimRow-1, v.VictimRow+1, v.VictimRow,
		m.Freq.Duration(cfg.Memory.DRAM.Timing.RefreshPeriod))

	slice := m.Freq.Cycles(250 * time.Microsecond)
	end := m.Freq.Cycles(deadline)
	for now := sim.Cycles(0); now < end; now += slice {
		if err := m.Run(now + slice); err != nil && !errors.Is(err, machine.ErrAllDone) {
			return err
		}
		if m.Mem.DRAM.FlipCount() > 0 {
			f := m.Mem.DRAM.Flips()[0]
			fmt.Printf("BIT FLIP: %v\n", f)
			fmt.Printf("time to first flip: %.1f ms\n", m.Freq.Millis(f.Time))
			fmt.Printf("aggressor row accesses: %d (%d iterations)\n", h.AggressorAccesses(), h.Iterations())
			return nil
		}
	}
	fmt.Printf("no flip within %v (%d aggressor accesses); the refresh sweep wins at this rate\n",
		deadline, h.AggressorAccesses())
	return nil
}
