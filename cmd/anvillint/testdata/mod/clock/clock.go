// Package clock is outside any determinism zone: the time.Now here is a
// detrand finding on its own line, and the exported wallclock fact flags the
// zone caller in package app across the package boundary.
package clock

import "time"

// Stamp reads the host clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}
