//lint:zone deterministic
package app

import (
	"encoding/json"

	"fixturemod/clock"
)

// Result smuggles a map into a JSON schema: a jsondet finding at the field.
type Result struct {
	Rows map[int]int `json:"rows"`
}

// Timestamp reaches the host clock through another package: a wallclock
// finding fed by the fact exported from package clock.
func Timestamp() int64 {
	return clock.Stamp()
}

// Encode is clean at the call site: Result is already reported at its
// declaration.
func Encode(r Result) ([]byte, error) {
	return json.Marshal(r)
}
