// Command anvillint checks the repository against the simulator's
// determinism and correctness invariants. It bundles the analyzers from
// internal/lint:
//
//	detrand   — no math/rand, crypto/rand or wall-clock time in simulation code
//	maporder  — no order-dependent bodies under map iteration
//	randshare — no *sim.Rand shared across component constructors
//	tickconv  — no narrowing conversions of sim.Cycles counters
//	wallclock — no host-clock reads reachable from deterministic-zone code
//	seedflow  — every zone sim.Rand seeded from Spec/ReplicateSeed state
//	errpanic  — no panic/log.Fatal reachable from exported zone APIs
//	jsondet   — no map/interface fields in JSON marshalled from zone code
//
// The last four propagate facts across package boundaries; packages opt in
// via "//lint:zone deterministic" directives or the built-in zone map for
// internal/{machine,cache,dram,...} (see internal/lint/zone.go).
//
// Standalone use:
//
//	go run ./cmd/anvillint ./...
//	go run ./cmd/anvillint -disable tickconv ./internal/dram
//
// It also speaks the go vet driver protocol, so once built it can run as
//
//	go vet -vettool=$(pwd)/anvillint ./...
//
// Findings are suppressed line-by-line with "//lint:allow <analyzer> <why>"
// directives; see internal/lint for the exact semantics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/detrand"
	"repro/internal/lint/errpanic"
	"repro/internal/lint/jsondet"
	"repro/internal/lint/maporder"
	"repro/internal/lint/randshare"
	"repro/internal/lint/seedflow"
	"repro/internal/lint/tickconv"
	"repro/internal/lint/wallclock"
)

var analyzers = []*lint.Analyzer{
	detrand.Analyzer,
	errpanic.Analyzer,
	jsondet.Analyzer,
	maporder.Analyzer,
	randshare.Analyzer,
	seedflow.Analyzer,
	tickconv.Analyzer,
	wallclock.Analyzer,
}

func main() {
	// The audited single exit: every mode — vet driver handshake, unit
	// check, standalone run — reports its status as a code through here.
	os.Exit(run(os.Args[1:]))
}

// run dispatches on the argument shape and returns the process exit code:
// 0 clean, 1 findings, 2 usage or load failure.
func run(args []string) int {
	// go vet driver protocol: version handshake, flag discovery, then one
	// invocation per package with a .cfg file as the only argument.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return 0
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return unitCheck(args[0])
		}
	}

	listFlag := flag.Bool("list", false, "list analyzers and exit")
	disable := flag.String("disable", "", "comma-separated analyzers to skip")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Parse()

	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	enabled := analyzers
	if *disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(*disable, ",") {
			skip[strings.TrimSpace(name)] = true
		}
		enabled = nil
		for _, a := range analyzers {
			if !skip[a.Name] {
				enabled = append(enabled, a)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, enabled)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 2
	}

	if *jsonFlag {
		if err := writeJSON(os.Stdout, diags, relPath); err != nil {
			fmt.Fprintln(os.Stderr, "anvillint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s (%s)\n",
				relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "anvillint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// writeJSON renders diagnostics as a machine-readable array — one object
// per finding with file/line/column/analyzer/message — for CI annotation
// pipelines. rel maps absolute filenames to display paths; output paths are
// always slash-separated.
func writeJSON(w io.Writer, diags []lint.Diagnostic, rel func(string) string) error {
	type jsonDiag struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File: filepath.ToSlash(rel(d.Pos.Filename)), Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	if rel, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return p
}
