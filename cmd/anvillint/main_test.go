package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestJSONOutput runs the full analyzer suite over the fixture module in
// testdata/mod and compares the -json rendering against a golden file, so
// the machine-readable format CI depends on cannot drift silently.
func TestJSONOutput(t *testing.T) {
	modDir, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(modDir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture module produced no findings; the golden test needs a non-empty corpus")
	}

	rel := func(p string) string {
		if r, err := filepath.Rel(modDir, p); err == nil {
			return r
		}
		return p
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, diags, rel); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "diags.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from %s\n-- got --\n%s\n-- want --\n%s",
			golden, buf.Bytes(), want)
	}
}
