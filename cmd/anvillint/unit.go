package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// modulePath is the import-path prefix of packages this tool analyzes when
// driven by go vet. Standard-library and test units get an empty facts file
// and no analysis, so both drivers (standalone loader, vet units) see the
// same set of analyzed packages.
const modulePath = "repro"

// unitConfig is the JSON configuration cmd/go hands a vet tool for each
// compilation unit (the relevant subset of x/tools' unitchecker.Config).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion implements the -V=full handshake. cmd/go caches vet results
// keyed on this output, so it embeds a content hash of the executable.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

// unitCheck analyzes one compilation unit described by a .cfg file and
// returns the process exit code (0 clean, 2 findings — the go vet
// convention).
func unitCheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 1
	}
	// Test units re-vet the package with its _test.go files; the determinism
	// invariants deliberately exempt tests, and the plain unit is already
	// checked. Non-module units (standard library) hold no zone code. Both
	// still owe cmd/go a facts file.
	if !strings.HasPrefix(cfg.ImportPath, modulePath) ||
		strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		return writeVetx(cfg.VetxOutput, []byte("[]\n"))
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anvillint:", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 1
	}

	// Seed the fact store with the dependencies' vetx files, so
	// cross-package analyzers see the same facts as the standalone driver.
	store := lint.NewFactStore()
	reg := lint.NewFactRegistry(analyzers)
	for _, dep := range transitiveImports(tpkg) {
		vetx, ok := cfg.PackageVetx[dep.Path()]
		if !ok {
			continue
		}
		blob, err := os.ReadFile(vetx)
		if err != nil {
			continue // facts are an optimization; a missing file is not fatal
		}
		if err := store.DecodePackageFacts(dep, blob, reg); err != nil {
			fmt.Fprintln(os.Stderr, "anvillint:", err)
			return 1
		}
	}

	pkg := &lint.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags, err := lint.RunAnalyzersStore([]*lint.Package{pkg}, analyzers, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 1
	}
	facts, err := store.EncodePackageFacts(tpkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 1
	}
	if code := writeVetx(cfg.VetxOutput, facts); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func writeVetx(path string, data []byte) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 1
	}
	return 0
}

// transitiveImports returns pkg's full import closure in a deterministic
// order; vetx files exist for every unit the build has already vetted,
// including indirect dependencies.
func transitiveImports(pkg *types.Package) []*types.Package {
	var out []*types.Package
	seen := map[*types.Package]bool{pkg: true}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		for _, dep := range p.Imports() {
			if seen[dep] {
				continue
			}
			seen[dep] = true
			out = append(out, dep)
			walk(dep)
		}
	}
	walk(pkg)
	return out
}
