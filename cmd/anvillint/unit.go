package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// unitConfig is the JSON configuration cmd/go hands a vet tool for each
// compilation unit (the relevant subset of x/tools' unitchecker.Config).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion implements the -V=full handshake. cmd/go caches vet results
// keyed on this output, so it embeds a content hash of the executable.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

// unitCheck analyzes one compilation unit described by a .cfg file and
// returns the process exit code (0 clean, 2 findings — the go vet
// convention).
func unitCheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 1
	}
	// cmd/go expects a facts file even though these analyzers produce none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("anvillint\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "anvillint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test units re-vet the package with its _test.go files; the determinism
	// invariants deliberately exempt tests, and the plain unit is already
	// checked, so skip them entirely.
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anvillint:", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 1
	}
	pkg := &lint.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anvillint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
