// Command anvilsim runs one scenario on the simulated machine: a workload
// and/or a rowhammer attack, under a chosen defense, and reports what
// happened to the DRAM and what the defense cost. It is a thin CLI over
// scenario.Spec — flags map one-to-one onto Spec fields.
//
// Examples:
//
//	anvilsim -attack double-flush -defense anvil -duration 192ms
//	anvilsim -workload mcf -defense anvil -duration 200ms
//	anvilsim -attack clflush-free -workload mcf,libquantum,omnetpp -defense anvil
//	anvilsim -attack double-flush -defense 2x-refresh
//	anvilsim -attack single-flush -defense para -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("anvilsim: ")
	var (
		attackKind = flag.String("attack", "", "attack to run: single-flush, double-flush, clflush-free")
		workloads  = flag.String("workload", "", "comma-separated SPEC2006 profiles to co-run")
		defName    = flag.String("defense", "none", "defense: "+defenseNames())
		duration   = flag.Duration("duration", 192*time.Millisecond, "simulated run time")
		weakUnits  = flag.Float64("weak", scenario.DefaultWeakUnits, "disturbance threshold planted at the attack's victim row")
		seed       = flag.Uint64("seed", 0, "root seed for machine-level randomness (0 = calibrated defaults)")
		stepBatch  = flag.Int("step-batch", 0, "machine batch cap: 1 forces per-op stepping (A/B escape hatch), 0 = default")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	// The audited single exit: profiling setup and the run itself both
	// funnel their failures back here.
	if err := profiledRun(*cpuProf, *memProf, *attackKind, *workloads, *defName,
		*duration, *weakUnits, *seed, *stepBatch); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

// profiledRun brackets run with the optional CPU/heap profiles; a profile
// teardown failure surfaces only when the run itself succeeded.
func profiledRun(cpuProf, memProf, attackKind, workloads, defName string,
	duration time.Duration, weakUnits float64, seed uint64, stepBatch int) (err error) {
	stopProfiles, err := profiling.Start(cpuProf, memProf)
	if err != nil {
		return err
	}
	defer func() {
		if stopErr := stopProfiles(); stopErr != nil {
			if err == nil {
				err = stopErr
			} else {
				log.Print(stopErr)
			}
		}
	}()
	return run(attackKind, workloads, defName, duration, weakUnits, seed, stepBatch)
}

func run(attackKind, workloads, defName string, duration time.Duration, weakUnits float64, seed uint64, stepBatch int) error {
	spec := scenario.Spec{
		Seed:      seed,
		Duration:  duration,
		Defense:   scenario.DefenseKind(defName),
		StepBatch: stepBatch,
	}
	if attackKind != "" {
		spec.Attack = &scenario.Attack{
			Kind:      scenario.AttackKind(attackKind),
			WeakUnits: weakUnits,
		}
	}
	for _, name := range strings.Split(workloads, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if _, ok := workload.ByName(name); !ok {
			return fmt.Errorf("unknown workload %q (try: %s)", name, names())
		}
		spec.Workloads = append(spec.Workloads, scenario.Workload{Name: name})
	}
	if spec.Attack == nil && len(spec.Workloads) == 0 {
		return fmt.Errorf("nothing to run: pass -attack and/or -workload")
	}

	in, err := scenario.Build(spec)
	if err != nil {
		return err
	}
	m := in.Machine
	if in.Hammer != nil {
		v := in.Hammer.Victim()
		fmt.Printf("attack %s targeting bank %d victim row %d (weakest cell: %.0f units)\n",
			attackKind, v.Bank, v.VictimRow, weakUnits)
	}

	if err := in.RunFor(duration); err != nil {
		return err
	}

	// Report.
	fmt.Printf("\nsimulated %v at %.1f GHz\n", duration, float64(m.Freq.Hz())/1e9)
	t := report.New("Cores", "core", "program", "ops", "kernel cycles")
	for _, c := range m.Cores {
		name := "-"
		if c.Prog != nil {
			name = c.Prog.Name()
		}
		t.Add(c.ID, name, c.Stats.Ops, uint64(c.Stats.KernelCycles))
	}
	fmt.Println(t)

	ds := m.Mem.DRAM.Stats()
	fmt.Printf("DRAM: %d activations, %d row hits, %d refresh stalls\n",
		ds.Activations, ds.RowHits, ds.RefreshStalls)
	flips := m.Mem.DRAM.Flips()
	if len(flips) == 0 {
		fmt.Println("bit flips: none")
	} else {
		fmt.Printf("bit flips: %d (first: %v at %.1f ms)\n", len(flips), flips[0],
			m.Freq.Millis(flips[0].Time))
	}
	if in.Hammer != nil {
		fmt.Printf("attack issued %d aggressor row accesses\n", in.Hammer.AggressorAccesses())
	}
	if in.Detector != nil {
		st := in.Detector.Stats()
		fmt.Printf("ANVIL: %d/%d stage-1 windows crossed, %d detections, %d selective refreshes\n",
			st.Stage1Crossings, st.Stage1Windows, len(st.Detections), st.Refreshes)
		if len(st.Detections) > 0 {
			fmt.Printf("first detection at %.1f ms: aggressors %v\n",
				m.Freq.Millis(st.Detections[0].Time), st.Detections[0].Aggressors)
		}
	}
	if in.HW != nil {
		fmt.Printf("%s issued %d victim refreshes\n", in.HW.Name(), in.HW.Refreshes())
	}
	return nil
}

func defenseNames() string {
	var out []string
	for _, k := range scenario.DefenseKinds() {
		out = append(out, string(k))
	}
	return strings.Join(out, ", ")
}

func names() string {
	var out []string
	for _, p := range workload.SPEC2006() {
		out = append(out, p.Name)
	}
	return strings.Join(out, ", ")
}
