// Command anvilsim runs one scenario on the simulated machine: a workload
// and/or a rowhammer attack, under a chosen defense, and reports what
// happened to the DRAM and what the defense cost.
//
// Examples:
//
//	anvilsim -attack double-flush -defense anvil -duration 192ms
//	anvilsim -workload mcf -defense anvil -duration 200ms
//	anvilsim -attack clflush-free -workload mcf,libquantum,omnetpp -defense anvil
//	anvilsim -attack double-flush -defense 2x-refresh
//	anvilsim -attack single-flush -defense para
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/anvil"
	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/defense"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("anvilsim: ")
	var (
		attackKind = flag.String("attack", "", "attack to run: single-flush, double-flush, clflush-free")
		workloads  = flag.String("workload", "", "comma-separated SPEC2006 profiles to co-run")
		defName    = flag.String("defense", "none", "defense: none, anvil, anvil-light, anvil-heavy, 2x-refresh, para, trr, cra, armor")
		duration   = flag.Duration("duration", 192*time.Millisecond, "simulated run time")
		weakUnits  = flag.Float64("weak", 400_000, "disturbance threshold planted at the attack's victim row")
		seed       = flag.Uint64("seed", 0, "extra seed for the PMU sampler")
	)
	flag.Parse()

	if err := run(*attackKind, *workloads, *defName, *duration, *weakUnits, *seed); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run(attackKind, workloads, defName string, duration time.Duration, weakUnits float64, seed uint64) error {
	var profs []workload.Profile
	for _, name := range strings.Split(workloads, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		p, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("unknown workload %q (try: %s)", name, names())
		}
		profs = append(profs, p)
	}
	cores := len(profs)
	if attackKind != "" {
		cores++
	}
	if cores == 0 {
		return fmt.Errorf("nothing to run: pass -attack and/or -workload")
	}

	cfg := machine.DefaultConfig()
	cfg.Cores = cores
	cfg.Memory.PMUSeed += seed
	if defName == "2x-refresh" {
		cfg.Memory.DRAM.Timing = cfg.Memory.DRAM.Timing.WithRefreshScale(2)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}

	// Hardware defenses attach before anything runs.
	var hw defense.Defense
	switch defName {
	case "para":
		hw, err = defense.NewPARA(0.001, 0xA11)
	case "trr":
		hw, err = defense.NewTRR(50_000, m.Freq.Cycles(16*time.Millisecond))
	case "cra":
		hw, err = defense.NewCRA(100_000)
	case "armor":
		hw, err = defense.NewARMOR(10_000, 8, m.Freq.Cycles(32*time.Millisecond))
	case "none", "2x-refresh", "anvil", "anvil-light", "anvil-heavy":
	default:
		return fmt.Errorf("unknown defense %q", defName)
	}
	if err != nil {
		return err
	}
	if hw != nil {
		hw.Attach(m.Mem.DRAM)
	}

	core := 0
	var hammer interface {
		Victim() attack.Target
		AggressorAccesses() uint64
	}
	if attackKind != "" {
		opts := attack.Options{
			Mapper:     m.Mem.DRAM.Mapper(),
			LLC:        cache.SandyBridgeConfig().Levels[2],
			AutoTarget: true,
			BufferMB:   16,
			Contiguous: true,
		}
		var prog machine.Program
		switch attackKind {
		case "single-flush":
			a, err := attack.NewSingleSidedFlush(opts)
			if err != nil {
				return err
			}
			prog, hammer = a, a
		case "double-flush":
			a, err := attack.NewDoubleSidedFlush(opts)
			if err != nil {
				return err
			}
			prog, hammer = a, a
		case "clflush-free":
			a, err := attack.NewClflushFree(opts)
			if err != nil {
				return err
			}
			prog, hammer = a, a
		default:
			return fmt.Errorf("unknown attack %q", attackKind)
		}
		if _, err := m.Spawn(core, prog); err != nil {
			return err
		}
		v := hammer.Victim()
		if err := m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, weakUnits); err != nil {
			return err
		}
		fmt.Printf("attack %s targeting bank %d victim row %d (weakest cell: %.0f units)\n",
			attackKind, v.Bank, v.VictimRow, weakUnits)
		core++
	}
	for _, p := range profs {
		if _, err := m.Spawn(core, workload.MustNew(p)); err != nil {
			return err
		}
		core++
	}

	var det *anvil.Detector
	switch defName {
	case "anvil", "anvil-light", "anvil-heavy":
		params := anvil.Baseline()
		if defName == "anvil-light" {
			params = anvil.Light()
		} else if defName == "anvil-heavy" {
			params = anvil.Heavy()
		}
		det, err = anvil.New(m, params, nil)
		if err != nil {
			return err
		}
		det.Start()
	}

	if err := m.Run(m.Freq.Cycles(duration)); err != nil && err != machine.ErrAllDone {
		return err
	}

	// Report.
	fmt.Printf("\nsimulated %v at %.1f GHz\n", duration, float64(m.Freq.Hz())/1e9)
	t := report.New("Cores", "core", "program", "ops", "kernel cycles")
	for _, c := range m.Cores {
		name := "-"
		if c.Prog != nil {
			name = c.Prog.Name()
		}
		t.Add(c.ID, name, c.Stats.Ops, uint64(c.Stats.KernelCycles))
	}
	fmt.Println(t)

	ds := m.Mem.DRAM.Stats()
	fmt.Printf("DRAM: %d activations, %d row hits, %d refresh stalls\n",
		ds.Activations, ds.RowHits, ds.RefreshStalls)
	flips := m.Mem.DRAM.Flips()
	if len(flips) == 0 {
		fmt.Println("bit flips: none")
	} else {
		fmt.Printf("bit flips: %d (first: %v at %.1f ms)\n", len(flips), flips[0],
			m.Freq.Millis(flips[0].Time))
	}
	if hammer != nil {
		fmt.Printf("attack issued %d aggressor row accesses\n", hammer.AggressorAccesses())
	}
	if det != nil {
		st := det.Stats()
		fmt.Printf("ANVIL: %d/%d stage-1 windows crossed, %d detections, %d selective refreshes\n",
			st.Stage1Crossings, st.Stage1Windows, len(st.Detections), st.Refreshes)
		if len(st.Detections) > 0 {
			fmt.Printf("first detection at %.1f ms: aggressors %v\n",
				m.Freq.Millis(st.Detections[0].Time), st.Detections[0].Aggressors)
		}
	}
	if hw != nil {
		fmt.Printf("%s issued %d victim refreshes\n", hw.Name(), hw.Refreshes())
	}
	return nil
}

func names() string {
	var out []string
	for _, p := range workload.SPEC2006() {
		out = append(out, p.Name)
	}
	return strings.Join(out, ", ")
}

var _ = sim.Cycles(0)
