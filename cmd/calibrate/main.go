// Command calibrate probes the synthetic SPEC profiles against ANVIL's
// detector: per-window LLC miss rates, stage-1 crossing fractions, and
// sampling-window locality peaks. It exists to keep the workload
// calibration honest when profiles or detector parameters change.
//
// Usage:
//
//	calibrate          # miss-rate table for all profiles
//	calibrate fp       # detector-side view: crossings, peaks, FP rates
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/anvil"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	if err := run(os.Args[1:]); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

// run is the audited single-exit body: every probe failure funnels back
// here as an error and leaves through main's one os.Exit.
func run(args []string) error {
	if len(args) > 0 && args[0] == "fp" {
		for _, prof := range workload.SPEC2006() {
			if err := fpProbe(prof, 4*time.Second); err != nil {
				return fmt.Errorf("%s: %w", prof.Name, err)
			}
		}
		return nil
	}
	return missRates()
}

// missRates prints each profile's per-6ms LLC miss distribution.
func missRates() error {
	for _, prof := range workload.SPEC2006() {
		cfg := machine.DefaultConfig()
		cfg.Cores = 1
		m, err := machine.New(cfg)
		if err != nil {
			return err
		}
		prog, err := workload.New(prof)
		if err != nil {
			return err
		}
		if _, err := m.Spawn(0, prog); err != nil {
			return err
		}
		var rates []float64
		last := uint64(0)
		for i := 0; i < 50; i++ {
			if err := m.Run(m.Time() + m.Freq.Cycles(6*time.Millisecond)); err != nil {
				return err
			}
			cur := m.Mem.PMU.Read(pmu.EvLLCMiss)
			rates = append(rates, float64(cur-last))
			last = cur
		}
		min, max, sum, cross := rates[0], rates[0], 0.0, 0
		for _, r := range rates {
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
			sum += r
			if r >= 20000 {
				cross++
			}
		}
		fmt.Printf("%-12s avg=%6.0f min=%6.0f max=%6.0f cross=%d/50\n",
			prof.Name, sum/50, min, max, cross)
	}
	return nil
}

// fpProbe runs one profile under ANVIL-baseline and reports crossing and
// false-positive behaviour.
func fpProbe(prof workload.Profile, dur time.Duration) error {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	prog, err := workload.New(prof)
	if err != nil {
		return err
	}
	if _, err := m.Spawn(0, prog); err != nil {
		return err
	}
	d, err := anvil.New(m, anvil.Baseline(), nil)
	if err != nil {
		return err
	}
	d.Start()
	if err := m.Run(m.Freq.Cycles(dur)); err != nil {
		return err
	}
	st := d.Stats()
	hist := map[int]int{}
	for _, p := range st.WindowPeaks {
		hist[p.MaxRow]++
	}
	fmt.Printf("%-12s cross=%4.0f%% sampleWins=%3d rowPeaks=%v det/s=%.2f refr/s=%.2f\n",
		prof.Name, 100*st.CrossingFraction(), len(st.WindowPeaks),
		hist, float64(len(st.Detections))/dur.Seconds(), float64(st.Refreshes)/dur.Seconds())
	return nil
}
