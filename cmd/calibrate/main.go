// Command calibrate probes the synthetic SPEC profiles against ANVIL's
// detector: per-window LLC miss rates, stage-1 crossing fractions, and
// sampling-window locality peaks. It exists to keep the workload
// calibration honest when profiles or detector parameters change.
//
// Usage:
//
//	calibrate          # miss-rate table for all profiles
//	calibrate fp       # detector-side view: crossings, peaks, FP rates
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/anvil"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	if len(os.Args) > 1 && os.Args[1] == "fp" {
		for _, prof := range workload.SPEC2006() {
			fpProbe(prof, 4*time.Second)
		}
		return
	}
	missRates()
}

// missRates prints each profile's per-6ms LLC miss distribution.
func missRates() {
	for _, prof := range workload.SPEC2006() {
		cfg := machine.DefaultConfig()
		cfg.Cores = 1
		m, err := machine.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := workload.New(prof)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := m.Spawn(0, prog); err != nil {
			log.Fatal(err)
		}
		var rates []float64
		last := uint64(0)
		for i := 0; i < 50; i++ {
			if err := m.Run(m.Time() + m.Freq.Cycles(6*time.Millisecond)); err != nil {
				log.Fatal(err)
			}
			cur := m.Mem.PMU.Read(pmu.EvLLCMiss)
			rates = append(rates, float64(cur-last))
			last = cur
		}
		min, max, sum, cross := rates[0], rates[0], 0.0, 0
		for _, r := range rates {
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
			sum += r
			if r >= 20000 {
				cross++
			}
		}
		fmt.Printf("%-12s avg=%6.0f min=%6.0f max=%6.0f cross=%d/50\n",
			prof.Name, sum/50, min, max, cross)
	}
}

// fpProbe runs one profile under ANVIL-baseline and reports crossing and
// false-positive behaviour.
func fpProbe(prof workload.Profile, dur time.Duration) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := workload.New(prof)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Spawn(0, prog); err != nil {
		log.Fatal(err)
	}
	d, err := anvil.New(m, anvil.Baseline(), nil)
	if err != nil {
		log.Fatal(err)
	}
	d.Start()
	if err := m.Run(m.Freq.Cycles(dur)); err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	hist := map[int]int{}
	for _, p := range st.WindowPeaks {
		hist[p.MaxRow]++
	}
	fmt.Printf("%-12s cross=%4.0f%% sampleWins=%3d rowPeaks=%v det/s=%.2f refr/s=%.2f\n",
		prof.Name, 100*st.CrossingFraction(), len(st.WindowPeaks),
		hist, float64(len(st.Detections))/dur.Seconds(), float64(st.Refreshes)/dur.Seconds())
}
