// Command anvilserved is the crash-safe sweep service: a long-running HTTP
// daemon that runs registry experiments (the same tables and figures
// cmd/tables regenerates) as journaled jobs.
//
// Usage:
//
//	anvilserved -data DIR [-addr HOST:PORT] [-queue N] [-workers N]
//	            [-parallel N] [-quota-reps N] [-quota-wall D]
//	            [-drain-timeout D] [-portfile PATH]
//	            [-distribute] [-lease-ttl D] [-lease-chunk N] [-worker-grace D]
//
// Every submitted job spec is journaled and fsynced under -data before the
// submission is acknowledged, and every job state transition is an
// append-only record, so killing the server — even with SIGKILL — loses no
// acknowledged work: on restart it replays the journal, re-queues pending
// jobs, and resumes interrupted sweeps from their per-spec checkpoint
// journals. SIGTERM/SIGINT drain gracefully: submissions get 503, running
// sweeps are cancelled at a replicate boundary (their completed replicates
// are already checkpointed), and the process exits within -drain-timeout.
//
// With -distribute the daemon also coordinates a fleet of anvilworkerd
// processes: shardable jobs get a distribution phase where workers claim
// replicate slot leases, compute them, and upload results into the job's
// sweep journal. A coordinator that never hears from a worker falls back to
// computing in-process after -worker-grace of lease-plane silence, so
// -distribute is always safe to enable.
//
// API (all JSON):
//
//	POST /v1/jobs                   submit a job spec; 202 on admission, 200
//	                                when answered from cache or coalesced
//	                                onto a live job, 429 when over quota or
//	                                the queue is full
//	GET  /v1/jobs/{id}              job status
//	GET  /v1/jobs/{id}/result       artifact bytes (200), or 202 while pending
//	GET  /v1/quota                  the caller's charged usage (X-API-Key)
//	GET  /v1/healthz                readiness: queue depth, draining flag,
//	                                lease counts, journal-lock liveness
//	POST /v1/leases/claim           claim a slot lease (-distribute only;
//	                                204 + Retry-After when no work is free)
//	POST /v1/leases/{id}/renew      heartbeat a lease; 410 once it expired
//	POST /v1/leases/{id}/results    upload one replicate result (idempotent)
//	POST /v1/leases/{id}/release    give a lease back explicitly
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	_ "repro/internal/experiments" // registers every table and figure
	"repro/internal/sweepd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("anvilserved: ")
	var (
		addr         = flag.String("addr", "127.0.0.1:8356", "listen address (host:port; port 0 picks a free port)")
		data         = flag.String("data", "", "data directory for journals and artifacts (required)")
		queue        = flag.Int("queue", sweepd.DefaultQueueDepth, "admission queue depth; full queue answers 429")
		workers      = flag.Int("workers", 1, "concurrent jobs")
		parallel     = flag.Int("parallel", 0, "per-sweep worker pool (0 = GOMAXPROCS); never changes results")
		quotaReps    = flag.Int("quota-reps", 0, "per-caller fresh-replicate quota (0 = unlimited)")
		quotaWall    = flag.Duration("quota-wall", 0, "per-caller wall-clock quota (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", sweepd.DefaultDrainTimeout, "graceful drain deadline on SIGTERM/SIGINT")
		portfile     = flag.String("portfile", "", "write the bound listen address to this file (for harnesses using port 0)")
		distribute   = flag.Bool("distribute", false, "open the worker lease plane (POST /v1/leases/...) for anvilworkerd fleets")
		leaseTTL     = flag.Duration("lease-ttl", sweepd.DefaultLeaseTTL, "slot-lease lifetime without a heartbeat before reassignment")
		leaseChunk   = flag.Int("lease-chunk", sweepd.DefaultLeaseChunk, "max replicate slots granted per claim")
		workerGrace  = flag.Duration("worker-grace", sweepd.DefaultWorkerGrace, "lease-plane silence before a sharded job falls back to in-process execution")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "anvilserved: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	d := sweepd.Daemon{
		Addr: *addr,
		Data: *data,
		Opts: sweepd.ServerOptions{
			QueueDepth:  *queue,
			Workers:     *workers,
			Parallel:    *parallel,
			Quota:       sweepd.Quota{Replicates: *quotaReps, WallClock: *quotaWall},
			Distribute:  *distribute,
			LeaseTTL:    *leaseTTL,
			LeaseChunk:  *leaseChunk,
			WorkerGrace: *workerGrace,
		},
		DrainTimeout: *drainTimeout,
		Portfile:     *portfile,
		Logf:         log.Printf,
	}
	if err := run(d); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

// run is the audited single-exit body of the daemon: every failure funnels
// back here as an error and exits through main's one os.Exit.
func run(d sweepd.Daemon) error {
	// ctx ends on the first SIGTERM/SIGINT, which starts the graceful
	// drain; a second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := d.Run(ctx)
	stop()
	return err
}
