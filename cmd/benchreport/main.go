// Command benchreport compares two `go test -bench` output files — a
// committed baseline and a fresh run — and writes a JSON report of per-
// benchmark before/after numbers and speedups. `make bench` uses it to
// produce BENCH_PR3.json and BENCH_PR7.json, the artifacts that track the
// per-access-pipeline performance work against the committed baselines in
// bench/.
//
// Multiple measurements of the same benchmark (go test -count N) are
// reduced to their median, which keeps single outlier runs from skewing
// the report.
//
// Beyond the standard ns/op, B/op and allocs/op columns, every custom
// `testing.B.ReportMetric` unit (e.g. the end-to-end `replicates/s` of
// BenchmarkEndToEnd) is parsed, median-reduced and compared. The -min-ratio
// flag turns a rate metric into a CI guardrail: `-min-ratio replicates/s=0.8`
// fails the run (exit 1) if any benchmark's current value drops below 80%
// of its baseline.
//
// Usage:
//
//	benchreport -baseline bench/baseline_pr7.txt -current bench/current_pr7.txt -out BENCH_PR7.json
//	benchreport -baseline bench/baseline_pr7.txt -current smoke.txt -min-ratio replicates/s=0.8
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// measurement is one benchmark's reduced (median) numbers from one file.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Runs        int     `json:"runs"`
	// Metrics holds custom ReportMetric units (replicates/s, ...), median-
	// reduced like the standard columns.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// entry pairs a benchmark's baseline and current measurements.
type entry struct {
	Pkg      string       `json:"pkg"`
	Name     string       `json:"name"`
	Baseline *measurement `json:"baseline,omitempty"`
	Current  *measurement `json:"current,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op (ops/sec ratio);
	// >1 means the current tree is faster. Zero when either side is missing.
	Speedup float64 `json:"speedup,omitempty"`
	// MetricRatios maps each custom unit present on both sides to
	// current/baseline — for rate metrics like replicates/s, >1 means the
	// current tree is faster.
	MetricRatios map[string]float64 `json:"metric_ratios,omitempty"`
}

// report is the emitted JSON document.
type report struct {
	BaselineFile string  `json:"baseline_file"`
	CurrentFile  string  `json:"current_file"`
	Entries      []entry `json:"benchmarks"`
}

// minRatios collects -min-ratio unit=r guardrails.
type minRatios map[string]float64

func (m minRatios) String() string {
	parts := make([]string, 0, len(m))
	for _, k := range sortedKeys(m) {
		parts = append(parts, fmt.Sprintf("%s=%g", k, m[k]))
	}
	return strings.Join(parts, ",")
}

func (m minRatios) Set(s string) error {
	unit, val, ok := strings.Cut(s, "=")
	if !ok || unit == "" {
		return fmt.Errorf("want unit=ratio, got %q", s)
	}
	r, err := strconv.ParseFloat(val, 64)
	if err != nil || r <= 0 {
		return fmt.Errorf("bad ratio in %q", s)
	}
	m[unit] = r
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	guards := minRatios{}
	var (
		baseline = flag.String("baseline", "", "baseline `go test -bench` output file")
		current  = flag.String("current", "", "current `go test -bench` output file")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Var(guards, "min-ratio",
		"guardrail `unit=ratio`: fail if any benchmark's current/baseline for that metric drops below ratio (repeatable)")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchreport: both -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*baseline, *current, *out, guards); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

// run is the audited single-exit body: every failure — parse errors and
// guardrail violations alike — funnels back here as an error and leaves
// through main's one os.Exit.
func run(baseline, current, out string, guards minRatios) error {
	before, err := parseFile(baseline)
	if err != nil {
		return err
	}
	after, err := parseFile(current)
	if err != nil {
		return err
	}

	rep := report{BaselineFile: baseline, CurrentFile: current}
	var violations []string
	for _, key := range unionKeys(before, after) {
		pkg, name, _ := strings.Cut(key, " ")
		e := entry{Pkg: pkg, Name: name}
		if m, ok := before[key]; ok {
			e.Baseline = m
		}
		if m, ok := after[key]; ok {
			e.Current = m
		}
		if e.Baseline != nil && e.Current != nil {
			if e.Current.NsPerOp > 0 {
				e.Speedup = round2(e.Baseline.NsPerOp / e.Current.NsPerOp)
			}
			for _, unit := range sortedKeys(e.Baseline.Metrics) {
				b := e.Baseline.Metrics[unit]
				c, ok := e.Current.Metrics[unit]
				if !ok || b == 0 {
					continue
				}
				if e.MetricRatios == nil {
					e.MetricRatios = map[string]float64{}
				}
				ratio := c / b
				e.MetricRatios[unit] = round2(ratio)
				if min, guarded := guards[unit]; guarded && ratio < min {
					violations = append(violations, fmt.Sprintf(
						"%s %s: %s %.3g -> %.3g (ratio %.2f < %.2f)",
						pkg, name, unit, b, c, ratio, min))
				}
			}
		}
		rep.Entries = append(rep.Entries, e)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}

	if len(violations) > 0 {
		for _, v := range violations[1:] {
			log.Printf("guardrail violated: %s", v)
		}
		return fmt.Errorf("guardrail violated: %s (%d violations total)", violations[0], len(violations))
	}
	for _, unit := range sortedKeys(guards) {
		if !guardCovered(rep.Entries, unit) {
			return fmt.Errorf("guardrail %s=%g matched no benchmark present in both files", unit, guards[unit])
		}
	}
	return nil
}

// guardCovered reports whether any entry compared the given unit, so a
// guardrail that silently matches nothing fails loudly instead.
func guardCovered(entries []entry, unit string) bool {
	for _, e := range entries {
		if _, ok := e.MetricRatios[unit]; ok {
			return true
		}
	}
	return false
}

// parseFile reads `go test -bench` output and reduces repeated runs of each
// benchmark to medians, keyed by "pkg name". Result lines are
//
//	BenchmarkName-8   123456   78.9 ns/op   0 B/op   0 allocs/op   3.2 replicates/s
//
// an iteration count followed by value/unit pairs; the -N GOMAXPROCS suffix
// (absent under GOMAXPROCS=1) is stripped from the name.
func parseFile(path string) (map[string]*measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	raw := map[string]map[string][]float64{} // key -> unit -> samples
	pkg := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if p, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a result line (e.g. "BenchmarkFoo" alone, or prose)
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		key := pkg + " " + name
		units := raw[key]
		if units == nil {
			units = map[string][]float64{}
			raw[key] = units
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			units[unit] = append(units[unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}

	out := make(map[string]*measurement, len(raw))
	for _, key := range sortedKeys(raw) {
		units := raw[key]
		m := &measurement{
			NsPerOp:     median(units["ns/op"]),
			BytesPerOp:  median(units["B/op"]),
			AllocsPerOp: median(units["allocs/op"]),
			Runs:        len(units["ns/op"]),
		}
		for _, unit := range sortedKeys(units) {
			switch unit {
			case "ns/op", "B/op", "allocs/op":
				continue
			}
			if m.Metrics == nil {
				m.Metrics = map[string]float64{}
			}
			m.Metrics[unit] = median(units[unit])
		}
		out[key] = m
	}
	return out, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

// unionKeys returns the sorted union of both maps' keys, so the report
// order is stable run to run.
func unionKeys(a, b map[string]*measurement) []string {
	keys := sortedKeys(a)
	for _, k := range sortedKeys(b) {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
