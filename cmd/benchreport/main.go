// Command benchreport compares two `go test -bench` output files — a
// committed baseline and a fresh run — and writes a JSON report of per-
// benchmark before/after numbers and speedups. `make bench` uses it to
// produce BENCH_PR3.json, the artifact that tracks the per-access-pipeline
// performance work against the pre-refactor baseline in
// bench/baseline_pr3.txt.
//
// Multiple measurements of the same benchmark (go test -count N) are
// reduced to their median, which keeps single outlier runs from skewing
// the report.
//
// Usage:
//
//	benchreport -baseline bench/baseline_pr3.txt -current bench/current_pr3.txt -out BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// measurement is one benchmark's reduced (median) numbers from one file.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Runs        int     `json:"runs"`
}

// entry pairs a benchmark's baseline and current measurements.
type entry struct {
	Pkg      string       `json:"pkg"`
	Name     string       `json:"name"`
	Baseline *measurement `json:"baseline,omitempty"`
	Current  *measurement `json:"current,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op (ops/sec ratio);
	// >1 means the current tree is faster. Zero when either side is missing.
	Speedup float64 `json:"speedup,omitempty"`
}

// report is the emitted JSON document.
type report struct {
	BaselineFile string  `json:"baseline_file"`
	CurrentFile  string  `json:"current_file"`
	Entries      []entry `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	var (
		baseline = flag.String("baseline", "", "baseline `go test -bench` output file")
		current  = flag.String("current", "", "current `go test -bench` output file")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		log.Fatal("both -baseline and -current are required")
	}

	before, err := parseFile(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	after, err := parseFile(*current)
	if err != nil {
		log.Fatal(err)
	}

	rep := report{BaselineFile: *baseline, CurrentFile: *current}
	for _, key := range unionKeys(before, after) {
		pkg, name, _ := strings.Cut(key, " ")
		e := entry{Pkg: pkg, Name: name}
		if m, ok := before[key]; ok {
			e.Baseline = m
		}
		if m, ok := after[key]; ok {
			e.Current = m
		}
		if e.Baseline != nil && e.Current != nil && e.Current.NsPerOp > 0 {
			e.Speedup = round2(e.Baseline.NsPerOp / e.Current.NsPerOp)
		}
		rep.Entries = append(rep.Entries, e)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

// benchLine matches one benchmark result line. The trailing -N GOMAXPROCS
// suffix (absent when GOMAXPROCS=1) is stripped from the name; B/op and
// allocs/op appear only under -benchmem.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

// parseFile reads `go test -bench` output and reduces repeated runs of each
// benchmark to medians, keyed by "pkg name".
func parseFile(path string) (map[string]*measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type series struct{ ns, bytes, allocs []float64 }
	raw := map[string]*series{}
	pkg := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if p, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		key := pkg + " " + m[1]
		s := raw[key]
		if s == nil {
			s = &series{}
			raw[key] = s
		}
		s.ns = append(s.ns, atof(m[2]))
		s.bytes = append(s.bytes, atof(m[3]))
		s.allocs = append(s.allocs, atof(m[4]))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}

	out := make(map[string]*measurement, len(raw))
	for _, key := range sortedKeys(raw) {
		s := raw[key]
		out[key] = &measurement{
			NsPerOp:     median(s.ns),
			BytesPerOp:  median(s.bytes),
			AllocsPerOp: median(s.allocs),
			Runs:        len(s.ns),
		}
	}
	return out, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func atof(s string) float64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

// unionKeys returns the sorted union of both maps' keys, so the report
// order is stable run to run.
func unionKeys(a, b map[string]*measurement) []string {
	keys := sortedKeys(a)
	for _, k := range sortedKeys(b) {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
