// Command trace replays a recorded memory trace on the simulated machine,
// optionally under ANVIL, and reports cache, DRAM and detector behaviour.
// The trace format is one op per line: "L <addr>", "S <addr>", "F <addr>",
// "C <cycles>" (see internal/workload.ParseTrace).
//
// Usage:
//
//	trace -file access.trace [-loops N] [-anvil] [-detailed-dram]
//	trace -demo > demo.trace          # emit a sample trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/anvil"
	"repro/internal/dram"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trace: ")
	var (
		file     = flag.String("file", "", "trace file to replay")
		loops    = flag.Uint64("loops", 1, "times to replay the trace (0 = forever, bounded by -max-ms)")
		useANVIL = flag.Bool("anvil", false, "attach the ANVIL detector")
		detailed = flag.Bool("detailed-dram", false, "use the command-level DRAM timing engine")
		maxMS    = flag.Uint64("max-ms", 1000, "simulated-time cap in milliseconds")
		demo     = flag.Bool("demo", false, "print a demonstration trace and exit")
		record   = flag.String("record", "", "record a SPEC profile's stream to stdout instead of replaying")
		ops      = flag.Uint64("ops", 10_000, "memory operations to record with -record")
	)
	flag.Parse()

	if !*demo && *record == "" && *file == "" {
		log.Print("need -file (or -demo)")
		os.Exit(2)
	}
	// The audited single exit: every mode funnels its failure back here.
	var err error
	switch {
	case *demo:
		err = emitDemo()
	case *record != "":
		err = recordProfile(*record, *ops)
	default:
		err = run(*file, *loops, *useANVIL, *detailed, *maxMS)
	}
	if err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run(file string, loops uint64, useANVIL, detailed bool, maxMS uint64) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := workload.ParseTrace(f)
	if err != nil {
		return err
	}
	prog, err := workload.NewTraceProgram(file, recs, loops)
	if err != nil {
		return err
	}

	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	if detailed {
		cfg.Memory.DRAM.Detailed = dram.Detailed(cfg.Freq)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	if _, err := m.Spawn(0, prog); err != nil {
		return err
	}
	var det *anvil.Detector
	if useANVIL {
		if det, err = anvil.New(m, anvil.Baseline(), nil); err != nil {
			return err
		}
		det.Start()
	}
	err = m.Run(m.Freq.Cycles(time.Duration(maxMS) * time.Millisecond))
	if err != nil && !errors.Is(err, machine.ErrAllDone) {
		return err
	}
	finished := errors.Is(err, machine.ErrAllDone)

	st := m.Cores[0].Stats
	fmt.Printf("replayed %d records x %d loops (%s)\n", len(recs), loops,
		map[bool]string{true: "completed", false: "hit the time cap"}[finished])
	fmt.Printf("simulated time: %.3f ms, ops: %d (%d loads, %d stores, %d flushes)\n",
		m.Freq.Millis(m.Cores[0].Now), st.Ops, st.Loads, st.Stores, st.Flushes)
	hs := m.Mem.Caches.Stats()
	fmt.Printf("caches: %d LLC misses (%.2f%% of accesses)\n", hs.LLCMisses,
		100*float64(hs.LLCMisses)/float64(max(1, st.Loads+st.Stores)))
	ds := m.Mem.DRAM.Stats()
	fmt.Printf("DRAM: %d activations, %d row hits, %d flips\n", ds.Activations, ds.RowHits, ds.Flips)
	fmt.Printf("PMU: %d misses counted\n", m.Mem.PMU.Read(pmu.EvLLCMiss))
	if det != nil {
		s := det.Stats()
		fmt.Printf("ANVIL: %d/%d windows crossed, %d detections, %d refreshes\n",
			s.Stage1Crossings, s.Stage1Windows, len(s.Detections), s.Refreshes)
	}
	return nil
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// emitDemo writes a small trace that thrashes one DRAM row pair.
func emitDemo() error {
	var recs []workload.Record
	for i := 0; i < 64; i++ {
		recs = append(recs,
			workload.Record{Kind: machine.OpLoad, VA: 0x10_0000 + uint64(i%8)*64},
			workload.Record{Kind: machine.OpCompute, Cycles: 120},
			workload.Record{Kind: machine.OpLoad, VA: 0x40_0000 + uint64(i)*4096},
		)
	}
	return workload.FormatTrace(os.Stdout, recs)
}

// recordProfile runs a synthetic profile and prints its operation stream.
func recordProfile(name string, ops uint64) error {
	prof, ok := workload.ByName(name)
	if !ok {
		return fmt.Errorf("unknown profile %q", name)
	}
	prog, err := workload.New(prof)
	if err != nil {
		return err
	}
	rec := workload.NewRecorder(prog.WithOpLimit(ops), 0)
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	if _, err := m.Spawn(0, rec); err != nil {
		return err
	}
	if err := m.Run(1 << 62); err != nil && !errors.Is(err, machine.ErrAllDone) {
		return err
	}
	return workload.FormatTrace(os.Stdout, rec.Records())
}
