package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/scenario"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the -list golden files")

// TestListGolden pins the -list output — including the estimated replicate
// counts — for both modes. Regenerate with -update-golden after registering
// an experiment or changing a sweep size.
func TestListGolden(t *testing.T) {
	for _, tc := range []struct {
		quick  bool
		golden string
	}{
		{false, "list_full.golden"},
		{true, "list_quick.golden"},
	} {
		path := filepath.Join("testdata", tc.golden)
		got := listText(tc.quick)
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Errorf("%s: -list output drifted from golden.\ngot:\n%s\nwant:\n%s\n(run with -update-golden to accept)", tc.golden, got, want)
		}
	}
}

func TestParseBudget(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want scenario.Budget
		ok   bool
	}{
		{"", scenario.Budget{}, true},
		{"200", scenario.Budget{Replicates: 200}, true},
		{"30s", scenario.Budget{WallClock: 30 * time.Second}, true},
		{"1h30m", scenario.Budget{WallClock: 90 * time.Minute}, true},
		{"0", scenario.Budget{}, false},
		{"-5", scenario.Budget{}, false},
		{"-2s", scenario.Budget{}, false},
		{"soon", scenario.Budget{}, false},
	} {
		got, err := parseBudget(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseBudget(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseBudget(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}
