// Command tables regenerates every table and figure of the ANVIL paper's
// evaluation on the simulated machine by enumerating the experiment
// registry, and prints them in order.
//
// Usage:
//
//	tables [-quick] [-seed N] [-parallel N] [-timeout D] [-keep-going] [-only table1,table3,...]
//	tables -json [-out results.json]
//	tables -list
//	tables -validate results.json
//
// -quick shrinks run lengths (useful for smoke tests); -seed shards the
// stochastic machine components; -parallel caps the worker pool of
// multi-replicate experiments (parallelism changes wall-clock time only,
// never a reported number); -timeout bounds each replicate's wall-clock time;
// -keep-going records a failing experiment's error and moves on instead of
// aborting the run; -only selects a comma-separated subset of the registered
// experiment names (see -list). Interrupting the process (SIGINT/SIGTERM)
// cancels in-flight sweeps promptly. -json emits the structured
// results as a single JSON document on stdout (or to -out), a
// trend-trackable artifact that -validate checks for completeness.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "repro/internal/experiments" // registers every table and figure
	"repro/internal/profiling"
	"repro/internal/scenario"
)

// document is the -json artifact: the run's inputs and every experiment's
// structured result, in registry order.
type document struct {
	Quick   bool          `json:"quick"`
	Seed    uint64        `json:"seed"`
	Results []namedResult `json:"results"`
}

type namedResult struct {
	Name    string            `json:"name"`
	Data    json.RawMessage   `json:"data"`
	Metrics []scenario.Metric `json:"metrics,omitempty"`
	// Err records a failed experiment under -keep-going; Data is null then.
	Err string `json:"error,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	var (
		quick     = flag.Bool("quick", false, "shrink experiment durations")
		seed      = flag.Uint64("seed", 0, "root seed for machine-level randomness (0 = calibrated defaults)")
		parallel  = flag.Int("parallel", 0, "worker pool size for multi-replicate experiments (0 = GOMAXPROCS)")
		only      = flag.String("only", "", "comma-separated subset of experiments to run")
		timeout   = flag.Duration("timeout", 0, "per-replicate wall-clock deadline (0 = none)")
		keepGoing = flag.Bool("keep-going", false, "record a failing experiment's error and continue")
		jsonOut   = flag.Bool("json", false, "emit structured results as JSON instead of text tables")
		outPath   = flag.String("out", "", "write the JSON document to this file (implies -json)")
		list      = flag.Bool("list", false, "list registered experiments and exit")
		validate  = flag.String("validate", "", "validate a -json artifact against the registry and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	if *list {
		for _, e := range scenario.Experiments() {
			fmt.Printf("%-14s %s\n", e.Name, e.Desc)
		}
		return
	}
	if *validate != "" {
		if err := validateArtifact(*validate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid, covers all %d registered experiments\n", *validate, len(scenario.Names()))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := scenario.Config{
		Quick:     *quick,
		Seed:      *seed,
		Parallel:  *parallel,
		Timeout:   *timeout,
		KeepGoing: *keepGoing,
		Ctx:       ctx,
	}
	selected := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			if _, ok := scenario.Find(s); !ok {
				log.Fatalf("unknown experiment %q (known: %s)", s, strings.Join(scenario.Names(), ", "))
			}
			selected[s] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }
	asJSON := *jsonOut || *outPath != ""

	doc := document{Quick: *quick, Seed: *seed}
	for _, e := range scenario.Experiments() {
		if !want(e.Name) {
			continue
		}
		start := time.Now() //lint:allow detrand host-side CLI timing how long table regeneration takes
		res, err := e.Run(cfg)
		if err != nil {
			if !*keepGoing {
				log.Fatalf("%s failed: %v", e.Name, err)
			}
			log.Printf("%s failed (continuing): %v", e.Name, err)
			if asJSON {
				doc.Results = append(doc.Results, namedResult{Name: e.Name, Err: err.Error()})
			}
			continue
		}
		//lint:allow detrand host-side CLI timing how long table regeneration takes
		elapsed := time.Since(start).Seconds()
		if asJSON {
			data, err := json.Marshal(res)
			if err != nil {
				log.Fatalf("%s: marshal: %v", e.Name, err)
			}
			nr := namedResult{Name: e.Name, Data: data}
			if m, ok := res.(scenario.Metricer); ok {
				nr.Metrics = m.Metrics()
			}
			doc.Results = append(doc.Results, nr)
			fmt.Fprintf(os.Stderr, "tables: %s regenerated in %.1fs\n", e.Name, elapsed)
		} else {
			fmt.Println(res.Render())
			fmt.Printf("  [%s regenerated in %.1fs]\n\n", e.Name, elapsed)
		}
	}

	if asJSON {
		enc, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		enc = append(enc, '\n')
		if *outPath != "" {
			if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
				log.Fatal(err)
			}
		} else {
			os.Stdout.Write(enc)
		}
	}
}

// validateArtifact checks that a -json document parses and covers every
// registered experiment with non-empty data.
func validateArtifact(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	have := map[string]bool{}
	for _, r := range doc.Results {
		if len(r.Data) == 0 || string(r.Data) == "null" {
			return fmt.Errorf("%s: experiment %q has empty data", path, r.Name)
		}
		have[r.Name] = true
	}
	var missing []string
	for _, name := range scenario.Names() {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: missing experiments: %s", path, strings.Join(missing, ", "))
	}
	return nil
}
