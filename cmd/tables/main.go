// Command tables regenerates every table and figure of the ANVIL paper's
// evaluation on the simulated machine and prints them in order.
//
// Usage:
//
//	tables [-quick] [-only table1,table3,...]
//
// -quick shrinks run lengths (useful for smoke tests); -only selects a
// comma-separated subset of: table1, figure1, section21, section22, table3,
// table4, figure3, figure4, table5, section45, defenses.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	quick := flag.Bool("quick", false, "shrink experiment durations")
	only := flag.String("only", "", "comma-separated subset of experiments to run")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick}
	selected := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			selected[s] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	type step struct {
		name string
		run  func() (string, error)
	}
	steps := []step{
		{"table1", func() (string, error) {
			rows, err := experiments.Table1(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderTable1(rows), nil
		}},
		{"figure1", func() (string, error) {
			r, err := experiments.Figure1(cfg)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("Figure 1: access patterns\n"+
				"  (a) CLFLUSH-based: %d ops/iteration, %d DRAM row accesses\n"+
				"  (b) CLFLUSH-free:  %d loads/iteration, %d LLC misses (aggressor always misses: %v)\n",
				r.FlushSeqLen, r.FlushMissesPerIter, r.FreeSeqLen, r.FreeMissesPerIter, r.AggressorAlwaysMisses), nil
		}},
		{"section21", func() (string, error) {
			r, err := experiments.Section21(cfg)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("Section 2.1: double refresh rate bypass\n"+
				"  refresh window %v, flipped: %v, time to first flip %.1f ms\n",
				r.RefreshWindow, r.Flipped, float64(r.TimeToFlip)/float64(time.Millisecond)), nil
		}},
		{"section22", func() (string, error) {
			scores, err := experiments.Section22(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderSection22(scores), nil
		}},
		{"table3", func() (string, error) {
			rows, err := experiments.Table3(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderTable3(rows), nil
		}},
		{"table4", func() (string, error) {
			rows, err := experiments.Table4(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderTable4(rows), nil
		}},
		{"figure3", func() (string, error) {
			rows, err := experiments.Figure3(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderFigure3(rows), nil
		}},
		{"figure4", func() (string, error) {
			rows, err := experiments.Figure4(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderFigure4(rows), nil
		}},
		{"table5", func() (string, error) {
			rows, err := experiments.Table5(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderTable5(rows), nil
		}},
		{"section45", func() (string, error) {
			rows, err := experiments.Section45(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderSection45(rows), nil
		}},
		{"defenses", func() (string, error) {
			rows, err := experiments.Defenses(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderDefenses(rows), nil
		}},
	}

	for _, s := range steps {
		if !want(s.name) {
			continue
		}
		start := time.Now() //lint:allow detrand host-side CLI timing how long table regeneration takes
		out, err := s.run()
		if err != nil {
			log.Printf("%s failed: %v", s.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		//lint:allow detrand host-side CLI timing how long table regeneration takes
		fmt.Printf("  [%s regenerated in %.1fs]\n\n", s.name, time.Since(start).Seconds())
	}
}
