// Command tables regenerates every table and figure of the ANVIL paper's
// evaluation on the simulated machine by enumerating the experiment
// registry, and prints them in order.
//
// Usage:
//
//	tables [-quick] [-seed N] [-parallel N] [-timeout D] [-keep-going] [-only table1,table3,...]
//	tables -journal DIR [-resume] [-max-retries N] [-budget 30s|200]
//	tables -json [-out results.json]
//	tables -list
//	tables -validate results.json
//
// -quick shrinks run lengths (useful for smoke tests); -seed shards the
// stochastic machine components; -parallel caps the worker pool of
// multi-replicate experiments (parallelism changes wall-clock time only,
// never a reported number); -timeout bounds each replicate's wall-clock time;
// -keep-going records a failing experiment's error and moves on instead of
// aborting the run; -only selects a comma-separated subset of the registered
// experiment names (see -list).
//
// Durable sweeps: -journal DIR checkpoints every sweep's completed
// replicates to per-sweep journal files under DIR, and -resume merges them
// back instead of re-running (a killed run continues where it stopped, at
// any -parallel value, with byte-identical output). -max-retries re-runs
// transiently-failed replicates with seeded exponential backoff. -budget
// bounds each sweep — a duration ("30s") caps wall-clock time, an integer
// ("200") caps executed replicates — after which sweeps degrade gracefully:
// partial results are tagged truncated and the dropped replicates reported,
// never silently missing. Interrupting the process (SIGINT/SIGTERM) cancels
// in-flight sweeps promptly; with -journal the completed replicates are
// already checkpointed, and the exit message names the resume command.
// -json emits the structured results as a single JSON document on stdout
// (or to -out), a trend-trackable artifact that -validate checks for
// completeness.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	_ "repro/internal/experiments" // registers every table and figure
	"repro/internal/profiling"
	"repro/internal/scenario"
)

// document is the -json artifact: the run's inputs and every experiment's
// structured result, in registry order.
type document struct {
	Quick   bool          `json:"quick"`
	Seed    uint64        `json:"seed"`
	Results []namedResult `json:"results"`
}

type namedResult struct {
	Name    string            `json:"name"`
	Data    json.RawMessage   `json:"data"`
	Metrics []scenario.Metric `json:"metrics,omitempty"`
	// Err records a failed experiment under -keep-going; Data is null then.
	Err string `json:"error,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	var (
		quick      = flag.Bool("quick", false, "shrink experiment durations")
		seed       = flag.Uint64("seed", 0, "root seed for machine-level randomness (0 = calibrated defaults)")
		parallel   = flag.Int("parallel", 0, "worker pool size for multi-replicate experiments (0 = GOMAXPROCS)")
		stepBatch  = flag.Int("step-batch", 0, "machine batch cap: 1 forces per-op stepping (A/B escape hatch), 0 = default")
		only       = flag.String("only", "", "comma-separated subset of experiments to run")
		timeout    = flag.Duration("timeout", 0, "per-replicate wall-clock deadline (0 = none)")
		keepGoing  = flag.Bool("keep-going", false, "record a failing experiment's error and continue")
		jsonOut    = flag.Bool("json", false, "emit structured results as JSON instead of text tables")
		outPath    = flag.String("out", "", "write the JSON document to this file (implies -json)")
		journal    = flag.String("journal", "", "directory for sweep checkpoint journals (enables kill-and-resume)")
		resume     = flag.Bool("resume", false, "resume completed replicates from existing -journal files")
		maxRetries = flag.Int("max-retries", 0, "retry transiently-failed replicates up to N times with seeded backoff")
		budget     = flag.String("budget", "", "per-sweep budget: a duration (wall-clock) or an integer (replicate count)")
		list       = flag.Bool("list", false, "list registered experiments and exit")
		validate   = flag.String("validate", "", "validate a -json artifact against the registry and exit")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	if *list {
		fmt.Print(listText(*quick))
		return
	}
	if *validate != "" {
		if err := validateArtifact(*validate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid, covers all %d registered experiments\n", *validate, len(scenario.Names()))
		return
	}

	if *resume && *journal == "" {
		log.Fatal("-resume needs -journal: there is no journal directory to resume from")
	}
	sweepBudget, err := parseBudget(*budget)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := scenario.Config{
		Quick:      *quick,
		Seed:       *seed,
		Parallel:   *parallel,
		StepBatch:  *stepBatch,
		Timeout:    *timeout,
		KeepGoing:  *keepGoing,
		MaxRetries: *maxRetries,
		Budget:     sweepBudget,
		Ctx:        ctx,
	}
	selected := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			if _, ok := scenario.Find(s); !ok {
				log.Fatalf("unknown experiment %q (known: %s)", s, strings.Join(scenario.Names(), ", "))
			}
			selected[s] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }
	asJSON := *jsonOut || *outPath != ""

	doc := document{Quick: *quick, Seed: *seed}
	for _, e := range scenario.Experiments() {
		if !want(e.Name) {
			continue
		}
		ecfg := cfg
		if *journal != "" {
			// Each experiment journals under its own name; the journaled
			// Config owns a fresh per-run sweep sequence.
			ecfg = cfg.WithJournal(*journal, *resume)
			ecfg.Sweep = e.Name
		}
		start := time.Now() //lint:allow detrand host-side CLI timing how long table regeneration takes
		res, err := e.Run(ecfg)
		if err != nil {
			if ctx.Err() != nil {
				// Interrupted: even under -keep-going there is no point
				// starting the next experiment — every sweep it runs would
				// be stillborn. With a journal the finished replicates are
				// already checkpointed.
				if *journal != "" {
					log.Fatalf("%s interrupted: %v\ncheckpoints saved under %s; rerun with -journal %s -resume to continue", e.Name, err, *journal, *journal)
				}
				log.Fatalf("%s interrupted: %v", e.Name, err)
			}
			if !*keepGoing {
				log.Fatalf("%s failed: %v", e.Name, err)
			}
			log.Printf("%s failed (continuing): %v", e.Name, err)
			if asJSON {
				doc.Results = append(doc.Results, namedResult{Name: e.Name, Err: err.Error()})
			}
			continue
		}
		//lint:allow detrand host-side CLI timing how long table regeneration takes
		elapsed := time.Since(start).Seconds()
		if asJSON {
			data, err := json.Marshal(res)
			if err != nil {
				log.Fatalf("%s: marshal: %v", e.Name, err)
			}
			nr := namedResult{Name: e.Name, Data: data}
			if m, ok := res.(scenario.Metricer); ok {
				nr.Metrics = m.Metrics()
			}
			doc.Results = append(doc.Results, nr)
			fmt.Fprintf(os.Stderr, "tables: %s regenerated in %.1fs\n", e.Name, elapsed)
		} else {
			fmt.Println(res.Render())
			fmt.Printf("  [%s regenerated in %.1fs]\n\n", e.Name, elapsed)
		}
	}

	if asJSON {
		enc, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		enc = append(enc, '\n')
		if *outPath != "" {
			if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
				log.Fatal(err)
			}
		} else {
			os.Stdout.Write(enc)
		}
	}
}

// listText renders the -list table: every registered experiment with its
// estimated top-level replicate count under the given mode.
func listText(quick bool) string {
	cfg := scenario.Config{Quick: quick}
	mode := "full"
	if quick {
		mode = "quick"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %5s  %s\n", "EXPERIMENT", "REPS", "DESCRIPTION")
	total := 0
	for _, e := range scenario.Experiments() {
		reps := e.EstimatedReps(cfg)
		total += reps
		fmt.Fprintf(&b, "%-18s %5d  %s\n", e.Name, reps, e.Desc)
	}
	fmt.Fprintf(&b, "%-18s %5d  (%s mode; estimated top-level replicates)\n", "total", total, mode)
	return b.String()
}

// parseBudget reads the -budget flag: a time.Duration caps a sweep's
// wall-clock time, a bare integer caps its executed replicate count.
func parseBudget(s string) (scenario.Budget, error) {
	if s == "" {
		return scenario.Budget{}, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return scenario.Budget{}, fmt.Errorf("-budget %d: replicate budget must be positive", n)
		}
		return scenario.Budget{Replicates: n}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return scenario.Budget{}, fmt.Errorf("-budget %q: want a duration (30s) or a replicate count (200)", s)
	}
	if d <= 0 {
		return scenario.Budget{}, fmt.Errorf("-budget %v: wall-clock budget must be positive", d)
	}
	return scenario.Budget{WallClock: d}, nil
}

// validateArtifact checks that a -json document parses and covers every
// registered experiment with non-empty data.
func validateArtifact(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	have := map[string]bool{}
	for _, r := range doc.Results {
		if len(r.Data) == 0 || string(r.Data) == "null" {
			return fmt.Errorf("%s: experiment %q has empty data", path, r.Name)
		}
		have[r.Name] = true
	}
	var missing []string
	for _, name := range scenario.Names() {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: missing experiments: %s", path, strings.Join(missing, ", "))
	}
	return nil
}
