// Command tables regenerates every table and figure of the ANVIL paper's
// evaluation on the simulated machine by enumerating the experiment
// registry, and prints them in order.
//
// Usage:
//
//	tables [-quick] [-seed N] [-parallel N] [-timeout D] [-keep-going] [-only table1,table3,...]
//	tables -journal DIR [-resume] [-max-retries N] [-budget 30s|200]
//	tables -json [-out results.json]
//	tables -submit URL [-api-key KEY]
//	tables -list
//	tables -validate results.json
//
// -quick shrinks run lengths (useful for smoke tests); -seed shards the
// stochastic machine components; -parallel caps the worker pool of
// multi-replicate experiments (parallelism changes wall-clock time only,
// never a reported number); -timeout bounds each replicate's wall-clock time;
// -keep-going records a failing experiment's error and moves on instead of
// aborting the run; -only selects a comma-separated subset of the registered
// experiment names (see -list).
//
// Durable sweeps: -journal DIR checkpoints every sweep's completed
// replicates to per-sweep journal files under DIR, and -resume merges them
// back instead of re-running (a killed run continues where it stopped, at
// any -parallel value, with byte-identical output). -max-retries re-runs
// transiently-failed replicates with seeded exponential backoff. -budget
// bounds each sweep — a duration ("30s") caps wall-clock time, an integer
// ("200") caps executed replicates — after which sweeps degrade gracefully:
// partial results are tagged truncated and the dropped replicates reported,
// never silently missing. Interrupting the process (SIGINT/SIGTERM) cancels
// in-flight sweeps promptly; with -journal the completed replicates are
// already checkpointed, and the exit message names the resume command.
// -json emits the structured results as a single JSON document on stdout
// (or to -out), a trend-trackable artifact that -validate checks for
// completeness.
//
// -submit URL runs nothing locally: each selected experiment is submitted
// as a job to the anvilserved instance at URL, waited on, and its artifact
// fetched into the same JSON document (so -validate works on served runs
// too). Identical specs are answered from the server's result cache;
// -api-key names the caller for the server's quota accounting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	_ "repro/internal/experiments" // registers every table and figure
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/internal/sweepd"
)

// document is the -json artifact: the run's inputs and every experiment's
// structured result, in registry order.
type document struct {
	Quick   bool          `json:"quick"`
	Seed    uint64        `json:"seed"`
	Results []namedResult `json:"results"`
}

type namedResult struct {
	Name    string            `json:"name"`
	Data    json.RawMessage   `json:"data"`
	Metrics []scenario.Metric `json:"metrics,omitempty"`
	// Err records a failed experiment under -keep-going; Data is null then.
	Err string `json:"error,omitempty"`
}

// options carries every parsed flag into run.
type options struct {
	quick      bool
	seed       uint64
	parallel   int
	stepBatch  int
	only       string
	timeout    time.Duration
	keepGoing  bool
	jsonOut    bool
	outPath    string
	journal    string
	resume     bool
	maxRetries int
	budget     string
	list       bool
	validate   string
	submit     string
	apiKey     string
	cpuProf    string
	memProf    string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	var o options
	flag.BoolVar(&o.quick, "quick", false, "shrink experiment durations")
	flag.Uint64Var(&o.seed, "seed", 0, "root seed for machine-level randomness (0 = calibrated defaults)")
	flag.IntVar(&o.parallel, "parallel", 0, "worker pool size for multi-replicate experiments (0 = GOMAXPROCS)")
	flag.IntVar(&o.stepBatch, "step-batch", 0, "machine batch cap: 1 forces per-op stepping (A/B escape hatch), 0 = default")
	flag.StringVar(&o.only, "only", "", "comma-separated subset of experiments to run")
	flag.DurationVar(&o.timeout, "timeout", 0, "per-replicate wall-clock deadline (0 = none)")
	flag.BoolVar(&o.keepGoing, "keep-going", false, "record a failing experiment's error and continue")
	flag.BoolVar(&o.jsonOut, "json", false, "emit structured results as JSON instead of text tables")
	flag.StringVar(&o.outPath, "out", "", "write the JSON document to this file (implies -json)")
	flag.StringVar(&o.journal, "journal", "", "directory for sweep checkpoint journals (enables kill-and-resume)")
	flag.BoolVar(&o.resume, "resume", false, "resume completed replicates from existing -journal files")
	flag.IntVar(&o.maxRetries, "max-retries", 0, "retry transiently-failed replicates up to N times with seeded backoff")
	flag.StringVar(&o.budget, "budget", "", "per-sweep budget: a duration (wall-clock) or an integer (replicate count)")
	flag.BoolVar(&o.list, "list", false, "list registered experiments and exit")
	flag.StringVar(&o.validate, "validate", "", "validate a -json artifact against the registry and exit")
	flag.StringVar(&o.submit, "submit", "", "submit experiments to the anvilserved instance at this base URL instead of running locally (implies -json)")
	flag.StringVar(&o.apiKey, "api-key", "", "caller identity for -submit quota accounting")
	flag.StringVar(&o.cpuProf, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&o.memProf, "memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if err := run(o); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

// run is the audited single-exit body: every failure funnels back here as
// an error and leaves through main's one os.Exit.
func run(o options) (err error) {
	stopProfiles, err := profiling.Start(o.cpuProf, o.memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	if o.list {
		fmt.Print(listText(o.quick))
		return nil
	}
	if o.validate != "" {
		if err := validateArtifact(o.validate); err != nil {
			return err
		}
		fmt.Printf("%s: valid, covers all %d registered experiments\n", o.validate, len(scenario.Names()))
		return nil
	}
	if o.resume && o.journal == "" {
		return fmt.Errorf("-resume needs -journal: there is no journal directory to resume from")
	}
	sweepBudget, err := parseBudget(o.budget)
	if err != nil {
		return err
	}
	selected := map[string]bool{}
	for _, s := range strings.Split(o.only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			if _, ok := scenario.Find(s); !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", s, strings.Join(scenario.Names(), ", "))
			}
			selected[s] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if o.submit != "" {
		return runSubmitted(ctx, o, sweepBudget, want)
	}
	return runLocal(ctx, o, sweepBudget, want)
}

// runLocal regenerates the selected experiments in-process.
func runLocal(ctx context.Context, o options, sweepBudget scenario.Budget, want func(string) bool) error {
	cfg := scenario.Config{
		Quick:      o.quick,
		Seed:       o.seed,
		Parallel:   o.parallel,
		StepBatch:  o.stepBatch,
		Timeout:    o.timeout,
		KeepGoing:  o.keepGoing,
		MaxRetries: o.maxRetries,
		Budget:     sweepBudget,
		Ctx:        ctx,
	}
	asJSON := o.jsonOut || o.outPath != ""

	doc := document{Quick: o.quick, Seed: o.seed}
	for _, e := range scenario.Experiments() {
		if !want(e.Name) {
			continue
		}
		ecfg := cfg
		if o.journal != "" {
			// Each experiment journals under its own name; the journaled
			// Config owns a fresh per-run sweep sequence.
			ecfg = cfg.WithJournal(o.journal, o.resume)
			ecfg.Sweep = e.Name
		}
		start := time.Now() //lint:allow detrand host-side CLI timing how long table regeneration takes
		res, err := e.Run(ecfg)
		if err != nil {
			if ctx.Err() != nil {
				// Interrupted: even under -keep-going there is no point
				// starting the next experiment — every sweep it runs would
				// be stillborn. With a journal the finished replicates are
				// already checkpointed.
				if o.journal != "" {
					return fmt.Errorf("%s interrupted: %w\ncheckpoints saved under %s; rerun with -journal %s -resume to continue", e.Name, err, o.journal, o.journal)
				}
				return fmt.Errorf("%s interrupted: %w", e.Name, err)
			}
			if !o.keepGoing {
				return fmt.Errorf("%s failed: %w", e.Name, err)
			}
			log.Printf("%s failed (continuing): %v", e.Name, err)
			if asJSON {
				doc.Results = append(doc.Results, namedResult{Name: e.Name, Err: err.Error()})
			}
			continue
		}
		//lint:allow detrand host-side CLI timing how long table regeneration takes
		elapsed := time.Since(start).Seconds()
		if asJSON {
			data, err := json.Marshal(res)
			if err != nil {
				return fmt.Errorf("%s: marshal: %w", e.Name, err)
			}
			nr := namedResult{Name: e.Name, Data: data}
			if m, ok := res.(scenario.Metricer); ok {
				nr.Metrics = m.Metrics()
			}
			doc.Results = append(doc.Results, nr)
			fmt.Fprintf(os.Stderr, "tables: %s regenerated in %.1fs\n", e.Name, elapsed)
		} else {
			fmt.Println(res.Render())
			fmt.Printf("  [%s regenerated in %.1fs]\n\n", e.Name, elapsed)
		}
	}
	if asJSON {
		return writeDocument(doc, o.outPath)
	}
	return nil
}

// runSubmitted hands the selected experiments to an anvilserved instance:
// submit, wait, fetch each artifact into the document. The server resumes
// and caches on its side; identical re-runs are answered without
// re-simulating anything.
func runSubmitted(ctx context.Context, o options, sweepBudget scenario.Budget, want func(string) bool) error {
	if o.journal != "" || o.resume {
		return fmt.Errorf("-journal/-resume are local-run flags; the server journals every job on its own data directory")
	}
	if sweepBudget.WallClock > 0 {
		return fmt.Errorf("-budget %v: wall-clock budgets are not supported with -submit (they are not content-addressable); use a replicate count or the server's -quota-wall", sweepBudget.WallClock)
	}
	client := &sweepd.Client{Base: o.submit, APIKey: o.apiKey}

	doc := document{Quick: o.quick, Seed: o.seed}
	for _, e := range scenario.Experiments() {
		if !want(e.Name) {
			continue
		}
		spec := sweepd.JobSpec{
			Experiment:       e.Name,
			Quick:            o.quick,
			Seed:             o.seed,
			BudgetReplicates: sweepBudget.Replicates,
			TimeoutMS:        o.timeout.Milliseconds(),
		}
		st, err := client.Submit(ctx, spec)
		if err != nil {
			return fmt.Errorf("%s: submitting: %w", e.Name, err)
		}
		how := "queued"
		switch {
		case st.Cached:
			how = "served from cache"
		case st.Deduped:
			how = "coalesced onto a live job"
		}
		log.Printf("%s: job %s %s", e.Name, st.ID, how)
		data, err := client.FetchResult(ctx, st.ID, 0)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("%s interrupted: %w\njob %s keeps running on the server; rerun -submit to pick up its result", e.Name, err, st.ID)
			}
			if !o.keepGoing {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
			log.Printf("%s failed (continuing): %v", e.Name, err)
			doc.Results = append(doc.Results, namedResult{Name: e.Name, Err: err.Error()})
			continue
		}
		var art sweepd.Artifact
		if err := json.Unmarshal(data, &art); err != nil {
			return fmt.Errorf("%s: decoding artifact for job %s: %w", e.Name, st.ID, err)
		}
		doc.Results = append(doc.Results, namedResult{Name: e.Name, Data: art.Data, Metrics: art.Metrics})
	}
	return writeDocument(doc, o.outPath)
}

// writeDocument emits the JSON artifact to outPath or stdout.
func writeDocument(doc document, outPath string) error {
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath != "" {
		return os.WriteFile(outPath, enc, 0o644)
	}
	_, err = os.Stdout.Write(enc)
	return err
}

// listText renders the -list table: every registered experiment with its
// estimated top-level replicate count under the given mode.
func listText(quick bool) string {
	cfg := scenario.Config{Quick: quick}
	mode := "full"
	if quick {
		mode = "quick"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %5s  %s\n", "EXPERIMENT", "REPS", "DESCRIPTION")
	total := 0
	for _, e := range scenario.Experiments() {
		reps := e.EstimatedReps(cfg)
		total += reps
		fmt.Fprintf(&b, "%-18s %5d  %s\n", e.Name, reps, e.Desc)
	}
	fmt.Fprintf(&b, "%-18s %5d  (%s mode; estimated top-level replicates)\n", "total", total, mode)
	return b.String()
}

// parseBudget reads the -budget flag: a time.Duration caps a sweep's
// wall-clock time, a bare integer caps its executed replicate count.
func parseBudget(s string) (scenario.Budget, error) {
	if s == "" {
		return scenario.Budget{}, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return scenario.Budget{}, fmt.Errorf("-budget %d: replicate budget must be positive", n)
		}
		return scenario.Budget{Replicates: n}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return scenario.Budget{}, fmt.Errorf("-budget %q: want a duration (30s) or a replicate count (200)", s)
	}
	if d <= 0 {
		return scenario.Budget{}, fmt.Errorf("-budget %v: wall-clock budget must be positive", d)
	}
	return scenario.Budget{WallClock: d}, nil
}

// validateArtifact checks that a -json document parses and covers every
// registered experiment with non-empty data.
func validateArtifact(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	have := map[string]bool{}
	for _, r := range doc.Results {
		if len(r.Data) == 0 || string(r.Data) == "null" {
			return fmt.Errorf("%s: experiment %q has empty data", path, r.Name)
		}
		have[r.Name] = true
	}
	var missing []string
	for _, name := range scenario.Names() {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: missing experiments: %s", path, strings.Join(missing, ", "))
	}
	return nil
}
