// Package report renders experiment results as aligned text tables and CSV,
// in the spirit of the paper's tables and figure series.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddStrings appends a pre-formatted row.
func (t *Table) AddStrings(cells ...string) *Table {
	t.rows = append(t.rows, cells)
	return t
}

// Len reports the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Bars renders a horizontal ASCII bar chart — the terminal rendition of
// the paper's figures. Values map to bar lengths between lo and hi over
// `width` characters; the numeric value is printed after each bar.
type Bars struct {
	Title   string
	Lo, Hi  float64
	Width   int
	entries []barEntry
}

type barEntry struct {
	label string
	value float64
}

// NewBars creates a chart with values scaled over [lo, hi].
func NewBars(title string, lo, hi float64, width int) *Bars {
	if width <= 0 {
		width = 40
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Bars{Title: title, Lo: lo, Hi: hi, Width: width}
}

// Add appends one bar.
func (b *Bars) Add(label string, value float64) *Bars {
	b.entries = append(b.entries, barEntry{label, value})
	return b
}

// String renders the chart.
func (b *Bars) String() string {
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&sb, "%s\n", b.Title)
	}
	labelW := 0
	for _, e := range b.entries {
		if len(e.label) > labelW {
			labelW = len(e.label)
		}
	}
	for _, e := range b.entries {
		frac := (e.value - b.Lo) / (b.Hi - b.Lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		n := int(frac*float64(b.Width) + 0.5)
		fmt.Fprintf(&sb, "%-*s |%s%s %.4f\n", labelW, e.label,
			strings.Repeat("#", n), strings.Repeat(" ", b.Width-n), e.value)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (no escaping beyond
// replacing embedded commas — experiment output never contains them).
func (t *Table) CSV() string {
	var b strings.Builder
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(clean(c))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(clean(cell))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
