package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Title", "name", "value")
	tb.Add("alpha", 3.14159)
	tb.Add("a-much-longer-name", 42)
	tb.AddStrings("raw", "cell")
	out := tb.String()

	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header wrong: %q", lines[1])
	}
	if !strings.Contains(out, "3.14") {
		t.Error("float not formatted to 2 decimals")
	}
	// Columns align: the "value" column starts at the same offset in the
	// header and every row.
	off := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][off:], "3.14") {
		t.Errorf("misaligned columns:\n%s", out)
	}
	if tb.Len() != 3 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := New("", "a")
	tb.Add(1)
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("leading newline without title")
	}
}

func TestCSV(t *testing.T) {
	tb := New("ignored", "a", "b")
	tb.AddStrings("x,y", "z")
	csv := tb.CSV()
	want := "a,b\nx;y,z\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestFloat32Formatting(t *testing.T) {
	tb := New("", "v")
	tb.Add(float32(1.5))
	if !strings.Contains(tb.String(), "1.50") {
		t.Error("float32 not formatted")
	}
}

func TestBarsRendering(t *testing.T) {
	b := NewBars("Chart", 1.0, 1.05, 20)
	b.Add("short", 1.0)
	b.Add("a-long-label", 1.05)
	b.Add("clamped", 2.0) // above hi: full bar
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "|") {
		t.Errorf("no bar delimiter: %q", lines[1])
	}
	if strings.Count(lines[2], "#") != 20 {
		t.Errorf("max value bar not full: %q", lines[2])
	}
	if strings.Count(lines[3], "#") != 20 {
		t.Errorf("clamping failed: %q", lines[3])
	}
	if strings.Count(lines[1], "#") != 0 {
		t.Errorf("min value bar not empty: %q", lines[1])
	}
}

func TestBarsDefaults(t *testing.T) {
	b := NewBars("", 5, 5, 0) // degenerate range and width
	b.Add("x", 5)
	if out := b.String(); out == "" {
		t.Error("empty render")
	}
}
