package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenRendering pins the exact text rendering of a representative
// experiment table, bar chart and CSV export against a golden file, so
// formatting drift in the paper-table output is a visible diff rather than
// a silent change. Regenerate with: go test ./internal/report -run Golden -update
func TestGoldenRendering(t *testing.T) {
	tbl := New("Table 1: hammering techniques on the simulated machine",
		"Technique", "Min accesses", "Time to flip")
	tbl.AddStrings("Single-Sided with CLFLUSH", "442K", "21.5 ms")
	tbl.AddStrings("Double-Sided with CLFLUSH", "221K", "11.2 ms")
	tbl.Add("Double-Sided without CLFLUSH", 221_184, 17.93)

	bars := NewBars("Normalized execution time (ANVIL)", 1.0, 1.05, 30)
	bars.Add("mcf", 1.0312)
	bars.Add("libquantum", 1.0488)
	bars.Add("sjeng", 1.0021)
	bars.Add("off-scale", 1.20)

	got := tbl.String() + "\n" + bars.String() + "\n" + tbl.CSV()

	golden := filepath.Join("testdata", "table.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("rendering drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}
