package memsys

import (
	"testing"

	"repro/internal/pmu"
	"repro/internal/sim"
)

// buildRun returns a mixed load/store/flush request sequence over a few rows
// and banks, pre-translated the way the machine's gather loop would.
func buildRun() []Req {
	var reqs []Req
	for i := 0; i < 48; i++ {
		va := uint64(0x40000 + i*64)
		kind := ReqLoad
		switch {
		case i%7 == 3:
			kind = ReqStore
		case i%11 == 5:
			kind = ReqFlush
		}
		reqs = append(reqs, Req{VA: va, PA: va, Kind: kind})
	}
	return reqs
}

// TestAccessRunMatchesPerOp pins the batched path to the per-op reference:
// the same request sequence through AccessRun and through individual
// Access/Flush calls must leave both systems in identical observable state —
// same clock, same PMU counters, same cache/DRAM responses.
func TestAccessRunMatchesPerOp(t *testing.T) {
	batched := newSystem(t)
	perOp := newSystem(t)
	reqs := buildRun()

	var bNow sim.Cycles = 1000
	kgen := uint64(0)
	rr := batched.AccessRun(reqs, 3, 1, &bNow, 1<<62, &kgen)
	if rr.Executed != len(reqs) {
		t.Fatalf("AccessRun executed %d of %d requests", rr.Executed, len(reqs))
	}

	var pNow sim.Cycles = 1000
	var loads, stores, flushes uint64
	var memCycles, last sim.Cycles
	for _, req := range reqs {
		if req.Kind == ReqFlush {
			pNow += perOp.Flush(req.PA, pNow)
			flushes++
			continue
		}
		write := req.Kind == ReqStore
		res := perOp.Access(req.VA, req.PA, write, 3, 1, pNow)
		pNow += res.Latency
		memCycles += res.Latency
		last = res.Latency
		if write {
			stores++
		} else {
			loads++
		}
	}

	if bNow != pNow {
		t.Errorf("clock diverged: batched %d, per-op %d", bNow, pNow)
	}
	if rr.Loads != loads || rr.Stores != stores || rr.Flushes != flushes {
		t.Errorf("op counts diverged: batched %d/%d/%d, per-op %d/%d/%d",
			rr.Loads, rr.Stores, rr.Flushes, loads, stores, flushes)
	}
	if rr.MemCycles != memCycles || rr.LastLatency != last || !rr.HadMem {
		t.Errorf("latency accounting diverged: batched (%d, %d, %v), per-op (%d, %d, true)",
			rr.MemCycles, rr.LastLatency, rr.HadMem, memCycles, last)
	}
	events := []pmu.Event{pmu.EvLLCMiss, pmu.EvLLCMissLoads, pmu.EvLoads, pmu.EvStores, pmu.EvLLCReference}
	for _, ev := range events {
		if b, p := batched.PMU.Read(ev), perOp.PMU.Read(ev); b != p {
			t.Errorf("PMU event %v diverged: batched %d, per-op %d", ev, b, p)
		}
	}
}

// TestAccessRunStopsAtHorizon verifies the run cuts at a request boundary
// once the clock reaches stopAt, leaving the rest unexecuted.
func TestAccessRunStopsAtHorizon(t *testing.T) {
	s := newSystem(t)
	reqs := buildRun()
	var now sim.Cycles
	kgen := uint64(0)
	// The first request always executes; a stopAt of 1 cuts right after it.
	rr := s.AccessRun(reqs, 0, 0, &now, 1, &kgen)
	if rr.Executed != 1 {
		t.Errorf("expected exactly the first request, executed %d", rr.Executed)
	}
	if now == 0 {
		t.Error("clock did not advance")
	}
}

// TestAccessRunSteadyStateAllocs pins the allocation-free property of the
// batched hot loop: a warmed AccessRun over cache-resident lines must not
// allocate (the PR-3 hot-path alloc tests, extended to the batched path).
func TestAccessRunSteadyStateAllocs(t *testing.T) {
	s := newSystem(t)
	var reqs []Req
	for i := 0; i < 64; i++ {
		va := uint64(0x8000 + i*64)
		reqs = append(reqs, Req{VA: va, PA: va, Kind: ReqLoad})
	}
	var now sim.Cycles
	kgen := uint64(0)
	s.AccessRun(reqs, 0, 0, &now, 1<<62, &kgen) // warm up: fills, victim lazy allocs
	allocs := testing.AllocsPerRun(1000, func() {
		s.AccessRun(reqs, 0, 0, &now, 1<<62, &kgen)
	})
	if allocs != 0 {
		t.Errorf("steady-state AccessRun allocates %.1f times per run, want 0", allocs)
	}
}
