// Package memsys assembles the memory system: the cache hierarchy in front
// of the DRAM module, with every program access reported to the PMU. It is
// the seam where the detector's observation points (performance counters)
// and the attack's target (DRAM disturbance) meet.
package memsys

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/pmu"
	"repro/internal/sim"
)

// Config assembles a System.
type Config struct {
	DRAM      dram.Config
	Cache     cache.HierarchyConfig
	PMUSeed   uint64
	PMUBuffer int
}

// DefaultConfig is the paper's machine: Sandy Bridge caches over the 4 GB
// DDR3 module.
func DefaultConfig(f sim.Freq) Config {
	return Config{
		DRAM:    dram.DefaultConfig(f),
		Cache:   cache.SandyBridgeConfig(),
		PMUSeed: 0x9ebc,
	}
}

// System is the assembled memory system.
type System struct {
	DRAM   *dram.Module
	Caches *cache.Hierarchy
	PMU    *pmu.PMU
}

// dramBackend adapts the DRAM module to the cache.Memory interface.
type dramBackend struct {
	m *dram.Module
}

func (b dramBackend) Access(pa uint64, write bool, now sim.Cycles) sim.Cycles {
	return b.m.Access(pa, write, now).Latency
}

// New builds the memory system.
func New(cfg Config) (*System, error) {
	mod, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, fmt.Errorf("memsys: %w", err)
	}
	h, err := cache.NewHierarchy(cfg.Cache, dramBackend{mod})
	if err != nil {
		return nil, fmt.Errorf("memsys: %w", err)
	}
	return &System{
		DRAM:   mod,
		Caches: h,
		PMU:    pmu.New(cfg.PMUSeed, cfg.PMUBuffer),
	}, nil
}

// Access performs one program load or store: through the caches, possibly
// to DRAM, observed by the PMU. va is carried for the PEBS record; pa
// drives placement.
func (s *System) Access(va, pa uint64, write bool, task, core int, now sim.Cycles) cache.Result {
	res := s.Caches.Access(pa, write, now)
	s.PMU.Observe(pmu.Access{
		VA:      va,
		PA:      pa,
		Write:   write,
		Latency: res.Latency,
		Source:  res.Source,
		LLCMiss: res.LLCMiss,
		Task:    task,
		Core:    core,
		Now:     now,
	})
	return res
}

// Flush performs CLFLUSH of pa, returning the latency charged to the core.
func (s *System) Flush(pa uint64, now sim.Cycles) sim.Cycles {
	lat, _ := s.Caches.Flush(pa, now)
	return lat
}

// KernelRead issues an uncached read of pa directly to DRAM — the selective
// refresh primitive. (ANVIL's kernel module reads a word from the victim
// row; going through the caches would defeat the refresh on a hit, so the
// kernel uses an uncached access.) The PMU does not observe it: the
// detector filters its own kernel-thread accesses. The DRAM access latency
// is returned so the caller can charge it to the executing core.
func (s *System) KernelRead(pa uint64, now sim.Cycles) sim.Cycles {
	return s.DRAM.Access(pa, false, now).Latency
}
