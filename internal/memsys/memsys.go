// Package memsys assembles the memory system: the cache hierarchy in front
// of the DRAM module, with every program access reported to the PMU. It is
// the seam where the detector's observation points (performance counters)
// and the attack's target (DRAM disturbance) meet.
package memsys

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/pmu"
	"repro/internal/sim"
)

// Config assembles a System.
type Config struct {
	DRAM      dram.Config
	Cache     cache.HierarchyConfig
	PMUSeed   uint64
	PMUBuffer int
}

// DefaultConfig is the paper's machine: Sandy Bridge caches over the 4 GB
// DDR3 module.
func DefaultConfig(f sim.Freq) Config {
	return Config{
		DRAM:    dram.DefaultConfig(f),
		Cache:   cache.SandyBridgeConfig(),
		PMUSeed: 0x9ebc,
	}
}

// System is the assembled memory system.
type System struct {
	DRAM   *dram.Module
	Caches *cache.Hierarchy
	PMU    *pmu.PMU
}

// dramBackend adapts the DRAM module to the cache.Memory interface.
type dramBackend struct {
	m *dram.Module
}

func (b dramBackend) Access(pa uint64, write bool, now sim.Cycles) sim.Cycles {
	return b.m.Access(pa, write, now).Latency
}

// New builds the memory system.
func New(cfg Config) (*System, error) {
	mod, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, fmt.Errorf("memsys: %w", err)
	}
	h, err := cache.NewHierarchy(cfg.Cache, dramBackend{mod})
	if err != nil {
		return nil, fmt.Errorf("memsys: %w", err)
	}
	return &System{
		DRAM:   mod,
		Caches: h,
		PMU:    pmu.New(cfg.PMUSeed, cfg.PMUBuffer),
	}, nil
}

// Access performs one program load or store: through the caches, possibly
// to DRAM, observed by the PMU. va is carried for the PEBS record; pa
// drives placement.
func (s *System) Access(va, pa uint64, write bool, task, core int, now sim.Cycles) cache.Result {
	res := s.Caches.Access(pa, write, now)
	s.PMU.Observe(pmu.Access{
		VA:      va,
		PA:      pa,
		Write:   write,
		Latency: res.Latency,
		Source:  res.Source,
		LLCMiss: res.LLCMiss,
		Task:    task,
		Core:    core,
		Now:     now,
	})
	return res
}

// ReqKind classifies one request of a batched access run.
type ReqKind uint8

// The request kinds. Loads and stores go through the caches and are observed
// by the PMU; flushes invalidate without a PMU event, exactly as in the
// per-op path.
const (
	ReqLoad ReqKind = iota
	ReqStore
	ReqFlush
)

// Req is one pre-translated memory operation of a homogeneous run.
type Req struct {
	VA   uint64
	PA   uint64
	Kind ReqKind
}

// RunResult aggregates what AccessRun executed.
type RunResult struct {
	// Executed counts requests completed (the prefix reqs[:Executed]).
	Executed int
	Loads    uint64
	Stores   uint64
	Flushes  uint64
	// MemCycles is the summed load/store latency; flush latency is excluded,
	// matching the per-op accounting in the machine.
	MemCycles sim.Cycles
	// LastLatency is the latency of the last load or store executed; HadMem
	// reports whether there was one (flush-only runs leave the caller's
	// last-latency register untouched).
	LastLatency sim.Cycles
	HadMem      bool
}

// AccessRun executes a prefix of reqs as one batched run: each request goes
// through the caches (and PMU, for loads and stores) exactly as Access/Flush
// would, with *now advanced by each latency in place. now aliases the
// executing core's clock so PMI charges (which the PMU's sample hook applies
// through the machine) land between the observation and the latency charge,
// byte-identical to the per-op path.
//
// The run stops early — always after completing a request, never mid-request
// — when *now reaches stopAt or when *kgen moves (the caller's kernel
// generation counter; timer arming from a PMI handler invalidates the
// caller's planned horizon). The first request executes unconditionally; the
// caller guarantees *now < stopAt on entry.
//
// Overflow delivery stays exact without per-access checks: a budget of
// overflow-free accesses from the PMU lets the hot loop use ObserveCounted,
// falling back to a full Observe whenever the budget is spent, and any
// overflow-configuration change (arming from a sample hook, delivery,
// re-arming from a handler) re-prices the budget.
func (s *System) AccessRun(reqs []Req, task, core int, now *sim.Cycles, stopAt sim.Cycles, kgen *uint64) RunResult {
	var r RunResult
	p := s.PMU
	caches := s.Caches
	gen0 := *kgen
	pgen := p.ConfigGen()
	bound := p.AccessesUntilOverflow()
	for i := range reqs {
		req := &reqs[i]
		if req.Kind == ReqFlush {
			lat, _ := caches.Flush(req.PA, *now)
			*now += lat
			r.Flushes++
			r.Executed++
		} else {
			write := req.Kind == ReqStore
			t := *now
			res := caches.Access(req.PA, write, t)
			if bound == 0 {
				p.Observe(pmu.Access{
					VA:      req.VA,
					PA:      req.PA,
					Write:   write,
					Latency: res.Latency,
					Source:  res.Source,
					LLCMiss: res.LLCMiss,
					Task:    task,
					Core:    core,
					Now:     t,
				})
				pgen = p.ConfigGen()
				bound = p.AccessesUntilOverflow()
			} else {
				// ObserveCounted, unrolled so the Access record is only built
				// when a PEBS record will actually be taken.
				p.CountAccess(write, res.LLCMiss)
				if p.WantSample(write, res.Latency, t) {
					p.TakeSample(pmu.Access{
						VA:      req.VA,
						PA:      req.PA,
						Write:   write,
						Latency: res.Latency,
						Source:  res.Source,
						LLCMiss: res.LLCMiss,
						Task:    task,
						Core:    core,
						Now:     t,
					})
				}
				bound--
				if g := p.ConfigGen(); g != pgen {
					pgen = g
					bound = p.AccessesUntilOverflow()
				}
			}
			*now += res.Latency
			r.LastLatency = res.Latency
			r.HadMem = true
			r.MemCycles += res.Latency
			if write {
				r.Stores++
			} else {
				r.Loads++
			}
			r.Executed++
		}
		if *now >= stopAt || *kgen != gen0 {
			break
		}
	}
	return r
}

// Flush performs CLFLUSH of pa, returning the latency charged to the core.
func (s *System) Flush(pa uint64, now sim.Cycles) sim.Cycles {
	lat, _ := s.Caches.Flush(pa, now)
	return lat
}

// KernelRead issues an uncached read of pa directly to DRAM — the selective
// refresh primitive. (ANVIL's kernel module reads a word from the victim
// row; going through the caches would defeat the refresh on a hit, so the
// kernel uses an uncached access.) The PMU does not observe it: the
// detector filters its own kernel-thread accesses. The DRAM access latency
// is returned so the caller can charge it to the executing core.
func (s *System) KernelRead(pa uint64, now sim.Cycles) sim.Cycles {
	return s.DRAM.Access(pa, false, now).Latency
}
