package memsys

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/pmu"
	"repro/internal/sim"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	s, err := New(DefaultConfig(sim.DefaultFreq))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidatesSubConfigs(t *testing.T) {
	cfg := DefaultConfig(sim.DefaultFreq)
	cfg.DRAM.Geometry.Ranks = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad DRAM config accepted")
	}
	cfg = DefaultConfig(sim.DefaultFreq)
	cfg.Cache.Levels = nil
	if _, err := New(cfg); err == nil {
		t.Error("bad cache config accepted")
	}
}

func TestAccessFeedsPMUAndDRAM(t *testing.T) {
	s := newSystem(t)
	res := s.Access(0xABC0, 0xABC0, false, 7, 1, 100)
	if res.Source != cache.SrcDRAM || !res.LLCMiss {
		t.Fatalf("cold access: %+v", res)
	}
	if got := s.PMU.Read(pmu.EvLLCMiss); got != 1 {
		t.Errorf("PMU misses = %d", got)
	}
	if s.DRAM.Stats().Reads != 1 {
		t.Errorf("DRAM reads = %d", s.DRAM.Stats().Reads)
	}
	// Second access hits the cache: no new DRAM traffic.
	res = s.Access(0xABC0, 0xABC0, false, 7, 1, 200)
	if res.LLCMiss {
		t.Error("warm access missed")
	}
	if s.DRAM.Stats().Reads != 1 {
		t.Error("warm access reached DRAM")
	}
}

func TestPMURecordsTaskAndCore(t *testing.T) {
	s := newSystem(t)
	s.PMU.ConfigureLoadSampler(pmu.SamplerConfig{Enabled: true, LatencyThreshold: 0, Interval: 1}, 0)
	s.Access(0x1234, 0x1234, false, 42, 3, 10)
	samples := s.PMU.Samples()
	if len(samples) != 1 {
		t.Fatalf("samples = %d", len(samples))
	}
	if samples[0].Task != 42 || samples[0].Core != 3 || samples[0].VA != 0x1234 {
		t.Errorf("sample = %+v", samples[0])
	}
}

func TestFlushForcesNextAccessToDRAM(t *testing.T) {
	s := newSystem(t)
	s.Access(0x4000, 0x4000, false, 1, 0, 0)
	if lat := s.Flush(0x4000, 10); lat == 0 {
		t.Error("flush has zero latency")
	}
	res := s.Access(0x4000, 0x4000, false, 1, 0, 20)
	if res.Source != cache.SrcDRAM {
		t.Errorf("post-flush source = %v", res.Source)
	}
}

func TestKernelReadBypassesCachesAndPMU(t *testing.T) {
	s := newSystem(t)
	pa := s.DRAM.Mapper().Unmap(dram.Coord{Bank: 2, Row: 99, Col: 0})
	lat := s.KernelRead(pa, 100)
	if lat == 0 {
		t.Error("kernel read has zero latency")
	}
	// Not cached: a repeat also reaches DRAM (row hit now).
	before := s.DRAM.Stats().Reads
	s.KernelRead(pa, 200)
	if s.DRAM.Stats().Reads != before+1 {
		t.Error("kernel read did not reach DRAM")
	}
	// Not observed by the PMU.
	if s.PMU.Read(pmu.EvLLCMiss) != 0 {
		t.Error("kernel read counted as an LLC miss")
	}
	// And it activates the row (the selective-refresh property).
	if s.DRAM.OpenRow(2) != 99 {
		t.Errorf("row not opened by kernel read: %d", s.DRAM.OpenRow(2))
	}
}

func TestWritebacksReachDRAMAsWrites(t *testing.T) {
	s := newSystem(t)
	// Dirty a line, then flush it: the writeback is a DRAM write.
	s.Access(0x8000, 0x8000, true, 1, 0, 0)
	s.Flush(0x8000, 10)
	if w := s.DRAM.Stats().Writes; w != 1 {
		t.Errorf("DRAM writes = %d, want 1", w)
	}
}
