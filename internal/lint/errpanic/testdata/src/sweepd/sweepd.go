// Package sweepd mirrors internal/sweepd for the errpanic fixtures: a
// host-zone service package whose daemon paths may exit the process, but
// whose spec-hashing/validation core opts back into the deterministic zone
// per function and must keep returning errors.
//
//lint:zone host
package sweepd

import (
	"fmt"
	"log"
	"os"
)

// Serve is a host-zone API: process-fatal error handling is its job, so the
// analyzer stays quiet here.
func Serve(addr string) {
	if addr == "" {
		log.Fatal("no listen address") // no finding: host zone
	}
}

// Shutdown exits directly; still host zone, still no finding.
func Shutdown(code int) {
	os.Exit(code)
}

// HashSpec is the per-function opt-in: the content-addressing path must be a
// pure function of the spec, so a reachable panic is a defect.
//
//lint:zone deterministic
func HashSpec(experiment string) string {
	if experiment == "" {
		panic("empty experiment") // want `panic is reachable from exported deterministic-zone API HashSpec; return an error instead`
	}
	return "h-" + experiment
}

// ValidateSpec reaches a panic through a helper that inherits the package's
// host zone — the tainted edge is the finding, not the helper body.
//
//lint:zone deterministic
func ValidateSpec(reps int) error {
	checkReps(reps) // want `call to checkReps may panic \(sweepd\.go:\d+\); exported deterministic-zone API ValidateSpec must return errors, not panic`
	return nil
}

func checkReps(reps int) {
	if reps < 0 {
		panic("negative replicate budget")
	}
}

// CacheKey returns errors the boring way; the deterministic override alone
// produces no findings.
//
//lint:zone deterministic
func CacheKey(experiment string, seed uint64) (string, error) {
	if experiment == "" {
		return "", fmt.Errorf("sweepd: empty experiment")
	}
	return fmt.Sprintf("%s-%d", experiment, seed), nil
}
