// Package musthelp is a host-side fixture of Must-style constructors whose
// panics are deliberately unannotated: the facts this package exports flag
// the deterministic-zone callers in package a at their call sites.
package musthelp

// MustKind panics on unknown kinds.
func MustKind(kind string) string {
	if kind == "" {
		panic("unknown kind")
	}
	return kind
}

// Wrap reaches the panic one frame down; its fact records the chain.
func Wrap(kind string) string {
	return MustKind(kind)
}

// Clean returns an error like a well-behaved constructor; it gets no fact.
func Clean(kind string) (string, bool) {
	if kind == "" {
		return "", false
	}
	return kind, true
}
