//lint:zone deterministic
package a

import (
	"log"
	"os"

	"musthelp"
)

// Configure is an exported zone API with a direct panic.
func Configure(n int) {
	if n < 0 {
		panic("negative") // want `panic is reachable from exported deterministic-zone API Configure; return an error instead`
	}
}

// Build reaches a panic through a zone-internal helper; the helper is the
// root, so the finding lands on its panic site, named after this API.
func Build(n int) {
	validate(n)
}

func validate(n int) {
	if n == 0 {
		panic("zero") // want `panic is reachable from exported deterministic-zone API Build`
	}
}

// New wraps another package's Must helper; the imported fact flags the edge.
func New(kind string) string {
	return musthelp.MustKind(kind) // want `call to musthelp\.MustKind may panic \(musthelp\.go:\d+\); exported deterministic-zone API New must return errors, not panic`
}

// NewWrapped reaches the same panic two packages of frames down.
func NewWrapped(kind string) string {
	return musthelp.Wrap(kind) // want `call to musthelp\.Wrap may panic \(musthelp\.go:\d+\) via MustKind`
}

// Run log.Fatal is just as fatal as panic for a sweep worker.
func Run() {
	log.Fatalf("boom") // want `log\.Fatalf is reachable from exported deterministic-zone API Run`
}

// MustFreq panics by documented contract; the annotation asserts containment
// and absorbs the taint, so UsesMust stays clean.
func MustFreq(hz int) int {
	if hz <= 0 {
		panic("freq: non-positive rate") //lint:allow errpanic documented Must contract, programmer error only
	}
	return hz
}

// UsesMust sees no taint: the allowed panic was absorbed at its site.
func UsesMust() int {
	return MustFreq(100)
}

//lint:zone host
func hostExit(code int) {
	os.Exit(code) // no finding: this function opted out of the zone
}

// Shutdown calls an opted-out local function; the edge is the finding.
func Shutdown() {
	hostExit(1) // want `call to hostExit may os\.Exit \(a\.go:\d+\); exported deterministic-zone API Shutdown must return errors, not panic`
}

// Ok returns errors the boring way and calls only clean helpers.
func Ok(kind string) (string, bool) {
	return musthelp.Clean(kind)
}

// unreachableHelper panics, but no exported zone API reaches it: the fact is
// still exported for importers, yet nothing reports here.
func unreachableHelper() {
	panic("dead code")
}
