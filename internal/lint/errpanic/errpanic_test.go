package errpanic_test

import (
	"testing"

	"repro/internal/lint/errpanic"
	"repro/internal/lint/linttest"
)

func TestErrpanic(t *testing.T) {
	linttest.Run(t, "testdata", errpanic.Analyzer, "a", "sweepd")
}
