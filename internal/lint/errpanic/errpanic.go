// Package errpanic proves that no panic, log.Fatal or os.Exit is reachable
// from the exported APIs of deterministic-zone packages. The hardened sweep
// runner converts replicate panics into errors, but a library that panics on
// bad configuration still turns a recoverable per-replicate failure into a
// lost worker — PRs 1 and 4 hand-converted those paths to returned errors,
// and this analyzer locks the conversions in, across package boundaries: a
// zone API calling another package's Must-style helper is flagged at the
// call site via the helper's exported fact.
//
// Contract panics — impossible-state guards and Must-prefixed constructors
// whose documented contract is to panic on programmer error — are absorbed
// with a justified "//lint:allow errpanic <why>" on the panic itself; the
// annotation asserts containment, so callers stay clean.
package errpanic

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// panics marks a function from which an explicit panic is reachable.
type panics struct {
	// What names the terminal call: "panic", "log.Fatalf", "os.Exit".
	What string `json:"what"`
	// Pos locates it (file.go:line).
	Pos string `json:"pos"`
	// Via names the callee chain from the fact's function; empty when the
	// panic is in the function's own body.
	Via string `json:"via,omitempty"`
}

func (*panics) AFact() {}

// Analyzer implements the errpanic check.
var Analyzer = &lint.Analyzer{
	Name: "errpanic",
	Doc: "forbid panic/log.Fatal/os.Exit reachable from exported " +
		"deterministic-zone APIs; return errors instead",
	RequireReason: true,
	Facts:         []lint.Fact{(*panics)(nil)},
	Run:           run,
}

type site struct {
	pos  ast.Node
	what string // terminal call name, or "" for a call edge
	fn   *types.Func
}

func run(pass *lint.Pass) error {
	funcs := lint.Functions(pass)
	local := make(map[*types.Func]*ast.FuncDecl, len(funcs))
	sites := make(map[*types.Func][]site, len(funcs))
	for _, fn := range funcs {
		local[fn.Obj] = fn.Decl
	}
	for _, fn := range funcs {
		sites[fn.Obj] = collect(pass, fn.Decl)
	}

	taint := make(map[*types.Func]*panics)
	reaches := func(fn *types.Func) *panics {
		if w, ok := taint[fn]; ok {
			return w
		}
		if _, isLocal := local[fn]; isLocal {
			return nil
		}
		var fact panics
		if pass.ImportObjectFact(fn, &fact) {
			return &fact
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if taint[fn.Obj] != nil {
				continue
			}
			for _, s := range sites[fn.Obj] {
				if s.what != "" {
					taint[fn.Obj] = &panics{What: s.what, Pos: posString(pass, s.pos)}
					changed = true
					break
				}
				if w := reaches(s.fn); w != nil {
					via := lint.FuncDisplayName(pass, s.fn)
					if w.Via != "" {
						via += " → " + w.Via
					}
					taint[fn.Obj] = &panics{What: w.What, Pos: w.Pos, Via: via}
					changed = true
					break
				}
			}
		}
	}
	for fn, w := range taint {
		pass.ExportObjectFact(fn, w)
	}

	// Reachability: which functions can an exported deterministic-zone API
	// actually reach through this package's call graph? Only sites inside
	// that set are findings — an unreachable helper's panic is dead weight,
	// not an invariant break.
	roots := make([]*types.Func, 0, len(funcs))
	firstRoot := make(map[*types.Func]*types.Func)
	for _, fn := range funcs {
		if lint.ExportedAPI(pass, fn.Decl) && pass.FuncZone(fn.Decl) == lint.ZoneDeterministic {
			roots = append(roots, fn.Obj)
		}
	}
	for _, root := range roots {
		var walk func(fn *types.Func)
		walk = func(fn *types.Func) {
			if _, seen := firstRoot[fn]; seen {
				return
			}
			firstRoot[fn] = root
			for _, s := range sites[fn] {
				if s.fn != nil && local[s.fn] != nil {
					walk(s.fn)
				}
			}
		}
		walk(root)
	}

	for _, fn := range funcs {
		root, reachable := firstRoot[fn.Obj]
		if !reachable {
			continue
		}
		api := lint.FuncDisplayName(pass, root)
		for _, s := range sites[fn.Obj] {
			if s.what != "" {
				if pass.FuncZone(fn.Decl) != lint.ZoneDeterministic {
					continue // opted-out function body; callers report the edge
				}
				pass.Reportf(s.pos.Pos(),
					"%s is reachable from exported deterministic-zone API %s; return an error instead",
					s.what, api)
				continue
			}
			w := reaches(s.fn)
			if w == nil {
				continue
			}
			if decl, isLocal := local[s.fn]; isLocal && pass.FuncZone(decl) == lint.ZoneDeterministic {
				continue // reported at its own root inside the zone
			}
			msg := fmt.Sprintf("call to %s may %s (%s)",
				lint.FuncDisplayName(pass, s.fn), w.What, w.Pos)
			if w.Via != "" {
				msg += " via " + w.Via
			}
			pass.Reportf(s.pos.Pos(), "%s; exported deterministic-zone API %s must return errors, not panic", msg, api)
		}
	}
	return nil
}

// collect gathers panic sites and call edges of one declaration. Allowed
// panic sites are contract panics: absorbed, neither reported nor
// propagated.
func collect(pass *lint.Pass, decl *ast.FuncDecl) []site {
	var out []site
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if what, ok := terminalCall(pass, call); ok {
			if !pass.Allowed(call.Pos()) {
				out = append(out, site{pos: call, what: what})
			}
			return true
		}
		if fn := lint.Callee(pass, call); fn != nil && fn.Pkg() != nil {
			if !pass.Allowed(call.Pos()) {
				out = append(out, site{pos: call, fn: fn})
			}
		}
		return true
	})
	return out
}

// terminalCall recognises the built-in panic and the process-fatal standard
// library exits.
func terminalCall(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, ok := pass.ObjectOf(fun).(*types.Builtin); ok {
				return "panic", true
			}
		}
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return "", false
		}
		pkgName, ok := pass.ObjectOf(id).(*types.PkgName)
		if !ok {
			return "", false
		}
		name := fun.Sel.Name
		switch pkgName.Imported().Path() {
		case "log":
			if strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic") {
				return "log." + name, true
			}
		case "os":
			if name == "Exit" {
				return "os.Exit", true
			}
		}
	}
	return "", false
}

func posString(pass *lint.Pass, n ast.Node) string {
	p := pass.Fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
