// Package a exercises the randshare analyzer: sharing one *sim.Rand across
// component constructors is caught, Split()-derived streams and sequential
// non-constructor use are accepted, and a justified directive allows a
// deliberate sharing.
package a

import "sim"

// Comp is a component owning a random stream.
type Comp struct{ r *sim.Rand }

// NewComp constructs a Comp.
func NewComp(r *sim.Rand) *Comp { return &Comp{r: r} }

// Other is a second component type.
type Other struct{ r *sim.Rand }

// NewOther constructs an Other.
func NewOther(r *sim.Rand) *Other { return &Other{r: r} }

// NewPair constructs from two streams.
func NewPair(a, b *sim.Rand) [2]*sim.Rand { return [2]*sim.Rand{a, b} }

func shared(root *sim.Rand) (*Comp, *Other) {
	a := NewComp(root)
	b := NewOther(root) // want `NewOther reuses \*sim\.Rand "root" already given to NewComp`
	return a, b
}

func sharedField(cfg struct{ Rng *sim.Rand }) (*Comp, *Other) {
	a := NewComp(cfg.Rng)
	b := NewOther(cfg.Rng) // want `NewOther reuses \*sim\.Rand "cfg\.Rng" already given to NewComp`
	return a, b
}

func sharedInOneCall(root *sim.Rand) [2]*sim.Rand {
	return NewPair(root, root) // want `NewPair reuses \*sim\.Rand "root" already given to NewPair`
}

func split(root *sim.Rand) (*Comp, *Other) {
	a := NewComp(root.Split()) // accepted: every component gets its own stream
	b := NewOther(root.Split())
	return a, b
}

func sequential(root *sim.Rand) int {
	// Accepted: repeatedly feeding one stream to a plain helper is ordinary
	// sequential consumption, not cross-component sharing.
	n := step(root)
	n += step(root)
	return n
}

func correlated(root *sim.Rand) (*Comp, *Comp) {
	a := NewComp(root)
	b := NewComp(root) //lint:allow randshare deliberately correlated streams for an ablation
	return a, b
}

func step(r *sim.Rand) int { return r.Intn(4) }
