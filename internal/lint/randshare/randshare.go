// Package randshare flags handing the same *sim.Rand value to more than one
// component constructor within a function body. The simulator's determinism
// contract ("adding or removing one component never perturbs the random
// streams seen by the others") only holds when every component owns a stream
// derived via Split(): two components sharing one generator interleave their
// draws, so any change to one silently reshuffles the randomness seen by the
// other and every downstream measurement.
package randshare

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/lint"
)

// Analyzer implements the randshare check.
var Analyzer = &lint.Analyzer{
	Name: "randshare",
	Doc: "flag the same *sim.Rand passed to multiple component " +
		"constructors; derive independent streams with Split()",
	Run: run,
}

// constructorRe matches constructor-shaped callee names: New, NewFoo,
// MustBar, MakeBaz, BuildQux.
var constructorRe = regexp.MustCompile(`^(New|Must|Make|Build)([A-Z].*)?$`)

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil
}

// checkBody records, per function body, which *sim.Rand values have already
// been given to a constructor, and reports every reuse.
func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	type firstUse struct {
		callee string
	}
	seen := make(map[string]firstUse) // canonical expr string -> first constructor
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeName(call)
		if callee == "" || !constructorRe.MatchString(callee) {
			return true
		}
		for _, arg := range call.Args {
			if !lint.IsSimRand(pass.TypeOf(arg)) {
				continue
			}
			key, ok := canonicalRand(pass, arg)
			if !ok {
				continue // e.g. rng.Split(): a fresh stream per call site
			}
			if prev, dup := seen[key]; dup {
				pass.Reportf(arg.Pos(),
					"%s reuses *sim.Rand %q already given to %s; derive an independent stream with %s.Split()",
					callee, key, prev.callee, key)
				continue
			}
			seen[key] = firstUse{callee: callee}
		}
		return true
	})
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// canonicalRand returns a stable identity for a *sim.Rand argument
// expression: the variable object for plain identifiers, or the printed
// selector path for field accesses (cfg.Rng, m.rng). Call results have no
// stable identity and are treated as fresh streams.
func canonicalRand(pass *lint.Pass, arg ast.Expr) (string, bool) {
	switch e := arg.(type) {
	case *ast.Ident:
		if obj := pass.ObjectOf(e); obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return e.Name, true
			}
		}
		return "", false
	case *ast.SelectorExpr:
		// Only pure field chains (no calls) have stable identity.
		pure := true
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.CallExpr); ok {
				pure = false
			}
			return pure
		})
		if pure {
			return types.ExprString(e), true
		}
	}
	return "", false
}
