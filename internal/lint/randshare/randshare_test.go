package randshare_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/randshare"
)

func TestRandshare(t *testing.T) {
	linttest.Run(t, "testdata", randshare.Analyzer, "a")
}
