// Package jsondet proves that the JSON the simulator emits — scenario
// results, sweep journals, artifact manifests — is a pure function of the
// data, not of Go's runtime. A map or bare interface field in a marshalled
// struct makes the encoded bytes depend on encoder internals (and, for
// custom encoders, on iteration order): exactly the PR-1 bug class where a
// map-keyed histogram reordered between runs and broke byte-for-byte
// replicate comparison. The determinism contract is stronger than
// "encoding/json happens to sort string keys today": zone results must not
// depend on any encoder's internals.
//
// The analyzer descends through the exported, non-"-"-tagged fields of every
// JSON-tagged struct type declared in a deterministic-zone package, and
// through the static argument types of json.Marshal / json.MarshalIndent /
// (*json.Encoder).Encode calls in zone functions. A type that implements
// MarshalJSON vouches for its own ordering and is exempt (json.RawMessage,
// sorted-slice wrappers). Offending named types export a fact, so embedding
// another package's map-backed type is flagged at the embedding site.
package jsondet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"strings"

	"repro/internal/lint"
)

// unorderedJSON marks a named type whose JSON encoding depends on unordered
// data.
type unorderedJSON struct {
	// Path is the field path from the type to the offending data, e.g.
	// ".Rows[].Counts"; empty when the type itself is a map.
	Path string `json:"path"`
	// Kind is the offending type, e.g. "map[string]uint64".
	Kind string `json:"kind"`
	// Pos locates the offending field (file.go:line), when known.
	Pos string `json:"pos,omitempty"`
}

func (*unorderedJSON) AFact() {}

// Analyzer implements the jsondet check.
var Analyzer = &lint.Analyzer{
	Name: "jsondet",
	Doc: "forbid map/interface fields (without MarshalJSON) in structs " +
		"marshalled to JSON from deterministic-zone code",
	RequireReason: true,
	Facts:         []lint.Fact{(*unorderedJSON)(nil)},
	Run:           run,
}

// witness records where unordered data enters a type.
type witness struct {
	path   string
	kind   string
	pos    token.Pos // offending field, when seen in source
	posStr string    // pre-rendered position from an imported fact
}

func (w *witness) loc(pass *lint.Pass) string {
	if w.posStr != "" {
		return w.posStr
	}
	if w.pos.IsValid() {
		p := pass.Fset.Position(w.pos)
		if p.Filename != "" {
			return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		}
	}
	return ""
}

type checker struct {
	pass *lint.Pass
	memo map[*types.Named]*witness
	busy map[*types.Named]bool
}

func run(pass *lint.Pass) error {
	c := &checker{
		pass: pass,
		memo: make(map[*types.Named]*witness),
		busy: make(map[*types.Named]bool),
	}

	// Export facts for every package-level named type that carries
	// unordered data, zone or not: a host-side helper type flags its
	// deterministic-zone embedders.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if w := c.typeWitness(named); w != nil {
			pass.ExportObjectFact(tn, &unorderedJSON{Path: w.path, Kind: w.kind, Pos: w.loc(pass)})
		}
	}

	if pass.PackageZone() != lint.ZoneDeterministic && !anyZoneFunc(pass) {
		return nil
	}

	// Root set 1: JSON-tagged struct types declared in the zone package.
	reported := make(map[*types.Named]bool)
	if pass.PackageZone() == lint.ZoneDeterministic {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok || !jsonTagged(st) {
				continue
			}
			w := c.typeWitness(named)
			if w == nil {
				continue
			}
			reported[named] = true
			anchor := anchorPos(st, w.path, tn.Pos())
			msg := fmt.Sprintf(
				"JSON-marshalled type %s depends on unordered data: %s%s is %s",
				tn.Name(), tn.Name(), w.path, w.kind)
			if loc := w.loc(pass); loc != "" && !posMatches(pass, anchor, loc) {
				msg += " (" + loc + ")"
			}
			pass.Reportf(anchor, "%s; encoded results must not depend on encoder internals — marshal a sorted slice or add a MarshalJSON method", msg)
		}
	}

	// Root set 2: marshal call sites in deterministic-zone functions.
	for _, fn := range lint.Functions(pass) {
		if pass.FuncZone(fn.Decl) != lint.ZoneDeterministic {
			continue
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, arg := marshalCall(pass, call)
			if arg == nil {
				return true
			}
			t := pass.TypeOf(arg)
			if t == nil {
				return true
			}
			if _, isTP := t.(*types.TypeParam); isTP {
				return true // generic payloads are judged at instantiation sites
			}
			if named, ok := derefNamed(t); ok && reported[named] {
				return true // already reported at the type declaration
			}
			w := c.check(t)
			if w == nil {
				return true
			}
			typeStr := types.TypeString(t, types.RelativeTo(pass.Pkg))
			subject := strings.TrimPrefix(typeStr, "*") + w.path
			if w.path == "" {
				subject = "the payload"
			}
			msg := fmt.Sprintf("%s of %s depends on unordered data: %s is %s",
				name, typeStr, subject, w.kind)
			if loc := w.loc(pass); loc != "" {
				msg += " (" + loc + ")"
			}
			pass.Reportf(call.Pos(), "%s; marshal a sorted slice or add a MarshalJSON method", msg)
			return true
		})
	}
	return nil
}

// check returns a witness if t's JSON encoding depends on unordered data.
func (c *checker) check(t types.Type) *witness {
	switch t := t.(type) {
	case *types.Named:
		return c.typeWitness(t)
	case *types.Pointer:
		return c.check(t.Elem())
	case *types.Slice:
		return prefixed("[]", c.check(t.Elem()))
	case *types.Array:
		return prefixed("[]", c.check(t.Elem()))
	case *types.Map:
		return &witness{kind: c.typeString(t)}
	case *types.Interface:
		if hasMarshalJSON(t) {
			return nil // the dynamic value vouches for its own ordering
		}
		return &witness{kind: c.typeString(t)}
	case *types.Struct:
		return c.structWitness(t)
	}
	return nil
}

// typeWitness memoizes the check for named types, consulting imported facts
// for types from other packages and guarding against recursive types.
func (c *checker) typeWitness(named *types.Named) *witness {
	if w, ok := c.memo[named]; ok {
		return w
	}
	if c.busy[named] {
		return nil // recursive type: the cycle itself adds no unordered data
	}
	c.busy[named] = true
	defer delete(c.busy, named)

	var w *witness
	switch {
	case hasMarshalJSON(named):
		w = nil
	case named.Obj().Pkg() != nil && named.Obj().Pkg() != c.pass.Pkg && c.factFor(named) != nil:
		f := c.factFor(named)
		w = &witness{path: f.Path, kind: f.Kind, posStr: f.Pos}
	default:
		w = c.check(named.Underlying())
	}
	c.memo[named] = w
	return w
}

func (c *checker) factFor(named *types.Named) *unorderedJSON {
	var fact unorderedJSON
	if c.pass.ImportObjectFact(named.Obj(), &fact) {
		return &fact
	}
	return nil
}

func (c *checker) structWitness(st *types.Struct) *witness {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue // encoding/json ignores unexported fields
		}
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		if strings.Split(tag, ",")[0] == "-" {
			continue
		}
		if c.pass.Allowed(f.Pos()) {
			continue // annotated field: ordering asserted out of band
		}
		w := c.check(f.Type())
		if w == nil {
			continue
		}
		out := &witness{path: "." + f.Name() + w.path, kind: w.kind, pos: w.pos, posStr: w.posStr}
		if !out.pos.IsValid() && out.posStr == "" {
			out.pos = f.Pos()
		}
		return out
	}
	return nil
}

func (c *checker) typeString(t types.Type) string {
	return types.TypeString(t, types.RelativeTo(c.pass.Pkg))
}

// prefixed clones w with a path prefix, so shared memo entries are never
// mutated by callers.
func prefixed(prefix string, w *witness) *witness {
	if w == nil {
		return nil
	}
	return &witness{path: prefix + w.path, kind: w.kind, pos: w.pos, posStr: w.posStr}
}

// hasMarshalJSON reports whether t (or *t) has a MarshalJSON method in its
// method set.
func hasMarshalJSON(t types.Type) bool {
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(tt, true, nil, "MarshalJSON")
		if fn, ok := obj.(*types.Func); ok && fn.Exported() {
			return true
		}
	}
	return false
}

// jsonTagged reports whether any field of st carries a json struct tag —
// the marker that the type is a serialization schema, not an internal
// container.
func jsonTagged(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if reflect.StructTag(st.Tag(i)).Get("json") != "" {
			return true
		}
	}
	return false
}

// marshalCall recognises json.Marshal/json.MarshalIndent calls and
// (*json.Encoder).Encode, returning a display name and the payload
// argument.
func marshalCall(pass *lint.Pass, call *ast.CallExpr) (string, ast.Expr) {
	if len(call.Args) == 0 {
		return "", nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok {
			if pn.Imported().Path() == "encoding/json" &&
				(sel.Sel.Name == "Marshal" || sel.Sel.Name == "MarshalIndent") {
				return "json." + sel.Sel.Name, call.Args[0]
			}
			return "", nil
		}
	}
	if fn := lint.Callee(pass, call); fn != nil && fn.Name() == "Encode" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named, ok := derefNamed(sig.Recv().Type()); ok {
				obj := named.Obj()
				if obj.Name() == "Encoder" && obj.Pkg() != nil && obj.Pkg().Path() == "encoding/json" {
					return "Encoder.Encode", call.Args[0]
				}
			}
		}
	}
	return "", nil
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// anchorPos locates the field of st named by the first segment of path, so
// the finding lands on the field that imports the unordered data.
func anchorPos(st *types.Struct, path string, fallback token.Pos) token.Pos {
	seg := strings.TrimPrefix(path, ".")
	if i := strings.IndexAny(seg, ".["); i >= 0 {
		seg = seg[:i]
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == seg && st.Field(i).Pos().IsValid() {
			return st.Field(i).Pos()
		}
	}
	return fallback
}

// posMatches reports whether loc renders the same file:line as pos.
func posMatches(pass *lint.Pass, pos token.Pos, loc string) bool {
	p := pass.Fset.Position(pos)
	return loc == fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// anyZoneFunc reports whether any function in the package opts into the
// deterministic zone individually, so marshal sites there are still roots
// even when the package itself is unzoned.
func anyZoneFunc(pass *lint.Pass) bool {
	for _, fn := range lint.Functions(pass) {
		if pass.FuncZone(fn.Decl) == lint.ZoneDeterministic {
			return true
		}
	}
	return false
}
