package a

// EvictionStats is the seeded regression for the PR-1 map-order bug class:
// the eviction-pattern histogram was keyed by set index and ranged straight
// into the encoded report, so two identical runs could serialize different
// byte streams and break replicate comparison. jsondet now catches the
// schema itself, before any range loop runs.
type EvictionStats struct {
	Accesses  uint64            `json:"accesses"`
	Evictions map[uint64]uint64 `json:"evictions"` // want `JSON-marshalled type EvictionStats depends on unordered data: EvictionStats\.Evictions is map\[uint64\]uint64`
}
