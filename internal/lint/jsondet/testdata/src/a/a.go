//lint:zone deterministic
package a

import (
	"encoding/json"
	"io"

	"histutil"
)

// Results mirrors a scenario result schema with a map smuggled in.
type Results struct {
	Flips  int            `json:"flips"`
	PerRow map[uint64]int `json:"per_row"` // want `JSON-marshalled type Results depends on unordered data: Results\.PerRow is map\[uint64\]int`
}

// Inner carries the map two levels down; it has no json tags, so it is not
// a root itself — only a fact exporter.
type Inner struct {
	Counts map[string]int
}

// Nested pulls the unordered data in through a slice of structs; the
// finding anchors on the importing field and names the full path.
type Nested struct {
	Name string  `json:"name"`
	Rows []Inner `json:"rows"` // want `JSON-marshalled type Nested depends on unordered data: Nested\.Rows\[\]\.Counts is map\[string\]int \(a\.go:\d+\)`
}

// Report embeds another package's map-backed type; the imported fact names
// the offending field across the package boundary.
type Report struct {
	Hist histutil.Histogram `json:"hist"` // want `JSON-marshalled type Report depends on unordered data: Report\.Hist\.Buckets is map\[int\]uint64 \(histutil\.go:\d+\)`
}

// Payload hides the order dependence behind an interface.
type Payload struct {
	Name  string      `json:"name"`
	Extra interface{} `json:"extra"` // want `JSON-marshalled type Payload depends on unordered data: Payload\.Extra is (any|interface\{\})`
}

// Sorted is clean: the helper's MarshalJSON vouches for its byte stream.
type Sorted struct {
	Hist histutil.SortedHist `json:"hist"`
}

// WithRaw is clean: json.RawMessage implements MarshalJSON.
type WithRaw struct {
	Blob json.RawMessage `json:"blob"`
}

// Skipped is clean: the map is excluded from encoding entirely.
type Skipped struct {
	Flips int            `json:"flips"`
	Cache map[uint64]int `json:"-"`
}

// Annotated asserts out of band that its ordering cannot matter.
type Annotated struct {
	Tags map[string]string `json:"tags"` //lint:allow jsondet single well-known key, ordering is vacuous
}

func encodeMap(m map[string]int) ([]byte, error) {
	return json.Marshal(m) // want `json\.Marshal of map\[string\]int depends on unordered data: the payload is map\[string\]int`
}

func stream(w io.Writer, m map[string]int) error {
	return json.NewEncoder(w).Encode(m) // want `Encoder\.Encode of map\[string\]int depends on unordered data`
}

func emit(r Results) ([]byte, error) {
	return json.Marshal(r) // no finding here: Results already reported at its declaration
}

func emitClean(s Sorted) ([]byte, error) {
	return json.MarshalIndent(s, "", "\t") // clean
}
