// Package histutil is a helper fixture outside any zone: nothing reports
// here, but its map-backed Histogram exports a fact that flags
// deterministic-zone types embedding it.
package histutil

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram is map-backed with no ordering guarantee; its fact carries the
// ".Buckets" path to zone embedders.
type Histogram struct {
	Buckets map[int]uint64 `json:"buckets"`
}

// SortedHist marshals its buckets in key order: MarshalJSON vouches for the
// byte stream, so embedders stay clean.
type SortedHist struct {
	Buckets map[int]uint64
}

// MarshalJSON encodes the buckets sorted by key.
func (s SortedHist) MarshalJSON() ([]byte, error) {
	keys := make([]int, 0, len(s.Buckets))
	for k := range s.Buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	b.WriteByte('[')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"key":%d,"count":%d}`, k, s.Buckets[k])
	}
	b.WriteByte(']')
	return []byte(b.String()), nil
}
