package jsondet_test

import (
	"testing"

	"repro/internal/lint/jsondet"
	"repro/internal/lint/linttest"
)

func TestJsondet(t *testing.T) {
	linttest.Run(t, "testdata", jsondet.Analyzer, "a")
}
