package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one parsed //lint:allow comment.
type Directive struct {
	Pos      token.Position // position of the comment itself
	Analyzer string         // analyzer being allowed
	Reason   string         // free-form justification (may be empty)
}

// directiveSet indexes directives by file and line for fast suppression
// lookups. A directive suppresses diagnostics on its own line (trailing
// comment) and on the line directly below it (standalone comment above the
// offending statement).
type directiveSet struct {
	byLine map[string]map[int][]*Directive
}

const (
	directivePrefix = "//lint:allow"
	zonePrefix      = "//lint:zone"
)

// parseZoneDirective decodes a //lint:zone comment, returning the declared
// zone name and whether the comment is a zone directive at all. Trailing
// "//"-introduced comments are ignored; a bare directive or one with extra
// scope words yields an empty (invalid) name so the caller reports it.
func parseZoneDirective(text string) (name string, ok bool) {
	if !strings.HasPrefix(text, zonePrefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, zonePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //lint:zoned
	}
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return "", true // malformed scope: directive recognised, name invalid
	}
	return fields[0], true
}

// parseDirective decodes a single comment, returning nil if it is not an
// allow directive.
func parseDirective(pos token.Position, text string) *Directive {
	if !strings.HasPrefix(text, directivePrefix) {
		return nil
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //lint:allowfoo
	}
	// A nested "//" starts an ordinary trailing comment, not justification.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	d := &Directive{Pos: pos, Analyzer: fields[0]}
	if len(fields) > 1 {
		d.Reason = strings.Join(fields[1:], " ")
	}
	return d
}

// collectDirectives scans every comment in the files for allow directives.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	set := &directiveSet{byLine: make(map[string]map[int][]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Slash)
				d := parseDirective(pos, c.Text)
				if d == nil {
					continue
				}
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*Directive)
					set.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return set
}

// match returns a directive covering a diagnostic from the named analyzer at
// pos, or nil if none applies.
func (s *directiveSet) match(pos token.Position, analyzer string) *Directive {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.Analyzer == analyzer {
				return d
			}
		}
	}
	return nil
}
