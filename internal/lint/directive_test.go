package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string // "" means: not a directive
		reason   string
	}{
		{"//lint:allow detrand reason words", "detrand", "reason words"},
		{"//lint:allow detrand", "detrand", ""},
		{"//lint:allow\tdetrand\ttabbed justification", "detrand", "tabbed justification"},
		{"//lint:allow detrand reason // trailing comment ignored", "detrand", "reason"},
		{"//lint:allow detrand // only a trailing comment", "detrand", ""},
		{"//lint:allow  detrand   collapsed   spacing", "detrand", "collapsed spacing"},
		{"//lint:allowfoo detrand smushed prefix", "", ""},
		{"//lint:allow", "", ""},
		{"//lint:allow // no analyzer at all", "", ""},
		{"// ordinary comment", "", ""},
		{"//lint:zone deterministic", "", ""},
	}
	for _, c := range cases {
		d := parseDirective(token.Position{}, c.text)
		if c.analyzer == "" {
			if d != nil {
				t.Errorf("parseDirective(%q) = %+v, want nil", c.text, d)
			}
			continue
		}
		if d == nil {
			t.Errorf("parseDirective(%q) = nil, want analyzer %q", c.text, c.analyzer)
			continue
		}
		if d.Analyzer != c.analyzer || d.Reason != c.reason {
			t.Errorf("parseDirective(%q) = (%q, %q), want (%q, %q)",
				c.text, d.Analyzer, d.Reason, c.analyzer, c.reason)
		}
	}
}

func TestParseZoneDirective(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//lint:zone deterministic", "deterministic", true},
		{"//lint:zone host", "host", true},
		{"//lint:zone\thost", "host", true},
		{"//lint:zone deterministic // trailing comment ignored", "deterministic", true},
		// Recognised but malformed: the caller must diagnose these rather
		// than silently ignore a zoning mistake.
		{"//lint:zone", "", true},
		{"//lint:zone deterministic host", "", true},
		{"//lint:zone // comment only", "", true},
		// Not zone directives at all.
		{"//lint:zoned deterministic", "", false},
		{"//lint:allow detrand x", "", false},
		{"// plain comment", "", false},
	}
	for _, c := range cases {
		name, ok := parseZoneDirective(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("parseZoneDirective(%q) = (%q, %v), want (%q, %v)",
				c.text, name, ok, c.name, c.ok)
		}
	}
}

// parseTestFile parses src and returns its fileset and AST for directive and
// zone collection.
func parseTestFile(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestDirectiveSetMatch(t *testing.T) {
	src := `package x

func a() {
	f() //lint:allow detrand trailing directive
	//lint:allow maporder directive above
	g()
	h()
}

//lint:allow wallclock stacked above
func b() { i() } //lint:allow errpanic trailing on the same line
`
	fset, f := parseTestFile(t, src)
	set := collectDirectives(fset, []*ast.File{f})

	at := func(line int) token.Position { return token.Position{Filename: "x.go", Line: line} }

	if set.match(at(4), "detrand") == nil {
		t.Error("trailing directive did not cover its own line")
	}
	if set.match(at(6), "maporder") == nil {
		t.Error("directive above did not cover the next line")
	}
	if set.match(at(7), "maporder") != nil {
		t.Error("directive leaked two lines down")
	}
	if set.match(at(4), "maporder") != nil {
		t.Error("directive matched the wrong analyzer")
	}
	// Two directives covering one line, for different analyzers — the
	// stacked-above plus trailing pattern used at the scenario runner's
	// backoff sites.
	if set.match(at(11), "wallclock") == nil || set.match(at(11), "errpanic") == nil {
		t.Error("stacked and trailing directives did not both cover line 11")
	}
}

func TestCollectZonesDirectives(t *testing.T) {
	src := `//lint:zone host
package x

//lint:zone deterministic
func a() {}

//lint:zone host
func b() {}

func c() {}
`
	fset, f := parseTestFile(t, src)
	zi, diags := collectZones(fset, []*ast.File{f}, "example.com/x")
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if zi.pkg != ZoneHost {
		t.Errorf("package zone = %q, want host", zi.pkg)
	}
	zones := map[string]Zone{}
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok {
			zones[fn.Name.Name] = zi.funcZone(fn)
		}
	}
	if zones["a"] != ZoneDeterministic || zones["b"] != ZoneHost || zones["c"] != ZoneHost {
		t.Errorf("func zones = %v", zones)
	}
}

func TestCollectZonesDefaultMap(t *testing.T) {
	src := "package sim\n\nfunc a() {}\n"
	fset, f := parseTestFile(t, src)
	zi, diags := collectZones(fset, []*ast.File{f}, "repro/internal/sim")
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if zi.pkg != ZoneDeterministic {
		t.Errorf("package zone for repro/internal/sim = %q, want deterministic", zi.pkg)
	}
	zi, _ = collectZones(fset, []*ast.File{f}, "repro/internal/report")
	if zi.pkg != ZoneNone {
		t.Errorf("package zone for repro/internal/report = %q, want none", zi.pkg)
	}
}

func TestCollectZonesDiagnostics(t *testing.T) {
	src := `//lint:zone warp
package x

//lint:zone deterministic host
func a() {}

func b() {
	//lint:zone deterministic
	_ = 1
}
`
	fset, f := parseTestFile(t, src)
	_, diags := collectZones(fset, []*ast.File{f}, "example.com/x")
	var msgs []string
	for _, d := range diags {
		if d.Analyzer != "zone" {
			t.Errorf("diagnostic under analyzer %q, want zone", d.Analyzer)
		}
		msgs = append(msgs, d.Message)
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d diagnostics %v, want 3", len(msgs), msgs)
	}
	for i, want := range []string{"unknown zone", "unknown zone", "misplaced"} {
		if !strings.Contains(msgs[i], want) {
			t.Errorf("diagnostic %d = %q, want it to mention %q", i, msgs[i], want)
		}
	}
}
