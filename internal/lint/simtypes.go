package lint

import (
	"go/types"
	"strings"
)

// isSimNamed reports whether t is the named type sim.<name> (directly or via
// one level of pointer), matching any package whose import path is "sim" or
// ends in "/sim" so that test fixtures with a stub sim package behave like
// the real repro/internal/sim.
func isSimNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "sim" || strings.HasSuffix(path, "/sim")
}

// IsSimRand reports whether t is sim.Rand or *sim.Rand.
func IsSimRand(t types.Type) bool { return isSimNamed(t, "Rand") }

// IsSimCycles reports whether t is sim.Cycles (the simulator's tick type).
func IsSimCycles(t types.Type) bool { return isSimNamed(t, "Cycles") }
