// Package maporder flags `for range` over a map whose loop body is
// sensitive to iteration order. Go randomises map iteration per run, so any
// order-dependent effect inside such a loop — appending to a slice, drawing
// from a random stream, emitting output, or last-write-wins assignments to
// state that outlives the loop — makes simulation results differ between
// identical runs, which silently invalidates every A/B comparison between
// defense configurations.
//
// Order-insensitive bodies are accepted without ceremony: commutative
// accumulations (x += n, n++), monotone min/max guards
// (if v > best { best = v }), deletes, and work on loop-local state. The
// canonical fix for a flagged loop is to collect and sort the keys first;
// when the order provably cannot matter (e.g. the slice is fully sorted by a
// total order afterwards) the loop may carry a justified
// "//lint:allow maporder <why>" directive, which this analyzer refuses to
// honor without the justification.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer implements the maporder check.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose body is order-dependent (appends, rand " +
		"draws, output, last-write-wins assignments); sort keys first",
	RequireReason: true,
	Run:           run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		sorts := sortSites(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypeOf(rs.X); t == nil || !isMap(t) {
				return true
			}
			checkMapRange(pass, rs, sorts)
			return true
		})
	}
	return nil
}

// sortSites records, per target variable, the positions of calls that
// deterministically reorder a slice: sort.Slice/Strings/Ints/... and
// slices.Sort/SortFunc/SortStableFunc. An append inside map iteration is
// harmless when the slice is fully sorted afterwards, which is precisely the
// "collect keys, sort, iterate" idiom this analyzer recommends.
func sortSites(pass *lint.Pass, f *ast.File) map[types.Object][]token.Pos {
	out := make(map[types.Object][]token.Pos)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := pass.ObjectOf(id).(*types.PkgName)
		if !ok {
			return true
		}
		switch pkg.Imported().Path() {
		case "sort":
			switch sel.Sel.Name {
			case "Slice", "SliceStable", "Strings", "Ints", "Float64s", "Sort", "Stable":
			default:
				return true
			}
		case "slices":
			switch sel.Sel.Name {
			case "Sort", "SortFunc", "SortStableFunc":
			default:
				return true
			}
		default:
			return true
		}
		if root := rootIdent(call.Args[0]); root != nil {
			if obj := pass.ObjectOf(root); obj != nil {
				out[obj] = append(out[obj], call.Pos())
			}
		}
		return true
	})
	return out
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *lint.Pass, rs *ast.RangeStmt, sorts map[types.Object][]token.Pos) {
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	monotone := monotoneAssigns(rs.Body)

	var reasons []string
	addReason := func(pos token.Pos, format string, args ...interface{}) {
		line := pass.Fset.Position(pos).Line
		msg := fmt.Sprintf(format, args...)
		reasons = append(reasons, fmt.Sprintf("%s (line %d)", msg, line))
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, n, monotone, sorts, addReason)
		case *ast.CallExpr:
			checkCall(pass, n, addReason)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesAny(pass, res, loopVars) {
					addReason(n.Pos(), "returns a value derived from the iteration")
					break
				}
			}
		}
		return true
	})

	if len(reasons) == 0 {
		return
	}
	if len(reasons) > 3 {
		reasons = reasons[:3]
	}
	pass.Reportf(rs.For,
		"map iteration order leaks into results: %s; sort the keys first or add //lint:allow maporder <why>",
		strings.Join(reasons, "; "))
}

// checkAssign flags plain `=` writes (and order-dependent string
// concatenation) whose target outlives the loop. Commutative numeric
// compound assignments are accepted, as are monotone min/max guards.
func checkAssign(pass *lint.Pass, rs *ast.RangeStmt, as *ast.AssignStmt,
	monotone map[*ast.AssignStmt]bool, sorts map[types.Object][]token.Pos,
	addReason func(token.Pos, string, ...interface{})) {
	switch as.Tok {
	case token.DEFINE:
		return // declares loop-local state
	case token.ASSIGN:
		if monotone[as] {
			return
		}
	case token.ADD_ASSIGN:
		// x += y is commutative for numbers but builds an order-dependent
		// sequence for strings.
		if len(as.Lhs) == 1 {
			if t := pass.TypeOf(as.Lhs[0]); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					if root := rootIdent(as.Lhs[0]); root != nil {
						if obj := pass.ObjectOf(root); obj != nil && !within(obj.Pos(), rs) {
							addReason(as.Pos(), "concatenates onto %s in iteration order", root.Name)
						}
					}
				}
			}
		}
		return
	default:
		return // other compound ops accumulate commutatively
	}
	for i, lhs := range as.Lhs {
		root := rootIdent(lhs)
		if root == nil || root.Name == "_" {
			continue
		}
		obj := pass.ObjectOf(root)
		if obj == nil || within(obj.Pos(), rs) {
			continue // loop-local target: each iteration independent
		}
		if isAppend(as, i) {
			if sortedAfter(sorts, obj, rs) {
				continue // collect-then-sort: the canonical accepted idiom
			}
			addReason(as.Pos(), "appends to %s in iteration order", root.Name)
		} else {
			addReason(as.Pos(), "last-write-wins assignment to %s", root.Name)
		}
	}
}

func checkCall(pass *lint.Pass, call *ast.CallExpr, addReason func(token.Pos, string, ...interface{})) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "print" || fun.Name == "println" {
			if _, ok := pass.ObjectOf(fun).(*types.Builtin); ok {
				addReason(call.Pos(), "writes output via %s", fun.Name)
			}
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := pass.ObjectOf(id).(*types.PkgName); ok {
				if pkg.Imported().Path() == "fmt" && isPrintName(name) && !strings.HasPrefix(name, "Sprint") {
					addReason(call.Pos(), "writes output via fmt.%s", name)
				}
				return
			}
		}
		if lint.IsSimRand(pass.TypeOf(fun.X)) {
			addReason(call.Pos(), "draws from a *sim.Rand (stream advance depends on iteration order)")
			return
		}
		if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") || name == "AddRow" {
			addReason(call.Pos(), "writes output via %s", name)
		}
	}
}

func isPrintName(name string) bool {
	return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
		strings.HasPrefix(name, "Sprint")
}

// sortedAfter reports whether obj is the target of a deterministic sort call
// positioned after the map-range statement.
func sortedAfter(sorts map[types.Object][]token.Pos, obj types.Object, rs *ast.RangeStmt) bool {
	for _, pos := range sorts[obj] {
		if pos > rs.End() {
			return true
		}
	}
	return false
}

// monotoneAssigns returns the assignments forming min/max guard patterns:
//
//	if v > best { best = v }
//	if ok && (best < 0 || v < best) { best = v }
//
// i.e. a guarded assignment whose condition contains a comparison between
// exactly the assigned expression and value; such selections converge to the
// same result in any iteration order.
func monotoneAssigns(body *ast.BlockStmt) map[*ast.AssignStmt]bool {
	out := make(map[*ast.AssignStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Else != nil {
			return true
		}
		var leaves [][2]string
		collectComparisons(ifs.Cond, &leaves)
		if len(leaves) == 0 {
			return true
		}
		for _, stmt := range ifs.Body.List {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			l, r := types.ExprString(as.Lhs[0]), types.ExprString(as.Rhs[0])
			for _, leaf := range leaves {
				if (l == leaf[0] && r == leaf[1]) || (l == leaf[1] && r == leaf[0]) {
					out[as] = true
					break
				}
			}
		}
		return true
	})
	return out
}

// collectComparisons gathers the ordered-comparison leaves of a condition,
// looking through parentheses and boolean connectives.
func collectComparisons(e ast.Expr, out *[][2]string) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		collectComparisons(e.X, out)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR:
			collectComparisons(e.X, out)
			collectComparisons(e.Y, out)
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			*out = append(*out, [2]string{types.ExprString(e.X), types.ExprString(e.Y)})
		}
	}
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isAppend(as *ast.AssignStmt, i int) bool {
	if i >= len(as.Rhs) {
		return false
	}
	call, ok := as.Rhs[i].(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

func within(pos token.Pos, n ast.Node) bool {
	return n.Pos() <= pos && pos <= n.End()
}

func usesAny(pass *lint.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
