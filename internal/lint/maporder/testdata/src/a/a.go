// Package a exercises the maporder analyzer: order-dependent map-iteration
// bodies are caught, commutative accumulation and sorted-key iteration are
// accepted, and a justified directive suppresses a provably-safe loop.
package a

import (
	"fmt"
	"sort"

	"sim"
)

func appends(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys`
		keys = append(keys, k)
	}
	return keys
}

func output(m map[string]int) {
	for k, v := range m { // want `writes output via fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func draws(m map[string]int, r *sim.Rand) int {
	n := 0
	for range m { // want `draws from a \*sim\.Rand`
		n += r.Intn(2)
	}
	return n
}

func lastWins(m map[string]int) string {
	last := ""
	for k := range m { // want `last-write-wins assignment to last`
		last = k
	}
	return last
}

func returnsArbitrary(m map[string]int) string {
	for k := range m { // want `returns a value derived from the iteration`
		return k
	}
	return ""
}

func concats(m map[string]int) string {
	s := ""
	for k := range m { // want `concatenates onto s in iteration order`
		s += k
	}
	return s
}

func commutative(m map[string]int) (int, int) {
	total, peak := 0, 0
	for _, v := range m { // accepted: sums and monotone max are order-free
		total += v
		if v > peak {
			peak = v
		}
	}
	return total, peak
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // accepted: keys are fully sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys { // accepted: iterating the sorted slice
		out = append(out, k)
	}
	return out
}

func minQualifying(m map[int]int) int {
	slot := -1
	for id, n := range m { // accepted: guarded min-selection converges in any order
		if n == 6 && (slot < 0 || id < slot) {
			slot = id
		}
	}
	return slot
}

func unorderedBag(m map[string]int) []int {
	var bag []int
	for _, v := range m { //lint:allow maporder consumed as an order-free bag by the caller
		bag = append(bag, v)
	}
	return bag
}

func bareDirective(m map[string]int) []int {
	var out []int
	for _, v := range m { //lint:allow maporder // want `needs a justification`
		out = append(out, v)
	}
	return out
}
