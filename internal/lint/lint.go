// Package lint is a small, dependency-free static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, specialised for the determinism
// and correctness invariants of this simulator. It exists because the
// reproduction's headline numbers (accesses-to-first-flip, detection
// latencies, overhead percentages) are only meaningful if the simulator is
// bit-for-bit deterministic: no wall-clock time, no ambient math/rand state,
// and no Go map-iteration order may leak into simulation results.
//
// The framework deliberately mirrors the x/tools API shape (Analyzer, Pass,
// Diagnostic) so the analyzers could be ported to a real multichecker with
// mechanical changes, but it is built entirely on the standard library's
// go/ast, go/parser and go/types packages so the repository stays free of
// external module downloads.
//
// Suppression is handled centrally: a comment of the form
//
//	//lint:allow <analyzer> <justification...>
//
// on the offending line, or on the line immediately above it, silences that
// analyzer for that line. Analyzers that set RequireReason refuse directives
// without a justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a single lower-case word.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// RequireReason, when set, makes a bare "//lint:allow <name>" directive
	// itself a diagnostic: suppressions must carry a justification.
	RequireReason bool

	// Facts lists prototype values (nil pointers suffice) of every fact
	// type the analyzer exports, so the vet driver can serialize them
	// across compilation units.
	Facts []Fact

	// Run performs the analysis on one package and reports findings
	// through the pass.
	Run func(*Pass) error
}

// A Pass provides one analyzer with the parsed and type-checked view of a
// single package, and collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	zones *zoneInfo
	dirs  *directiveSet
	store *FactStore
	diags *[]Diagnostic
}

// A Diagnostic is a single finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos. Suppression by //lint:allow
// directives is applied afterwards by RunAnalyzers, not here, so analyzers
// never need to know about directives.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ObjectOf returns the object denoted by the identifier, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// PackageZone returns the zone the analyzed package is in: its explicit
// //lint:zone directive if present, else the DefaultZones entry for its
// import path, else ZoneNone.
func (p *Pass) PackageZone() Zone { return p.zones.pkg }

// FuncZone returns fn's effective zone: a //lint:zone directive in its doc
// comment overrides the package zone.
func (p *Pass) FuncZone(fn *ast.FuncDecl) Zone { return p.zones.funcZone(fn) }

// Allowed reports whether a "//lint:allow <analyzer>" directive covers pos
// for the running analyzer. Fact-propagating analyzers consult it at taint
// sources: an allowed source is absorbed — neither reported nor propagated
// to callers — because the directive asserts the host-side effect is
// contained there. A bare directive does not count for RequireReason
// analyzers, so the missing-justification diagnostic still surfaces.
func (p *Pass) Allowed(pos token.Pos) bool {
	d := p.dirs.match(p.Fset.Position(pos), p.Analyzer.Name)
	if d == nil {
		return false
	}
	return d.Reason != "" || !p.Analyzer.RequireReason
}

// ExportObjectFact attaches a fact of the running analyzer to obj, making it
// visible to later passes over packages that import this one.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	p.store.export(p.Analyzer.Name, obj, f)
}

// ImportObjectFact copies the running analyzer's fact of dst's type for obj
// into dst, reporting whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, dst Fact) bool {
	return p.store.imported(p.Analyzer.Name, obj, dst)
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving diagnostics sorted by position. Packages are visited in
// dependency order with one shared fact store, so facts a package exports
// are visible when its importers are analyzed. Directive suppression happens
// here: each package's files are scanned once for //lint:allow comments and
// matching diagnostics are dropped (or, for RequireReason analyzers with a
// bare directive, replaced with a complaint about the missing justification).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersStore(pkgs, analyzers, NewFactStore())
}

// RunAnalyzersStore is RunAnalyzers against a caller-owned fact store — the
// entry point for the vet unit driver, which pre-populates the store with
// the serialized facts of the unit's dependencies.
func RunAnalyzersStore(pkgs []*Package, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range sortDeps(pkgs) {
		dirs := collectDirectives(pkg.Fset, pkg.Files)
		zones, zdiags := collectZones(pkg.Fset, pkg.Files, pkg.Path)
		out = append(out, zdiags...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				zones:    zones,
				dirs:     dirs,
				store:    store,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %v", pkg.Path, a.Name, err)
			}
		}
		byName := make(map[string]*Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		for _, d := range raw {
			dir := dirs.match(d.Pos, d.Analyzer)
			if dir == nil {
				out = append(out, d)
				continue
			}
			if a := byName[d.Analyzer]; a != nil && a.RequireReason && dir.Reason == "" {
				out = append(out, Diagnostic{
					Analyzer: d.Analyzer,
					Pos:      dir.Pos,
					Message: fmt.Sprintf(
						"//lint:allow %s needs a justification (\"//lint:allow %s <why this is safe>\")",
						d.Analyzer, d.Analyzer),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out, nil
}

// sortDeps orders packages so every package follows the packages it imports
// (restricted to the given set), keeping the input order among independent
// packages. Fact propagation depends on this: an importer must be analyzed
// after its dependencies have exported their facts.
func sortDeps(pkgs []*Package) []*Package {
	byTypes := make(map[*types.Package]*Package, len(pkgs))
	for _, pkg := range pkgs {
		byTypes[pkg.Types] = pkg
	}
	out := make([]*Package, 0, len(pkgs))
	visited := make(map[*Package]bool, len(pkgs))
	var visit func(*Package)
	visit = func(pkg *Package) {
		if visited[pkg] {
			return
		}
		visited[pkg] = true
		for _, imp := range pkg.Types.Imports() {
			if dep, ok := byTypes[imp]; ok {
				visit(dep)
			}
		}
		out = append(out, pkg)
	}
	for _, pkg := range pkgs {
		visit(pkg)
	}
	return out
}
