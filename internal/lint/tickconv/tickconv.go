// Package tickconv flags narrowing conversions of the simulator's cycle
// counter type. sim.Cycles is a uint64 instant/duration; experiments run for
// billions of cycles (a simulated minute at 2.6 GHz is 1.56e11 ticks, past
// the uint32 range), so converting a cycle count to int/int32/uint32 — or a
// signed 64-bit type where wraparound comparisons go negative — silently
// corrupts refresh-window arithmetic in long-running experiments.
// Conversions to uint64 and to floating point (for reporting) are exempt.
package tickconv

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer implements the tickconv check.
var Analyzer = &lint.Analyzer{
	Name: "tickconv",
	Doc: "flag narrowing integer conversions of sim.Cycles counters " +
		"(uint64 → int/uint32/...) that truncate long-experiment tick counts",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			src := pass.TypeOf(call.Args[0])
			if !lint.IsSimCycles(src) {
				return true
			}
			dst := tv.Type
			if kindOK(dst) {
				return true
			}
			pass.Reportf(call.Pos(),
				"conversion %s(%s) truncates a cycle counter (sim.Cycles is uint64; experiments exceed 2^32 ticks); keep tick math in sim.Cycles or uint64",
				types.ExprString(call.Fun), types.ExprString(call.Args[0]))
			return true
		})
	}
	return nil
}

// kindOK reports whether converting a sim.Cycles value into dst preserves
// the full counter range: uint64-underlying types and floats (reporting
// math) are fine, every narrower or signed integer type is not.
func kindOK(dst types.Type) bool {
	b, ok := dst.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint64, types.Float32, types.Float64, types.String:
		return true
	}
	return false
}
