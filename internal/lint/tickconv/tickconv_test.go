package tickconv_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/tickconv"
)

func TestTickconv(t *testing.T) {
	linttest.Run(t, "testdata", tickconv.Analyzer, "a")
}
