// Package a exercises the tickconv analyzer: narrowing conversions of
// sim.Cycles are caught, full-range and reporting conversions are accepted,
// and a provably-bounded conversion passes with a justified directive.
package a

import "sim"

func narrowing(now sim.Cycles) {
	_ = int(now)    // want `conversion int\(now\) truncates a cycle counter`
	_ = uint32(now) // want `conversion uint32\(now\) truncates a cycle counter`
	_ = int64(now)  // want `conversion int64\(now\) truncates a cycle counter`
	type slot uint16
	_ = slot(now) // want `conversion slot\(now\) truncates a cycle counter`
}

func accepted(now, deadline sim.Cycles) float64 {
	u := uint64(now)          // full-range conversion
	f := float64(now) / 2.6e9 // reporting math
	_ = sim.Cycles(u)         // widening back into the tick type
	if now > deadline {       // comparisons stay in sim.Cycles
		f += float64(now - deadline)
	}
	return f
}

func bounded(now sim.Cycles) int {
	return int(now % 8) //lint:allow tickconv modulus bounds the value below 8
}
