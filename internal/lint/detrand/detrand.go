// Package detrand forbids ambient sources of nondeterminism in simulation
// code. Every stochastic decision in the simulator must flow from an owned
// *sim.Rand stream, and every timestamp from the simulated cycle clock:
// the paper's measured attack characteristics (Table 1's accesses-to-first-
// flip counts) are only reproducible when re-running an experiment replays
// the exact same event sequence. A single time.Now or math/rand call in the
// hot path silently turns every A/B comparison between defenses into noise.
//
// Host-side CLIs that want to report real elapsed time may do so behind an
// explicit "//lint:allow detrand <why>" directive.
package detrand

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/lint"
)

// Analyzer implements the detrand check.
var Analyzer = &lint.Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand, crypto/rand and wall-clock time sources in " +
		"simulation code; stochastic behaviour must come from *sim.Rand " +
		"and timing from the sim cycle clock",
	Run: run,
}

// bannedImports are packages whose mere presence injects ambient
// nondeterminism (global seeds, OS entropy).
var bannedImports = map[string]string{
	"math/rand":    "use a *sim.Rand stream owned by the component instead",
	"math/rand/v2": "use a *sim.Rand stream owned by the component instead",
	"crypto/rand":  "OS entropy is never appropriate inside the simulator",
}

// bannedTimeFuncs are the wall-clock entry points of package time. Pure
// types and constants (time.Duration, time.Millisecond) remain fine: they
// are used to express simulated durations.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok {
				pass.Reportf(spec.Pos(),
					"import of %q injects ambient nondeterminism into the simulation; %s",
					path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.ObjectOf(id).(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the host clock; derive timing from the simulated cycle clock (sim.Cycles/sim.Freq)",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
