// Package a exercises the detrand analyzer: ambient nondeterminism is
// caught, sim.Rand-based code and pure time arithmetic are accepted, and an
// explicit directive lets host-side timing through.
package a

import (
	"math/rand" // want `import of "math/rand" injects ambient nondeterminism`
	"time"

	"sim"
)

func violations() {
	_ = rand.Int()
	start := time.Now()           // want `time\.Now reads the host clock`
	_ = time.Since(start)         // want `time\.Since reads the host clock`
	time.Sleep(time.Millisecond)  // want `time\.Sleep reads the host clock`
	_ = time.After(2 * time.Hour) // want `time\.After reads the host clock`
}

func accepted() time.Duration {
	r := sim.NewRand(1)
	_ = r.Intn(10)            // stochastic behaviour from an owned stream
	d := 5 * time.Millisecond // time arithmetic expresses simulated durations
	return d
}

func hostTiming() float64 {
	start := time.Now() //lint:allow detrand host-side CLI reports real elapsed time
	var total float64
	//lint:allow detrand host-side CLI reports real elapsed time
	total += time.Since(start).Seconds()
	return total
}
