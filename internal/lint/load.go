package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/sim"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of a single module from source.
// Module-internal imports are resolved against the module directory;
// standard-library imports go through the toolchain's export data
// (go/importer). Test files are never loaded: the determinism invariants
// apply to simulation code, and tests are free to use wall-clock timeouts.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // memoized by import path
	loading map[string]bool     // import cycle detection
}

// NewLoader locates the enclosing module of dir (via go.mod) and returns a
// loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		std:        importer.Default(),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Fset returns the file set shared by every package this loader produced.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Expand resolves package patterns ("./...", "./internal/sim",
// "repro/cmd/...") into the sorted list of module import paths that contain
// buildable Go files. Directories named testdata or vendor, and hidden
// directories, are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		rel := pat
		rel = strings.TrimPrefix(rel, l.ModulePath+"/")
		if rel == l.ModulePath {
			rel = "."
		}
		rel = strings.TrimPrefix(rel, "./")
		recursive := false
		if rel == "..." {
			rel, recursive = ".", true
		} else if strings.HasSuffix(rel, "/...") {
			rel, recursive = strings.TrimSuffix(rel, "/..."), true
		}
		base := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			add(l.dirToPath(base))
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(l.dirToPath(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) dirToPath(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// Load returns the type-checked package for a module import path, loading it
// (and, transitively, its module-internal dependencies) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(path, l.ModulePath)
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	pkg, err := l.loadDir(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) loadDir(path, dir string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %v", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var terrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(terrs) > 0 {
		max := len(terrs)
		if max > 5 {
			max = 5
		}
		msgs := make([]string, 0, max)
		for _, e := range terrs[:max] {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type errors in %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// loaderImporter adapts the Loader to the types.Importer interface, routing
// module-internal paths back through Load and everything else to the
// standard-library importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadPatterns is the convenience entry used by the driver: expand the
// patterns and load every matching package.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
