package lint

import (
	"go/ast"
	"go/types"
)

// Functions returns the package's declared functions and methods paired
// with their bodies, in source order. Calls inside function literals belong
// to the enclosing declaration: a closure runs on whatever path its owner
// runs on.
func Functions(pass *Pass) []FuncNode {
	var out []FuncNode
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.ObjectOf(fn.Name).(*types.Func)
			if !ok {
				continue
			}
			out = append(out, FuncNode{Obj: obj, Decl: fn})
		}
	}
	return out
}

// A FuncNode is one declared function with its type-checker object.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
}

// Callee resolves the statically-known callee of a call expression: a named
// function, a method through a selector, or a qualified pkg.Func reference.
// Calls through function values, interfaces whose dynamic method cannot be
// identified, and built-ins resolve to nil.
func Callee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// ExportedAPI reports whether fn is part of the package's exported API: an
// exported package-level function, or an exported method on an exported
// receiver type.
func ExportedAPI(pass *Pass, fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	obj, ok := pass.ObjectOf(fn.Name).(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := namedOf(recv.Type())
	return named != nil && named.Obj().Exported()
}

// FuncDisplayName renders fn for a diagnostic: "Name" for functions in the
// analyzed package, "pkg.Name" for imported ones, with "Type.Name" for
// methods.
func FuncDisplayName(pass *Pass, fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
