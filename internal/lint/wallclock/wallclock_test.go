package wallclock_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	linttest.Run(t, "testdata", wallclock.Analyzer, "a")
}
