// Package wallclock proves, across package boundaries, that no
// deterministic-zone code can reach the host clock. detrand already flags
// syntactic time.Now/time.Since/time.NewTicker calls file by file; wallclock
// closes the remaining hole — a zone function calling an innocent-looking
// helper in another package that reads the clock three frames down. It
// propagates a "reaches the wall clock" fact along the call graph, so the
// helper's home package records the taint once and every importer sees it.
//
// An allow directive on the clock-reading call absorbs the taint: the
// annotated site (the scenario runner's retry backoff) is asserted to keep
// host time out of simulated state, so its callers stay clean. Calls through
// function values and interfaces are not tracked, and neither are standard
// library internals: the invariant is about module code the repository
// controls.
package wallclock

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"

	"repro/internal/lint"
)

// usesWallClock marks a function from which a host-clock call is reachable.
type usesWallClock struct {
	// Call is the ultimate clock entry point, e.g. "time.Now".
	Call string `json:"call"`
	// Pos locates that call (file:line).
	Pos string `json:"pos"`
	// Via names the callee chain from the fact's function to the call,
	// e.g. "flushLoop → syncNow"; empty for a direct call.
	Via string `json:"via,omitempty"`
}

func (*usesWallClock) AFact() {}

// Analyzer implements the wallclock check.
var Analyzer = &lint.Analyzer{
	Name: "wallclock",
	Doc: "forbid host-clock reads (time.Now/Since/Ticker/Timer/Sleep) " +
		"reachable from deterministic-zone code, across package boundaries",
	RequireReason: true,
	Facts:         []lint.Fact{(*usesWallClock)(nil)},
	Run:           run,
}

// clockFuncs are the wall-clock entry points of package time. Pure types and
// constants (time.Duration, time.Millisecond) express simulated durations
// and stay legal.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// site is one taint source inside a function body.
type site struct {
	pos  ast.Node
	call string // direct clock call name ("time.Now"), or "" for an edge
	fn   *types.Func
}

func run(pass *lint.Pass) error {
	funcs := lint.Functions(pass)
	sites := make(map[*types.Func][]site, len(funcs))
	local := make(map[*types.Func]*ast.FuncDecl, len(funcs))
	for _, fn := range funcs {
		local[fn.Obj] = fn.Decl
	}
	for _, fn := range funcs {
		sites[fn.Obj] = collect(pass, fn.Decl)
	}

	// Taint to fixpoint: a function reaches the clock if it contains a
	// direct clock call, calls an imported function whose fact says so, or
	// calls a tainted function of this package.
	taint := make(map[*types.Func]*usesWallClock)
	reaches := func(fn *types.Func) *usesWallClock {
		if w, ok := taint[fn]; ok {
			return w
		}
		if _, isLocal := local[fn]; isLocal {
			return nil
		}
		var fact usesWallClock
		if pass.ImportObjectFact(fn, &fact) {
			return &fact
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if taint[fn.Obj] != nil {
				continue
			}
			for _, s := range sites[fn.Obj] {
				if s.call != "" {
					taint[fn.Obj] = &usesWallClock{Call: s.call, Pos: posString(pass, s.pos)}
					changed = true
					break
				}
				if w := reaches(s.fn); w != nil {
					via := lint.FuncDisplayName(pass, s.fn)
					if w.Via != "" {
						via += " → " + w.Via
					}
					taint[fn.Obj] = &usesWallClock{Call: w.Call, Pos: w.Pos, Via: via}
					changed = true
					break
				}
			}
		}
	}
	for fn, w := range taint {
		pass.ExportObjectFact(fn, w)
	}

	// Report root causes in deterministic-zone functions: direct clock
	// calls, and call edges into tainted code the zone does not own (other
	// packages, or same-package functions opted out of the zone). A
	// zone-internal tainted callee is its own root and reports there.
	for _, fn := range funcs {
		if pass.FuncZone(fn.Decl) != lint.ZoneDeterministic {
			continue
		}
		for _, s := range sites[fn.Obj] {
			if s.call != "" {
				pass.Reportf(s.pos.Pos(),
					"%s reads the host clock in deterministic-zone code; derive timing from the simulated cycle clock (sim.Cycles/sim.Freq)",
					s.call)
				continue
			}
			w := reaches(s.fn)
			if w == nil {
				continue
			}
			if decl, isLocal := local[s.fn]; isLocal && pass.FuncZone(decl) == lint.ZoneDeterministic {
				continue // reported at its own root inside the zone
			}
			msg := "call to %s reaches %s (%s) from deterministic-zone code"
			if w.Via != "" {
				pass.Reportf(s.pos.Pos(), msg+" via %s", lint.FuncDisplayName(pass, s.fn), w.Call, w.Pos, w.Via)
			} else {
				pass.Reportf(s.pos.Pos(), msg, lint.FuncDisplayName(pass, s.fn), w.Call, w.Pos)
			}
		}
	}
	return nil
}

// collect gathers the taint sources of one declaration: direct clock calls
// and statically-resolved call edges. Allowed sites are absorbed here, so
// they neither report nor propagate.
func collect(pass *lint.Pass, decl *ast.FuncDecl) []site {
	var out []site
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := clockCall(pass, call); ok {
			if !pass.Allowed(call.Pos()) {
				out = append(out, site{pos: call, call: name})
			}
			return true
		}
		if fn := lint.Callee(pass, call); fn != nil && fn.Pkg() != nil {
			if !pass.Allowed(call.Pos()) {
				out = append(out, site{pos: call, fn: fn})
			}
		}
		return true
	})
	return out
}

// clockCall reports whether call is a direct wall-clock entry point of
// package time, returning its display name.
func clockCall(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := pass.ObjectOf(id).(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "time" || !clockFuncs[sel.Sel.Name] {
		return "", false
	}
	return "time." + sel.Sel.Name, true
}

// posString renders a witness position as "file.go:12" — basename only, so
// fact payloads and messages are stable across checkouts and drivers.
func posString(pass *lint.Pass, n ast.Node) string {
	p := pass.Fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
