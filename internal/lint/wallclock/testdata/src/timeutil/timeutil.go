// Package timeutil is a host-side helper fixture: it is outside any
// determinism zone, so nothing here is reported — but the analyzer exports
// facts recording which of these functions reach the wall clock, and the
// zone package importing it demonstrates the cross-package findings.
package timeutil

import "time"

// Stamp reads the host clock directly.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Elapsed reaches the clock one frame down; the fact records the chain.
func Elapsed() int64 {
	return Stamp()
}

// Pure is clock-free time arithmetic; it gets no fact.
func Pure(d time.Duration) time.Duration {
	return 2 * d
}

// Clock is a tiny host clock abstraction.
type Clock struct{}

// Read is a tainted method: method facts propagate too.
func (Clock) Read() time.Time {
	return time.Now()
}
