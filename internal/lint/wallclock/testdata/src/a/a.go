//lint:zone deterministic
package a

import (
	"time"

	"timeutil"
)

func direct() {
	_ = time.Now() // want `time\.Now reads the host clock in deterministic-zone code`
}

func crossPackage() int64 {
	return timeutil.Stamp() // want `call to timeutil\.Stamp reaches time\.Now \(timeutil\.go:11\)`
}

func crossPackageChain() int64 {
	return timeutil.Elapsed() // want `call to timeutil\.Elapsed reaches time\.Now \(timeutil\.go:11\) from deterministic-zone code via Stamp`
}

func crossPackageMethod() time.Time {
	var c timeutil.Clock
	return c.Read() // want `call to timeutil\.Clock\.Read reaches time\.Now`
}

// tickHelper is a zone-internal root: the direct call reports here, and
// zone callers of it stay clean — fixing this one site fixes them all.
func tickHelper() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the host clock`
}

func callsZoneInternal() {
	tickHelper() // no finding: the root is reported inside the zone
}

//lint:zone host
func hostPath() time.Duration {
	start := time.Now() // no finding: this function opted out of the zone
	return time.Since(start)
}

func callsHostPath() {
	_ = hostPath() // want `call to hostPath reaches time\.Now`
}

func backoff(d time.Duration) {
	t := time.NewTimer(d) //lint:allow wallclock retry backoff is host wall-clock by design
	<-t.C
}

func callsBackoff() {
	backoff(time.Millisecond) // no finding: the allowed site absorbed the taint
}

func accepted(d time.Duration) time.Duration {
	return timeutil.Pure(d) + 5*time.Millisecond // clock-free helpers and duration arithmetic are fine
}
