// Package linttest is a fixture-driven test harness for lint analyzers,
// modelled on golang.org/x/tools/go/analysis/analysistest but built only on
// the standard library.
//
// Fixture packages live under testdata/src/<name>. Each line that should
// trigger a diagnostic carries a trailing comment of the form
//
//	// want "regexp"
//
// (several quoted regexps may follow one want). The harness loads the
// fixture, runs the analyzer with the framework's normal //lint:allow
// suppression in force, and fails the test on any unexpected or missing
// diagnostic — so fixtures can demonstrate caught violations, accepted
// patterns, and directive-based suppressions side by side.
package linttest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads each fixture package under testdata/src — plus, transitively,
// every fixture package they import — and checks the analyzer's diagnostics
// against the // want comments across all loaded files. All loaded packages
// are analyzed in one dependency-ordered session sharing a fact store, so
// fixtures can demonstrate cross-package fact propagation: a helper package
// exports facts, and a dependent package's wants assert the findings those
// facts produce.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgNames ...string) {
	t.Helper()
	l := &fixtureLoader{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		std:  importer.Default(),
		pkgs: make(map[string]*lint.Package),
	}
	for _, name := range pkgNames {
		if _, err := l.load(name); err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
	}
	diags, err := lint.RunAnalyzers(l.order, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %v: %v", a.Name, pkgNames, err)
	}
	var files []*ast.File
	for _, pkg := range l.order {
		files = append(files, pkg.Files...)
	}
	checkWants(t, l.fset, files, diags)
}

type fixtureLoader struct {
	src   string
	fset  *token.FileSet
	std   types.Importer
	pkgs  map[string]*lint.Package
	order []*lint.Package // load-completion (dependency) order
}

func (l *fixtureLoader) load(name string) (*lint.Package, error) {
	if pkg, ok := l.pkgs[name]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(name))
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, fname := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, fname), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var terrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(name, l.fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("type errors in fixture %s: %v", name, terrs[0])
	}
	pkg := &lint.Package{
		Path:  name,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[name] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// Import resolves fixture-local imports (any path with a directory under
// testdata/src) and defers the rest to the toolchain importer.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if hasDir(filepath.Join(l.src, filepath.FromSlash(path))) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func hasDir(p string) bool {
	fi, err := os.Stat(p)
	return err == nil && fi.IsDir()
}

// A want is one expected-diagnostic regexp at a file:line.
type want struct {
	pos token.Position
	re  *regexp.Regexp
	hit bool
}

var stringLitRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					// A want marker may follow other content in the same
					// comment, e.g. `//lint:allow foo // want "..."`.
					if i := strings.Index(text, "// want "); i >= 0 {
						rest, ok = text[i+len("// want "):], true
					}
				}
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				lits := stringLitRe.FindAllString(rest, -1)
				if len(lits) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, c.Text)
					continue
				}
				for _, lit := range lits {
					var pat string
					if lit[0] == '`' {
						pat = lit[1 : len(lit)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(lit)
						if err != nil {
							t.Errorf("%s: bad want string %s: %v", pos, lit, err)
							continue
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{pos: pos, re: re})
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.pos.Filename != d.Pos.Filename || w.pos.Line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.re)
		}
	}
}
