// Package seedflow proves that every random stream constructed in
// deterministic-zone code derives its seed from the experiment Spec. The
// replicate contract (journal resume, seeded retries, cross-run
// reproducibility) holds only when seeds flow Spec.Seed → ReplicateSeed →
// Split substreams; a sim.NewRand(1234) buried in a helper silently pins
// every replicate to one stream, and a time-derived seed destroys
// reproducibility outright.
//
// The analyzer classifies the provenance of every seed expression reaching a
// sim.Rand construction (sim.NewRand, Rand.Seed, or any wrapper returning a
// *sim.Rand):
//
//   - good: parameters and their fields, ReplicateSeed results, draws from
//     an existing sim.Rand (Split, Uint64). Good provenance dominates
//     constants, so salting a spec seed with a literal stays legal.
//   - bad: package-level variables and host-clock reads. Bad dominates
//     everything: mixing the clock into a spec seed is still a finding.
//   - neutral: constants only — a fixed stream, which is exactly the PR-1
//     bug class where a default seed masked a replicate wiring error.
//
// Functions that hand out fixed or clock-derived streams export a fact, so a
// zone package calling another package's DefaultRNG() is flagged at the call
// site. Opaque helper calls in seed expressions are trusted (no false
// positives); an //lint:allow on the construction absorbs both report and
// fact.
package seedflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"

	"repro/internal/lint"
)

// unseededRand marks a function that constructs or returns a sim.Rand whose
// seed does not derive from caller-provided state.
type unseededRand struct {
	// What describes the offending provenance: "constants only",
	// "package-level var x", "the host clock".
	What string `json:"what"`
	// Pos locates the construction (file.go:line).
	Pos string `json:"pos"`
	// Via names the callee chain for indirect taint; empty when the
	// construction is in the function's own body.
	Via string `json:"via,omitempty"`
}

func (*unseededRand) AFact() {}

// Analyzer implements the seedflow check.
var Analyzer = &lint.Analyzer{
	Name: "seedflow",
	Doc: "require every sim.Rand constructed in deterministic-zone code to " +
		"derive its seed from Spec/ReplicateSeed state, not literals, " +
		"globals or the clock",
	RequireReason: true,
	Facts:         []lint.Fact{(*unseededRand)(nil)},
	Run:           run,
}

type site struct {
	pos  ast.Node
	what string // provenance description, or "" for a call edge
	desc string // display name of the constructor, for direct sites
	fn   *types.Func
}

func run(pass *lint.Pass) error {
	funcs := lint.Functions(pass)
	local := make(map[*types.Func]*ast.FuncDecl, len(funcs))
	sites := make(map[*types.Func][]site, len(funcs))
	for _, fn := range funcs {
		local[fn.Obj] = fn.Decl
	}
	for _, fn := range funcs {
		sites[fn.Obj] = collect(pass, fn.Decl)
	}

	taint := make(map[*types.Func]*unseededRand)
	reaches := func(fn *types.Func) *unseededRand {
		if w, ok := taint[fn]; ok {
			return w
		}
		if _, isLocal := local[fn]; isLocal {
			return nil
		}
		var fact unseededRand
		if pass.ImportObjectFact(fn, &fact) {
			return &fact
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if taint[fn.Obj] != nil {
				continue
			}
			for _, s := range sites[fn.Obj] {
				if s.what != "" {
					taint[fn.Obj] = &unseededRand{What: s.what, Pos: posString(pass, s.pos)}
					changed = true
					break
				}
				if w := reaches(s.fn); w != nil {
					via := lint.FuncDisplayName(pass, s.fn)
					if w.Via != "" {
						via += " → " + w.Via
					}
					taint[fn.Obj] = &unseededRand{What: w.What, Pos: w.Pos, Via: via}
					changed = true
					break
				}
			}
		}
	}
	for fn, w := range taint {
		pass.ExportObjectFact(fn, w)
	}

	for _, fn := range funcs {
		if pass.FuncZone(fn.Decl) != lint.ZoneDeterministic {
			continue
		}
		for _, s := range sites[fn.Obj] {
			if s.what != "" {
				pass.Reportf(s.pos.Pos(),
					"%s seeds a sim.Rand from %s; derive the seed from the Spec (ReplicateSeed or a parent stream's Split)",
					s.desc, s.what)
				continue
			}
			w := reaches(s.fn)
			if w == nil {
				continue
			}
			if decl, isLocal := local[s.fn]; isLocal && pass.FuncZone(decl) == lint.ZoneDeterministic {
				continue // reported at its own root inside the zone
			}
			msg := "call to %s yields a sim.Rand seeded from %s (%s) in deterministic-zone code"
			if w.Via != "" {
				pass.Reportf(s.pos.Pos(), msg+" via %s", lint.FuncDisplayName(pass, s.fn), w.What, w.Pos, w.Via)
			} else {
				pass.Reportf(s.pos.Pos(), msg, lint.FuncDisplayName(pass, s.fn), w.What, w.Pos)
			}
		}
	}
	return nil
}

// collect gathers one declaration's taint sources: RNG constructions whose
// seed provenance is not good, and call edges for fact propagation. Allowed
// constructions are absorbed.
func collect(pass *lint.Pass, decl *ast.FuncDecl) []site {
	tr := newTracer(pass, decl)
	var out []site
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if desc, args, ok := construction(pass, call); ok {
			p := prov{v: vNeutral}
			for _, arg := range args {
				p = combine(p, tr.trace(arg, 0))
			}
			if p.v != vGood && !pass.Allowed(call.Pos()) {
				out = append(out, site{pos: call, what: p.describe(), desc: desc})
			}
			return true
		}
		if fn := lint.Callee(pass, call); fn != nil && fn.Pkg() != nil {
			if !pass.Allowed(call.Pos()) {
				out = append(out, site{pos: call, fn: fn})
			}
		}
		return true
	})
	return out
}

// construction recognises seed-consuming RNG constructions: Rand.Seed
// reseeds, and any call with arguments whose result is a sim.Rand —
// sim.NewRand itself or a wrapper like FromSeed. Methods on sim.Rand (Split)
// derive substreams and are never constructions.
func construction(pass *lint.Pass, call *ast.CallExpr) (desc string, args []ast.Expr, ok bool) {
	fn := lint.Callee(pass, call)
	if fn != nil && simRandMethod(fn) {
		if fn.Name() == "Seed" || fn.Name() == "Reseed" {
			return lint.FuncDisplayName(pass, fn), call.Args, true
		}
		return "", nil, false
	}
	if len(call.Args) > 0 && lint.IsSimRand(pass.TypeOf(call)) {
		if fn != nil {
			return lint.FuncDisplayName(pass, fn), call.Args, true
		}
		return "sim.Rand constructor", call.Args, true
	}
	return "", nil, false
}

func simRandMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return lint.IsSimRand(sig.Recv().Type())
}

// ---- seed provenance ----

type verdict int

const (
	vNeutral verdict = iota // constants only
	vGood                   // derives from caller-provided state
	vBad                    // globals or the host clock
)

type prov struct {
	v    verdict
	what string
}

// combine joins the provenance of two subexpressions: bad dominates good
// dominates neutral, so spec.Seed^salt is good but spec.Seed^clock is bad.
func combine(a, b prov) prov {
	if a.v == vBad {
		return a
	}
	if b.v == vBad {
		return b
	}
	if a.v == vGood || b.v == vGood {
		return prov{v: vGood}
	}
	return prov{v: vNeutral}
}

func (p prov) describe() string {
	if p.v == vBad {
		return p.what
	}
	return "constants only"
}

// tracer resolves the provenance of seed expressions within one declaration.
type tracer struct {
	pass    *lint.Pass
	params  map[types.Object]bool
	assigns map[types.Object][]ast.Expr
	visited map[types.Object]bool
}

func newTracer(pass *lint.Pass, decl *ast.FuncDecl) *tracer {
	t := &tracer{
		pass:    pass,
		params:  make(map[types.Object]bool),
		assigns: make(map[types.Object][]ast.Expr),
		visited: make(map[types.Object]bool),
	}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					t.params[obj] = true
				}
			}
		}
	}
	addFields(decl.Recv)
	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			addFields(n.Type.Params)
		case *ast.FuncLit:
			addFields(n.Type.Params)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.ObjectOf(id); obj != nil {
							t.assigns[obj] = append(t.assigns[obj], n.Rhs[i])
						}
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						t.assigns[obj] = append(t.assigns[obj], n.Values[i])
					}
				}
			}
		}
		return true
	})
	return t
}

const maxTraceDepth = 24

func (t *tracer) trace(e ast.Expr, depth int) prov {
	if depth > maxTraceDepth {
		return prov{v: vGood} // give up without a false positive
	}
	switch e := e.(type) {
	case *ast.BasicLit:
		return prov{v: vNeutral}
	case *ast.ParenExpr:
		return t.trace(e.X, depth+1)
	case *ast.UnaryExpr:
		return t.trace(e.X, depth+1)
	case *ast.BinaryExpr:
		return combine(t.trace(e.X, depth+1), t.trace(e.Y, depth+1))
	case *ast.Ident:
		return t.traceIdent(e, depth)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if pn, ok := t.pass.ObjectOf(id).(*types.PkgName); ok {
				switch t.pass.ObjectOf(e.Sel).(type) {
				case *types.Const:
					return prov{v: vNeutral}
				case *types.Var:
					return prov{v: vBad, what: "package-level var " + pn.Name() + "." + e.Sel.Name}
				}
				return prov{v: vGood}
			}
		}
		// Field selections (spec.Seed, cfg.BaseSeed) are the blessed seed
		// source: the value came in from the caller.
		return prov{v: vGood}
	case *ast.CallExpr:
		return t.traceCall(e, depth)
	}
	return prov{v: vGood}
}

func (t *tracer) traceIdent(e *ast.Ident, depth int) prov {
	obj := t.pass.ObjectOf(e)
	switch obj := obj.(type) {
	case *types.Const:
		return prov{v: vNeutral}
	case *types.Var:
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return prov{v: vBad, what: "package-level var " + e.Name}
		}
		if t.params[obj] {
			return prov{v: vGood}
		}
		if t.visited[obj] {
			return prov{v: vGood}
		}
		t.visited[obj] = true
		if rhs, ok := t.assigns[obj]; ok {
			p := prov{v: vNeutral}
			for _, r := range rhs {
				p = combine(p, t.trace(r, depth+1))
			}
			return p
		}
		return prov{v: vGood} // range vars, closure captures: untraceable
	}
	return prov{v: vGood}
}

func (t *tracer) traceCall(call *ast.CallExpr, depth int) prov {
	if name, ok := clockInside(t.pass, call); ok {
		return prov{v: vBad, what: "the host clock (" + name + ")"}
	}
	if tv, ok := t.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		p := prov{v: vNeutral} // conversion: provenance of the operand
		for _, arg := range call.Args {
			p = combine(p, t.trace(arg, depth+1))
		}
		return p
	}
	// ReplicateSeed results and draws from an existing stream are the
	// blessed derivations; any other helper call is trusted.
	return prov{v: vGood}
}

// clockFuncs are the wall-clock entry points of package time, shared with
// the wallclock analyzer's notion of "reads the host clock".
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// clockInside reports whether any subexpression of e calls a wall-clock
// entry point of package time, e.g. uint64(time.Now().UnixNano()).
func clockInside(pass *lint.Pass, e ast.Expr) (string, bool) {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok &&
			pn.Imported().Path() == "time" && clockFuncs[sel.Sel.Name] {
			found = "time." + sel.Sel.Name
			return false
		}
		return true
	})
	return found, found != ""
}

func posString(pass *lint.Pass, n ast.Node) string {
	p := pass.Fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
