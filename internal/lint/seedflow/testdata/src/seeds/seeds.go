// Package seeds is a host-side helper fixture: it is outside any zone, so
// nothing reports here, but functions handing out fixed streams export
// facts that flag their deterministic-zone callers.
package seeds

import "sim"

// DefaultRNG hands out a fixed stream; its fact flags zone callers.
func DefaultRNG() *sim.Rand {
	return sim.NewRand(42)
}

// Wrapped reaches the fixed stream one frame down; the fact records the
// chain.
func Wrapped() *sim.Rand {
	return DefaultRNG()
}

// FromSeed passes the caller's seed through: clean, no fact — misuse is
// judged at each call site from the argument's provenance.
func FromSeed(seed uint64) *sim.Rand {
	return sim.NewRand(seed)
}
