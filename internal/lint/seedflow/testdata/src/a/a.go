//lint:zone deterministic
package a

import (
	"time"

	"seeds"
	"sim"
)

var globalSeed uint64 = 7

// Spec stands in for scenario.Spec.
type Spec struct {
	Seed uint64
}

func literal() *sim.Rand {
	return sim.NewRand(1234) // want `sim\.NewRand seeds a sim\.Rand from constants only`
}

func fromGlobal() *sim.Rand {
	return sim.NewRand(globalSeed) // want `sim\.NewRand seeds a sim\.Rand from package-level var globalSeed`
}

func fromClock() *sim.Rand {
	return sim.NewRand(uint64(time.Now().UnixNano())) // want `sim\.NewRand seeds a sim\.Rand from the host clock \(time\.Now\)`
}

func crossPackage() *sim.Rand {
	return seeds.DefaultRNG() // want `call to seeds\.DefaultRNG yields a sim\.Rand seeded from constants only \(seeds\.go:\d+\)`
}

func crossPackageChain() *sim.Rand {
	return seeds.Wrapped() // want `call to seeds\.Wrapped yields a sim\.Rand seeded from constants only \(seeds\.go:\d+\) in deterministic-zone code via DefaultRNG`
}

func wrapperLiteral() *sim.Rand {
	return seeds.FromSeed(99) // want `seeds\.FromSeed seeds a sim\.Rand from constants only`
}

func reseed(r *sim.Rand) {
	r.Seed(7) // want `sim\.Rand\.Seed seeds a sim\.Rand from constants only`
}

func tracedConstant() *sim.Rand {
	s := uint64(1234)
	return sim.NewRand(s) // want `sim\.NewRand seeds a sim\.Rand from constants only`
}

// ---- negatives: the blessed seed flows ----

func fromSpec(spec Spec) *sim.Rand {
	return sim.NewRand(spec.Seed) // clean: field of a parameter
}

func replicate(spec Spec, rep int) *sim.Rand {
	return sim.NewRand(sim.ReplicateSeed(spec.Seed, rep)) // clean: blessed derivation
}

func salted(spec Spec) *sim.Rand {
	const planSalt = 0x51ed2701
	return sim.NewRand(spec.Seed ^ planSalt) // clean: good provenance dominates the constant salt
}

func split(parent *sim.Rand) *sim.Rand {
	return parent.Split() // clean: substream of an existing stream
}

func drawn(parent *sim.Rand) *sim.Rand {
	return sim.NewRand(parent.Uint64()) // clean: seeded from an existing stream
}

func tracedLocal(spec Spec) *sim.Rand {
	s := spec.Seed + 1
	return sim.NewRand(s) // clean: the local traces back to the spec
}

func wrapperSpec(spec Spec) *sim.Rand {
	return seeds.FromSeed(spec.Seed) // clean: wrapper judged by its argument
}

// defaultStream keeps the zero-config path deterministic on purpose; the
// justified allow absorbs the taint so callers stay clean.
func defaultStream() *sim.Rand {
	return sim.NewRand(0) //lint:allow seedflow zero-config default stream is fixed by design
}

func callsDefault() *sim.Rand {
	return defaultStream() // clean: the allowed construction was absorbed
}
