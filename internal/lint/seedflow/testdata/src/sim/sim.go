// Package sim is a stub of repro/internal/sim for lint fixtures.
package sim

// Rand mirrors sim.Rand.
type Rand struct{ s uint64 }

// NewRand mirrors sim.NewRand.
func NewRand(seed uint64) *Rand { return &Rand{s: seed} }

// Seed mirrors sim.Rand.Seed.
func (r *Rand) Seed(seed uint64) { r.s = seed }

// Uint64 advances the stream.
func (r *Rand) Uint64() uint64 { r.s = r.s*6364136223846793005 + 1; return r.s }

// Intn mirrors sim.Rand.Intn.
func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Split mirrors sim.Rand.Split.
func (r *Rand) Split() *Rand { return NewRand(r.Uint64()) }

// ReplicateSeed mirrors scenario.ReplicateSeed: a pure seed derivation.
func ReplicateSeed(base uint64, rep int) uint64 {
	return base*0x9e3779b97f4a7c15 + uint64(rep)
}
