package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Zone classifies a package or function for the determinism analyzers.
//
// Deterministic-zone code is everything whose behaviour must be a pure
// function of (Spec, Seed): the simulator core, the components it assembles,
// and the scenario engine that replays replicates. Host-zone code may touch
// the host clock, the OS, and process-fatal error handling: CLIs, profiling,
// the on-disk journal internals.
//
// A package declares its zone with a directive on (or above) the package
// clause:
//
//	//lint:zone deterministic
//	package dram
//
// A function overrides its package's zone with the same directive in its doc
// comment — the escape hatch for the few host-facing paths inside otherwise
// deterministic packages (retry backoff, fsync pacing):
//
//	//lint:zone host
//	func sleepBackoff(...)
//
// Packages without a directive fall back to DefaultZones.
type Zone string

// The recognised zones.
const (
	// ZoneNone marks code outside any declared zone; the zone analyzers
	// compute facts there but report nothing.
	ZoneNone Zone = ""
	// ZoneDeterministic marks code whose behaviour must be a pure function
	// of (Spec, Seed).
	ZoneDeterministic Zone = "deterministic"
	// ZoneHost marks code explicitly allowed to depend on the host
	// environment.
	ZoneHost Zone = "host"
)

// DefaultZones maps module-relative package paths to their default zone. It
// covers every package on the simulation path; packages can override with an
// explicit //lint:zone directive. The on-disk journal (fsync pacing),
// profiling, reporting and the CLIs stay host-side.
var DefaultZones = map[string]Zone{
	"internal/anvil":    ZoneDeterministic,
	"internal/attack":   ZoneDeterministic,
	"internal/cache":    ZoneDeterministic,
	"internal/defense":  ZoneDeterministic,
	"internal/dram":     ZoneDeterministic,
	"internal/fault":    ZoneDeterministic,
	"internal/machine":  ZoneDeterministic,
	"internal/memsys":   ZoneDeterministic,
	"internal/netchaos": ZoneHost,
	"internal/pmu":      ZoneDeterministic,
	"internal/scenario": ZoneDeterministic,
	"internal/sim":      ZoneDeterministic,
	"internal/sweepd":   ZoneHost,
	"internal/vm":       ZoneDeterministic,
	"internal/workerd":  ZoneHost,
	"internal/workload": ZoneDeterministic,
}

// DefaultZone returns the zone DefaultZones assigns to an import path, by
// exact match of its module-relative suffix. Suffixes are tried in sorted
// order so the answer cannot depend on map iteration.
func DefaultZone(path string) Zone {
	suffixes := make([]string, 0, len(DefaultZones))
	for suffix := range DefaultZones {
		suffixes = append(suffixes, suffix)
	}
	sort.Strings(suffixes)
	for _, suffix := range suffixes {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return DefaultZones[suffix]
		}
	}
	return ZoneNone
}

// validZone reports whether name is a recognised zone directive scope.
func validZone(name string) bool {
	return Zone(name) == ZoneDeterministic || Zone(name) == ZoneHost
}

// zoneInfo is the resolved zoning of one package.
type zoneInfo struct {
	pkg   Zone
	funcs map[*ast.FuncDecl]Zone
}

// funcZone returns fn's effective zone.
func (zi *zoneInfo) funcZone(fn *ast.FuncDecl) Zone {
	if z, ok := zi.funcs[fn]; ok {
		return z
	}
	return zi.pkg
}

// collectZones resolves a package's zoning: an explicit package directive
// wins over DefaultZones, and function doc directives override per function.
// Malformed or misplaced directives become diagnostics under the reserved
// analyzer name "zone" — zoning errors must never silently widen or shrink
// what the suite checks.
func collectZones(fset *token.FileSet, files []*ast.File, path string) (*zoneInfo, []Diagnostic) {
	zi := &zoneInfo{pkg: DefaultZone(path), funcs: make(map[*ast.FuncDecl]Zone)}
	var diags []Diagnostic
	report := func(pos token.Position, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{Analyzer: "zone", Pos: pos, Message: fmt.Sprintf(format, args...)})
	}

	pkgDeclared := false
	for _, f := range files {
		// Comment groups serving as function doc comments carry per-function
		// directives; anything on or above the package clause is
		// package-level; everything else is misplaced.
		funcDocs := make(map[*ast.CommentGroup]*ast.FuncDecl)
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
				funcDocs[fn.Doc] = fn
			}
		}
		pkgLine := fset.Position(f.Name.Pos()).Line
		for _, cg := range f.Comments {
			fn := funcDocs[cg]
			for _, c := range cg.List {
				name, ok := parseZoneDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				if !validZone(name) {
					report(pos, "unknown zone %q in //lint:zone directive (want %q or %q)",
						name, ZoneDeterministic, ZoneHost)
					continue
				}
				switch {
				case fn != nil:
					if prev, dup := zi.funcs[fn]; dup && prev != Zone(name) {
						report(pos, "conflicting //lint:zone directives on %s", fn.Name.Name)
						continue
					}
					zi.funcs[fn] = Zone(name)
				case pos.Line <= pkgLine:
					if pkgDeclared && zi.pkg != Zone(name) {
						report(pos, "conflicting package //lint:zone directives in package %s", f.Name.Name)
						continue
					}
					zi.pkg = Zone(name)
					pkgDeclared = true
				default:
					report(pos, "misplaced //lint:zone directive: it must sit on the package clause or a function's doc comment")
				}
			}
		}
	}
	return zi, diags
}
