package lint

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a per-object datum one analyzer computes while analyzing the
// package that declares the object, and later consumes when analyzing the
// packages that use it. Facts are how the determinism-zone analyzers see
// across package boundaries: "this function reaches time.Now", "this type
// marshals a map", "this helper hands out an unseeded RNG".
//
// Fact types must be pointers to JSON-marshalable structs and must be listed
// in their analyzer's Facts field so the vet driver can serialize them
// between compilation units.
type Fact interface {
	// AFact marks the type as a fact. It is never called.
	AFact()
}

// factID keys one fact slot: each analyzer may attach at most one fact of
// each concrete type to an object.
type factID struct {
	analyzer string
	typ      reflect.Type
}

// A FactStore holds the facts of an analysis session. In the standalone
// driver one store spans every package of the run (packages share object
// identity through the loader); in the vet unit driver the store is rebuilt
// per compilation unit from the serialized facts of its dependencies.
type FactStore struct {
	objs map[types.Object]map[factID]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{objs: make(map[types.Object]map[factID]Fact)}
}

func (s *FactStore) export(analyzer string, obj types.Object, f Fact) {
	if obj == nil || f == nil {
		return
	}
	id := factID{analyzer: analyzer, typ: reflect.TypeOf(f)}
	m := s.objs[obj]
	if m == nil {
		m = make(map[factID]Fact)
		s.objs[obj] = m
	}
	m[id] = f
}

// imported copies the stored fact for (analyzer, obj, type of dst) into dst,
// reporting whether one was found. dst must be a pointer to a fact struct.
func (s *FactStore) imported(analyzer string, obj types.Object, dst Fact) bool {
	if obj == nil || dst == nil {
		return false
	}
	id := factID{analyzer: analyzer, typ: reflect.TypeOf(dst)}
	f, ok := s.objs[obj][id]
	if !ok {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// A FactRegistry maps serialized fact names ("analyzer/TypeName") to their
// concrete struct types, so the vet driver can decode facts it wrote in an
// earlier compilation unit.
type FactRegistry map[string]reflect.Type

// NewFactRegistry collects the fact prototypes declared by the analyzers.
func NewFactRegistry(analyzers []*Analyzer) FactRegistry {
	reg := make(FactRegistry)
	for _, a := range analyzers {
		for _, f := range a.Facts {
			reg[factName(a.Name, reflect.TypeOf(f))] = reflect.TypeOf(f)
		}
	}
	return reg
}

func factName(analyzer string, t reflect.Type) string {
	return analyzer + "/" + t.Elem().Name()
}

// encodedFact is the on-disk form of one object fact.
type encodedFact struct {
	Object string          `json:"object"`
	Fact   string          `json:"fact"`
	Data   json.RawMessage `json:"data"`
}

// EncodePackageFacts serializes the facts attached to pkg's objects that
// have a stable object path (package-level functions, types, variables, and
// methods). Output is deterministic: sorted by object path and fact name.
func (s *FactStore) EncodePackageFacts(pkg *types.Package) ([]byte, error) {
	var out []encodedFact
	for obj, m := range s.objs {
		if obj.Pkg() != pkg {
			continue
		}
		path, ok := ObjectPath(obj)
		if !ok {
			continue
		}
		//lint:allow maporder entries are sorted below before encoding; the inner return is an error path
		for id, f := range m {
			data, err := json.Marshal(f)
			if err != nil {
				return nil, fmt.Errorf("lint: encoding fact %T for %s: %v", f, path, err)
			}
			out = append(out, encodedFact{
				Object: path,
				Fact:   factName(id.analyzer, id.typ),
				Data:   data,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Fact < out[j].Fact
	})
	return json.MarshalIndent(out, "", "\t")
}

// DecodePackageFacts attaches serialized facts back onto pkg's objects.
// Facts whose object path or fact name no longer resolves are skipped: a
// fact on an object the current unit cannot reference is a fact it cannot
// need.
func (s *FactStore) DecodePackageFacts(pkg *types.Package, data []byte, reg FactRegistry) error {
	var in []encodedFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("lint: decoding facts for %s: %v", pkg.Path(), err)
	}
	for _, ef := range in {
		t, ok := reg[ef.Fact]
		if !ok {
			continue
		}
		obj := resolveObjectPath(pkg, ef.Object)
		if obj == nil {
			continue
		}
		f := reflect.New(t.Elem()).Interface().(Fact)
		if err := json.Unmarshal(ef.Data, f); err != nil {
			return fmt.Errorf("lint: decoding fact %s on %s: %v", ef.Fact, ef.Object, err)
		}
		analyzer := strings.SplitN(ef.Fact, "/", 2)[0]
		s.export(analyzer, obj, f)
	}
	return nil
}

// ObjectPath returns a stable intra-package path for obj: "Name" for
// package-level functions, types and variables, "Type.Method" for methods.
// Objects without such a path (locals, parameters, fields) cannot carry
// facts across compilation units and report ok == false.
func ObjectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			named := namedOf(recv.Type())
			if named == nil {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	return "", false
}

// resolveObjectPath is the inverse of ObjectPath against pkg's scope.
func resolveObjectPath(pkg *types.Package, path string) types.Object {
	recv, name, isMethod := strings.Cut(path, ".")
	if !isMethod {
		return pkg.Scope().Lookup(path)
	}
	tn, ok := pkg.Scope().Lookup(recv).(*types.TypeName)
	if !ok {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, name)
	return obj
}

// namedOf unwraps one pointer level and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
