package anvil

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/vm"
)

// idProgram maps a large identity-style region (first process on a
// first-fit machine: VA == PA) so tests can fabricate samples for chosen
// DRAM coordinates.
type idProgram struct{}

func (idProgram) Name() string { return "id" }
func (idProgram) Init(p *machine.Proc) error {
	return p.AS.Map(0, 64<<20)
}
func (idProgram) Next() machine.Op { return machine.Op{Kind: machine.OpCompute, Cycles: 1000} }

// analyseFixture builds a detector plus a process whose VA 0..64MB is
// physically identity-mapped.
func analyseFixture(t *testing.T, p Params) (*Detector, *machine.Machine, int, dram.Mapper) {
	t.Helper()
	m := testMachine(t, 1)
	proc, err := m.Spawn(0, idProgram{})
	if err != nil {
		t.Fatal(err)
	}
	// First-fit allocator, first process: frames are allocated from 0
	// upward, so VA == PA across the mapping.
	pa, err := proc.AS.Translate(0)
	if err != nil || pa != 0 {
		t.Fatalf("identity mapping assumption broken: pa=%d err=%v", pa, err)
	}
	d, err := New(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, m, proc.ID, m.Mem.DRAM.Mapper()
}

// mkSamples fabricates n DRAM-sourced load samples for the given coord.
func mkSamples(mapper dram.Mapper, task int, c dram.Coord, n int) []pmu.Sample {
	out := make([]pmu.Sample, 0, n)
	va := mapper.Unmap(c)
	for i := 0; i < n; i++ {
		out = append(out, pmu.Sample{
			VA:     va + uint64(i%4)*64,
			Source: cache.SrcDRAM,
			Task:   task,
		})
	}
	return out
}

func TestAnalyseFlagsHighLocalityRow(t *testing.T) {
	d, _, task, mapper := analyseFixture(t, Baseline())
	agg := dram.Coord{Bank: 3, Row: 100}
	samples := mkSamples(mapper, task, agg, 10)
	// Companion activity in the same bank.
	samples = append(samples, mkSamples(mapper, task, dram.Coord{Bank: 3, Row: 200}, 3)...)
	// Background noise in other banks.
	for b := 0; b < 3; b++ {
		samples = append(samples, mkSamples(mapper, task, dram.Coord{Bank: b, Row: 50 + b}, 1)...)
	}
	got := d.analyse(samples, 100_000, 1000)
	found := false
	for _, c := range got {
		if c.Bank == agg.Bank && c.Row == agg.Row {
			found = true
		}
	}
	if !found {
		t.Errorf("aggressor %v not flagged; got %v", agg, got)
	}
}

func TestAnalyseBankCheckSuppressesIsolatedRow(t *testing.T) {
	d, _, task, mapper := analyseFixture(t, Baseline())
	// A high-locality row whose bank has NO other activity: the row buffer
	// would absorb such accesses, so it cannot be rowhammering.
	samples := mkSamples(mapper, task, dram.Coord{Bank: 5, Row: 123}, 8)
	for b := 0; b < 8; b++ {
		if b != 5 {
			samples = append(samples, mkSamples(mapper, task, dram.Coord{Bank: b, Row: 10 * b}, 1)...)
		}
	}
	if got := d.analyse(samples, 100_000, 1000); len(got) != 0 {
		t.Errorf("isolated row flagged despite empty bank: %v", got)
	}
}

func TestAnalyseAdaptiveThresholdScalesWithMisses(t *testing.T) {
	// With barely-threshold misses, a viable attack would concentrate many
	// samples per aggressor, so a mild 4-sample cluster is not enough; the
	// same cluster in a high-miss window is.
	p := Baseline()
	d, _, task, mapper := analyseFixture(t, p)
	build := func() []pmu.Sample {
		s := mkSamples(mapper, task, dram.Coord{Bank: 2, Row: 70}, 4)
		s = append(s, mkSamples(mapper, task, dram.Coord{Bank: 2, Row: 90}, 2)...)
		// 54 scattered samples so n is large.
		for i := 0; i < 54; i++ {
			s = append(s, mkSamples(mapper, task, dram.Coord{Bank: i % 16, Row: 150 + i*5}, 1)...)
		}
		return s
	}
	// Low-miss window: thr = ceil(0.2*60*20000/(2*22000)) = 3... make it
	// strict by using exactly the threshold miss count: 60 samples,
	// M = 22000 -> 0.2*60*20000/44000 = 5.45 -> thr 6 > 4: suppressed.
	if got := d.analyse(build(), 22_000, 1000); len(got) != 0 {
		t.Errorf("4-sample cluster flagged in a barely-crossing window: %v", got)
	}
	// High-miss window: thr floors at MinRowSamples (3): flagged.
	if got := d.analyse(build(), 400_000, 2000); len(got) == 0 {
		t.Error("4-sample cluster not flagged in a high-miss window")
	}
}

func TestAnalyseTier2HotBank(t *testing.T) {
	d, _, task, mapper := analyseFixture(t, Baseline())
	// Attack-like concentration: 60% of all samples in one bank, though no
	// single row dominates (sample dilution under co-runners).
	var samples []pmu.Sample
	for r := 0; r < 6; r++ {
		samples = append(samples, mkSamples(mapper, task, dram.Coord{Bank: 7, Row: 100 + r}, 3)...)
	}
	for i := 0; i < 12; i++ {
		samples = append(samples, mkSamples(mapper, task, dram.Coord{Bank: i % 6, Row: 300 + i*3}, 1)...)
	}
	got := d.analyse(samples, 300_000, 1000)
	if len(got) == 0 {
		t.Fatal("hot-bank tier flagged nothing")
	}
	for _, c := range got {
		if c.Bank != 7 {
			t.Errorf("flagged row outside the hot bank: %v", c)
		}
	}
}

func TestAnalysePerBankCapAndRotation(t *testing.T) {
	d, _, task, mapper := analyseFixture(t, Baseline())
	build := func() []pmu.Sample {
		s := mkSamples(mapper, task, dram.Coord{Bank: 4, Row: 100}, 9)
		s = append(s, mkSamples(mapper, task, dram.Coord{Bank: 4, Row: 300}, 8)...)
		return s
	}
	first := d.analyse(build(), 400_000, 1000)
	if len(first) != 1 {
		t.Fatalf("cap=1 flagged %d rows: %v", len(first), first)
	}
	second := d.analyse(build(), 400_000, 2000)
	if len(second) != 1 {
		t.Fatalf("cap=1 flagged %d rows: %v", len(second), second)
	}
	if first[0] == second[0] {
		t.Errorf("no rotation: flagged %v twice while another candidate starves", first[0])
	}
}

func TestAnalyseIgnoresNonDRAMAndUnknownTasks(t *testing.T) {
	d, _, task, mapper := analyseFixture(t, Baseline())
	agg := dram.Coord{Bank: 1, Row: 42}
	samples := mkSamples(mapper, task, agg, 10)
	for i := range samples {
		samples[i].Source = cache.SrcL3 // did not reach DRAM
	}
	// And a batch from a task that no longer exists.
	ghost := mkSamples(mapper, task+999, agg, 10)
	if got := d.analyse(append(samples, ghost...), 400_000, 1000); len(got) != 0 {
		t.Errorf("flagged from non-DRAM or ghost-task samples: %v", got)
	}
}

func TestAnalyseUnmappedVASkipped(t *testing.T) {
	d, _, task, _ := analyseFixture(t, Baseline())
	samples := []pmu.Sample{{VA: 1 << 40, Source: cache.SrcDRAM, Task: task}}
	if got := d.analyse(samples, 400_000, 1000); len(got) != 0 {
		t.Errorf("flagged from untranslatable samples: %v", got)
	}
}

var _ = vm.PageSize
