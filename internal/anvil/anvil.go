// Package anvil implements ANVIL, the paper's contribution: a software
// rowhammer detector built entirely on commodity performance-monitoring
// hardware, plus selective refresh of predicted victim rows.
//
// The detector runs as a kernel module on the simulated machine (§3.3):
//
//	Stage 1 — the LLC miss-count event (LONGEST_LAT_CACHE.MISS) is armed to
//	interrupt after LLCMissThreshold misses; if the interrupt beats the
//	tc window timer, the observed miss rate is compatible with rowhammering
//	and stage 2 is entered.
//
//	Stage 2 — for ts, the PEBS Load Latency and/or Precise Store facilities
//	sample memory operations (5000 samples/s, latency threshold set at the
//	LLC miss latency so only DRAM-bound loads qualify; the 90%/10% load
//	fraction rule selects which facilities run). Samples are resolved to
//	physical addresses via the sampled task_struct and decoded to DRAM
//	rows with the reverse-engineered address map. Rows with high sample
//	locality whose bank shows enough companion traffic are flagged as
//	aggressors.
//
//	Protection — for every flagged aggressor, the rows above and below are
//	refreshed with a single uncached read each, restoring their charge.
package anvil

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/sim"
)

// Params are the detector parameters (Table 2 plus cost-model knobs).
type Params struct {
	// LLCMissThreshold is stage 1's miss count per tc window (Table 2: 20K).
	LLCMissThreshold uint64
	// MissCountDuration is tc.
	MissCountDuration time.Duration
	// SamplingDuration is ts.
	SamplingDuration time.Duration
	// SampleRate is the PEBS sampling rate in samples/second (5000).
	SampleRate uint64
	// LatencyThreshold qualifies loads for the latency sampler; set to the
	// last-level cache miss latency.
	LatencyThreshold sim.Cycles
	// LoadOnlyFrac / StoreOnlyFrac implement the 90%/10% facility rule.
	LoadOnlyFrac  float64
	StoreOnlyFrac float64

	// MinRowSamples is the floor on the per-row sample count that marks an
	// aggressor candidate.
	MinRowSamples int
	// LocalityFactor scales the adaptive component of the row threshold:
	// the expected per-aggressor sample count for a minimal viable attack.
	LocalityFactor float64
	// BankMinSamples is how many samples from *other* rows of the candidate
	// row's bank must exist (the bank-locality confirmation of §3.1 that
	// filters thrashing false positives).
	BankMinSamples int
	// BankHotFraction is the second detection tier: a row with somewhat
	// lower locality still counts as an aggressor when its bank absorbs at
	// least this fraction of all DRAM samples — the signature of an attack
	// necessarily concentrated in one bank, which survives sample dilution
	// by co-running programs.
	BankHotFraction float64
	// NeighborRows is how far around an aggressor victims are refreshed.
	NeighborRows int
	// MaxAggressorsPerBank caps how many flagged rows per bank are acted on
	// per detection (highest sample count first); 0 means unlimited. The
	// paper's measured refresh rates (~2 per detection) correspond to one
	// aggressor per detection; the eviction-set rows of the CLFLUSH-free
	// attack would otherwise all be flagged. Rows refreshed in the previous
	// detection are deprioritised, so multiple concurrent aggressor pairs
	// in one bank are covered round-robin well inside their flip horizon.
	MaxAggressorsPerBank int

	// Cost model: cycles stolen from the interrupted core.
	PMICost       sim.Cycles // per PEBS sample (interrupt + record handling)
	Stage1Cost    sim.Cycles // per stage-1 window (counter read / rearm)
	AnalysisCost  sim.Cycles // per stage-2 analysis (sort + decode)
	PerSampleCost sim.Cycles // per-sample analysis (task lookup, translate)
}

// Baseline returns the paper's Table 2 configuration.
func Baseline() Params {
	return Params{
		LLCMissThreshold:     20_000,
		MissCountDuration:    6 * time.Millisecond,
		SamplingDuration:     6 * time.Millisecond,
		SampleRate:           5000,
		LatencyThreshold:     100,
		LoadOnlyFrac:         0.9,
		StoreOnlyFrac:        0.1,
		MinRowSamples:        3,
		LocalityFactor:       0.2,
		BankMinSamples:       2,
		BankHotFraction:      0.5,
		MaxAggressorsPerBank: 1,
		NeighborRows:         1,
		PMICost:              12_000,
		Stage1Cost:           600,
		AnalysisCost:         80_000,
		PerSampleCost:        2400,
	}
}

// Light is the §4.5 ANVIL-light configuration: same windows, stage-1
// threshold halved to 10K, for attacks that spread fewer activations
// across a whole refresh period.
func Light() Params {
	p := Baseline()
	p.LLCMissThreshold = 10_000
	return p
}

// Heavy is the §4.5 ANVIL-heavy configuration: tc = ts = 2 ms for attacks
// on future DRAM that flips twice as fast. The stage-1 miss *rate*
// threshold is unchanged (20K per 6 ms), which over a 2 ms window is ~6.7K
// misses; windows fire three times as often, so — as the paper observes —
// the continuously-experienced sampling overheads grow the most in this
// configuration.
func Heavy() Params {
	p := Baseline()
	p.MissCountDuration = 2 * time.Millisecond
	p.SamplingDuration = 2 * time.Millisecond
	p.LLCMissThreshold = p.LLCMissThreshold / 3
	p.MinRowSamples = 4 // of ~10 samples per 2 ms window
	return p
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.LLCMissThreshold == 0:
		return fmt.Errorf("anvil: LLCMissThreshold must be positive")
	case p.MissCountDuration <= 0 || p.SamplingDuration <= 0:
		return fmt.Errorf("anvil: window durations must be positive")
	case p.SampleRate == 0:
		return fmt.Errorf("anvil: SampleRate must be positive")
	case p.MinRowSamples <= 0:
		return fmt.Errorf("anvil: MinRowSamples must be positive")
	case p.NeighborRows <= 0:
		return fmt.Errorf("anvil: NeighborRows must be positive")
	case p.LoadOnlyFrac <= p.StoreOnlyFrac:
		return fmt.Errorf("anvil: LoadOnlyFrac must exceed StoreOnlyFrac")
	}
	return nil
}

// Detection records one protective action.
type Detection struct {
	Time       sim.Cycles
	Aggressors []dram.Coord
	Victims    []dram.Coord
	Samples    int
}

// Stats aggregates the detector's activity.
type Stats struct {
	Stage1Windows   uint64
	Stage1Crossings uint64
	SampleWindows   uint64
	Detections      []Detection
	Refreshes       uint64
	SamplesTaken    uint64
	// WindowPeaks records, per sample window, the highest per-row DRAM
	// sample count and the row threshold in force — the raw material of
	// the locality decision (diagnostics, calibration, tests).
	WindowPeaks []WindowPeak
}

// WindowPeak summarises one sampling window's locality analysis.
type WindowPeak struct {
	Samples    int // DRAM-confirmed, resolvable samples
	MaxRow     int // highest single-row sample count
	Threshold  int // row threshold applied
	MaxBank    int // highest single-bank sample count
	Candidates int // rows passing the locality rules
}

// CrossingFraction is the fraction of stage-1 windows that breached the
// miss threshold (the quantity §4.3 reports per benchmark).
func (s Stats) CrossingFraction() float64 {
	if s.Stage1Windows == 0 {
		return 0
	}
	return float64(s.Stage1Crossings) / float64(s.Stage1Windows)
}

// Detector is the ANVIL kernel module attached to one machine.
type Detector struct {
	params Params
	m      *machine.Machine
	mapper dram.Mapper

	tc sim.Cycles
	ts sim.Cycles

	missStart     uint64 // EvLLCMiss at window start
	loadMissStart uint64
	crossed       bool
	lastFlagged   map[dram.Coord]sim.Cycles // when each aggressor was last acted on
	stats         Stats
	running       bool
}

// New creates a detector for the machine. mapper is the reverse-engineered
// physical-to-DRAM map the kernel module was pre-configured with; pass nil
// to use the DRAM module's own mapper (a perfectly reverse-engineered map).
func New(m *machine.Machine, params Params, mapper dram.Mapper) (*Detector, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("anvil: machine is required")
	}
	if mapper == nil {
		mapper = m.Mem.DRAM.Mapper()
	}
	return &Detector{
		params: params,
		m:      m,
		mapper: mapper,
		tc:     m.Freq.Cycles(params.MissCountDuration),
		ts:     m.Freq.Cycles(params.SamplingDuration),
	}, nil
}

// Params returns the active configuration.
func (d *Detector) Params() Params { return d.params }

// Stats returns a snapshot of the detector's counters.
func (d *Detector) Stats() Stats {
	s := d.stats
	s.Detections = append([]Detection(nil), d.stats.Detections...)
	return s
}

// Start attaches the detector to the machine's PMU and timer, beginning
// with a stage-1 window at the machine's current time.
func (d *Detector) Start() {
	if d.running {
		return
	}
	d.running = true
	d.m.Mem.PMU.OnSample(func(s pmu.Sample) {
		d.stats.SamplesTaken++
		d.m.ChargeCurrent(d.params.PMICost)
	})
	d.beginStage1(d.m.Time())
}

// beginStage1 opens a miss-rate measurement window at t0.
func (d *Detector) beginStage1(t0 sim.Cycles) {
	p := d.m.Mem.PMU
	d.missStart = p.Read(pmu.EvLLCMiss)
	d.loadMissStart = p.Read(pmu.EvLLCMissLoads)
	d.crossed = false
	// "The count is set such that if the miss interrupt arrives before the
	// sample window timer interrupt, we know that the miss threshold has
	// been breached."
	p.ArmOverflow(pmu.EvLLCMiss, d.params.LLCMissThreshold, func(now sim.Cycles) {
		d.crossed = true
	})
	d.m.Kernel.At(t0+d.tc, d.endStage1)
}

// endStage1 closes the window: either escalate to sampling or re-open.
func (d *Detector) endStage1(now sim.Cycles) {
	d.m.ChargeCurrent(d.params.Stage1Cost)
	d.stats.Stage1Windows++
	p := d.m.Mem.PMU
	p.DisarmOverflow(pmu.EvLLCMiss)
	if !d.crossed {
		d.beginStage1(now)
		return
	}
	d.stats.Stage1Crossings++
	d.beginStage2(now)
}

// beginStage2 arms the PEBS facilities per the 90%/10% rule.
func (d *Detector) beginStage2(t0 sim.Cycles) {
	d.stats.SampleWindows++
	p := d.m.Mem.PMU
	misses := p.Read(pmu.EvLLCMiss) - d.missStart
	loadMisses := p.Read(pmu.EvLLCMissLoads) - d.loadMissStart
	loadFrac := 1.0
	if misses > 0 {
		loadFrac = float64(loadMisses) / float64(misses)
	}
	sampleLoads := loadFrac >= d.params.StoreOnlyFrac
	sampleStores := loadFrac <= d.params.LoadOnlyFrac
	// Each armed facility runs at the full sampling rate; they are
	// independent counters on real hardware.
	interval := sim.Cycles(d.m.Freq.Hz() / d.params.SampleRate)
	p.Samples() // drain anything stale
	if sampleLoads {
		p.ConfigureLoadSampler(pmu.SamplerConfig{
			Enabled:          true,
			LatencyThreshold: d.params.LatencyThreshold,
			Interval:         interval,
		}, t0)
	}
	if sampleStores {
		p.ConfigureStoreSampler(pmu.SamplerConfig{
			Enabled:  true,
			Interval: interval,
		}, t0)
	}
	d.m.Kernel.At(t0+d.ts, d.endStage2)
}

// endStage2 analyses the samples and protects any victims found.
func (d *Detector) endStage2(now sim.Cycles) {
	p := d.m.Mem.PMU
	samples := p.Samples()
	p.ConfigureLoadSampler(pmu.SamplerConfig{}, now)
	p.ConfigureStoreSampler(pmu.SamplerConfig{}, now)
	d.m.ChargeCurrent(d.params.AnalysisCost + sim.Cycles(len(samples))*d.params.PerSampleCost)

	aggressors := d.analyse(samples, p.Read(pmu.EvLLCMiss)-d.missStart, now)
	if len(aggressors) > 0 {
		d.protect(aggressors, len(samples), now)
	}
	d.beginStage1(now)
}

// analyse implements the row- and bank-locality analysis of §3.3.
func (d *Detector) analyse(samples []pmu.Sample, windowMisses uint64, now sim.Cycles) []dram.Coord {
	type rowKey struct{ bank, row int }
	rowCount := make(map[rowKey]int)
	bankCount := make(map[int]int)
	for _, s := range samples {
		// The data source must confirm the operation actually reached DRAM
		// (both facilities report it; §3.3).
		if s.Source != cache.SrcDRAM {
			continue
		}
		space := d.m.Kernel.TaskSpace(s.Task)
		if space == nil {
			continue // task exited between sampling and analysis
		}
		pa, err := space.Translate(s.VA)
		if err != nil {
			continue
		}
		c := d.mapper.Map(pa)
		rowCount[rowKey{c.Bank, c.Row}]++
		bankCount[c.Bank]++
	}

	// Row-locality threshold: the floor, or the adaptive expectation of
	// samples per aggressor for a minimal viable attack (whichever is
	// larger). With n samples spread over M misses, a double-sided attack
	// needs at least LLCMissThreshold misses on two aggressors, i.e.
	// n * threshold / (2*M) samples each.
	n := len(samples)
	thr := d.params.MinRowSamples
	if windowMisses > 0 {
		expect := d.params.LocalityFactor * float64(n) *
			float64(d.params.LLCMissThreshold) / (2 * float64(windowMisses))
		if a := int(math.Ceil(expect)); a > thr {
			thr = a
		}
	}

	// Second tier: a somewhat-less-local row inside a very hot bank.
	thrLow := thr - 2
	if thrLow < 2 {
		thrLow = 2
	}
	dramSamples := 0
	for _, c := range bankCount {
		dramSamples += c
	}
	bankHot := int(math.Ceil(d.params.BankHotFraction * float64(dramSamples)))
	if bankHot < thrLow+d.params.BankMinSamples {
		bankHot = thrLow + d.params.BankMinSamples
	}

	type candidate struct {
		coord dram.Coord
		count int
	}
	var cands []candidate
	for k, c := range rowCount {
		// Bank-locality confirmation: rowhammering requires companion
		// activity in the same bank (the row buffer would otherwise absorb
		// the accesses). Thrashing patterns without it are dismissed.
		companions := bankCount[k.bank] - c
		switch {
		case c >= thr && companions >= d.params.BankMinSamples:
			// High row locality with confirmed bank activity.
		case c >= thrLow && bankCount[k.bank] >= bankHot && companions >= d.params.BankMinSamples:
			// Moderate row locality inside an attack-hot bank with real
			// companion traffic (a lone bank-dominant row cannot hammer:
			// the row buffer would absorb it).
		default:
			continue
		}
		cands = append(cands, candidate{dram.Coord{Bank: k.bank, Row: k.row}, c})
	}
	// Within each bank, act on least-recently-refreshed candidates first
	// (then highest sample count): persistent aggressor pairs — including
	// deliberate decoys sharing the bank — are covered round-robin, each
	// well inside its flip horizon.
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.coord.Bank != b.coord.Bank {
			return a.coord.Bank < b.coord.Bank
		}
		at, bt := d.lastFlagged[a.coord], d.lastFlagged[b.coord]
		if at != bt {
			return at < bt
		}
		if a.count != b.count {
			return a.count > b.count
		}
		return a.coord.Row < b.coord.Row
	})
	peak := WindowPeak{Threshold: thr}
	for _, c := range bankCount {
		peak.Samples += c
		if c > peak.MaxBank {
			peak.MaxBank = c
		}
	}
	for _, c := range rowCount {
		if c > peak.MaxRow {
			peak.MaxRow = c
		}
	}
	peak.Candidates = len(cands)
	d.stats.WindowPeaks = append(d.stats.WindowPeaks, peak)

	var out []dram.Coord
	perBank := make(map[int]int)
	for _, c := range cands {
		if d.params.MaxAggressorsPerBank > 0 && perBank[c.coord.Bank] >= d.params.MaxAggressorsPerBank {
			continue
		}
		perBank[c.coord.Bank]++
		out = append(out, c.coord)
	}
	if d.lastFlagged == nil {
		d.lastFlagged = make(map[dram.Coord]sim.Cycles)
	}
	for _, c := range out {
		d.lastFlagged[c] = now
	}
	return out
}

// protect refreshes the neighbours of each aggressor with uncached reads.
func (d *Detector) protect(aggressors []dram.Coord, nSamples int, now sim.Cycles) {
	det := Detection{Time: now, Aggressors: aggressors, Samples: nSamples}
	rows := d.m.Mem.DRAM.Config().Geometry.RowsPerBank
	seen := map[dram.Coord]bool{}
	for _, a := range aggressors {
		for dr := 1; dr <= d.params.NeighborRows; dr++ {
			for _, vrow := range []int{a.Row - dr, a.Row + dr} {
				if vrow < 0 || vrow >= rows {
					continue
				}
				v := dram.Coord{Bank: a.Bank, Row: vrow}
				if seen[v] {
					continue
				}
				seen[v] = true
				pa := d.mapper.Unmap(v)
				lat := d.m.Mem.KernelRead(pa, now)
				d.m.ChargeCurrent(lat)
				d.stats.Refreshes++
				det.Victims = append(det.Victims, v)
			}
		}
	}
	d.stats.Detections = append(d.stats.Detections, det)
}
