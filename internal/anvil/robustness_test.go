package anvil

import (
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/machine"
)

// TestWrongMapperDegradesProtection documents the importance of the
// "pre-configured reverse engineered physical address to DRAM row and bank
// mapping scheme" (§3.3): a detector configured with a mis-reverse-
// engineered map (bank-hashed where the controller is linear) resolves
// samples to the wrong rows and refreshes the wrong victims, so the attack
// gets through.
func TestWrongMapperDegradesProtection(t *testing.T) {
	m := testMachine(t, 1)
	a, err := attack.NewDoubleSidedFlush(attackOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)

	wrong, err := dram.NewLinearMapper(m.Mem.DRAM.Config().Geometry, true /* bank hashing the controller lacks */)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(m, Baseline(), wrong)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	run(t, m, 192*time.Millisecond)

	// The attack's aggressor rows have low row bits varying, so the hashed
	// map mis-decodes the bank for most samples; the refresh reads land on
	// the wrong rows and the victim eventually flips.
	if m.Mem.DRAM.FlipCount() == 0 {
		// Some victim rows decode identically under both maps (hash of the
		// row's low bits may be zero); only fail if the victim's aggressors
		// decode differently under the two maps.
		right := m.Mem.DRAM.Mapper()
		pa := right.Unmap(dram.Coord{Bank: v.Bank, Row: v.VictimRow - 1})
		if wrong.Map(pa) != right.Map(pa) {
			t.Error("wrong address map still protected the victim; the reverse-engineered map should matter")
		}
	}
}

// TestConcurrentAggressorPairsInOneBank is the decoy scenario: two
// full-rate double-sided attacks share one bank. The paper-faithful
// MaxAggressorsPerBank=1 rotates between the pairs at the 12ms detection
// cadence, which cannot keep two 14ms-to-flip victims cold; the unlimited
// setting flags every aggressor each detection and protects both.
func TestConcurrentAggressorPairsInOneBank(t *testing.T) {
	runPairs := func(cap int) int {
		cfg := machine.DefaultConfig()
		cfg.Cores = 2
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a1, err := attack.NewDoubleSidedFlush(attackOptions(m))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Spawn(0, a1); err != nil {
			t.Fatal(err)
		}
		v1 := a1.Victim()
		// The second attack targets the same bank, ~128 rows later (inside
		// its own buffer, which follows the first attacker's physically).
		var a2 *attack.DoubleSidedFlush
		spawned := false
		for dr := 120; dr <= 200 && !spawned; dr += 8 {
			opts := attackOptions(m)
			opts.AutoTarget = false
			opts.Target = attack.Target{Bank: v1.Bank, VictimRow: v1.VictimRow + dr}
			a2, err = attack.NewDoubleSidedFlush(opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Spawn(1, a2); err == nil {
				spawned = true
			} else {
				m.Cores[1].Done = true // free the core for the next try
			}
		}
		if !spawned {
			t.Fatal("could not place the second pair in the same bank")
		}
		v2 := a2.Victim()
		m.Mem.DRAM.PlantWeakRow(v1.Bank, v1.VictimRow, 400_000)
		m.Mem.DRAM.PlantWeakRow(v2.Bank, v2.VictimRow, 400_000)

		p := Baseline()
		p.MaxAggressorsPerBank = cap
		d, err := New(m, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		run(t, m, 192*time.Millisecond)
		return m.Mem.DRAM.FlipCount()
	}

	if flips := runPairs(0); flips != 0 {
		t.Errorf("unlimited per-bank aggressors still allowed %d flips", flips)
	}
	// The capped configuration is documented (not asserted) as the
	// trade-off: it reproduces the paper's refresh rates but covers
	// concurrent same-bank pairs only at the rotation cadence.
	t.Logf("paper-faithful cap=1 flips: %d (rotation cadence vs 14ms flip horizon)", runPairs(1))
}

// TestDetectsTimingHammer closes the loop on the pagemap-free attack
// surface: even the rowhammer.js-style hammer (no CLFLUSH, no pagemap,
// eviction sets discovered by timing) produces the miss-rate and locality
// signature ANVIL keys on, and is stopped.
func TestDetectsTimingHammer(t *testing.T) {
	m := testMachine(t, 1)
	m.Kernel.Pagemap.Restricted = true

	const bufVA, bufMB = uint64(0x7000_0000), uint64(16)
	geom := m.Mem.DRAM.Config().Geometry
	rowPitch := uint64(geom.RowBytes * geom.BanksPerRank * geom.Ranks)
	agg0 := bufVA + 8<<20
	agg1 := agg0 + 2*rowPitch
	llc := cache.SandyBridgeConfig().Levels[2]
	s := attack.TimingHammer("timing-hammer", bufVA, bufMB, agg0, agg1,
		llc.Policy, llc.Ways, attack.DefaultTimingConfig(), 0, nil)
	proc, err := m.Spawn(0, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.AS.Map(bufVA, bufMB<<20); err != nil {
		t.Fatal(err)
	}
	pa0, err := proc.AS.Translate(agg0)
	if err != nil {
		t.Fatal(err)
	}
	c0 := m.Mem.DRAM.Mapper().Map(pa0)
	m.Mem.DRAM.PlantWeakRow(c0.Bank, c0.Row+1, 400_000)

	d := startDetector(t, m, Baseline())
	run(t, m, 256*time.Millisecond)
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if flips := m.Mem.DRAM.FlipCount(); flips != 0 {
		t.Errorf("ANVIL failed against the timing-based hammer: %d flips", flips)
	}
	if len(d.Stats().Detections) == 0 {
		t.Error("timing-based hammer never detected")
	}
}

// TestDetectsOnPaperTopology runs the heavy-load experiment on the paper's
// actual machine shape — two cores, four processes time-sliced — rather
// than one core per program: the attack and mcf share core 0, libquantum
// and omnetpp share core 1. ANVIL must still win.
func TestDetectsOnPaperTopology(t *testing.T) {
	m := testMachine(t, 2)
	a, err := attack.NewDoubleSidedFlush(attackOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnShared(0, a); err != nil {
		t.Fatal(err)
	}
	trio := heavyTrio(t)
	if _, err := m.SpawnShared(0, mustProg(t, trio[0])); err != nil { // mcf
		t.Fatal(err)
	}
	if _, err := m.SpawnShared(1, mustProg(t, trio[1])); err != nil { // libquantum
		t.Fatal(err)
	}
	if _, err := m.SpawnShared(1, mustProg(t, trio[2])); err != nil { // omnetpp
		t.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
	d := startDetector(t, m, Baseline())
	run(t, m, 256*time.Millisecond)

	if flips := m.Mem.DRAM.FlipCount(); flips != 0 {
		t.Errorf("ANVIL failed on the 2-core time-sliced topology: %d flips", flips)
	}
	if len(d.Stats().Detections) == 0 {
		t.Fatal("attack never detected on the time-sliced topology")
	}
	if m.Cores[0].Stats.ContextSwitches == 0 {
		t.Error("no time slicing happened; test degenerated")
	}
}

// TestXORMappedControllerStillProtected: when the controller uses an
// XOR-function bank map (Sandy Bridge style) and both the attack and the
// detector carry the correctly reverse-engineered map, everything works
// exactly as with the plain map.
func TestXORMappedControllerStillProtected(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	mapper, err := dram.NewXORMapper(cfg.Memory.DRAM.Geometry, dram.SandyBridgeMasks(cfg.Memory.DRAM.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Memory.DRAM.Mapper = mapper
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := attack.NewDoubleSidedFlush(attackOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)

	// Control: without protection the XOR-mapped attack flips.
	d := startDetector(t, m, Baseline())
	run(t, m, 192*time.Millisecond)
	if flips := m.Mem.DRAM.FlipCount(); flips != 0 {
		t.Errorf("ANVIL with the correct XOR map allowed %d flips", flips)
	}
	if len(d.Stats().Detections) == 0 {
		t.Error("attack never detected under the XOR map")
	}
}
