package anvil

import (
	"errors"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testMachine(t *testing.T, cores int) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Cores = cores
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mustProg builds a synthetic workload program, failing the test on error.
func mustProg(tb testing.TB, prof workload.Profile) *workload.Synthetic {
	tb.Helper()
	s, err := workload.New(prof)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// heavyTrio resolves the heavy-load profiles, failing the test on error.
func heavyTrio(tb testing.TB) []workload.Profile {
	tb.Helper()
	trio, err := workload.HeavyLoadTrio()
	if err != nil {
		tb.Fatal(err)
	}
	return trio
}

func attackOptions(m *machine.Machine) attack.Options {
	return attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	}
}

func startDetector(t *testing.T, m *machine.Machine, p Params) *Detector {
	t.Helper()
	d, err := New(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	return d
}

func run(t *testing.T, m *machine.Machine, d time.Duration) {
	t.Helper()
	if err := m.Run(m.Freq.Cycles(d)); err != nil && !errors.Is(err, machine.ErrAllDone) {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	for _, p := range []Params{Baseline(), Light(), Heavy()} {
		if err := p.Validate(); err != nil {
			t.Errorf("config invalid: %v", err)
		}
	}
	bad := Baseline()
	bad.LLCMissThreshold = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero threshold accepted")
	}
	bad = Baseline()
	bad.SampleRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := New(nil, Baseline(), nil); err == nil {
		t.Error("nil machine accepted")
	}
}

func TestConfigRelationships(t *testing.T) {
	b, l, h := Baseline(), Light(), Heavy()
	if b.LLCMissThreshold != 20_000 || b.MissCountDuration != 6*time.Millisecond || b.SamplingDuration != 6*time.Millisecond {
		t.Errorf("baseline differs from Table 2: %+v", b)
	}
	if l.LLCMissThreshold != b.LLCMissThreshold/2 {
		t.Error("light should halve the miss threshold")
	}
	if h.MissCountDuration != 2*time.Millisecond || h.LLCMissThreshold != b.LLCMissThreshold/3 {
		t.Error("heavy should shrink windows and scale the threshold to the same miss rate")
	}
}

// TestDetectsClflushHammer is the core Table 3 property: the CLFLUSH attack
// is detected and defeated — zero bit flips — with detection latency around
// tc+ts (~12 ms).
func TestDetectsClflushHammer(t *testing.T) {
	m := testMachine(t, 1)
	a, err := attack.NewDoubleSidedFlush(attackOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
	d := startDetector(t, m, Baseline())

	run(t, m, 192*time.Millisecond) // three refresh windows

	if flips := m.Mem.DRAM.FlipCount(); flips != 0 {
		t.Errorf("ANVIL failed: %d bit flips", flips)
	}
	st := d.Stats()
	if len(st.Detections) == 0 {
		t.Fatal("attack never detected")
	}
	first := m.Freq.Duration(st.Detections[0].Time)
	if first < 10*time.Millisecond || first > 16*time.Millisecond {
		t.Errorf("first detection at %v, want ~12ms (tc+ts)", first)
	}
	// The detector must identify the actual aggressor rows.
	found := false
	for _, agg := range st.Detections[0].Aggressors {
		if agg.Bank == v.Bank && (agg.Row == v.VictimRow-1 || agg.Row == v.VictimRow+1) {
			found = true
		}
	}
	if !found {
		t.Errorf("detected aggressors %v do not bracket victim row %d", st.Detections[0].Aggressors, v.VictimRow)
	}
	// And the victim row must be among the refreshed rows.
	refreshedVictim := false
	for _, det := range st.Detections {
		for _, vic := range det.Victims {
			if vic.Bank == v.Bank && vic.Row == v.VictimRow {
				refreshedVictim = true
			}
		}
	}
	if !refreshedVictim {
		t.Error("victim row never selectively refreshed")
	}
}

func TestDetectsClflushFreeHammer(t *testing.T) {
	m := testMachine(t, 1)
	a, err := attack.NewClflushFree(attackOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
	d := startDetector(t, m, Baseline())

	run(t, m, 192*time.Millisecond)

	if flips := m.Mem.DRAM.FlipCount(); flips != 0 {
		t.Errorf("ANVIL failed against CLFLUSH-free attack: %d flips", flips)
	}
	st := d.Stats()
	if len(st.Detections) == 0 {
		t.Fatal("CLFLUSH-free attack never detected")
	}
	// Paper: detection 22.9-35.3ms — slower than the CLFLUSH attack but
	// still inside one refresh window.
	first := m.Freq.Duration(st.Detections[0].Time)
	if first > 64*time.Millisecond {
		t.Errorf("first detection at %v, want within one refresh window", first)
	}
}

func TestDetectsUnderHeavyLoad(t *testing.T) {
	m := testMachine(t, 4)
	a, err := attack.NewDoubleSidedFlush(attackOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	for i, prof := range heavyTrio(t) {
		if _, err := m.Spawn(i+1, mustProg(t, prof)); err != nil {
			t.Fatal(err)
		}
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
	d := startDetector(t, m, Baseline())

	run(t, m, 192*time.Millisecond)

	if flips := m.Mem.DRAM.FlipCount(); flips != 0 {
		t.Errorf("ANVIL failed under heavy load: %d flips", flips)
	}
	if len(d.Stats().Detections) == 0 {
		t.Fatal("attack never detected under heavy load")
	}
}

// TestNoDetectionOnStreamingWorkload: libquantum-style streaming crosses
// stage 1 constantly but must not trigger protective refreshes (its misses
// spread across hundreds of rows).
func TestNoDetectionOnStreamingWorkload(t *testing.T) {
	m := testMachine(t, 1)
	prof, _ := workload.ByName("libquantum")
	if _, err := m.Spawn(0, mustProg(t, prof)); err != nil {
		t.Fatal(err)
	}
	d := startDetector(t, m, Baseline())
	run(t, m, 200*time.Millisecond)
	st := d.Stats()
	if st.CrossingFraction() < 0.9 {
		t.Errorf("libquantum crossed stage 1 in only %.0f%% of windows, want ≳95%%",
			100*st.CrossingFraction())
	}
	if len(st.Detections) > 1 {
		t.Errorf("streaming workload caused %d detections", len(st.Detections))
	}
}

func TestComputeBoundRarelyCrossesStage1(t *testing.T) {
	m := testMachine(t, 1)
	prof, _ := workload.ByName("h264ref")
	if _, err := m.Spawn(0, mustProg(t, prof)); err != nil {
		t.Fatal(err)
	}
	d := startDetector(t, m, Baseline())
	run(t, m, 200*time.Millisecond)
	st := d.Stats()
	if st.CrossingFraction() > 0.10 {
		t.Errorf("h264ref crossed stage 1 in %.0f%% of windows, want <10%%",
			100*st.CrossingFraction())
	}
	if st.SamplesTaken > 0 && st.SampleWindows == 0 {
		t.Error("samples taken without sample windows")
	}
}

// TestSelectiveRefreshDefeatsSlowAccumulation: even an attack that the
// detector only catches every other window cannot accumulate to the flip
// threshold, because each selective refresh resets the victim.
func TestRepeatedRefreshesKeepVictimCold(t *testing.T) {
	m := testMachine(t, 1)
	a, err := attack.NewDoubleSidedFlush(attackOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
	startDetector(t, m, Baseline())
	run(t, m, 100*time.Millisecond)
	units := m.Mem.DRAM.VictimUnits(v.Bank, v.VictimRow, m.Time())
	// Without ANVIL the victim would have accumulated ~400K units by now;
	// with ~12ms refresh cadence it can hold at most ~2 windows' worth.
	if units > 250_000 {
		t.Errorf("victim accumulated %.0f units despite selective refreshes", units)
	}
}

// TestRefreshRateIsBoundedAgainstAbuse: "it is not possible for an attacker
// to use the selective refresh mechanism to rowhammer DRAM rows adjacent to
// the potential victim row" — refreshes are at most a handful per window.
func TestRefreshRateIsBounded(t *testing.T) {
	m := testMachine(t, 1)
	a, err := attack.NewDoubleSidedFlush(attackOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	d := startDetector(t, m, Baseline())
	const dur = 192 * time.Millisecond
	run(t, m, dur)
	st := d.Stats()
	perWindow := float64(st.Refreshes) / (float64(dur) / float64(64*time.Millisecond))
	// Paper Table 3: ~10-12 refreshes per 64ms for the CLFLUSH attack.
	if perWindow > 40 {
		t.Errorf("selective refresh rate %.1f per 64ms is high enough to matter", perWindow)
	}
	if st.Refreshes == 0 {
		t.Error("no refreshes recorded for an active attack")
	}
}

func TestDetectorStatsAccounting(t *testing.T) {
	m := testMachine(t, 1)
	prof, _ := workload.ByName("mcf")
	if _, err := m.Spawn(0, mustProg(t, prof)); err != nil {
		t.Fatal(err)
	}
	d := startDetector(t, m, Baseline())
	run(t, m, 100*time.Millisecond)
	st := d.Stats()
	if st.Stage1Windows == 0 {
		t.Fatal("no stage-1 windows recorded")
	}
	if st.Stage1Crossings > st.Stage1Windows {
		t.Error("more crossings than windows")
	}
	if st.SampleWindows != st.Stage1Crossings {
		t.Errorf("sample windows %d != crossings %d", st.SampleWindows, st.Stage1Crossings)
	}
	// Windows alternate 6ms/12ms; in 100ms expect between 9 and 17.
	if st.Stage1Windows < 8 || st.Stage1Windows > 17 {
		t.Errorf("stage-1 windows = %d over 100ms", st.Stage1Windows)
	}
	// Kernel cycles must have been charged for the detector's work.
	if m.Cores[0].Stats.KernelCycles == 0 {
		t.Error("no kernel cycles charged")
	}
}

func TestDoubleStartIsIdempotent(t *testing.T) {
	m := testMachine(t, 1)
	prof, _ := workload.ByName("sjeng")
	if _, err := m.Spawn(0, mustProg(t, prof)); err != nil {
		t.Fatal(err)
	}
	d := startDetector(t, m, Baseline())
	d.Start() // second start must not double the window cadence
	run(t, m, 50*time.Millisecond)
	st := d.Stats()
	if st.Stage1Windows > 9 {
		t.Errorf("double Start produced %d windows in 50ms (duplicated timers?)", st.Stage1Windows)
	}
}

// TestAnvilHeavyCatchesFastAttack reproduces §4.5: future DRAM flipping at
// half the disturbance (200K units), attacked flat-out. ANVIL-heavy's 2ms
// windows must still win.
func TestAnvilHeavyCatchesFastAttack(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory.DRAM.Disturb = cfg.Memory.DRAM.Disturb.Scaled(0.5)
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := attack.NewDoubleSidedFlush(attackOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 200_000)
	startDetector(t, m, Heavy())
	run(t, m, 128*time.Millisecond)
	if flips := m.Mem.DRAM.FlipCount(); flips != 0 {
		t.Errorf("ANVIL-heavy failed against fast attack on weak DRAM: %d flips", flips)
	}
}

// TestAnvilLightCatchesSlowAttack reproduces the other §4.5 case: 110K
// accesses spread across a whole refresh period stay under the baseline
// 20K/6ms threshold, but ANVIL-light's halved threshold catches them.
func TestAnvilLightCatchesSlowAttack(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory.DRAM.Disturb = cfg.Memory.DRAM.Disturb.Scaled(0.5)
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := attackOptions(m)
	// Spread: ~110K pair-iterations over 64ms → ~580ns/iteration; the loop
	// body costs ~330cyc, so pad to ~1500 cycles.
	opts.ExtraDelay = 1200
	a, err := attack.NewDoubleSidedFlush(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 200_000)
	d := startDetector(t, m, Light())
	run(t, m, 256*time.Millisecond)
	if flips := m.Mem.DRAM.FlipCount(); flips != 0 {
		t.Errorf("ANVIL-light failed against slow attack: %d flips", flips)
	}
	if len(d.Stats().Detections) == 0 {
		t.Error("slow attack never detected by ANVIL-light")
	}
}

// TestSlowAttackEvadesBaseline documents why ANVIL-light exists: the same
// slowed attack should cross the baseline stage-1 threshold rarely or not
// at all (its miss rate sits under 20K/6ms).
func TestSlowAttackStaysUnderBaselineThreshold(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := attackOptions(m)
	opts.ExtraDelay = 1200
	a, err := attack.NewDoubleSidedFlush(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	d := startDetector(t, m, Baseline())
	run(t, m, 100*time.Millisecond)
	if f := d.Stats().CrossingFraction(); f > 0.2 {
		t.Errorf("slow attack crossed baseline stage 1 in %.0f%% of windows; delay calibration off", 100*f)
	}
}

func TestStage1CadenceWithQuietMachine(t *testing.T) {
	// A compute-bound program never escalates, so windows tick at tc.
	m := testMachine(t, 1)
	p, _ := workload.ByName("sjeng")
	if _, err := m.Spawn(0, mustProg(t, p)); err != nil {
		t.Fatal(err)
	}
	d := startDetector(t, m, Baseline())
	run(t, m, 60*time.Millisecond)
	st := d.Stats()
	if st.Stage1Windows < 8 || st.Stage1Windows > 11 {
		t.Errorf("windows = %d over 60ms at tc=6ms", st.Stage1Windows)
	}
}

var _ = sim.Cycles(0)
