package sweepd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/journal"
)

// storeRecord is one framed record of the job-store journal, JSON-encoded.
// Kind discriminates: "job" (a submission: identity + spec, fsynced before
// the submission is acknowledged) and "state" (one state-machine
// transition, carrying the completion charge and artifact fingerprint when
// terminal).
type storeRecord struct {
	Kind     string   `json:"kind"`
	ID       string   `json:"id"`
	Caller   string   `json:"caller,omitempty"`
	Spec     *JobSpec `json:"spec,omitempty"`
	SpecHash string   `json:"spec_hash,omitempty"`
	State    JobState `json:"state,omitempty"`
	Error    string   `json:"error,omitempty"`
	// Artifact names the result file under artifacts/; Sum is the hex
	// SHA-256 of its bytes, the corruption check every fetch re-verifies.
	Artifact string `json:"artifact,omitempty"`
	Sum      string `json:"sum,omitempty"`
	// Fresh and Resumed are the completion charge: Fresh replicates were
	// executed this run (and bill the caller), Resumed were merged back
	// from the sweep checkpoint journal (and bill nothing).
	Fresh   int    `json:"fresh,omitempty"`
	Resumed int    `json:"resumed,omitempty"`
	WallMS  int64  `json:"wall_ms,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// cacheEntry is one content-addressed result: the artifact serving a spec
// hash and the job that produced it.
type cacheEntry struct {
	JobID string
	File  string
	Sum   string
}

// A Store is the crash-safe job store: an append-only journal of job
// submissions and state transitions under <dir>/jobs.jnl, result artifacts
// under <dir>/artifacts/, and per-spec sweep checkpoint journals under
// <dir>/sweeps/. Every mutating method journals its record and fsyncs
// before updating in-memory state, so the in-memory view is always a replay
// of the durable log — kill -9 at any instant loses nothing acknowledged.
//
// The journal file is exclusively locked (journal.ErrLocked) for the life
// of the Store, so two servers can never interleave appends on one data
// directory.
type Store struct {
	dir string

	mu     sync.Mutex
	w      *journal.Writer
	jobs   map[string]*Job
	order  []string // job IDs in submission order (replay and listing order)
	nextID uint64
	cache  map[string]cacheEntry // spec hash → done artifact (cacheable specs only)
	live   map[string]string     // spec hash → queued/running job ID (single-flight)
	usage  map[string]*Usage     // caller → charged usage
}

// OpenStore opens (creating or recovering) the job store rooted at dir. A
// journal already held by a live server is refused with journal.ErrLocked.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{"", "artifacts", "sweeps"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("sweepd: creating store directory: %w", err)
		}
	}
	s := &Store{
		dir:    dir,
		jobs:   map[string]*Job{},
		cache:  map[string]cacheEntry{},
		live:   map[string]string{},
		usage:  map[string]*Usage{},
		nextID: 1,
	}
	path := filepath.Join(dir, "jobs.jnl")
	if _, err := os.Stat(path); os.IsNotExist(err) {
		w, err := journal.Create(path)
		if err != nil {
			return nil, err
		}
		s.w = w
	} else if err != nil {
		return nil, err
	} else {
		records, w, err := journal.Recover(path)
		if err != nil {
			return nil, err
		}
		s.w = w
		if err := s.replay(records); err != nil {
			w.Close()
			return nil, err
		}
	}
	// Job records are rare next to replicate work and each one is an
	// acknowledgement boundary: sync every record.
	s.w.SyncEvery = 1
	return s, nil
}

// replay rebuilds the in-memory view from the journal's records. Records a
// killed server half-applied are harmless: the journal is the truth, and
// anything not in it was never acknowledged.
func (s *Store) replay(records [][]byte) error {
	for i, raw := range records {
		var rec storeRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("sweepd: store record %d does not decode: %w", i, err)
		}
		switch rec.Kind {
		case "job":
			if rec.Spec == nil || rec.ID == "" {
				return fmt.Errorf("sweepd: store record %d: malformed job record", i)
			}
			job := &Job{ID: rec.ID, Caller: rec.Caller, Spec: *rec.Spec, SpecHash: rec.SpecHash}
			job.state = StateQueued
			s.jobs[rec.ID] = job
			s.order = append(s.order, rec.ID)
			if seq, err := parseJobID(rec.ID); err == nil && seq >= s.nextID {
				s.nextID = seq + 1
			}
		case "state":
			job := s.jobs[rec.ID]
			if job == nil {
				return fmt.Errorf("sweepd: store record %d: state for unknown job %s", i, rec.ID)
			}
			job.setState(rec.State, rec.Error, rec.Artifact, rec.Sum)
			if rec.State.Terminal() {
				s.chargeLocked(job.Caller, rec.Fresh, time.Duration(rec.WallMS)*time.Millisecond)
			}
		default:
			return fmt.Errorf("sweepd: store record %d: unknown kind %q", i, rec.Kind)
		}
	}
	// Rebuild the derived indexes from final job states, in submission
	// order so single-flight picks the earliest live job.
	for _, id := range s.order {
		job := s.jobs[id]
		switch job.State() {
		case StateQueued, StateRunning:
			if _, dup := s.live[job.SpecHash]; !dup {
				s.live[job.SpecHash] = id
			}
		case StateDone:
			if file, sum := job.artifactRef(); file != "" && job.Spec.Cacheable() {
				s.cache[job.SpecHash] = cacheEntry{JobID: id, File: file, Sum: sum}
			}
		}
	}
	return nil
}

// chargeLocked accrues one completion record's charge. Caller holds s.mu
// (or has exclusive access during replay).
func (s *Store) chargeLocked(caller string, fresh int, wall time.Duration) {
	u := s.usage[caller]
	if u == nil {
		u = &Usage{}
		s.usage[caller] = u
	}
	u.add(fresh, wall)
}

// parseJobID extracts the sequence number of a "j-NNNNNN" job ID.
func parseJobID(id string) (uint64, error) {
	rest, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0, fmt.Errorf("sweepd: malformed job ID %q", id)
	}
	return strconv.ParseUint(rest, 10, 64)
}

// append journals one record and fsyncs it — the durability point every
// acknowledgement sits behind. Caller holds s.mu.
func (s *Store) appendLocked(rec storeRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweepd: encoding store record: %w", err)
	}
	return s.w.Append(raw) // SyncEvery=1: Append syncs
}

// Submit journals a new job (durable before return) and returns it. The
// caller is responsible for admission checks — nothing rejected for quota
// or queue depth should ever reach the journal.
func (s *Store) Submit(caller string, spec JobSpec) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := fmt.Sprintf("j-%06d", s.nextID)
	job := &Job{ID: id, Caller: caller, Spec: spec, SpecHash: spec.Hash()}
	job.state = StateQueued
	if err := s.appendLocked(storeRecord{
		Kind: "job", ID: id, Caller: caller, Spec: &spec, SpecHash: job.SpecHash,
	}); err != nil {
		return nil, err
	}
	s.nextID++
	s.jobs[id] = job
	s.order = append(s.order, id)
	if _, dup := s.live[job.SpecHash]; !dup {
		s.live[job.SpecHash] = id
	}
	return job, nil
}

// transition journals one state record (durable before return) and applies
// it in memory.
func (s *Store) transition(job *Job, rec storeRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec.Kind = "state"
	rec.ID = job.ID
	if err := s.appendLocked(rec); err != nil {
		return err
	}
	job.setState(rec.State, rec.Error, rec.Artifact, rec.Sum)
	if rec.State.Terminal() {
		s.chargeLocked(job.Caller, rec.Fresh, time.Duration(rec.WallMS)*time.Millisecond)
		if s.live[job.SpecHash] == job.ID {
			delete(s.live, job.SpecHash)
		}
	}
	if rec.State == StateDone && rec.Artifact != "" && job.Spec.Cacheable() {
		s.cache[job.SpecHash] = cacheEntry{JobID: job.ID, File: rec.Artifact, Sum: rec.Sum}
	}
	return nil
}

// MarkRunning journals the queued → running transition.
func (s *Store) MarkRunning(job *Job) error {
	return s.transition(job, storeRecord{State: StateRunning})
}

// MarkDone journals a successful completion: artifact fingerprint plus the
// quota charge (fresh replicates and wall-clock — this record, and only
// this record, bills the caller).
func (s *Store) MarkDone(job *Job, artifact, sum string, fresh, resumed int, wall time.Duration) error {
	return s.transition(job, storeRecord{
		State: StateDone, Artifact: artifact, Sum: sum,
		Fresh: fresh, Resumed: resumed, WallMS: wall.Milliseconds(),
	})
}

// MarkFailed journals a failed completion; the work actually executed
// (fresh replicates, wall-clock) still charges the caller.
func (s *Store) MarkFailed(job *Job, errText string, fresh, resumed int, wall time.Duration) error {
	return s.transition(job, storeRecord{
		State: StateFailed, Error: errText,
		Fresh: fresh, Resumed: resumed, WallMS: wall.Milliseconds(),
	})
}

// MarkTruncated journals a budget-truncated completion. Replicate-budget
// truncation is deterministic, so a truncated sweep still publishes its
// partial artifact; errText names the dropped range.
func (s *Store) MarkTruncated(job *Job, errText, artifact, sum string, fresh, resumed int, wall time.Duration) error {
	return s.transition(job, storeRecord{
		State: StateTruncated, Error: errText, Artifact: artifact, Sum: sum,
		Fresh: fresh, Resumed: resumed, WallMS: wall.Milliseconds(),
	})
}

// Requeue journals a done → queued transition (artifact corruption
// recompute). The spec's sweep checkpoint journal survives, so the re-run
// merges every replicate back and re-derives the artifact without
// re-simulating — and without re-charging the caller.
func (s *Store) Requeue(job *Job, reason string) error {
	s.mu.Lock()
	if entry, ok := s.cache[job.SpecHash]; ok && entry.JobID == job.ID {
		delete(s.cache, job.SpecHash)
	}
	if _, dup := s.live[job.SpecHash]; !dup {
		s.live[job.SpecHash] = job.ID
	}
	s.mu.Unlock()
	job.resetProgress()
	return s.transition(job, storeRecord{State: StateQueued, Reason: reason})
}

// Lookup returns the job with the given ID.
func (s *Store) Lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// Cached returns the content-addressed done artifact for a spec hash.
func (s *Store) Cached(specHash string) (cacheEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.cache[specHash]
	return entry, ok
}

// Live returns the queued/running job already covering a spec hash, for
// idempotent submission.
func (s *Store) Live(specHash string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.live[specHash]
	if !ok {
		return nil, false
	}
	return s.jobs[id], true
}

// Pending returns the queued and running jobs in submission order — what a
// restarted server re-enqueues.
func (s *Store) Pending() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, id := range s.order {
		job := s.jobs[id]
		if st := job.State(); st == StateQueued || st == StateRunning {
			out = append(out, job)
		}
	}
	return out
}

// UsageFor returns a caller's charged usage (zero value when unknown).
func (s *Store) UsageFor(caller string) Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	if u := s.usage[caller]; u != nil {
		return *u
	}
	return Usage{}
}

// Callers returns every caller with charged usage, sorted.
func (s *Store) Callers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.usage))
	for c := range s.usage { //lint:allow maporder keys are sorted before use
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// SweepDir returns (creating) the sweep checkpoint directory for a spec
// hash. Keyed by spec hash, not job ID, so a recompute of the same spec
// resumes the original sweep's journal instead of re-simulating.
func (s *Store) SweepDir(specHash string) (string, error) {
	dir := filepath.Join(s.dir, "sweeps", specHash)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("sweepd: creating sweep directory: %w", err)
	}
	return dir, nil
}

// WriteArtifact stores result bytes content-addressed by the job's spec
// hash (or job ID for uncacheable specs), atomically via tmp+rename, and
// returns the artifact file name and its hex SHA-256.
func (s *Store) WriteArtifact(job *Job, data []byte) (file, sum string, err error) {
	name := job.SpecHash + ".json"
	if !job.Spec.Cacheable() {
		name = job.ID + ".json"
	}
	dir := filepath.Join(s.dir, "artifacts")
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return "", "", fmt.Errorf("sweepd: writing artifact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", "", fmt.Errorf("sweepd: writing artifact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", "", fmt.Errorf("sweepd: syncing artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", "", fmt.Errorf("sweepd: closing artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return "", "", fmt.Errorf("sweepd: publishing artifact: %w", err)
	}
	h := sha256.Sum256(data)
	return name, hex.EncodeToString(h[:]), nil
}

// ErrArtifactCorrupt marks an artifact whose bytes no longer match their
// journaled fingerprint. Fetch paths treat it as a cache miss and
// recompute — corrupted bytes are never served.
var ErrArtifactCorrupt = fmt.Errorf("sweepd: artifact corrupt")

// ReadArtifact loads and verifies an artifact: the bytes must hash to the
// journaled sum or the read fails with ErrArtifactCorrupt.
func (s *Store) ReadArtifact(file, sum string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, "artifacts", file))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrArtifactCorrupt, err)
	}
	h := sha256.Sum256(data)
	if got := hex.EncodeToString(h[:]); got != sum {
		return nil, fmt.Errorf("%w: %s hashes to %s, journal records %s", ErrArtifactCorrupt, file, got, sum)
	}
	return data, nil
}

// Sync flushes the store journal (records are synced per-append; this is a
// belt for Close paths).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Sync()
}

// Close syncs and closes the store journal, releasing its exclusive lock.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Close()
}
