package sweepd

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netchaos"
)

// flakyHandler fails the first n requests with code (plus an optional
// Retry-After), then delegates to ok.
func flakyHandler(n *atomic.Int64, fails int64, code int, retryAfter string, ok http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= fails {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			writeErr(w, code, "induced failure %d", n.Load())
			return
		}
		ok.ServeHTTP(w, r)
	})
}

func okStatus(t *testing.T) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, JobStatus{ID: "j-000001", State: StateDone})
	})
}

// TestClientRetries503: a server that 503s twice then recovers is invisible
// to a retrying client, and the failed attempts are counted, not skipped.
func TestClientRetries503(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(flakyHandler(&hits, 2, http.StatusServiceUnavailable, "", okStatus(t)))
	defer srv.Close()
	c := &Client{Base: srv.URL, MaxRetries: 3, RetryBase: time.Millisecond}
	st, err := c.Job(context.Background(), "j-000001")
	if err != nil {
		t.Fatalf("retrying client surfaced a transient 503: %v", err)
	}
	if st.State != StateDone || hits.Load() != 3 {
		t.Fatalf("state %s after %d requests, want done after 3", st.State, hits.Load())
	}
}

// TestClientHonorsRetryAfter: the server's Retry-After is a floor under the
// client's own backoff.
func TestClientHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(flakyHandler(&hits, 1, http.StatusTooManyRequests, "1", okStatus(t)))
	defer srv.Close()
	c := &Client{Base: srv.URL, MaxRetries: 2, RetryBase: time.Millisecond}
	start := time.Now()
	if _, err := c.Job(context.Background(), "j-000001"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("client retried after %v, before the server's Retry-After of 1s", elapsed)
	}
}

// TestClientDoesNotRetryClientErrors: 4xx (other than 429) means the request
// itself is wrong; retrying would just repeat the mistake.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(flakyHandler(&hits, 99, http.StatusNotFound, "", okStatus(t)))
	defer srv.Close()
	c := &Client{Base: srv.URL, MaxRetries: 5, RetryBase: time.Millisecond}
	_, err := c.Job(context.Background(), "j-missing")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("want a 404 StatusError, got %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("client issued %d requests for a 404, want exactly 1", hits.Load())
	}
}

// TestClientRetriesTransportFaults: seeded request drops from a chaos
// transport — including drop-after faults where the server processed the
// request — are absorbed by the retry loop.
func TestClientRetriesTransportFaults(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(flakyHandler(&hits, 0, 0, "", okStatus(t)))
	defer srv.Close()
	tr := netchaos.NewTransport(nil, netchaos.Faults{Seed: 5, DropBefore: 0.4, DropAfter: 0.2})
	c := &Client{
		Base:       srv.URL,
		HTTPClient: &http.Client{Transport: tr},
		MaxRetries: 16,
		RetryBase:  time.Millisecond,
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Job(context.Background(), "j-000001"); err != nil {
			t.Fatalf("request %d through the chaos transport: %v (%d faults injected)", i, err, tr.Injected())
		}
	}
	if tr.Injected() == 0 {
		t.Fatal("the chaos transport injected nothing; the test proved nothing")
	}
}

// TestClientRetryBoundedByContext: a context that expires mid-backoff stops
// the retrying immediately — no sleeping past the caller's deadline.
func TestClientRetryBoundedByContext(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(flakyHandler(&hits, 99, http.StatusServiceUnavailable, "30", okStatus(t)))
	defer srv.Close()
	c := &Client{Base: srv.URL, MaxRetries: 100, RetryBase: 10 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Job(ctx, "j-000001")
	if err == nil {
		t.Fatal("want an error once the context expires")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop outlived its context by %v", elapsed)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("want the last attempt's 503, got %v", err)
	}
}

// TestClientResultRetries: the artifact fetch path shares the retry policy.
func TestClientResultRetries(t *testing.T) {
	var hits atomic.Int64
	ok := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("X-Job-State", string(StateDone))
		w.Write([]byte(`{"data":1}`)) //nolint:errcheck // test handler
	})
	srv := httptest.NewServer(flakyHandler(&hits, 2, http.StatusServiceUnavailable, "", ok))
	defer srv.Close()
	c := &Client{Base: srv.URL, MaxRetries: 3, RetryBase: time.Millisecond}
	data, st, err := c.Result(context.Background(), "j-000001")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"data":1}` || st.State != StateDone {
		t.Fatalf("result %q state %s after retries", data, st.State)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", hits.Load())
	}
}
