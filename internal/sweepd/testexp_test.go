package sweepd

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/scenario"
)

// The test registry: three sweep-shaped experiments exercising the service
// paths. Registered once per test process (the registry is global and
// refuses duplicates); the chaos-harness subprocess reuses them through the
// same init.
//
//   - sweepd-test-fast: 4 instant replicates — happy path, caching, quota.
//   - sweepd-test-chaos: 16 replicates of ~40ms each — wide enough a window
//     to SIGKILL or SIGTERM the server mid-sweep.
//   - sweepd-test-block: replicates that park on blockGate until the test
//     releases them — drain and queue-full scenarios.
const (
	expFast  = "sweepd-test-fast"
	expChaos = "sweepd-test-chaos"
	expBlock = "sweepd-test-block"

	fastReps  = 4
	chaosReps = 16
)

// blockGate parks sweepd-test-block replicates. Tests (re)make it before
// submitting and close it to release; tests run sequentially, so the global
// is race-free.
var blockGate chan struct{}

// testSweepResult is the artifact payload of every test experiment. Its
// fields round-trip exactly through JSON, so journal-resumed replicates
// reproduce the artifact byte for byte.
type testSweepResult struct {
	Experiment string   `json:"experiment"`
	Values     []uint64 `json:"values"`
}

func (r *testSweepResult) Render() string {
	return fmt.Sprintf("%s: %d values", r.Experiment, len(r.Values))
}

// mkSweepRun builds a registry Run function: n replicates, each sleeping
// delay (host wall-clock, to widen kill windows) and returning a value
// derived purely from its replicate seed.
func mkSweepRun(name string, n int, delay time.Duration) func(scenario.Config) (scenario.Result, error) {
	return func(cfg scenario.Config) (scenario.Result, error) {
		vals, err := scenario.RunReplicates(cfg, n, func(rep int) (uint64, error) {
			if delay > 0 {
				time.Sleep(delay)
			}
			return scenario.ReplicateSeed(cfg.Seed, rep) % 1_000_003, nil
		})
		res := &testSweepResult{Experiment: name, Values: vals}
		if err != nil {
			var trunc *scenario.TruncatedError
			if errors.As(err, &trunc) {
				return res, err // partial artifact rides along with the truncation
			}
			return nil, err
		}
		return res, nil
	}
}

func init() {
	scenario.Register(scenario.Experiment{
		Name:      expFast,
		Desc:      "sweepd test: instant 4-replicate sweep",
		Run:       mkSweepRun(expFast, fastReps, 0),
		Reps:      func(scenario.Config) int { return fastReps },
		Shardable: true, // single top-level sweep
	})
	scenario.Register(scenario.Experiment{
		Name:      expChaos,
		Desc:      "sweepd test: slow 16-replicate sweep for kill windows",
		Run:       mkSweepRun(expChaos, chaosReps, 40*time.Millisecond),
		Reps:      func(scenario.Config) int { return chaosReps },
		Shardable: true, // single top-level sweep
	})
	scenario.Register(scenario.Experiment{
		Name: expBlock,
		Desc: "sweepd test: replicates parked on a gate",
		Run: func(cfg scenario.Config) (scenario.Result, error) {
			gate := blockGate
			vals, err := scenario.RunReplicates(cfg, 2, func(rep int) (uint64, error) {
				if gate != nil {
					<-gate
				}
				return uint64(rep), nil
			})
			if err != nil {
				return nil, err
			}
			return &testSweepResult{Experiment: expBlock, Values: vals}, nil
		},
		Reps: func(scenario.Config) int { return 2 },
	})
}

// goldenArtifact computes the artifact bytes the server must serve for a
// spec, by running the experiment in-process exactly as runJob does
// (journal and parallelism never change bytes).
func goldenArtifact(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	exp, ok := scenario.Find(spec.Experiment)
	if !ok {
		t.Fatalf("experiment %q not registered", spec.Experiment)
	}
	res, err := exp.Run(scenario.Config{Quick: spec.Quick, Seed: spec.Seed})
	if err != nil {
		t.Fatalf("golden run of %s: %v", spec.Experiment, err)
	}
	raw, err := MarshalArtifact(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// testService is one in-process service: store + server + HTTP front end +
// client, torn down in reverse order.
type testService struct {
	store  *Store
	server *Server
	http   *httptest.Server
	client *Client
}

// startService opens a store at dir and serves it over an httptest server.
func startService(t *testing.T, dir string, opts ServerOptions) *testService {
	t.Helper()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	srv := NewServer(store, opts)
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	svc := &testService{
		store:  store,
		server: srv,
		http:   ts,
		client: &Client{Base: ts.URL},
	}
	t.Cleanup(func() { svc.stop(t) })
	return svc
}

// stop drains and closes the service; safe to call twice.
func (svc *testService) stop(t *testing.T) {
	t.Helper()
	if svc.http == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.server.Drain(ctx); err != nil {
		t.Errorf("drain at teardown: %v", err)
	}
	svc.http.Close()
	if err := svc.store.Close(); err != nil {
		t.Errorf("store close at teardown: %v", err)
	}
	svc.http = nil
}

// waitState polls a job until it reaches want (or the deadline).
func waitState(t *testing.T, c *Client, id string, want JobState) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatalf("polling job %s: %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q) while waiting for %s", id, st.State, st.Error, want)
		}
		select {
		case <-ctx.Done():
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, want)
		case <-time.After(5 * time.Millisecond):
		}
	}
}
