package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"context"

	"repro/internal/scenario"
)

// DefaultQueueDepth bounds the external submission queue when
// ServerOptions.QueueDepth is zero.
const DefaultQueueDepth = 32

// ServerOptions tunes a Server. The zero value is serviceable: one sweep
// worker, DefaultQueueDepth queue slots, unlimited quotas.
type ServerOptions struct {
	// QueueDepth bounds how many external submissions may wait queued at
	// once; a submission past the bound gets a loud 429 with Retry-After —
	// never a block, never a silent drop. Server-initiated repair re-runs
	// (artifact corruption) bypass the bound: refusing repair work would
	// wedge the corrupted job forever. Zero means DefaultQueueDepth.
	QueueDepth int
	// Workers is how many jobs execute concurrently. Zero means one.
	Workers int
	// Parallel is the per-sweep worker pool handed to scenario.Config;
	// zero means GOMAXPROCS. Parallelism never changes result bytes.
	Parallel int
	// Quota is the per-caller admission limit; the zero value is unlimited.
	Quota Quota
	// Distribute opens the worker lease plane (POST /v1/leases/...): jobs
	// whose experiment is Shardable get a distribution phase where external
	// worker processes claim replicate slot leases, compute them, and upload
	// results into the job's sweep journal. Off by default — a coordinator
	// with no workers pointed at it would only pay the grace window.
	Distribute bool
	// LeaseTTL is how long a slot lease survives without a heartbeat before
	// its slots are reassigned; zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// LeaseChunk caps how many slots one claim grants; zero means
	// DefaultLeaseChunk.
	LeaseChunk int
	// WorkerGrace is how long a sharded job's distribution phase idles (no
	// claim, renewal or upload) before the coordinator gives up on workers
	// and computes the remaining slots in-process; zero means
	// DefaultWorkerGrace.
	WorkerGrace time.Duration
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// A Server runs jobs from a Store through the experiment registry and
// serves the HTTP/JSON API. Create with NewServer, start workers with
// Start, stop with Drain.
type Server struct {
	store  *Store
	opts   ServerOptions
	leases *leaseTable

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Job
	draining bool

	runCtx context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	mux    *http.ServeMux
}

// NewServer builds a server over an open store. Jobs whose last durable
// state is queued or running are re-enqueued immediately (bypassing the
// admission bound — they were already admitted); running ones resume from
// their sweep checkpoint journals once a worker picks them up.
func NewServer(store *Store, opts ServerOptions) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.WorkerGrace <= 0 {
		opts.WorkerGrace = DefaultWorkerGrace
	}
	s := &Server{store: store, opts: opts, leases: newLeaseTable(opts.LeaseTTL, opts.LeaseChunk)}
	s.cond = sync.NewCond(&s.mu)
	s.runCtx, s.cancel = context.WithCancel(context.Background())
	s.queue = append(s.queue, store.Pending()...)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/quota", s.handleQuota)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/leases/claim", s.handleClaim)
	s.mux.HandleFunc("POST /v1/leases/{id}/renew", s.handleRenew)
	s.mux.HandleFunc("POST /v1/leases/{id}/results", s.handleUpload)
	s.mux.HandleFunc("POST /v1/leases/{id}/release", s.handleRelease)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the worker pool. Call once.
func (s *Server) Start() {
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Drain gracefully stops the server: new submissions are refused with 503,
// running sweeps are cancelled (their completed replicates are already
// checkpointed in per-sweep journals, and their durable job state stays
// "running", so a restart resumes them), and Drain returns once every
// worker has exited — or with an error when ctx expires first. Queued jobs
// need no persisting: their submission records are already durable.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	s.cancel()
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.store.Sync()
	case <-ctx.Done():
		return fmt.Errorf("sweepd: drain deadline expired with workers still running: %w", ctx.Err())
	}
}

// logf logs through the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// callerOf identifies the submitting caller: the X-API-Key header, or
// "anonymous".
func callerOf(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key
	}
	return "anonymous"
}

// apiError is the JSON body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// writeErr writes one JSON error response.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/jobs: validate, admit (quota, cache, dedup,
// queue bound — in that order), journal, acknowledge. Nothing is journaled
// unless it was admitted, and nothing is acknowledged unless it is durable.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	caller := callerOf(r)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server is draining; resubmit after restart")
		return
	}
	if reason, over := s.opts.Quota.Exceeded(s.store.UsageFor(caller)); over {
		s.mu.Unlock()
		writeErr(w, http.StatusTooManyRequests, "caller %s over quota: %s", caller, reason)
		return
	}
	hash := spec.Hash()
	if spec.Cacheable() {
		if entry, ok := s.store.Cached(hash); ok {
			s.mu.Unlock()
			if job, found := s.store.Lookup(entry.JobID); found {
				st := job.Status()
				st.Cached = true
				writeJSON(w, http.StatusOK, st)
				return
			}
		}
	}
	if live, ok := s.store.Live(hash); ok {
		s.mu.Unlock()
		st := live.Status()
		st.Deduped = true
		writeJSON(w, http.StatusOK, st)
		return
	}
	if len(s.queue) >= s.opts.QueueDepth {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests,
			"queue full (%d jobs waiting); retry later", s.opts.QueueDepth)
		return
	}
	job, err := s.store.Submit(caller, spec)
	if err != nil {
		s.mu.Unlock()
		writeErr(w, http.StatusInternalServerError, "journaling submission: %v", err)
		return
	}
	s.queue = append(s.queue, job)
	s.cond.Signal()
	s.mu.Unlock()

	s.logf("job %s: %s submitted by %s (spec %s)", job.ID, spec.Experiment, caller, job.SpecHash)
	writeJSON(w, http.StatusAccepted, job.Status())
}

// handleJob is GET /v1/jobs/{id}: one job's status snapshot.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.store.Lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleResult is GET /v1/jobs/{id}/result: the artifact bytes of a
// finished job. Every read re-verifies the artifact against its journaled
// SHA-256; a mismatch degrades gracefully — the job is re-queued for
// recompute (its sweep journal still holds every replicate, so the rebuild
// is cheap and charge-free) and the caller gets a 202, never a 500 and
// never wrong bytes.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.store.Lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	switch st := job.State(); st {
	case StateDone, StateTruncated:
		file, sum := job.artifactRef()
		if file == "" {
			writeErr(w, http.StatusConflict, "job %s finished %s without an artifact", job.ID, st)
			return
		}
		data, err := s.store.ReadArtifact(file, sum)
		if errors.Is(err, ErrArtifactCorrupt) {
			s.logf("job %s: %v; re-queueing for recompute", job.ID, err)
			if rerr := s.recompute(job, err.Error()); rerr != nil {
				writeErr(w, http.StatusServiceUnavailable, "artifact corrupt and recompute failed to queue: %v", rerr)
				return
			}
			st := job.Status()
			writeJSON(w, http.StatusAccepted, st)
			return
		}
		if err != nil {
			writeErr(w, http.StatusServiceUnavailable, "reading artifact: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Job-State", string(st))
		w.Header().Set("X-Artifact-Sum", sum)
		w.Write(data) //nolint:errcheck // response already committed
	case StateFailed:
		writeJSON(w, http.StatusConflict, job.Status())
	default:
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

// recompute journals a corrupt artifact's done → queued transition and
// re-enqueues the job, bypassing the admission bound (the work was already
// admitted and paid for; refusing the repair would wedge the job).
func (s *Server) recompute(job *Job, reason string) error {
	if err := s.store.Requeue(job, reason); err != nil {
		return err
	}
	s.mu.Lock()
	s.queue = append(s.queue, job)
	s.cond.Signal()
	s.mu.Unlock()
	return nil
}

// handleQuota is GET /v1/quota: the calling key's charged usage against the
// server's per-caller limits.
func (s *Server) handleQuota(w http.ResponseWriter, r *http.Request) {
	caller := callerOf(r)
	writeJSON(w, http.StatusOK, QuotaStatus{
		Caller:          caller,
		Used:            s.store.UsageFor(caller),
		LimitReplicates: s.opts.Quota.Replicates,
		LimitWallClock:  int64(s.opts.Quota.WallClock),
	})
}

// healthz is the GET /v1/healthz body — a readiness probe, not just a
// liveness ping: queue pressure, drain state, the lease plane's size, and
// whether the job journal still accepts writes. The JSON shape is golden-
// tested; extend it, never rename it.
type healthz struct {
	// Status is "ok" when the server accepts work, "draining" during
	// shutdown. Ready means Status == "ok" and Journal == "ok".
	Status   string `json:"status"`
	Draining bool   `json:"draining,omitempty"`
	// Queued is the external submission queue's depth (bounded by
	// QueueDepth).
	Queued int `json:"queued"`
	// ActiveLeases counts live worker slot leases; ShardedJobs counts jobs
	// currently in their distribution phase.
	ActiveLeases int `json:"active_leases"`
	ShardedJobs  int `json:"sharded_jobs"`
	// Journal is "ok" when the job journal syncs, else the sync error — a
	// wedged disk or lost lock turns the probe not-ready instead of letting
	// jobs fail one by one.
	Journal string `json:"journal"`
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	h := healthz{Status: "ok", Draining: s.draining, Queued: len(s.queue)}
	s.mu.Unlock()
	if h.Draining {
		h.Status = "draining"
	}
	//lint:allow detrand lease expiry is host wall-clock by definition
	h.ActiveLeases, h.ShardedJobs = s.leases.counts(time.Now())
	if err := s.store.Sync(); err != nil {
		h.Journal = err.Error()
	} else {
		h.Journal = "ok"
	}
	writeJSON(w, http.StatusOK, h)
}

// handleClaim is POST /v1/leases/claim: grant a worker its next slot range.
// 204 means no shardable work right now — poll again after Retry-After.
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	if !s.opts.Distribute {
		writeErr(w, http.StatusNotFound, "distribution is disabled on this server")
		return
	}
	var req ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding claim: %v", err)
		return
	}
	if req.Worker == "" {
		req.Worker = callerOf(r)
	}
	//lint:allow detrand lease expiry is host wall-clock by definition
	grant, ok := s.leases.claim(req.Worker, req.MaxSlots, time.Now())
	if !ok {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.logf("lease %s: job %s slots %v -> worker %s", grant.LeaseID, grant.JobID, grant.Slots, req.Worker)
	writeJSON(w, http.StatusOK, grant)
}

// handleRenew is POST /v1/leases/{id}/renew: a worker heartbeat. 410 means
// the lease already expired and its slots were reassigned — the worker must
// abandon them and claim afresh.
func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	//lint:allow detrand lease expiry is host wall-clock by definition
	ttl, ok := s.leases.renew(id, time.Now())
	if !ok {
		writeErr(w, http.StatusGone, "lease %s expired or never existed; re-claim", id)
		return
	}
	writeJSON(w, http.StatusOK, RenewResponse{TTLMS: ttl.Milliseconds()})
}

// handleUpload is POST /v1/leases/{id}/results: one computed replicate.
// Idempotency is keyed by (job, replicate), deliberately not by lease: a
// zombie worker whose lease was reassigned mid-replicate still delivers
// valid bytes (replicates are deterministic), so its late upload is either
// the first — journaled and charged once — or a duplicate no-op. 410 means
// the job's distribution phase is over; the result is no longer wanted.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding upload: %v", err)
		return
	}
	//lint:allow detrand lease expiry is host wall-clock by definition
	ack, err := s.leases.upload(req.JobID, req.Replicate, req.Result, time.Now())
	switch {
	case errors.Is(err, errGone):
		writeErr(w, http.StatusGone, "job %s is not distributing", req.JobID)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

// handleRelease is POST /v1/leases/{id}/release: a worker giving its lease
// back explicitly (graceful shutdown, or all slots uploaded). Idempotent.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	//lint:allow detrand lease expiry is host wall-clock by definition
	s.leases.release(r.PathValue("id"), time.Now())
	writeJSON(w, http.StatusOK, struct{}{})
}

// worker executes queued jobs until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		job := s.dequeue()
		if job == nil {
			return
		}
		s.runJob(job)
	}
}

// dequeue blocks for the next queued job, returning nil at drain.
func (s *Server) dequeue() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && s.runCtx.Err() == nil {
		s.cond.Wait()
	}
	if s.runCtx.Err() != nil {
		return nil
	}
	job := s.queue[0]
	s.queue = s.queue[1:]
	return job
}

// runJob drives one job through the registry: queued → running, sweep with
// per-spec checkpoint journal (always opened in resume mode, so a job
// interrupted by a crash or drain picks up exactly where its journal left
// off), then one terminal transition carrying the completion charge. A job
// interrupted by drain journals nothing — its durable state stays
// "running" and the next server run resumes it.
func (s *Server) runJob(job *Job) {
	exp, ok := scenario.Find(job.Spec.Experiment)
	if !ok { // validated at submission; racing registry changes are impossible
		s.finish(job, StateFailed, fmt.Sprintf("experiment %q disappeared from the registry", job.Spec.Experiment), nil, 0)
		return
	}
	if job.State() != StateRunning {
		if err := s.store.MarkRunning(job); err != nil {
			s.logf("job %s: journaling running transition: %v", job.ID, err)
			return
		}
	}
	sweepDir, err := s.store.SweepDir(job.SpecHash)
	if err != nil {
		s.finish(job, StateFailed, err.Error(), nil, 0)
		return
	}

	job.resetProgress()
	//lint:allow detrand job wall-clock accounting is host-side by definition; never read by simulated code
	start := time.Now()

	// Distribution phase: shardable jobs first offer their replicate slots
	// to external workers; whatever the workers upload lands in the sweep
	// journal, and the finalizing run below merges it exactly like resumed
	// work. Whatever never arrived — no workers, killed workers, a partition
	// — the finalizing run computes in-process: distribution is an
	// accelerator, never a correctness dependency.
	uploaded := s.distribute(job, exp, sweepDir)
	if s.runCtx.Err() != nil {
		s.logf("job %s: distribution interrupted by drain; will resume", job.ID)
		return
	}

	onProgress := job.observe
	if len(uploaded) > 0 {
		onProgress = func(ev scenario.ProgressEvent) {
			if ev.Resumed && uploaded[ev.Rep] {
				return // counted, as fresh work, when the worker uploaded it
			}
			job.observe(ev)
		}
	}
	cfg := scenario.Config{
		Quick:      job.Spec.Quick,
		Seed:       job.Spec.Seed,
		Parallel:   s.opts.Parallel,
		Timeout:    job.Spec.Timeout(),
		Budget:     scenario.Budget{Replicates: job.Spec.BudgetReplicates},
		Sweep:      job.Spec.Experiment,
		Ctx:        s.runCtx,
		OnProgress: onProgress,
	}.WithJournal(sweepDir, true)
	job.setTotal(exp.EstimatedReps(cfg))

	res, runErr := exp.Run(cfg)
	//lint:allow detrand job wall-clock accounting is host-side by definition; never read by simulated code
	wall := time.Since(start)

	if s.runCtx.Err() != nil {
		// Drain interrupted the sweep. Completed replicates are in the sweep
		// journal; the durable job state stays "running" for restart resume.
		s.logf("job %s: interrupted by drain after %d replicates; will resume", job.ID, func() int { f, r := job.counts(); return f + r }())
		return
	}

	var artifact []byte
	if res != nil {
		raw, merr := MarshalArtifact(res)
		if merr != nil {
			s.finish(job, StateFailed, fmt.Sprintf("encoding result: %v", merr), nil, wall)
			return
		}
		artifact = raw
	}

	var trunc *scenario.TruncatedError
	switch {
	case runErr == nil:
		s.finish(job, StateDone, "", artifact, wall)
	case errors.As(runErr, &trunc):
		s.finish(job, StateTruncated, runErr.Error(), artifact, wall)
	default:
		s.finish(job, StateFailed, runErr.Error(), nil, wall)
	}
}

// shardPollInterval paces the coordinator's distribution-phase wait loop.
const shardPollInterval = 10 * time.Millisecond

// distribute runs a job's distribution phase, returning the set of
// replicate slots worker uploads filled this run (empty or nil when the job
// is not distributable or no worker delivered anything). It returns when
// every slot has a journaled result, when the lease plane has been idle for
// the worker grace window with no live leases, or at drain.
//
// Only jobs that reduce to exactly one replicate sweep with no truncation
// knobs distribute: a replicate budget or timeout changes which slots run
// (or whether they finish) based on coordinator-local state that a worker
// cannot see, so those jobs stay in-process to keep their bytes identical.
func (s *Server) distribute(job *Job, exp scenario.Experiment, sweepDir string) map[int]bool {
	if !s.opts.Distribute || !exp.Shardable ||
		job.Spec.BudgetReplicates != 0 || job.Spec.TimeoutMS != 0 {
		return nil
	}
	cfg := scenario.Config{
		Quick: job.Spec.Quick,
		Seed:  job.Spec.Seed,
		Sweep: job.Spec.Experiment,
	}.WithJournal(sweepDir, true)
	n := exp.EstimatedReps(cfg)
	if n <= 0 {
		return nil
	}
	j, err := scenario.OpenFirstSweepJournal(cfg, n)
	if err != nil {
		s.logf("job %s: opening shard journal: %v; running in-process", job.ID, err)
		return nil
	}
	pre, _ := j.Completed()
	job.setTotal(n)
	//lint:allow detrand lease expiry is host wall-clock by definition
	s.leases.register(job, n, j, pre, time.Now())
	s.logf("job %s: distributing %d replicates (%d already journaled)", job.ID, n, len(pre))

	var uploaded map[int]bool
	// The journal handle must close before the finalizing exp.Run reopens
	// the file (the append lock is exclusive), and unregister must come
	// first so no upload races the close.
	finishPhase := func() map[int]bool {
		uploaded = s.leases.unregister(job.ID)
		if cerr := j.Close(); cerr != nil {
			s.logf("job %s: closing shard journal: %v", job.ID, cerr)
		}
		if len(uploaded) > 0 {
			s.logf("job %s: workers delivered %d replicates %v", job.ID, len(uploaded), sortedSlots(uploaded))
		}
		return uploaded
	}

	//lint:allow detrand lease-plane polling cadence is host wall-clock by definition
	ticker := time.NewTicker(shardPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.runCtx.Done():
			return finishPhase()
		case <-ticker.C:
		}
		//lint:allow detrand lease expiry is host wall-clock by definition
		p, ok := s.leases.poll(job.ID, time.Now())
		if !ok || p.remaining == 0 {
			return finishPhase()
		}
		if p.active == 0 && p.idle >= s.opts.WorkerGrace {
			s.logf("job %s: no worker activity for %v with %d slots left; computing in-process",
				job.ID, p.idle.Round(time.Millisecond), p.remaining)
			return finishPhase()
		}
	}
}

// finish publishes a job's terminal transition: artifact first (atomic
// write, fingerprinted), then the journaled state record that carries the
// completion charge — fresh replicates only, so crash-resumed work is never
// billed twice.
func (s *Server) finish(job *Job, state JobState, errText string, artifact []byte, wall time.Duration) {
	fresh, resumed := job.counts()
	var file, sum string
	if artifact != nil {
		var err error
		file, sum, err = s.store.WriteArtifact(job, artifact)
		if err != nil {
			state, errText = StateFailed, fmt.Sprintf("%s (artifact write failed: %v)", errText, err)
			file, sum = "", ""
		}
	}
	var err error
	switch state {
	case StateDone:
		err = s.store.MarkDone(job, file, sum, fresh, resumed, wall)
	case StateTruncated:
		err = s.store.MarkTruncated(job, errText, file, sum, fresh, resumed, wall)
	default:
		err = s.store.MarkFailed(job, errText, fresh, resumed, wall)
	}
	if err != nil {
		s.logf("job %s: journaling %s transition: %v", job.ID, state, err)
		return
	}
	s.logf("job %s: %s (%d fresh, %d resumed, %v)", job.ID, state, fresh, resumed, wall.Round(time.Millisecond))
}

// RetryAfter parses a Retry-After header (seconds form) for clients.
func RetryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}
