package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"context"

	"repro/internal/scenario"
)

// DefaultQueueDepth bounds the external submission queue when
// ServerOptions.QueueDepth is zero.
const DefaultQueueDepth = 32

// ServerOptions tunes a Server. The zero value is serviceable: one sweep
// worker, DefaultQueueDepth queue slots, unlimited quotas.
type ServerOptions struct {
	// QueueDepth bounds how many external submissions may wait queued at
	// once; a submission past the bound gets a loud 429 with Retry-After —
	// never a block, never a silent drop. Server-initiated repair re-runs
	// (artifact corruption) bypass the bound: refusing repair work would
	// wedge the corrupted job forever. Zero means DefaultQueueDepth.
	QueueDepth int
	// Workers is how many jobs execute concurrently. Zero means one.
	Workers int
	// Parallel is the per-sweep worker pool handed to scenario.Config;
	// zero means GOMAXPROCS. Parallelism never changes result bytes.
	Parallel int
	// Quota is the per-caller admission limit; the zero value is unlimited.
	Quota Quota
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// A Server runs jobs from a Store through the experiment registry and
// serves the HTTP/JSON API. Create with NewServer, start workers with
// Start, stop with Drain.
type Server struct {
	store *Store
	opts  ServerOptions

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Job
	draining bool

	runCtx context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	mux    *http.ServeMux
}

// NewServer builds a server over an open store. Jobs whose last durable
// state is queued or running are re-enqueued immediately (bypassing the
// admission bound — they were already admitted); running ones resume from
// their sweep checkpoint journals once a worker picks them up.
func NewServer(store *Store, opts ServerOptions) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	s := &Server{store: store, opts: opts}
	s.cond = sync.NewCond(&s.mu)
	s.runCtx, s.cancel = context.WithCancel(context.Background())
	s.queue = append(s.queue, store.Pending()...)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/quota", s.handleQuota)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the worker pool. Call once.
func (s *Server) Start() {
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Drain gracefully stops the server: new submissions are refused with 503,
// running sweeps are cancelled (their completed replicates are already
// checkpointed in per-sweep journals, and their durable job state stays
// "running", so a restart resumes them), and Drain returns once every
// worker has exited — or with an error when ctx expires first. Queued jobs
// need no persisting: their submission records are already durable.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	s.cancel()
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.store.Sync()
	case <-ctx.Done():
		return fmt.Errorf("sweepd: drain deadline expired with workers still running: %w", ctx.Err())
	}
}

// logf logs through the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// callerOf identifies the submitting caller: the X-API-Key header, or
// "anonymous".
func callerOf(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key
	}
	return "anonymous"
}

// apiError is the JSON body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// writeErr writes one JSON error response.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/jobs: validate, admit (quota, cache, dedup,
// queue bound — in that order), journal, acknowledge. Nothing is journaled
// unless it was admitted, and nothing is acknowledged unless it is durable.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	caller := callerOf(r)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server is draining; resubmit after restart")
		return
	}
	if reason, over := s.opts.Quota.Exceeded(s.store.UsageFor(caller)); over {
		s.mu.Unlock()
		writeErr(w, http.StatusTooManyRequests, "caller %s over quota: %s", caller, reason)
		return
	}
	hash := spec.Hash()
	if spec.Cacheable() {
		if entry, ok := s.store.Cached(hash); ok {
			s.mu.Unlock()
			if job, found := s.store.Lookup(entry.JobID); found {
				st := job.Status()
				st.Cached = true
				writeJSON(w, http.StatusOK, st)
				return
			}
		}
	}
	if live, ok := s.store.Live(hash); ok {
		s.mu.Unlock()
		st := live.Status()
		st.Deduped = true
		writeJSON(w, http.StatusOK, st)
		return
	}
	if len(s.queue) >= s.opts.QueueDepth {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests,
			"queue full (%d jobs waiting); retry later", s.opts.QueueDepth)
		return
	}
	job, err := s.store.Submit(caller, spec)
	if err != nil {
		s.mu.Unlock()
		writeErr(w, http.StatusInternalServerError, "journaling submission: %v", err)
		return
	}
	s.queue = append(s.queue, job)
	s.cond.Signal()
	s.mu.Unlock()

	s.logf("job %s: %s submitted by %s (spec %s)", job.ID, spec.Experiment, caller, job.SpecHash)
	writeJSON(w, http.StatusAccepted, job.Status())
}

// handleJob is GET /v1/jobs/{id}: one job's status snapshot.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.store.Lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleResult is GET /v1/jobs/{id}/result: the artifact bytes of a
// finished job. Every read re-verifies the artifact against its journaled
// SHA-256; a mismatch degrades gracefully — the job is re-queued for
// recompute (its sweep journal still holds every replicate, so the rebuild
// is cheap and charge-free) and the caller gets a 202, never a 500 and
// never wrong bytes.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.store.Lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	switch st := job.State(); st {
	case StateDone, StateTruncated:
		file, sum := job.artifactRef()
		if file == "" {
			writeErr(w, http.StatusConflict, "job %s finished %s without an artifact", job.ID, st)
			return
		}
		data, err := s.store.ReadArtifact(file, sum)
		if errors.Is(err, ErrArtifactCorrupt) {
			s.logf("job %s: %v; re-queueing for recompute", job.ID, err)
			if rerr := s.recompute(job, err.Error()); rerr != nil {
				writeErr(w, http.StatusServiceUnavailable, "artifact corrupt and recompute failed to queue: %v", rerr)
				return
			}
			st := job.Status()
			writeJSON(w, http.StatusAccepted, st)
			return
		}
		if err != nil {
			writeErr(w, http.StatusServiceUnavailable, "reading artifact: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Job-State", string(st))
		w.Header().Set("X-Artifact-Sum", sum)
		w.Write(data) //nolint:errcheck // response already committed
	case StateFailed:
		writeJSON(w, http.StatusConflict, job.Status())
	default:
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

// recompute journals a corrupt artifact's done → queued transition and
// re-enqueues the job, bypassing the admission bound (the work was already
// admitted and paid for; refusing the repair would wedge the job).
func (s *Server) recompute(job *Job, reason string) error {
	if err := s.store.Requeue(job, reason); err != nil {
		return err
	}
	s.mu.Lock()
	s.queue = append(s.queue, job)
	s.cond.Signal()
	s.mu.Unlock()
	return nil
}

// handleQuota is GET /v1/quota: the calling key's charged usage against the
// server's per-caller limits.
func (s *Server) handleQuota(w http.ResponseWriter, r *http.Request) {
	caller := callerOf(r)
	writeJSON(w, http.StatusOK, QuotaStatus{
		Caller:          caller,
		Used:            s.store.UsageFor(caller),
		LimitReplicates: s.opts.Quota.Replicates,
		LimitWallClock:  int64(s.opts.Quota.WallClock),
	})
}

// healthz is the GET /v1/healthz body.
type healthz struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining,omitempty"`
	Queued   int    `json:"queued"`
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	h := healthz{Status: "ok", Draining: s.draining, Queued: len(s.queue)}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}

// worker executes queued jobs until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		job := s.dequeue()
		if job == nil {
			return
		}
		s.runJob(job)
	}
}

// dequeue blocks for the next queued job, returning nil at drain.
func (s *Server) dequeue() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && s.runCtx.Err() == nil {
		s.cond.Wait()
	}
	if s.runCtx.Err() != nil {
		return nil
	}
	job := s.queue[0]
	s.queue = s.queue[1:]
	return job
}

// runJob drives one job through the registry: queued → running, sweep with
// per-spec checkpoint journal (always opened in resume mode, so a job
// interrupted by a crash or drain picks up exactly where its journal left
// off), then one terminal transition carrying the completion charge. A job
// interrupted by drain journals nothing — its durable state stays
// "running" and the next server run resumes it.
func (s *Server) runJob(job *Job) {
	exp, ok := scenario.Find(job.Spec.Experiment)
	if !ok { // validated at submission; racing registry changes are impossible
		s.finish(job, StateFailed, fmt.Sprintf("experiment %q disappeared from the registry", job.Spec.Experiment), nil, 0)
		return
	}
	if job.State() != StateRunning {
		if err := s.store.MarkRunning(job); err != nil {
			s.logf("job %s: journaling running transition: %v", job.ID, err)
			return
		}
	}
	sweepDir, err := s.store.SweepDir(job.SpecHash)
	if err != nil {
		s.finish(job, StateFailed, err.Error(), nil, 0)
		return
	}

	job.resetProgress()
	cfg := scenario.Config{
		Quick:      job.Spec.Quick,
		Seed:       job.Spec.Seed,
		Parallel:   s.opts.Parallel,
		Timeout:    job.Spec.Timeout(),
		Budget:     scenario.Budget{Replicates: job.Spec.BudgetReplicates},
		Sweep:      job.Spec.Experiment,
		Ctx:        s.runCtx,
		OnProgress: job.observe,
	}.WithJournal(sweepDir, true)
	job.setTotal(exp.EstimatedReps(cfg))

	//lint:allow detrand job wall-clock accounting is host-side by definition; never read by simulated code
	start := time.Now()
	res, runErr := exp.Run(cfg)
	//lint:allow detrand job wall-clock accounting is host-side by definition; never read by simulated code
	wall := time.Since(start)

	if s.runCtx.Err() != nil {
		// Drain interrupted the sweep. Completed replicates are in the sweep
		// journal; the durable job state stays "running" for restart resume.
		s.logf("job %s: interrupted by drain after %d replicates; will resume", job.ID, func() int { f, r := job.counts(); return f + r }())
		return
	}

	var artifact []byte
	if res != nil {
		raw, merr := MarshalArtifact(res)
		if merr != nil {
			s.finish(job, StateFailed, fmt.Sprintf("encoding result: %v", merr), nil, wall)
			return
		}
		artifact = raw
	}

	var trunc *scenario.TruncatedError
	switch {
	case runErr == nil:
		s.finish(job, StateDone, "", artifact, wall)
	case errors.As(runErr, &trunc):
		s.finish(job, StateTruncated, runErr.Error(), artifact, wall)
	default:
		s.finish(job, StateFailed, runErr.Error(), nil, wall)
	}
}

// finish publishes a job's terminal transition: artifact first (atomic
// write, fingerprinted), then the journaled state record that carries the
// completion charge — fresh replicates only, so crash-resumed work is never
// billed twice.
func (s *Server) finish(job *Job, state JobState, errText string, artifact []byte, wall time.Duration) {
	fresh, resumed := job.counts()
	var file, sum string
	if artifact != nil {
		var err error
		file, sum, err = s.store.WriteArtifact(job, artifact)
		if err != nil {
			state, errText = StateFailed, fmt.Sprintf("%s (artifact write failed: %v)", errText, err)
			file, sum = "", ""
		}
	}
	var err error
	switch state {
	case StateDone:
		err = s.store.MarkDone(job, file, sum, fresh, resumed, wall)
	case StateTruncated:
		err = s.store.MarkTruncated(job, errText, file, sum, fresh, resumed, wall)
	default:
		err = s.store.MarkFailed(job, errText, fresh, resumed, wall)
	}
	if err != nil {
		s.logf("job %s: journaling %s transition: %v", job.ID, state, err)
		return
	}
	s.logf("job %s: %s (%d fresh, %d resumed, %v)", job.ID, state, fresh, resumed, wall.Round(time.Millisecond))
}

// RetryAfter parses a Retry-After header (seconds form) for clients.
func RetryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}
