package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/scenario"
)

// leaseHTTP is a minimal raw-HTTP worker for lease-plane unit tests: the
// real worker lives in internal/workerd; these helpers exercise the wire
// protocol directly.
type leaseHTTP struct {
	t    *testing.T
	base string
}

func (lh *leaseHTTP) post(path string, body, out any) (int, http.Header) {
	lh.t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		lh.t.Fatal(err)
	}
	resp, err := http.Post(lh.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		lh.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		lh.t.Fatalf("POST %s: reading body: %v", path, err)
	}
	if out != nil && resp.StatusCode < 300 && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			lh.t.Fatalf("POST %s: decoding %q: %v", path, data, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// claim polls until the coordinator grants a lease (a job must first reach
// its distribution phase) or the deadline passes.
func (lh *leaseHTTP) claim(worker string, maxSlots int) *ClaimResponse {
	lh.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var grant ClaimResponse
		code, _ := lh.post("/v1/leases/claim", ClaimRequest{Worker: worker, MaxSlots: maxSlots}, &grant)
		switch code {
		case http.StatusOK:
			return &grant
		case http.StatusNoContent:
			time.Sleep(5 * time.Millisecond)
		default:
			lh.t.Fatalf("claim: unexpected status %d", code)
		}
	}
	lh.t.Fatal("claim: no lease granted within deadline")
	return nil
}

// upload delivers one replicate result, returning the ack and status code.
func (lh *leaseHTTP) upload(leaseID, jobID string, rep int, result any) (UploadResponse, int) {
	lh.t.Helper()
	raw, err := json.Marshal(result)
	if err != nil {
		lh.t.Fatal(err)
	}
	var ack UploadResponse
	code, _ := lh.post("/v1/leases/"+leaseID+"/results",
		UploadRequest{JobID: jobID, Replicate: rep, Result: raw}, &ack)
	return ack, code
}

// repVal is what one sweepd-test-* replicate computes — the worker-side
// half of the determinism contract.
func repVal(seed uint64, rep int) uint64 { return scenario.ReplicateSeed(seed, rep) % 1_000_003 }

// distOpts is the lease-plane test server configuration: distribution on, a
// quick TTL for expiry tests, and a long grace so the coordinator never
// steals the slots back mid-test.
func distOpts(ttl time.Duration, chunk int) ServerOptions {
	return ServerOptions{
		Distribute:  true,
		LeaseTTL:    ttl,
		LeaseChunk:  chunk,
		WorkerGrace: 30 * time.Second,
	}
}

// TestLeaseLifecycle drives the happy path over the wire: claim every slot,
// upload every result, watch the job finish with the exact artifact an
// in-process run produces and exactly one full quota charge.
func TestLeaseLifecycle(t *testing.T) {
	svc := startService(t, t.TempDir(), distOpts(2*time.Second, 8))
	svc.client.APIKey = "alice"
	spec := JobSpec{Experiment: expFast, Seed: 11}
	golden := goldenArtifact(t, spec)

	ctx := context.Background()
	st, err := svc.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	lh := &leaseHTTP{t: t, base: svc.http.URL}
	grant := lh.claim("w1", 0)
	if grant.JobID != st.ID || grant.Replicates != fastReps || len(grant.Slots) != fastReps {
		t.Fatalf("grant %+v, want all %d slots of job %s", grant, fastReps, st.ID)
	}
	if grant.Experiment != expFast || grant.Seed != 11 {
		t.Fatalf("grant does not carry the job identity: %+v", grant)
	}
	for _, slot := range grant.Slots {
		ack, code := lh.upload(grant.LeaseID, grant.JobID, slot, repVal(spec.Seed, slot))
		if code != http.StatusOK || ack.Duplicate {
			t.Fatalf("upload slot %d: code %d ack %+v", slot, code, ack)
		}
	}
	lh.post("/v1/leases/"+grant.LeaseID+"/release", struct{}{}, nil)

	final := waitState(t, svc.client, st.ID, StateDone)
	if final.Completed != fastReps {
		t.Fatalf("completed %d, want %d", final.Completed, fastReps)
	}
	data, _, err := svc.client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, golden) {
		t.Fatalf("distributed artifact differs from in-process golden:\n got %s\nwant %s", data, golden)
	}
	q, err := svc.client.Quota(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if q.Used.Replicates != fastReps {
		t.Fatalf("caller charged %d replicates, want exactly %d", q.Used.Replicates, fastReps)
	}
}

// TestZombieUploadChargesOnce is the reassignment double-completion case: a
// worker's lease expires mid-slot, the slot is reassigned and completed by a
// second worker, and then the first worker — a zombie that never heard it
// lost the lease — delivers the same slot late. The caller must be charged
// for the slot exactly once and the artifact must be untouched.
func TestZombieUploadChargesOnce(t *testing.T) {
	svc := startService(t, t.TempDir(), distOpts(100*time.Millisecond, 2))
	svc.client.APIKey = "bob"
	spec := JobSpec{Experiment: expFast, Seed: 23}
	golden := goldenArtifact(t, spec)

	ctx := context.Background()
	st, err := svc.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	lh := &leaseHTTP{t: t, base: svc.http.URL}

	// Worker A claims slots {0,1}, uploads 0, then goes silent: its lease
	// expires and slot 1 returns to the pool.
	a := lh.claim("zombie", 2)
	if len(a.Slots) != 2 || a.Slots[0] != 0 || a.Slots[1] != 1 {
		t.Fatalf("first claim granted %v, want [0 1]", a.Slots)
	}
	if ack, code := lh.upload(a.LeaseID, a.JobID, 0, repVal(spec.Seed, 0)); code != http.StatusOK || ack.Duplicate {
		t.Fatalf("upload slot 0: code %d ack %+v", code, ack)
	}
	time.Sleep(250 * time.Millisecond) // > TTL: the lease is dead

	if code, _ := lh.post("/v1/leases/"+a.LeaseID+"/renew", struct{}{}, nil); code != http.StatusGone {
		t.Fatalf("renewing an expired lease: status %d, want %d", code, http.StatusGone)
	}

	// Worker B claims the freed slot 1 (plus slot 2) and completes slot 1.
	b := lh.claim("healthy", 2)
	if len(b.Slots) != 2 || b.Slots[0] != 1 || b.Slots[1] != 2 {
		t.Fatalf("reassignment claim granted %v, want [1 2]", b.Slots)
	}
	if ack, code := lh.upload(b.LeaseID, b.JobID, 1, repVal(spec.Seed, 1)); code != http.StatusOK || ack.Duplicate {
		t.Fatalf("upload slot 1 via B: code %d ack %+v", code, ack)
	}

	// The zombie finishes slot 1 late. Same bytes (replicates are
	// deterministic), already journaled: acknowledged as a duplicate, no
	// second journal record, no second charge.
	ack, code := lh.upload(a.LeaseID, a.JobID, 1, repVal(spec.Seed, 1))
	if code != http.StatusOK || !ack.Duplicate {
		t.Fatalf("zombie upload of slot 1: code %d ack %+v, want a duplicate ack", code, ack)
	}

	// Finish the job: B uploads its remaining slot, a third claim picks up
	// the last one.
	if ack, code := lh.upload(b.LeaseID, b.JobID, 2, repVal(spec.Seed, 2)); code != http.StatusOK || ack.Duplicate {
		t.Fatalf("upload slot 2: code %d ack %+v", code, ack)
	}
	c := lh.claim("healthy", 2)
	if len(c.Slots) != 1 || c.Slots[0] != 3 {
		t.Fatalf("final claim granted %v, want [3]", c.Slots)
	}
	ack, code = lh.upload(c.LeaseID, c.JobID, 3, repVal(spec.Seed, 3))
	if code != http.StatusOK || ack.Duplicate || ack.Remaining != 0 {
		t.Fatalf("final upload: code %d ack %+v", code, ack)
	}

	waitState(t, svc.client, st.ID, StateDone)
	data, _, err := svc.client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, golden) {
		t.Fatalf("artifact differs after double completion:\n got %s\nwant %s", data, golden)
	}
	q, err := svc.client.Quota(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if q.Used.Replicates != fastReps {
		t.Fatalf("caller charged %d replicates after a doubly-completed slot, want exactly %d",
			q.Used.Replicates, fastReps)
	}

	// The distribution phase is over: a very late zombie upload gets 410.
	if _, code := lh.upload(a.LeaseID, a.JobID, 1, repVal(spec.Seed, 1)); code != http.StatusGone {
		t.Fatalf("upload after finalization: status %d, want %d", code, http.StatusGone)
	}
}

// TestDistributeFallsBackInProcess: distribution enabled but no worker ever
// connects — after the grace window the coordinator computes every slot
// itself, bytes and charges unchanged.
func TestDistributeFallsBackInProcess(t *testing.T) {
	opts := distOpts(time.Second, 4)
	opts.WorkerGrace = 50 * time.Millisecond
	svc := startService(t, t.TempDir(), opts)
	svc.client.APIKey = "carol"
	spec := JobSpec{Experiment: expFast, Seed: 31}
	golden := goldenArtifact(t, spec)

	ctx := context.Background()
	st, err := svc.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc.client, st.ID, StateDone)
	data, _, err := svc.client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, golden) {
		t.Fatalf("fallback artifact differs from golden:\n got %s\nwant %s", data, golden)
	}
	q, err := svc.client.Quota(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if q.Used.Replicates != fastReps {
		t.Fatalf("caller charged %d replicates, want %d", q.Used.Replicates, fastReps)
	}
}

// TestPartialWorkerThenFallback: a worker delivers some slots and vanishes;
// the coordinator finishes the rest in-process. One full charge, golden
// bytes — the mixed execution is invisible in the result.
func TestPartialWorkerThenFallback(t *testing.T) {
	opts := distOpts(100*time.Millisecond, 2)
	opts.WorkerGrace = 200 * time.Millisecond
	svc := startService(t, t.TempDir(), opts)
	svc.client.APIKey = "dave"
	spec := JobSpec{Experiment: expFast, Seed: 47}
	golden := goldenArtifact(t, spec)

	ctx := context.Background()
	st, err := svc.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	lh := &leaseHTTP{t: t, base: svc.http.URL}
	grant := lh.claim("flaky", 2)
	if ack, code := lh.upload(grant.LeaseID, grant.JobID, grant.Slots[0], repVal(spec.Seed, grant.Slots[0])); code != http.StatusOK || ack.Duplicate {
		t.Fatalf("upload: code %d ack %+v", code, ack)
	}
	// The worker dies here: no renewal, no more uploads. Lease expiry frees
	// its second slot; grace expiry hands everything left to the
	// coordinator.
	waitState(t, svc.client, st.ID, StateDone)
	data, _, err := svc.client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, golden) {
		t.Fatalf("mixed-execution artifact differs from golden:\n got %s\nwant %s", data, golden)
	}
	q, err := svc.client.Quota(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if q.Used.Replicates != fastReps {
		t.Fatalf("caller charged %d replicates, want %d", q.Used.Replicates, fastReps)
	}
}

// TestHealthzGolden pins the readiness probe's JSON shape byte for byte —
// operators parse this; renames are breaking changes.
func TestHealthzGolden(t *testing.T) {
	svc := startService(t, t.TempDir(), ServerOptions{})
	resp, err := http.Get(svc.http.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "status": "ok",
  "queued": 0,
  "active_leases": 0,
  "sharded_jobs": 0,
  "journal": "ok"
}
`
	if string(body) != want {
		t.Fatalf("healthz shape drifted:\n got %q\nwant %q", body, want)
	}
}

// TestHealthzDuringDistribution: the probe reports the lease plane while a
// job is sharded and a lease is live.
func TestHealthzDuringDistribution(t *testing.T) {
	svc := startService(t, t.TempDir(), distOpts(5*time.Second, 2))
	if _, err := svc.client.Submit(context.Background(), JobSpec{Experiment: expFast, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	lh := &leaseHTTP{t: t, base: svc.http.URL}
	grant := lh.claim("probe", 2)

	resp, err := http.Get(svc.http.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status       string `json:"status"`
		ActiveLeases int    `json:"active_leases"`
		ShardedJobs  int    `json:"sharded_jobs"`
		Journal      string `json:"journal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.ActiveLeases != 1 || h.ShardedJobs != 1 || h.Journal != "ok" {
		t.Fatalf("probe %+v, want ok/1 lease/1 sharded job/journal ok", h)
	}

	// Unblock teardown: finish the job.
	for slot := 0; slot < fastReps; slot++ {
		id := grant.LeaseID
		if slot >= 2 {
			g2 := lh.claim("probe", 4)
			id = g2.LeaseID
			for _, s2 := range g2.Slots {
				lh.upload(id, grant.JobID, s2, repVal(3, s2))
			}
			break
		}
		lh.upload(id, grant.JobID, slot, repVal(3, slot))
	}
	waitState(t, svc.client, grant.JobID, StateDone)
}

// TestLeaseValidation: malformed uploads are refused loudly, and claims
// against a non-distributing server 404.
func TestLeaseValidation(t *testing.T) {
	svc := startService(t, t.TempDir(), distOpts(time.Second, 4))
	lh := &leaseHTTP{t: t, base: svc.http.URL}
	if _, err := svc.client.Submit(context.Background(), JobSpec{Experiment: expFast, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	grant := lh.claim("v", 4)
	if _, code := lh.upload(grant.LeaseID, grant.JobID, 99, uint64(1)); code != http.StatusBadRequest {
		t.Fatalf("out-of-range upload: status %d, want 400", code)
	}
	if _, code := lh.upload(grant.LeaseID, "j-999999", 0, uint64(1)); code != http.StatusGone {
		t.Fatalf("upload against unknown job: status %d, want 410", code)
	}
	var ack UploadResponse
	code, _ := lh.post("/v1/leases/"+grant.LeaseID+"/results",
		UploadRequest{JobID: grant.JobID, Replicate: 0}, &ack)
	if code != http.StatusBadRequest {
		t.Fatalf("empty result upload: status %d, want 400", code)
	}
	// Finish the job so teardown drains cleanly.
	for _, slot := range grant.Slots {
		lh.upload(grant.LeaseID, grant.JobID, slot, repVal(5, slot))
	}
	waitState(t, svc.client, grant.JobID, StateDone)

	plain := startService(t, t.TempDir(), ServerOptions{})
	var buf bytes.Buffer
	fmt.Fprint(&buf, `{"worker":"x"}`)
	resp, err := http.Post(plain.http.URL+"/v1/leases/claim", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("claim on non-distributing server: status %d, want 404", resp.StatusCode)
	}
}
