package sweepd

// The chaos harness: the service runs as a real subprocess (a re-exec of
// this test binary driving sweepd.Daemon exactly like cmd/anvilserved),
// gets SIGKILLed at a seeded-random replicate mid-sweep, is restarted on
// the same data directory, and must serve result bytes identical to an
// uninterrupted in-process run — with the resumed replicates visibly free
// of quota charge. A second scenario drains with SIGTERM instead: the
// process must exit 0 within its deadline and the job must resume the same
// way.

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestServedHelper is not a test: re-exec'd by the chaos tests with
// ANVILSERVED_HELPER=1, it runs the daemon loop until killed or signalled.
func TestServedHelper(t *testing.T) {
	if os.Getenv("ANVILSERVED_HELPER") != "1" {
		t.Skip("helper mode for the chaos harness; set ANVILSERVED_HELPER=1")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	d := Daemon{
		Addr:         "127.0.0.1:0",
		Data:         os.Getenv("ANVILSERVED_HELPER_DATA"),
		Opts:         ServerOptions{Workers: 1},
		DrainTimeout: 15 * time.Second,
		Portfile:     os.Getenv("ANVILSERVED_HELPER_PORTFILE"),
		Logf:         t.Logf,
	}
	if err := d.Run(ctx); err != nil {
		t.Fatalf("daemon: %v", err)
	}
}

// helperProc is one subprocess server instance.
type helperProc struct {
	cmd  *exec.Cmd
	addr string
	out  bytes.Buffer
}

// startHelper launches the server subprocess over dataDir and waits for it
// to publish its listen address.
func startHelper(t *testing.T, dataDir, portfile string) *helperProc {
	t.Helper()
	os.Remove(portfile)
	h := &helperProc{}
	h.cmd = exec.Command(os.Args[0], "-test.run=^TestServedHelper$", "-test.v")
	h.cmd.Env = append(os.Environ(),
		"ANVILSERVED_HELPER=1",
		"ANVILSERVED_HELPER_DATA="+dataDir,
		"ANVILSERVED_HELPER_PORTFILE="+portfile,
	)
	h.cmd.Stdout = &h.out
	h.cmd.Stderr = &h.out
	if err := h.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if raw, err := os.ReadFile(portfile); err == nil && len(raw) > 0 {
			h.addr = string(raw)
			return h
		}
		if time.Now().After(deadline) {
			h.cmd.Process.Kill()
			t.Fatalf("server subprocess never published its address; output:\n%s", h.out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// client returns a client for the subprocess server.
func (h *helperProc) client() *Client {
	return &Client{Base: "http://" + h.addr}
}

// sigkill kills the server dead — no drain, no goodbye — and reaps it.
func (h *helperProc) sigkill(t *testing.T) {
	t.Helper()
	if err := h.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	h.cmd.Wait() //nolint:errcheck // a killed process always reports an error
}

// sigterm asks the server to drain and asserts it exits 0 within the
// deadline — the graceful-drain acceptance bound.
func (h *helperProc) sigterm(t *testing.T, deadline time.Duration) {
	t.Helper()
	if err := h.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- h.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server did not drain cleanly: %v; output:\n%s", err, h.out.String())
		}
	case <-time.After(deadline):
		h.cmd.Process.Kill()
		t.Fatalf("server still running %v after SIGTERM; output:\n%s", deadline, h.out.String())
	}
}

// pollProgress waits until the job has completed at least min replicates
// (and is not terminal), so a kill lands mid-sweep.
func pollProgress(t *testing.T, c *Client, id string, min int) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatalf("polling job %s: %v", id, err)
		}
		if st.Completed >= min {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s finished (%s) before the kill point %d", id, st.State, min)
		}
		select {
		case <-ctx.Done():
			t.Fatalf("job %s never reached %d completed replicates", id, min)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// chaosRoundTrip drives one interrupt-restart-verify cycle: submit the
// chaos experiment, interrupt the server mid-sweep (by kill), restart on
// the same data directory, and assert the fetched bytes are identical to an
// uninterrupted run, with the resumed replicates charged to nobody.
func chaosRoundTrip(t *testing.T, seed uint64, interrupt func(t *testing.T, h *helperProc)) {
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	portfile := filepath.Join(dir, "port")
	spec := JobSpec{Experiment: expChaos, Seed: seed}
	golden := goldenArtifact(t, spec)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	h1 := startHelper(t, dataDir, portfile)
	st, err := h1.client().Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// The kill point is seeded, not hand-picked: a different replicate
	// boundary every time the seed changes, never a schedule tuned to pass.
	killAfter := 2 + int(sim.NewRand(seed^0xC0FFEE).Uint64n(5))
	at := pollProgress(t, h1.client(), st.ID, killAfter)
	t.Logf("interrupting server at %d/%d completed replicates", at.Completed, at.Total)
	interrupt(t, h1)

	// Restart on the same data directory: the journaled job must be
	// re-queued and resumed without resubmission.
	h2 := startHelper(t, dataDir, portfile)
	defer h2.sigterm(t, 20*time.Second)
	got, err := h2.client().FetchResult(ctx, st.ID, 0)
	if err != nil {
		t.Fatalf("fetching resumed job: %v; server output:\n%s", err, h2.out.String())
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("resumed artifact differs from uninterrupted run:\n got %s\nwant %s", got, golden)
	}

	final, err := h2.client().Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Resumed == 0 {
		t.Fatalf("restarted job resumed nothing — it re-ran the whole sweep: %+v", final)
	}
	if final.Completed != chaosReps {
		t.Fatalf("resumed job completed %d of %d replicates", final.Completed, chaosReps)
	}
	// No double-charge: only the post-restart fresh replicates bill. The
	// killed run never wrote a completion record, and the resumed
	// replicates are free.
	q, err := h2.client().Quota(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := chaosReps - final.Resumed; q.Used.Replicates != want {
		t.Fatalf("charged %d replicates, want %d (%d resumed must be free)",
			q.Used.Replicates, want, final.Resumed)
	}
}

// TestChaosKillDashNine is the headline crash-safety test: SIGKILL at a
// seeded-random replicate, restart, byte-identical results, no double
// charge.
func TestChaosKillDashNine(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness; skipped in -short")
	}
	chaosRoundTrip(t, 0xABCD, func(t *testing.T, h *helperProc) {
		h.sigkill(t)
	})
}

// TestChaosSigtermDrain: SIGTERM mid-sweep must exit 0 within the drain
// deadline — checkpointing, not finishing, the running sweep — and the
// restarted server resumes it identically.
func TestChaosSigtermDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness; skipped in -short")
	}
	chaosRoundTrip(t, 0xBEEF, func(t *testing.T, h *helperProc) {
		h.sigterm(t, 20*time.Second)
	})
}
