package sweepd

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
)

// Artifact is the result document a done (or deterministically truncated)
// job serves: the experiment's marshalled result plus its headline metrics,
// captured server-side while the typed result value is still in hand —
// clients only ever see these bytes.
type Artifact struct {
	Data    json.RawMessage   `json:"data"`
	Metrics []scenario.Metric `json:"metrics,omitempty"`
}

// MarshalArtifact renders an experiment result as the artifact document.
// Marshalling is canonical (encoding/json, shortest-round-trip floats), so
// equal results produce equal bytes — the property the content-addressed
// cache and the chaos harness's byte-diff both lean on.
func MarshalArtifact(res scenario.Result) ([]byte, error) {
	data, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	a := Artifact{Data: data}
	if m, ok := res.(scenario.Metricer); ok {
		a.Metrics = m.Metrics()
	}
	return json.Marshal(a)
}

// JobState is one node of the job state machine. Transitions are append-only
// records in the store journal:
//
//	queued → running → done | failed | truncated
//	done → queued               (artifact corruption: recompute)
//
// A job whose last durable state is queued or running is re-enqueued on
// server restart; running jobs resume from their sweep checkpoint journal.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateTruncated JobState = "truncated"
)

// Terminal reports whether the state ends a job's execution.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateTruncated
}

// JobSpec is what a caller submits: a registry experiment by name plus the
// knobs that define its result bytes. Everything in the spec hash — name,
// quick mode, seed, replicate budget — determines replicate output
// deterministically; the per-replicate timeout is wall-clock-dependent, so
// it is excluded from the hash and a job that sets it is never cached.
type JobSpec struct {
	// Experiment names a registered experiment (see cmd/tables -list).
	Experiment string `json:"experiment"`
	// Quick shrinks run lengths exactly like cmd/tables -quick.
	Quick bool `json:"quick,omitempty"`
	// Seed is the root seed of every replicate (scenario.ReplicateSeed).
	Seed uint64 `json:"seed,omitempty"`
	// BudgetReplicates bounds how many replicates each sweep of the job may
	// execute; zero means unlimited. Replicate budgets truncate
	// deterministically (the first N replicates in order), so they are part
	// of the spec hash and budgeted results are cacheable.
	BudgetReplicates int `json:"budget_replicates,omitempty"`
	// TimeoutMS is the per-replicate wall-clock deadline in milliseconds
	// (the PR-4 hardened-runner timeout); zero means none. Deadlines depend
	// on host scheduling, so jobs with one set bypass the result cache.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Validate checks the spec against the experiment registry and rejects
// nonsense bounds before anything is journaled.
func (s JobSpec) Validate() error {
	if strings.TrimSpace(s.Experiment) == "" {
		return fmt.Errorf("sweepd: spec needs an experiment name")
	}
	if _, ok := scenario.Find(s.Experiment); !ok {
		return fmt.Errorf("sweepd: unknown experiment %q (known: %s)",
			s.Experiment, strings.Join(scenario.Names(), ", "))
	}
	if s.BudgetReplicates < 0 {
		return fmt.Errorf("sweepd: negative replicate budget %d", s.BudgetReplicates)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("sweepd: negative timeout %dms", s.TimeoutMS)
	}
	return nil
}

// Hash is the content address of the spec's results: the values that
// determine replicate bytes and nothing else (no timeout, no parallelism —
// those change wall-clock behaviour only). Identical hashes may share one
// cached artifact and one sweep checkpoint directory. The function opts
// back into the deterministic zone: content addressing must stay a pure
// function of the spec even though the package around it is host-side.
//
//lint:zone deterministic
func (s JobSpec) Hash() string {
	return scenario.HashSpec("sweepd-job", s.Experiment, s.Quick, s.Seed, s.BudgetReplicates)
}

// Cacheable reports whether a done artifact for this spec may serve future
// identical submissions.
func (s JobSpec) Cacheable() bool { return s.TimeoutMS == 0 }

// Timeout resolves TimeoutMS.
func (s JobSpec) Timeout() time.Duration { return time.Duration(s.TimeoutMS) * time.Millisecond }

// A Job is the server-side state of one submission. The immutable identity
// fields are set at submission; the mutable state is guarded by mu and
// mirrored to the store journal at every transition.
type Job struct {
	// ID is the store-assigned job identifier ("j-000001", monotonic).
	ID string
	// Caller is the submitting API key ("anonymous" when absent).
	Caller string
	// Spec is the submitted spec; SpecHash is Spec.Hash(), precomputed.
	Spec     JobSpec
	SpecHash string

	mu      sync.Mutex
	state   JobState
	errText string
	// artifact and sum locate and fingerprint the result artifact of a
	// done/truncated job (file name under the store's artifacts dir, and
	// the hex SHA-256 of its bytes).
	artifact string
	sum      string
	// Progress counters, fed by scenario progress events: completed counts
	// every replicate that reached its result slot this run, resumed the
	// subset merged from a checkpoint journal; fresh = completed - resumed
	// is what quota accounting charges. total estimates the job size.
	completed int
	resumed   int
	total     int
}

// JobStatus is the wire snapshot of a job, served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID         string   `json:"id"`
	State      JobState `json:"state"`
	Experiment string   `json:"experiment"`
	SpecHash   string   `json:"spec_hash"`
	Completed  int      `json:"completed"`
	Total      int      `json:"total"`
	Resumed    int      `json:"resumed,omitempty"`
	Error      string   `json:"error,omitempty"`
	// Cached marks a submission answered from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Deduped marks a submission coalesced onto an identical live job.
	Deduped bool `json:"deduped,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:         j.ID,
		State:      j.state,
		Experiment: j.Spec.Experiment,
		SpecHash:   j.SpecHash,
		Completed:  j.completed,
		Total:      j.total,
		Resumed:    j.resumed,
		Error:      j.errText,
	}
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// observe is the scenario.Config.OnProgress hook: it counts replicates as
// they reach their result slots. Called from sweep worker goroutines.
func (j *Job) observe(ev scenario.ProgressEvent) {
	j.mu.Lock()
	j.completed++
	if ev.Resumed {
		j.resumed++
	}
	j.mu.Unlock()
}

// counts returns (fresh, resumed) replicate counts of the current run —
// fresh is what a completion record charges against the caller's quota.
func (j *Job) counts() (fresh, resumed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed - j.resumed, j.resumed
}

// setTotal records the estimated job size for progress reporting.
func (j *Job) setTotal(n int) {
	j.mu.Lock()
	j.total = n
	j.mu.Unlock()
}

// resetProgress zeroes the progress counters at the start of a (re)run.
func (j *Job) resetProgress() {
	j.mu.Lock()
	j.completed, j.resumed = 0, 0
	j.mu.Unlock()
}

// setState applies an in-memory transition; the store journals the durable
// record before calling this.
func (j *Job) setState(state JobState, errText, artifact, sum string) {
	j.mu.Lock()
	j.state = state
	j.errText = errText
	j.artifact = artifact
	j.sum = sum
	j.mu.Unlock()
}

// artifactRef returns the artifact location of a terminal job.
func (j *Job) artifactRef() (file, sum string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.artifact, j.sum
}
