package sweepd

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/scenario"
)

// Distribution defaults, used when the corresponding ServerOptions field is
// zero.
const (
	// DefaultLeaseTTL is how long a granted lease lives without a renewal.
	// Workers renew at TTL/3, so one lost heartbeat never kills a lease but a
	// dead or partitioned worker loses its slots within one TTL.
	DefaultLeaseTTL = 2 * time.Second
	// DefaultLeaseChunk is the most slots one claim grants. Small chunks keep
	// reassignment cheap when a worker dies; large ones amortize polling.
	DefaultLeaseChunk = 4
	// DefaultWorkerGrace is how long a sharded job waits with no lease
	// activity before the coordinator computes the remaining slots itself.
	DefaultWorkerGrace = 2 * time.Second
)

// ClaimRequest is the body of POST /v1/leases/claim: a worker asking for a
// share of a sharded job's replicates.
type ClaimRequest struct {
	// Worker names the claiming worker (for logs and lease attribution).
	Worker string `json:"worker"`
	// MaxSlots caps how many replicate slots this claim may grant; zero
	// means the server's chunk size.
	MaxSlots int `json:"max_slots,omitempty"`
}

// ClaimResponse grants a lease: the job identity a worker needs to reproduce
// the leased replicates bit for bit, the slot indices it now owns, and the
// TTL its heartbeats must beat.
type ClaimResponse struct {
	LeaseID    string `json:"lease_id"`
	JobID      string `json:"job_id"`
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	// Replicates is the sweep's total size n; leased Slots index into [0,n).
	Replicates int   `json:"replicates"`
	Slots      []int `json:"slots"`
	TTLMS      int64 `json:"ttl_ms"`
}

// RenewResponse answers a heartbeat with the refreshed TTL.
type RenewResponse struct {
	TTLMS int64 `json:"ttl_ms"`
}

// UploadRequest is the body of POST /v1/leases/{id}/results: one computed
// replicate's canonical JSON. The (JobID, Replicate) pair — not the lease —
// keys idempotency: a retried or zombie upload of a slot that already has a
// result is acknowledged as a duplicate and changes nothing.
type UploadRequest struct {
	JobID     string          `json:"job_id"`
	Replicate int             `json:"replicate"`
	Result    json.RawMessage `json:"result"`
}

// UploadResponse acknowledges an upload. Duplicate marks a result the
// coordinator already had (journaled exactly once, charged exactly once);
// Remaining counts the job's slots still without results.
type UploadResponse struct {
	Duplicate bool `json:"duplicate,omitempty"`
	Remaining int  `json:"remaining"`
}

// lease is one granted slot range. A lease whose expiry passes without a
// renewal is reaped: its unfinished slots return to the pool for the next
// claim, and renewals against it answer 410 Gone.
type lease struct {
	id      string
	jobID   string
	worker  string
	slots   []int
	expires time.Time
}

// shardState is the coordinator-side state of one job's distribution phase:
// the open seq-0 sweep journal uploads append to, and per-slot bookkeeping.
type shardState struct {
	job     *Job
	n       int
	journal *scenario.Journal
	// done marks slots that have a journaled result — recovered from a
	// previous run or uploaded during this one. Uploads against done slots
	// are idempotent no-ops.
	done map[int]bool
	// uploaded marks the subset of done slots whose results arrived from
	// workers during this run. The finalizing sweep's progress filter needs
	// it: these slots were already counted (as fresh) at upload time.
	uploaded map[int]bool
	// assigned maps a slot to the live lease that owns it.
	assigned map[int]string
	// activity is the last claim grant, renewal or upload touching this job;
	// the grace-window fallback keys off it.
	activity time.Time
}

// remainingLocked counts slots without results.
func (st *shardState) remainingLocked() int { return st.n - len(st.done) }

// A leaseTable is the coordinator's lease plane: which jobs are currently
// sharded, which worker holds which slots, and when each lease dies. All
// methods are safe for concurrent use.
type leaseTable struct {
	ttl   time.Duration
	chunk int

	mu     sync.Mutex
	seq    uint64
	order  []string // job IDs in registration order — claim fairness
	jobs   map[string]*shardState
	leases map[string]*lease
}

// newLeaseTable builds the table with resolved defaults.
func newLeaseTable(ttl time.Duration, chunk int) *leaseTable {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if chunk <= 0 {
		chunk = DefaultLeaseChunk
	}
	return &leaseTable{
		ttl:    ttl,
		chunk:  chunk,
		jobs:   map[string]*shardState{},
		leases: map[string]*lease{},
	}
}

// register opens a job's distribution phase. pre lists the replicate slots
// already journaled by earlier runs; they are done before any worker claims.
func (t *leaseTable) register(job *Job, n int, j *scenario.Journal, pre []int, now time.Time) {
	st := &shardState{
		job:      job,
		n:        n,
		journal:  j,
		done:     make(map[int]bool, n),
		uploaded: map[int]bool{},
		assigned: map[int]string{},
		activity: now,
	}
	for _, rep := range pre {
		st.done[rep] = true
	}
	t.mu.Lock()
	t.jobs[job.ID] = st
	t.order = append(t.order, job.ID)
	t.mu.Unlock()
}

// unregister closes a job's distribution phase, reaping its leases, and
// returns the set of slots uploaded by workers during this run. Late zombie
// uploads for the job answer 410 Gone from here on.
func (t *leaseTable) unregister(jobID string) map[int]bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.jobs[jobID]
	if !ok {
		return nil
	}
	delete(t.jobs, jobID)
	for i, id := range t.order {
		if id == jobID {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	for id, l := range t.leases { //lint:allow maporder every lease of the job is removed; order is irrelevant
		if l.jobID == jobID {
			delete(t.leases, id)
		}
	}
	return st.uploaded
}

// expireLocked reaps every lease whose TTL has passed, returning its
// unfinished slots to the pool. Callers hold t.mu.
func (t *leaseTable) expireLocked(now time.Time) {
	for id, l := range t.leases { //lint:allow maporder expiry is commutative; each lease is reaped independently
		if now.Before(l.expires) {
			continue
		}
		delete(t.leases, id)
		if st, ok := t.jobs[l.jobID]; ok {
			for _, slot := range l.slots {
				if st.assigned[slot] == id {
					delete(st.assigned, slot)
				}
			}
		}
	}
}

// claim grants the next free slots of the oldest sharded job, or returns
// (nil, false) when no work is available.
func (t *leaseTable) claim(worker string, maxSlots int, now time.Time) (*ClaimResponse, bool) {
	if maxSlots <= 0 || maxSlots > t.chunk {
		maxSlots = t.chunk
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(now)
	for _, jobID := range t.order {
		st := t.jobs[jobID]
		var free []int
		for slot := 0; slot < st.n && len(free) < maxSlots; slot++ {
			if !st.done[slot] && st.assigned[slot] == "" {
				free = append(free, slot)
			}
		}
		if len(free) == 0 {
			continue
		}
		t.seq++
		l := &lease{
			id:      fmt.Sprintf("l-%06d", t.seq),
			jobID:   jobID,
			worker:  worker,
			slots:   free,
			expires: now.Add(t.ttl),
		}
		t.leases[l.id] = l
		for _, slot := range free {
			st.assigned[slot] = l.id
		}
		st.activity = now
		return &ClaimResponse{
			LeaseID:    l.id,
			JobID:      jobID,
			Experiment: st.job.Spec.Experiment,
			Quick:      st.job.Spec.Quick,
			Seed:       st.job.Spec.Seed,
			Replicates: st.n,
			Slots:      free,
			TTLMS:      t.ttl.Milliseconds(),
		}, true
	}
	return nil, false
}

// renew extends a live lease by one TTL. A lease that expired (or was never
// granted) reports false: the worker has lost its slots and must re-claim.
func (t *leaseTable) renew(id string, now time.Time) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(now)
	l, ok := t.leases[id]
	if !ok {
		return 0, false
	}
	l.expires = now.Add(t.ttl)
	if st, ok := t.jobs[l.jobID]; ok {
		st.activity = now
	}
	return t.ttl, true
}

// release ends a lease explicitly (graceful worker shutdown or a finished
// slot range), returning its unfinished slots to the pool. Unknown leases
// are fine — release is idempotent.
func (t *leaseTable) release(id string, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[id]
	if !ok {
		return
	}
	delete(t.leases, id)
	if st, ok := t.jobs[l.jobID]; ok {
		for _, slot := range l.slots {
			if st.assigned[slot] == id {
				delete(st.assigned, slot)
			}
		}
		st.activity = now
	}
}

// upload journals one worker-computed replicate, idempotently keyed by
// (job, slot). The lease ID is deliberately not checked against the slot:
// a zombie worker whose lease expired mid-replicate may still deliver a
// result, and since replicates are deterministic its bytes equal whatever a
// reassigned worker would upload — first write wins, every later one is a
// duplicate. Novel uploads are counted into the job's progress (as fresh
// work) exactly once, here.
func (t *leaseTable) upload(jobID string, rep int, result json.RawMessage, now time.Time) (UploadResponse, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.jobs[jobID]
	if !ok {
		return UploadResponse{}, errGone
	}
	if rep < 0 || rep >= st.n {
		return UploadResponse{}, fmt.Errorf("replicate %d out of range [0,%d)", rep, st.n)
	}
	if len(result) == 0 || string(result) == "null" || !json.Valid(result) {
		return UploadResponse{}, fmt.Errorf("replicate %d needs a non-null JSON result", rep)
	}
	if st.done[rep] {
		return UploadResponse{Duplicate: true, Remaining: st.remainingLocked()}, nil
	}
	if err := st.journal.Record(rep, result, 0); err != nil {
		return UploadResponse{}, fmt.Errorf("journaling replicate %d: %w", rep, err)
	}
	st.done[rep] = true
	st.uploaded[rep] = true
	delete(st.assigned, rep)
	st.activity = now
	st.job.observe(scenario.ProgressEvent{Rep: rep})
	return UploadResponse{Remaining: st.remainingLocked()}, nil
}

// shardProgress is one distribution-phase poll: how many slots still lack
// results, how many live leases the job has, and how long the job has been
// idle (no grant, renewal or upload).
type shardProgress struct {
	remaining int
	active    int
	idle      time.Duration
}

// poll snapshots a sharded job's progress for the coordinator's wait loop,
// reaping expired leases on the way.
func (t *leaseTable) poll(jobID string, now time.Time) (shardProgress, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(now)
	st, ok := t.jobs[jobID]
	if !ok {
		return shardProgress{}, false
	}
	p := shardProgress{remaining: st.remainingLocked(), idle: now.Sub(st.activity)}
	for _, l := range t.leases { //lint:allow maporder counting only
		if l.jobID == jobID {
			p.active++
		}
	}
	return p, true
}

// counts reports the table's size for the readiness probe: live leases and
// jobs currently in their distribution phase.
func (t *leaseTable) counts(now time.Time) (activeLeases, shardedJobs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(now)
	return len(t.leases), len(t.jobs)
}

// errGone marks requests against a lease or distribution phase that no
// longer exists; handlers map it to 410 Gone.
var errGone = fmt.Errorf("sweepd: lease or distribution phase is gone")

// sortedSlots renders a slot set ascending, for logs and tests.
func sortedSlots(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for slot := range set { //lint:allow maporder sorted immediately below
		out = append(out, slot)
	}
	sort.Ints(out)
	return out
}
