package sweepd

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/journal"
)

func fastSpec(seed uint64) JobSpec {
	return JobSpec{Experiment: expFast, Seed: seed}
}

func TestStoreReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	a, err := s.Submit("alice", fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit("bob", fastSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatalf("duplicate job IDs: %s", a.ID)
	}
	if err := s.MarkRunning(a); err != nil {
		t.Fatal(err)
	}
	file, sum, err := s.WriteArtifact(a, []byte(`{"ok":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkDone(a, file, sum, 4, 0, 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh open replays the journal into the identical view.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	a2, ok := s2.Lookup(a.ID)
	if !ok || a2.State() != StateDone || a2.Caller != "alice" {
		t.Fatalf("job %s after replay: %+v", a.ID, a2)
	}
	if data, err := s2.ReadArtifact(file, sum); err != nil || string(data) != `{"ok":true}` {
		t.Fatalf("replayed artifact: %q, %v", data, err)
	}
	if entry, ok := s2.Cached(a.SpecHash); !ok || entry.JobID != a.ID {
		t.Fatalf("done cacheable job missing from cache: %+v, %v", entry, ok)
	}
	pending := s2.Pending()
	if len(pending) != 1 || pending[0].ID != b.ID {
		t.Fatalf("pending after replay = %v, want just %s", pending, b.ID)
	}
	if live, ok := s2.Live(b.SpecHash); !ok || live.ID != b.ID {
		t.Fatalf("queued job missing from live index")
	}
	if u := s2.UsageFor("alice"); u.Replicates != 4 || u.WallClock != 250*time.Millisecond {
		t.Fatalf("alice usage after replay = %+v", u)
	}

	// A job ID minted after replay never collides with a replayed one.
	c, err := s2.Submit("carol", fastSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID || c.ID == b.ID {
		t.Fatalf("post-replay job ID %s collides", c.ID)
	}
}

// TestStoreChargesOnCompletionOnly is the satellite-3 contract: submission
// and running journal nothing against the quota; only the terminal record
// bills, and it bills fresh replicates only — a crash-resumed sweep's merged
// replicates are free.
func TestStoreChargesOnCompletionOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	job, err := s.Submit("alice", fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if u := s.UsageFor("alice"); u != (Usage{}) {
		t.Fatalf("usage charged at submission: %+v", u)
	}
	if err := s.MarkRunning(job); err != nil {
		t.Fatal(err)
	}
	if u := s.UsageFor("alice"); u != (Usage{}) {
		t.Fatalf("usage charged at running: %+v", u)
	}
	// Completion after a crash-resume: 3 fresh, 13 resumed — only the 3
	// fresh replicates bill.
	file, sum, err := s.WriteArtifact(job, []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkDone(job, file, sum, 3, 13, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if u := s.UsageFor("alice"); u.Replicates != 3 {
		t.Fatalf("charged %d replicates, want 3 (resumed must be free)", u.Replicates)
	}
}

func TestStoreArtifactCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	job, err := s.Submit("x", fastSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	file, sum, err := s.WriteArtifact(job, []byte(`{"v":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadArtifact(file, sum); err != nil {
		t.Fatalf("pristine artifact failed verification: %v", err)
	}

	// Flipped byte: typed corruption, never the wrong bytes.
	path := filepath.Join(dir, "artifacts", file)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadArtifact(file, sum); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("flipped artifact: err = %v, want ErrArtifactCorrupt", err)
	}
	// Deleted artifact: same typed degradation.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadArtifact(file, sum); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("missing artifact: err = %v, want ErrArtifactCorrupt", err)
	}
}

func TestStoreRequeueEvictsCache(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	job, err := s.Submit("x", fastSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	file, sum, err := s.WriteArtifact(job, []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkDone(job, file, sum, 4, 0, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cached(job.SpecHash); !ok {
		t.Fatal("done job not cached")
	}

	if err := s.Requeue(job, "artifact corrupt"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cached(job.SpecHash); ok {
		t.Fatal("requeued job still cached")
	}
	if live, ok := s.Live(job.SpecHash); !ok || live.ID != job.ID {
		t.Fatal("requeued job missing from live index")
	}
	if got := job.State(); got != StateQueued {
		t.Fatalf("requeued job state = %s", got)
	}
}

// TestStoreRefusesSecondOpen: one data directory, one server — a second
// open fails loudly with the journal's typed lock error instead of
// interleaving appends.
func TestStoreRefusesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); !errors.Is(err, journal.ErrLocked) {
		t.Fatalf("second OpenStore: err = %v, want journal.ErrLocked", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	s2.Close()
}
