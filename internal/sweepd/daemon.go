package sweepd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"
)

// DefaultDrainTimeout bounds the graceful drain when Daemon.DrainTimeout is
// zero.
const DefaultDrainTimeout = 30 * time.Second

// A Daemon couples a Server to a TCP listener and a context-driven graceful
// drain: cmd/anvilserved wires ctx to SIGTERM/SIGINT, the chaos harness
// drives the same loop in a subprocess. Run blocks until the context is
// cancelled (drain, then clean return) or serving fails.
type Daemon struct {
	// Addr is the listen address; port 0 picks a free port.
	Addr string
	// Data is the store's data directory.
	Data string
	// Opts tunes the server.
	Opts ServerOptions
	// DrainTimeout bounds the graceful drain; zero means
	// DefaultDrainTimeout.
	DrainTimeout time.Duration
	// Portfile, when set, receives the bound listen address atomically —
	// how harnesses using port 0 learn where the server landed.
	Portfile string
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Run opens the store, serves until ctx is cancelled, drains, and closes.
// Acknowledged work survives any exit — graceful or not — because every
// acknowledgement already sits behind an fsynced journal record.
func (d Daemon) Run(ctx context.Context) error {
	logf := d.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if d.Opts.Logf == nil {
		d.Opts.Logf = logf
	}
	drainTimeout := d.DrainTimeout
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}

	store, err := OpenStore(d.Data)
	if err != nil {
		return err
	}
	srv := NewServer(store, d.Opts)

	ln, err := net.Listen("tcp", d.Addr)
	if err != nil {
		store.Close()
		return fmt.Errorf("sweepd: listening on %s: %w", d.Addr, err)
	}
	if d.Portfile != "" {
		if err := writePortfile(d.Portfile, ln.Addr().String()); err != nil {
			ln.Close()
			store.Close()
			return err
		}
	}
	logf("listening on %s (data %s, queue %d, workers %d)",
		ln.Addr(), d.Data, srv.opts.QueueDepth, srv.opts.Workers)

	srv.Start()
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		store.Close()
		return fmt.Errorf("sweepd: serving: %w", err)
	case <-ctx.Done():
	}

	logf("draining (deadline %v)", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	shutErr := httpSrv.Shutdown(dctx)
	if errors.Is(shutErr, context.DeadlineExceeded) {
		shutErr = nil // requests in flight past the deadline are abandoned by design
	}
	closeErr := store.Close()
	switch {
	case drainErr != nil:
		return fmt.Errorf("sweepd: draining: %w", drainErr)
	case shutErr != nil:
		return fmt.Errorf("sweepd: shutting down HTTP server: %w", shutErr)
	case closeErr != nil:
		return fmt.Errorf("sweepd: closing store: %w", closeErr)
	}
	logf("drained cleanly")
	return nil
}

// writePortfile publishes the bound address via tmp+rename so a reader
// never sees a half-written file.
func writePortfile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
		return fmt.Errorf("sweepd: writing portfile: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sweepd: publishing portfile: %w", err)
	}
	return nil
}
