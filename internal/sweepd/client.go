package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// A StatusError is a non-2xx API response, carrying the HTTP code so
// callers can branch on admission outcomes (429 quota/queue-full, 503
// draining) without string matching.
type StatusError struct {
	Code    int
	Message string
	// RetryAfter is the server's Retry-After hint, when present.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("sweepd: server returned %d: %s", e.Code, e.Message)
}

// A Client talks to one anvilserved instance.
type Client struct {
	// Base is the server URL ("http://127.0.0.1:8080").
	Base string
	// APIKey identifies the caller for quota accounting; empty means
	// "anonymous".
	APIKey string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes a JSON body into out (when non-nil).
// Non-2xx responses come back as *StatusError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("sweepd: encoding request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.Base, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return statusError(resp, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("sweepd: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// statusError builds the typed error for a non-2xx response.
func statusError(resp *http.Response, raw []byte) *StatusError {
	msg := strings.TrimSpace(string(raw))
	var body apiError
	if err := json.Unmarshal(raw, &body); err == nil && body.Error != "" {
		msg = body.Error
	}
	e := &StatusError{Code: resp.StatusCode, Message: msg}
	if d, ok := RetryAfter(resp.Header); ok {
		e.RetryAfter = d
	}
	return e
}

// Submit submits a job spec and returns the acknowledged (or cached, or
// deduplicated) job status.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Quota fetches the caller's charged usage.
func (c *Client) Quota(ctx context.Context) (QuotaStatus, error) {
	var q QuotaStatus
	err := c.do(ctx, http.MethodGet, "/v1/quota", nil, &q)
	return q, err
}

// Result fetches a finished job's artifact bytes. A job that is not ready —
// still queued/running, or re-queued for recompute after a corrupt artifact
// read — returns (nil, status, nil); a failed job returns a *StatusError.
func (c *Client) Result(ctx context.Context, id string) ([]byte, JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.Base, "/")+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, JobStatus{}, err
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, JobStatus{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, JobStatus{}, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return raw, JobStatus{ID: id, State: JobState(resp.Header.Get("X-Job-State"))}, nil
	case http.StatusAccepted:
		var st JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			return nil, JobStatus{}, fmt.Errorf("sweepd: decoding pending result status: %w", err)
		}
		return nil, st, nil
	default:
		return nil, JobStatus{}, statusError(resp, raw)
	}
}

// DefaultPoll is the Wait polling interval when none is given.
const DefaultPoll = 50 * time.Millisecond

// Wait polls a job until it reaches a terminal state (or ctx expires).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = DefaultPoll
	}
	//lint:allow detrand client-side polling cadence is host wall-clock by definition
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-tick.C:
		}
	}
}

// FetchResult waits for a job and returns its artifact bytes, riding
// through corrupt-artifact recomputes (each 202 re-enters the wait loop).
func (c *Client) FetchResult(ctx context.Context, id string, poll time.Duration) ([]byte, error) {
	for {
		st, err := c.Wait(ctx, id, poll)
		if err != nil {
			return nil, err
		}
		if st.State == StateFailed {
			return nil, fmt.Errorf("sweepd: job %s failed: %s", id, st.Error)
		}
		data, pending, err := c.Result(ctx, id)
		if err != nil {
			return nil, err
		}
		if data != nil {
			return data, nil
		}
		// Re-queued for recompute; wait again.
		_ = pending
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}
