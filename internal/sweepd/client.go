package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/scenario"
)

// A StatusError is a non-2xx API response, carrying the HTTP code so
// callers can branch on admission outcomes (429 quota/queue-full, 503
// draining) without string matching.
type StatusError struct {
	Code    int
	Message string
	// RetryAfter is the server's Retry-After hint, when present.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("sweepd: server returned %d: %s", e.Code, e.Message)
}

// A Client talks to one anvilserved instance.
type Client struct {
	// Base is the server URL ("http://127.0.0.1:8080").
	Base string
	// APIKey identifies the caller for quota accounting; empty means
	// "anonymous".
	APIKey string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries, when positive, re-issues requests that failed transiently
	// — transport errors (connection refused, resets, lost responses) and
	// 429/503 responses — up to this many extra times. Backoff is seeded
	// exponential jitter (scenario.RetryDelay rooted at RetrySeed), raised
	// to the server's Retry-After hint when one is present, and always
	// bounded by the request context: a context that expires mid-backoff
	// ends the retrying immediately. Zero keeps the old single-shot
	// behaviour — interactive callers usually want errors loudly, daemons
	// set this.
	MaxRetries int
	// RetryBase is the first retry's base backoff; zero means
	// scenario.DefaultRetryBackoff.
	RetryBase time.Duration
	// RetrySeed roots the backoff jitter stream, so a fleet of workers
	// seeded differently never thunders in phase and a replayed run backs
	// off identically.
	RetrySeed uint64
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// errClientTransport tags request failures that happened below HTTP —
// dialing, writing, reading the response — where the server may or may not
// have processed the request. They are the retryable class (the API is
// idempotent), as opposed to decode errors, which a retry cannot fix.
var errClientTransport = errors.New("sweepd: transport error")

// retryDelay classifies err after a failed attempt (1-based) and returns
// how long to back off before retrying, or ok=false for errors retrying
// cannot help.
func (c *Client) retryDelay(err error, attempt int) (time.Duration, bool) {
	d := scenario.RetryDelay(scenario.Options{RetryBackoff: c.RetryBase, BaseSeed: c.RetrySeed}, 0, attempt)
	var se *StatusError
	switch {
	case errors.As(err, &se):
		if se.Code != http.StatusTooManyRequests && se.Code != http.StatusServiceUnavailable {
			return 0, false
		}
		if se.RetryAfter > d {
			d = se.RetryAfter
		}
		return d, true
	case errors.Is(err, errClientTransport):
		return d, true
	}
	return 0, false
}

// retry runs one request function under the client's retry policy.
func (c *Client) retry(ctx context.Context, fn func() error) error {
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil || attempt > c.MaxRetries || ctx.Err() != nil {
			return err
		}
		d, ok := c.retryDelay(err, attempt)
		if !ok {
			return err
		}
		//lint:allow detrand retry backoff is host wall-clock by design
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
}

// do issues one request under the retry policy and decodes a JSON body into
// out (when non-nil). Non-2xx responses come back as *StatusError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	return c.retry(ctx, func() error { return c.doOnce(ctx, method, path, body, out) })
}

// doOnce is a single request attempt.
func (c *Client) doOnce(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("sweepd: encoding request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.Base, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("%w: %w", errClientTransport, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("%w: reading response: %w", errClientTransport, err)
	}
	if resp.StatusCode/100 != 2 {
		return statusError(resp, raw)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("sweepd: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// ClaimLease asks the coordinator for a slot lease. (nil, nil) means no
// shardable work is available right now — poll again later.
func (c *Client) ClaimLease(ctx context.Context, worker string, maxSlots int) (*ClaimResponse, error) {
	var grant ClaimResponse
	if err := c.do(ctx, http.MethodPost, "/v1/leases/claim",
		ClaimRequest{Worker: worker, MaxSlots: maxSlots}, &grant); err != nil {
		return nil, err
	}
	if grant.LeaseID == "" { // 204: nothing to do
		return nil, nil
	}
	return &grant, nil
}

// RenewLease heartbeats a lease, returning the refreshed TTL. A 410 comes
// back as a *StatusError with Code http.StatusGone: the lease expired and
// its slots belong to someone else now.
func (c *Client) RenewLease(ctx context.Context, id string) (time.Duration, error) {
	var r RenewResponse
	if err := c.do(ctx, http.MethodPost, "/v1/leases/"+id+"/renew", struct{}{}, &r); err != nil {
		return 0, err
	}
	return time.Duration(r.TTLMS) * time.Millisecond, nil
}

// UploadResult delivers one computed replicate. Safe to repeat: a slot that
// already has a result acknowledges as a duplicate.
func (c *Client) UploadResult(ctx context.Context, leaseID string, req UploadRequest) (UploadResponse, error) {
	var ack UploadResponse
	err := c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/results", req, &ack)
	return ack, err
}

// ReleaseLease gives a lease back explicitly. Idempotent; releasing an
// already-expired lease is fine.
func (c *Client) ReleaseLease(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/leases/"+id+"/release", struct{}{}, nil)
}

// IsGone reports whether err is the server saying 410: the lease or the
// job's distribution phase no longer exists, so the worker should abandon
// the lease and claim afresh.
func IsGone(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusGone
}

// statusError builds the typed error for a non-2xx response.
func statusError(resp *http.Response, raw []byte) *StatusError {
	msg := strings.TrimSpace(string(raw))
	var body apiError
	if err := json.Unmarshal(raw, &body); err == nil && body.Error != "" {
		msg = body.Error
	}
	e := &StatusError{Code: resp.StatusCode, Message: msg}
	if d, ok := RetryAfter(resp.Header); ok {
		e.RetryAfter = d
	}
	return e
}

// Submit submits a job spec and returns the acknowledged (or cached, or
// deduplicated) job status.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Quota fetches the caller's charged usage.
func (c *Client) Quota(ctx context.Context) (QuotaStatus, error) {
	var q QuotaStatus
	err := c.do(ctx, http.MethodGet, "/v1/quota", nil, &q)
	return q, err
}

// Result fetches a finished job's artifact bytes, retrying transient
// failures under the client's retry policy. A job that is not ready — still
// queued/running, or re-queued for recompute after a corrupt artifact read —
// returns (nil, status, nil); a failed job returns a *StatusError.
func (c *Client) Result(ctx context.Context, id string) (data []byte, st JobStatus, err error) {
	err = c.retry(ctx, func() error {
		data, st, err = c.resultOnce(ctx, id)
		return err
	})
	return data, st, err
}

// resultOnce is a single artifact fetch attempt.
func (c *Client) resultOnce(ctx context.Context, id string) ([]byte, JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.Base, "/")+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, JobStatus{}, err
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, JobStatus{}, fmt.Errorf("%w: %w", errClientTransport, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, JobStatus{}, fmt.Errorf("%w: reading response: %w", errClientTransport, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return raw, JobStatus{ID: id, State: JobState(resp.Header.Get("X-Job-State"))}, nil
	case http.StatusAccepted:
		var st JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			return nil, JobStatus{}, fmt.Errorf("sweepd: decoding pending result status: %w", err)
		}
		return nil, st, nil
	default:
		return nil, JobStatus{}, statusError(resp, raw)
	}
}

// DefaultPoll is the Wait polling interval when none is given.
const DefaultPoll = 50 * time.Millisecond

// Wait polls a job until it reaches a terminal state (or ctx expires).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = DefaultPoll
	}
	//lint:allow detrand client-side polling cadence is host wall-clock by definition
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-tick.C:
		}
	}
}

// FetchResult waits for a job and returns its artifact bytes, riding
// through corrupt-artifact recomputes (each 202 re-enters the wait loop).
func (c *Client) FetchResult(ctx context.Context, id string, poll time.Duration) ([]byte, error) {
	for {
		st, err := c.Wait(ctx, id, poll)
		if err != nil {
			return nil, err
		}
		if st.State == StateFailed {
			return nil, fmt.Errorf("sweepd: job %s failed: %s", id, st.Error)
		}
		data, pending, err := c.Result(ctx, id)
		if err != nil {
			return nil, err
		}
		if data != nil {
			return data, nil
		}
		// Re-queued for recompute; wait again.
		_ = pending
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}
