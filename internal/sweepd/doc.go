// Package sweepd is the crash-safe sweep service behind cmd/anvilserved: a
// long-running HTTP/JSON front end over the experiment registry
// (internal/scenario) and the append-only journal (internal/journal).
//
// The service is built from four pieces:
//
//   - Store — a crash-safe job store. Every submitted spec is journaled and
//     fsynced before it is acknowledged, and every job state transition
//     (queued → running → done/failed/truncated) is an append-only record,
//     so a server killed with SIGKILL at any instant loses no acknowledged
//     work: on restart the store replays the journal and the server resumes
//     in-flight sweeps through the scenario checkpoint/resume path.
//   - Admission control — a bounded queue that answers 429 loudly when full
//     (never blocks, never drops silently) and per-caller quotas charged on
//     completion records, never on submission, so a crash-resumed sweep
//     cannot double-charge a caller's replicate budget.
//   - A content-addressed result cache keyed by the sweep spec hash:
//     identical submissions return the cached artifact instead of
//     re-simulating, and a corrupted artifact degrades gracefully to
//     recompute (the per-sweep journal still holds every replicate, so the
//     rebuild is cheap) — never a 500, never wrong bytes.
//   - Graceful drain — Server.Drain stops admitting, cancels running sweeps
//     (their completed replicates are already checkpointed), persists queue
//     state (it already is: queued records are durable) and returns within
//     the caller's deadline.
//
// The service itself is host-zone code — it reads the host clock, talks to
// the OS and the network. Replicate execution stays inside the deterministic
// zone: the server only ever observes a sweep through scenario progress
// events and its journaled results, so serving a sweep can never change its
// bytes.
//
//lint:zone host
package sweepd
