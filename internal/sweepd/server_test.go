package sweepd

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSubmitRunFetch is the happy path: submit, poll to done, fetch, and
// the artifact bytes match an in-process run of the same experiment.
func TestSubmitRunFetch(t *testing.T) {
	svc := startService(t, t.TempDir(), ServerOptions{})
	ctx := context.Background()
	spec := fastSpec(42)

	st, err := svc.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.Cached || st.Deduped {
		t.Fatalf("fresh submission status: %+v", st)
	}
	data, err := svc.client.FetchResult(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := goldenArtifact(t, spec); !bytes.Equal(data, want) {
		t.Fatalf("artifact = %s, want %s", data, want)
	}

	final, err := svc.client.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Completed != fastReps || final.Resumed != 0 {
		t.Fatalf("final progress: %+v", final)
	}
	q, err := svc.client.Quota(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if q.Used.Replicates != fastReps {
		t.Fatalf("charged %d replicates, want %d", q.Used.Replicates, fastReps)
	}
}

// TestCacheHitSkipsWorkAndCharge: an identical second submission answers
// from the content-addressed cache — same job, no fresh replicates, no new
// quota charge.
func TestCacheHitSkipsWorkAndCharge(t *testing.T) {
	svc := startService(t, t.TempDir(), ServerOptions{})
	ctx := context.Background()
	spec := fastSpec(43)

	first, err := svc.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.client.FetchResult(ctx, first.ID, 0); err != nil {
		t.Fatal(err)
	}
	before, _ := svc.client.Quota(ctx)

	second, err := svc.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.ID != first.ID || second.State != StateDone {
		t.Fatalf("cached resubmission: %+v", second)
	}
	after, _ := svc.client.Quota(ctx)
	if after.Used != before.Used {
		t.Fatalf("cache hit changed usage: %+v -> %+v", before.Used, after.Used)
	}

	// A job with a per-replicate timeout is wall-clock-dependent: it must
	// bypass the cache.
	timed := spec
	timed.TimeoutMS = 60_000
	third, err := svc.client.Submit(ctx, timed)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached || third.ID == first.ID {
		t.Fatalf("timeout-bearing spec served from cache: %+v", third)
	}
}

// TestDedupCoalescesLiveJob: two identical submissions racing share one
// live job instead of double-running (and double-locking) one sweep journal.
func TestDedupCoalescesLiveJob(t *testing.T) {
	blockGate = make(chan struct{})
	svc := startService(t, t.TempDir(), ServerOptions{})
	ctx := context.Background()
	spec := JobSpec{Experiment: expBlock, Seed: 5}

	first, err := svc.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Deduped || second.ID != first.ID {
		t.Fatalf("identical live submission not coalesced: %+v", second)
	}
	close(blockGate)
	if _, err := svc.client.FetchResult(ctx, first.ID, 0); err != nil {
		t.Fatal(err)
	}
}

// TestQueueFull429 is the admission contract: a full queue answers 429 with
// Retry-After immediately — it never blocks the submitter and never drops
// the job silently.
func TestQueueFull429(t *testing.T) {
	blockGate = make(chan struct{})
	defer close(blockGate)
	svc := startService(t, t.TempDir(), ServerOptions{QueueDepth: 1, Workers: 1})
	ctx := context.Background()

	// Occupy the single worker, then fill the single queue slot.
	running, err := svc.client.Submit(ctx, JobSpec{Experiment: expBlock, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc.client, running.ID, StateRunning)
	if _, err := svc.client.Submit(ctx, fastSpec(100)); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = svc.client.Submit(ctx, fastSpec(101))
	elapsed := time.Since(start)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full submission: err = %v, want 429", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("queue-full 429 missing Retry-After: %+v", se)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("queue-full 429 took %v; admission must not block", elapsed)
	}
}

// TestQuota429: a caller over their replicate quota is refused at admission
// with 429, while other callers keep working.
func TestQuota429(t *testing.T) {
	svc := startService(t, t.TempDir(), ServerOptions{
		Quota: Quota{Replicates: fastReps}, // one fast job exhausts it
	})
	ctx := context.Background()
	alice := &Client{Base: svc.http.URL, APIKey: "alice"}
	bob := &Client{Base: svc.http.URL, APIKey: "bob"}

	st, err := alice.Submit(ctx, fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.FetchResult(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}

	_, err = alice.Submit(ctx, fastSpec(2))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission: err = %v, want 429", err)
	}
	q, err := alice.Quota(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if q.Used.Replicates != fastReps || q.LimitReplicates != fastReps {
		t.Fatalf("quota status: %+v", q)
	}
	// Quotas are per caller: bob's budget is untouched.
	if _, err := bob.Submit(ctx, fastSpec(3)); err != nil {
		t.Fatalf("unrelated caller refused: %v", err)
	}
}

// TestCorruptArtifactRecomputes is the graceful-degradation contract: a
// corrupted artifact is detected on read (never served), the job recomputes
// from its sweep checkpoint journal (no fresh replicates, no re-charge),
// and the rebuilt artifact is byte-identical.
func TestCorruptArtifactRecomputes(t *testing.T) {
	dir := t.TempDir()
	svc := startService(t, dir, ServerOptions{})
	ctx := context.Background()
	spec := fastSpec(77)

	st, err := svc.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.client.FetchResult(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	usageBefore, _ := svc.client.Quota(ctx)

	// Corrupt the artifact on disk behind the server's back.
	path := filepath.Join(dir, "artifacts", st.SpecHash+".json")
	if err := os.WriteFile(path, []byte(`{"forged":"bytes"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// The fetch detects the corruption: a 202 recompute, never a 500 and
	// never the forged bytes.
	data, pending, err := svc.client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Fatalf("corrupt fetch returned bytes: %s", data)
	}
	if pending.State.Terminal() {
		t.Fatalf("corrupt fetch did not trigger recompute: %+v", pending)
	}

	got, err := svc.client.FetchResult(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recomputed artifact differs:\n got %s\nwant %s", got, want)
	}
	// Every replicate resumed from the sweep journal: the recompute was
	// free.
	usageAfter, _ := svc.client.Quota(ctx)
	if usageAfter.Used != usageBefore.Used {
		t.Fatalf("recompute re-charged the caller: %+v -> %+v", usageBefore.Used, usageAfter.Used)
	}
	final, _ := svc.client.Job(ctx, st.ID)
	if final.Resumed != fastReps {
		t.Fatalf("recompute resumed %d of %d replicates", final.Resumed, fastReps)
	}
}

// TestDrainStopsAdmissionAndResumes: drain refuses new submissions with
// 503, returns within its deadline even with a wedged job running, leaves
// that job durably resumable, and a fresh server on the same store finishes
// it.
func TestDrainStopsAdmissionAndResumes(t *testing.T) {
	blockGate = make(chan struct{})
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, ServerOptions{Logf: t.Logf})
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	client := &Client{Base: hs.URL}
	ctx := context.Background()

	st, err := client.Submit(ctx, JobSpec{Experiment: expBlock, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, client, st.ID, StateRunning)

	// Drain with a bounded deadline: the blocked replicate is abandoned at
	// its context, so drain must come back well inside it.
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	start := time.Now()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v", elapsed)
	}

	// Draining server refuses new work loudly.
	_, err = client.Submit(ctx, fastSpec(200))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: err = %v, want 503", err)
	}
	// The interrupted job's durable state is still running — resumable, not
	// lost, not falsely failed.
	if got := mustLookup(t, store, st.ID).State(); got != StateRunning {
		t.Fatalf("interrupted job state = %s, want running", got)
	}
	close(blockGate) // release the abandoned replicate goroutine
	hs.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same data directory: the job is re-queued and runs to
	// completion.
	svc2 := startService(t, dir, ServerOptions{})
	if _, err := svc2.client.FetchResult(ctx, st.ID, 0); err != nil {
		t.Fatalf("resumed job after drain: %v", err)
	}
}

// mustLookup fetches a job from the store or fails the test.
func mustLookup(t *testing.T, s *Store, id string) *Job {
	t.Helper()
	job, ok := s.Lookup(id)
	if !ok {
		t.Fatalf("job %s missing from store", id)
	}
	return job
}
