package sweepd

import (
	"fmt"
	"time"
)

// Quota is the per-caller admission limit, built on the same two axes as the
// PR-5 sweep Budget: executed replicates and wall-clock time. The zero value
// is unlimited.
//
// Quotas are enforced at admission (a caller over either limit gets a loud
// 429) but charged only by completion records — a sweep that crashes
// mid-run and resumes from its checkpoint journal re-charges nothing for
// the replicates it merges back, so a crash can never double-bill a caller.
type Quota struct {
	// Replicates bounds the freshly-executed replicates charged to one
	// caller across all their jobs; zero means unlimited.
	Replicates int
	// WallClock bounds the total job wall-clock time charged to one caller;
	// zero means unlimited.
	WallClock time.Duration
}

// IsZero reports whether the quota is unlimited.
func (q Quota) IsZero() bool { return q == Quota{} }

// Usage is a caller's charged consumption. Replicates counts only fresh
// (non-resumed) replicate executions; WallClock sums the host time their
// jobs ran. Both accrue exclusively from journaled completion records.
type Usage struct {
	Replicates int           `json:"replicates"`
	WallClock  time.Duration `json:"wall_clock_ns"`
}

// add folds one completion record's charge into the usage.
func (u *Usage) add(fresh int, wall time.Duration) {
	u.Replicates += fresh
	u.WallClock += wall
}

// Exceeded reports whether usage has consumed the quota, with a reason
// suitable for a 429 body.
func (q Quota) Exceeded(u Usage) (string, bool) {
	if q.Replicates > 0 && u.Replicates >= q.Replicates {
		return fmt.Sprintf("replicate quota exhausted: %d of %d charged", u.Replicates, q.Replicates), true
	}
	if q.WallClock > 0 && u.WallClock >= q.WallClock {
		return fmt.Sprintf("wall-clock quota exhausted: %v of %v charged", u.WallClock, q.WallClock), true
	}
	return "", false
}

// QuotaStatus is the wire shape of GET /v1/quota: a caller's charged usage
// against the server's per-caller limits (zero limit = unlimited).
type QuotaStatus struct {
	Caller          string `json:"caller"`
	Used            Usage  `json:"used"`
	LimitReplicates int    `json:"limit_replicates,omitempty"`
	LimitWallClock  int64  `json:"limit_wall_clock_ns,omitempty"`
}
