// Package vm provides the virtual-memory substrate: a physical frame
// allocator, per-process address spaces with page tables and a small TLB,
// and the /proc/pagemap query interface that the CLFLUSH-free attack uses to
// build eviction sets (and that the kernel later restricted, §5.2.1).
package vm

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// PageSize is the (small) page size in bytes.
const PageSize = 4096

const pageShift = 12

// AllocPolicy selects how the allocator hands out physical frames.
type AllocPolicy int

const (
	// FirstFit allocates the lowest free frame, so fresh mappings are
	// mostly physically contiguous (a freshly booted machine, or
	// transparent huge pages). The paper's attack setup effectively had
	// contiguous physical buffers.
	FirstFit AllocPolicy = iota
	// Scatter allocates frames in a seeded pseudo-random order, modelling a
	// fragmented system where the attacker genuinely needs pagemap to
	// discover physical placement.
	Scatter
)

// ErrNoMemory is returned when the allocator is exhausted.
var ErrNoMemory = errors.New("vm: out of physical memory")

// ErrUnmapped is returned when translating an unmapped virtual address.
var ErrUnmapped = errors.New("vm: page fault: address not mapped")

// ErrPagemapRestricted is returned by pagemap queries after the kernel
// mitigation that forbids user-space access to /proc/pagemap.
var ErrPagemapRestricted = errors.New("vm: pagemap access restricted by kernel policy")

// Allocator hands out physical page frames from a fixed-size memory.
type Allocator struct {
	frames uint64
	free   []uint64 // stack of free frame numbers
	next   uint64   // next never-used frame (FirstFit fast path)
	policy AllocPolicy
	rng    *sim.Rand
}

// NewAllocator builds an allocator over memBytes of physical memory.
func NewAllocator(memBytes uint64, policy AllocPolicy, seed uint64) (*Allocator, error) {
	if memBytes < PageSize {
		return nil, fmt.Errorf("vm: memory too small: %d bytes", memBytes)
	}
	return &Allocator{
		frames: memBytes / PageSize,
		policy: policy,
		rng:    sim.NewRand(seed),
	}, nil
}

// Frames reports the total number of physical frames.
func (a *Allocator) Frames() uint64 { return a.frames }

// FreeFrames reports how many frames are currently unallocated.
func (a *Allocator) FreeFrames() uint64 {
	return uint64(len(a.free)) + (a.frames - a.next)
}

// Alloc returns one free physical frame number.
func (a *Allocator) Alloc() (uint64, error) {
	if len(a.free) > 0 {
		// Pop from the free stack; Scatter pops a random element.
		i := len(a.free) - 1
		if a.policy == Scatter && len(a.free) > 1 {
			j := a.rng.Intn(len(a.free))
			a.free[i], a.free[j] = a.free[j], a.free[i]
		}
		f := a.free[i]
		a.free = a.free[:i]
		return f, nil
	}
	if a.next >= a.frames {
		return 0, ErrNoMemory
	}
	if a.policy == Scatter {
		// Lazily materialise a shuffled window so allocations are not
		// sequential even on a fresh allocator.
		const window = 1024
		n := min(window, int(a.frames-a.next))
		base := a.next
		a.next += uint64(n)
		for _, i := range a.rng.Perm(n) {
			a.free = append(a.free, base+uint64(i))
		}
		return a.Alloc()
	}
	f := a.next
	a.next++
	return f, nil
}

// AllocContiguous returns the first frame of n physically consecutive
// frames. Only never-used frames are considered (no compaction), which is
// how real kernels satisfy huge-page requests from fresh zones.
func (a *Allocator) AllocContiguous(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("vm: AllocContiguous(%d)", n)
	}
	if a.next+uint64(n) > a.frames {
		return 0, ErrNoMemory
	}
	f := a.next
	a.next += uint64(n)
	return f, nil
}

// Release returns a frame to the allocator.
func (a *Allocator) Release(frame uint64) {
	a.free = append(a.free, frame)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

const tlbSize = 64 // direct-mapped translation cache per address space

// AddressSpace is one process's virtual address space.
type AddressSpace struct {
	alloc *Allocator
	pages map[uint64]uint64 // virtual page number -> physical frame number
	tlb   [tlbSize]tlbEntry
}

type tlbEntry struct {
	vpn   uint64
	frame uint64
	valid bool
}

// NewAddressSpace creates an empty address space backed by the allocator.
func NewAddressSpace(alloc *Allocator) *AddressSpace {
	return &AddressSpace{alloc: alloc, pages: make(map[uint64]uint64)}
}

// Map allocates backing frames for [va, va+bytes). va must be page-aligned.
// Frames come one page at a time from the allocator (ordinary mmap).
func (s *AddressSpace) Map(va, bytes uint64) error {
	return s.mapPages(va, bytes, false)
}

// MapContiguous is Map but with physically consecutive frames, modelling a
// huge-page or CMA allocation.
func (s *AddressSpace) MapContiguous(va, bytes uint64) error {
	return s.mapPages(va, bytes, true)
}

func (s *AddressSpace) mapPages(va, bytes uint64, contiguous bool) error {
	if va%PageSize != 0 {
		return fmt.Errorf("vm: unaligned mapping at %#x", va)
	}
	if bytes == 0 {
		return fmt.Errorf("vm: empty mapping at %#x", va)
	}
	n := int((bytes + PageSize - 1) / PageSize)
	vpn := va >> pageShift
	for i := 0; i < n; i++ {
		if _, ok := s.pages[vpn+uint64(i)]; ok {
			return fmt.Errorf("vm: page %#x already mapped", (vpn+uint64(i))<<pageShift)
		}
	}
	if contiguous {
		base, err := s.alloc.AllocContiguous(n)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			s.pages[vpn+uint64(i)] = base + uint64(i)
		}
		return nil
	}
	for i := 0; i < n; i++ {
		f, err := s.alloc.Alloc()
		if err != nil {
			// Roll back the partial mapping.
			for j := 0; j < i; j++ {
				s.alloc.Release(s.pages[vpn+uint64(j)])
				delete(s.pages, vpn+uint64(j))
			}
			return err
		}
		s.pages[vpn+uint64(i)] = f
	}
	return nil
}

// MapFrames maps specific physical frames at va (page-aligned), modelling
// shared memory: two address spaces mapping the same frames (a shared
// library, a mapped file) see the same cache lines — the substrate of
// Flush+Reload-style side channels. The frames are not owned: Unmap will
// release them back to the allocator, so share only frames whose lifetime
// the caller manages.
func (s *AddressSpace) MapFrames(va uint64, frames []uint64) error {
	if va%PageSize != 0 {
		return fmt.Errorf("vm: unaligned mapping at %#x", va)
	}
	if len(frames) == 0 {
		return fmt.Errorf("vm: empty frame list at %#x", va)
	}
	vpn := va >> pageShift
	for i := range frames {
		if _, ok := s.pages[vpn+uint64(i)]; ok {
			return fmt.Errorf("vm: page %#x already mapped", (vpn+uint64(i))<<pageShift)
		}
	}
	for i, f := range frames {
		s.pages[vpn+uint64(i)] = f
	}
	return nil
}

// FrameOf returns the physical frame backing va, for sharing with another
// address space.
func (s *AddressSpace) FrameOf(va uint64) (uint64, error) {
	pa, err := s.Translate(va)
	if err != nil {
		return 0, err
	}
	return pa >> pageShift, nil
}

// Unmap releases the pages backing [va, va+bytes). Unmapped pages in the
// range are ignored.
func (s *AddressSpace) Unmap(va, bytes uint64) {
	n := (bytes + PageSize - 1) / PageSize
	vpn := va >> pageShift
	for i := uint64(0); i < n; i++ {
		if f, ok := s.pages[vpn+i]; ok {
			s.alloc.Release(f)
			delete(s.pages, vpn+i)
		}
	}
	for i := range s.tlb {
		s.tlb[i].valid = false
	}
}

// Translate resolves a virtual address to a physical address.
func (s *AddressSpace) Translate(va uint64) (uint64, error) {
	vpn := va >> pageShift
	e := &s.tlb[vpn%tlbSize]
	if e.valid && e.vpn == vpn {
		return e.frame<<pageShift | va&(PageSize-1), nil
	}
	f, ok := s.pages[vpn]
	if !ok {
		return 0, fmt.Errorf("%w: va %#x", ErrUnmapped, va)
	}
	*e = tlbEntry{vpn: vpn, frame: f, valid: true}
	return f<<pageShift | va&(PageSize-1), nil
}

// Mapped reports whether va is mapped.
func (s *AddressSpace) Mapped(va uint64) bool {
	_, ok := s.pages[va>>pageShift]
	return ok
}

// PageCount reports the number of mapped pages.
func (s *AddressSpace) PageCount() int { return len(s.pages) }

// Pagemap is the /proc/pagemap equivalent: user-visible VA->PA queries.
// The Restricted flag models the post-rowhammer kernel patch that denies
// the interface to user space.
type Pagemap struct {
	Restricted bool
}

// Query resolves va in the given address space, subject to the restriction
// policy.
func (p *Pagemap) Query(s *AddressSpace, va uint64) (uint64, error) {
	if p.Restricted {
		return 0, ErrPagemapRestricted
	}
	return s.Translate(va)
}
