package vm

import (
	"errors"
	"testing"
	"testing/quick"
)

func newAlloc(t *testing.T, bytes uint64, pol AllocPolicy) *Allocator {
	t.Helper()
	a, err := NewAllocator(bytes, pol, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAllocatorFirstFitSequential(t *testing.T) {
	a := newAlloc(t, 64*PageSize, FirstFit)
	for i := uint64(0); i < 8; i++ {
		f, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if f != i {
			t.Errorf("frame %d allocated out of order (got %d)", i, f)
		}
	}
}

func TestAllocatorScatterNotSequential(t *testing.T) {
	a := newAlloc(t, 4096*PageSize, Scatter)
	sequentialRuns := 0
	prev := uint64(0)
	for i := 0; i < 256; i++ {
		f, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && f == prev+1 {
			sequentialRuns++
		}
		prev = f
	}
	if sequentialRuns > 32 {
		t.Errorf("scatter allocator produced %d/255 sequential pairs", sequentialRuns)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := newAlloc(t, 4*PageSize, FirstFit)
	for i := 0; i < 4; i++ {
		if _, err := a.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Alloc(); !errors.Is(err, ErrNoMemory) {
		t.Errorf("exhausted alloc error = %v", err)
	}
	a.Release(2)
	f, err := a.Alloc()
	if err != nil || f != 2 {
		t.Errorf("post-release alloc = (%d, %v), want (2, nil)", f, err)
	}
}

func TestAllocatorContiguous(t *testing.T) {
	a := newAlloc(t, 64*PageSize, Scatter)
	base, err := a.AllocContiguous(16)
	if err != nil {
		t.Fatal(err)
	}
	base2, err := a.AllocContiguous(16)
	if err != nil {
		t.Fatal(err)
	}
	if base2 < base+16 {
		t.Errorf("contiguous ranges overlap: %d and %d", base, base2)
	}
	if _, err := a.AllocContiguous(1000); !errors.Is(err, ErrNoMemory) {
		t.Error("oversized contiguous alloc should fail")
	}
	if _, err := a.AllocContiguous(0); err == nil {
		t.Error("zero-size contiguous alloc should fail")
	}
}

func TestAllocatorFreeFramesAccounting(t *testing.T) {
	a := newAlloc(t, 16*PageSize, FirstFit)
	if a.FreeFrames() != 16 {
		t.Fatalf("FreeFrames = %d, want 16", a.FreeFrames())
	}
	f, _ := a.Alloc()
	if a.FreeFrames() != 15 {
		t.Fatalf("FreeFrames = %d, want 15", a.FreeFrames())
	}
	a.Release(f)
	if a.FreeFrames() != 16 {
		t.Fatalf("FreeFrames = %d, want 16", a.FreeFrames())
	}
}

func TestAddressSpaceMapTranslate(t *testing.T) {
	a := newAlloc(t, 1024*PageSize, FirstFit)
	s := NewAddressSpace(a)
	if err := s.Map(0x10000, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	pa, err := s.Translate(0x10000 + 123)
	if err != nil {
		t.Fatal(err)
	}
	if pa%PageSize != 123 {
		t.Errorf("offset not preserved: %#x", pa)
	}
	// Unmapped access page-faults.
	if _, err := s.Translate(0x90000); !errors.Is(err, ErrUnmapped) {
		t.Errorf("unmapped translate error = %v", err)
	}
	if !s.Mapped(0x10000) || s.Mapped(0x90000) {
		t.Error("Mapped() inconsistent")
	}
	if s.PageCount() != 4 {
		t.Errorf("PageCount = %d, want 4", s.PageCount())
	}
}

func TestAddressSpaceRejectsBadMappings(t *testing.T) {
	a := newAlloc(t, 1024*PageSize, FirstFit)
	s := NewAddressSpace(a)
	if err := s.Map(0x10001, PageSize); err == nil {
		t.Error("unaligned map accepted")
	}
	if err := s.Map(0x10000, 0); err == nil {
		t.Error("empty map accepted")
	}
	if err := s.Map(0x10000, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x10000, PageSize); err == nil {
		t.Error("double map accepted")
	}
}

func TestAddressSpaceMapContiguousIsContiguous(t *testing.T) {
	a := newAlloc(t, 4096*PageSize, Scatter)
	s := NewAddressSpace(a)
	if err := s.MapContiguous(0x200000, 32*PageSize); err != nil {
		t.Fatal(err)
	}
	base, err := s.Translate(0x200000)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i < 32; i++ {
		pa, err := s.Translate(0x200000 + i*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if pa != base+i*PageSize {
			t.Fatalf("page %d not contiguous: %#x vs base %#x", i, pa, base)
		}
	}
}

func TestAddressSpaceScatterIsNotContiguous(t *testing.T) {
	a := newAlloc(t, 4096*PageSize, Scatter)
	s := NewAddressSpace(a)
	if err := s.Map(0x200000, 64*PageSize); err != nil {
		t.Fatal(err)
	}
	contig := 0
	prev, _ := s.Translate(0x200000)
	for i := uint64(1); i < 64; i++ {
		pa, _ := s.Translate(0x200000 + i*PageSize)
		if pa == prev+PageSize {
			contig++
		}
		prev = pa
	}
	if contig > 16 {
		t.Errorf("scattered mapping had %d/63 contiguous pairs", contig)
	}
}

func TestAddressSpaceUnmapReleasesFrames(t *testing.T) {
	a := newAlloc(t, 8*PageSize, FirstFit)
	s := NewAddressSpace(a)
	if err := s.Map(0, 8*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x100000, PageSize); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("expected exhaustion, got %v", err)
	}
	s.Unmap(0, 4*PageSize)
	if err := s.Map(0x100000, 4*PageSize); err != nil {
		t.Errorf("map after unmap failed: %v", err)
	}
	// TLB must not serve stale translations.
	if _, err := s.Translate(0); !errors.Is(err, ErrUnmapped) {
		t.Error("stale TLB entry served an unmapped page")
	}
}

func TestMapRollbackOnExhaustion(t *testing.T) {
	a := newAlloc(t, 4*PageSize, FirstFit)
	s := NewAddressSpace(a)
	if err := s.Map(0, 8*PageSize); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("expected exhaustion, got %v", err)
	}
	if s.PageCount() != 0 {
		t.Errorf("partial mapping left behind: %d pages", s.PageCount())
	}
	if a.FreeFrames() != 4 {
		t.Errorf("frames leaked: %d free, want 4", a.FreeFrames())
	}
}

func TestTranslateProperty(t *testing.T) {
	a := newAlloc(t, 1<<20, FirstFit) // 256 frames
	s := NewAddressSpace(a)
	if err := s.Map(0, 128*PageSize); err != nil {
		t.Fatal(err)
	}
	// Property: page offset always preserved, and the same VA always maps
	// to the same PA (TLB coherence).
	err := quick.Check(func(off uint32) bool {
		va := uint64(off) % (128 * PageSize)
		pa1, err1 := s.Translate(va)
		pa2, err2 := s.Translate(va)
		return err1 == nil && err2 == nil && pa1 == pa2 && pa1%PageSize == va%PageSize
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestPagemapRestriction(t *testing.T) {
	a := newAlloc(t, 1<<20, FirstFit)
	s := NewAddressSpace(a)
	if err := s.Map(0, PageSize); err != nil {
		t.Fatal(err)
	}
	open := &Pagemap{}
	if _, err := open.Query(s, 100); err != nil {
		t.Errorf("open pagemap query failed: %v", err)
	}
	restricted := &Pagemap{Restricted: true}
	if _, err := restricted.Query(s, 100); !errors.Is(err, ErrPagemapRestricted) {
		t.Errorf("restricted pagemap error = %v", err)
	}
}

func TestNewAllocatorTooSmall(t *testing.T) {
	if _, err := NewAllocator(100, FirstFit, 0); err == nil {
		t.Error("tiny memory accepted")
	}
}

func TestMapFramesSharing(t *testing.T) {
	a := newAlloc(t, 1<<20, FirstFit)
	s1 := NewAddressSpace(a)
	s2 := NewAddressSpace(a)
	if err := s1.Map(0x10000, PageSize); err != nil {
		t.Fatal(err)
	}
	frame, err := s1.FrameOf(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.MapFrames(0x50000, []uint64{frame}); err != nil {
		t.Fatal(err)
	}
	pa1, _ := s1.Translate(0x10000 + 64)
	pa2, _ := s2.Translate(0x50000 + 64)
	if pa1 != pa2 {
		t.Errorf("shared mapping resolves differently: %#x vs %#x", pa1, pa2)
	}
}

func TestMapFramesRejectsBadInput(t *testing.T) {
	a := newAlloc(t, 1<<20, FirstFit)
	s := NewAddressSpace(a)
	if err := s.MapFrames(0x10001, []uint64{1}); err == nil {
		t.Error("unaligned MapFrames accepted")
	}
	if err := s.MapFrames(0x10000, nil); err == nil {
		t.Error("empty MapFrames accepted")
	}
	if err := s.MapFrames(0x10000, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.MapFrames(0x10000, []uint64{2}); err == nil {
		t.Error("overlapping MapFrames accepted")
	}
}

func TestFrameOfUnmapped(t *testing.T) {
	a := newAlloc(t, 1<<20, FirstFit)
	s := NewAddressSpace(a)
	if _, err := s.FrameOf(0x999000); err == nil {
		t.Error("FrameOf on unmapped page succeeded")
	}
}
