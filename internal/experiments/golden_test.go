package experiments_test

// The registry-JSON golden is the referee for performance refactors of the
// per-access pipeline: the serialized result of a registered experiment is
// pinned byte-for-byte in testdata, so any change to the cache, PMU, DRAM
// or machine fast paths that perturbs simulated behaviour — even by one
// access — fails this test. Regenerate (deliberately!) with:
//
//	go test ./internal/experiments -run TestRegistryGoldenJSON -update-golden

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	_ "repro/internal/experiments" // registers every table and figure
	"repro/internal/scenario"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the registry JSON goldens")

func TestRegistryGoldenJSON(t *testing.T) {
	cfg := scenario.Config{Quick: true, Seed: 7}
	e, ok := scenario.Find("table1")
	if !ok {
		t.Fatal("experiment table1 not registered")
	}
	res, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')

	path := filepath.Join("testdata", "table1_quick_seed7.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (re-run with -update-golden after a deliberate behaviour change): %v", err)
	}
	if !bytes.Equal(raw, want) {
		t.Errorf("table1 JSON diverged from the pinned golden.\ngot:\n%s\nwant:\n%s", raw, want)
	}
}
