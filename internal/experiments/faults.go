package experiments

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// dropRates is the degraded-sampling sweep: the fraction of PEBS samples the
// broken PMU loses.
var dropRates = []float64{0, 0.05, 0.10, 0.25}

// DegradedSamplingRow is one point of the degraded-sampling sweep: ANVIL's
// flip prevention when the PMU silently drops a fraction of its samples.
type DegradedSamplingRow struct {
	DropRate float64 `json:"drop_rate"`
	// Flips / BaselineFlips sum hammer flips across the paired replicates,
	// with the detector attached and without any defense.
	Flips         int `json:"flips"`
	BaselineFlips int `json:"baseline_flips"`
	// Prevention is 1 - Flips/BaselineFlips: the fraction of undefended
	// flips the degraded detector still stops.
	Prevention float64 `json:"prevention"`
	Detections int     `json:"detections"`
	// InjectedDrops / SamplesTaken report the injected noise level.
	InjectedDrops uint64 `json:"injected_drops"`
	SamplesTaken  uint64 `json:"samples_taken"`
	// Truncated marks a row aggregated from a budget-truncated sweep:
	// only SeedsUsed complete seed groups contributed instead of the full
	// replicate set.
	Truncated bool `json:"truncated,omitempty"`
	SeedsUsed int  `json:"seeds_used,omitempty"`
}

// degradedSpec is the sweep's scenario: the §4.5 future-DRAM setting (half
// disturbance threshold, flat-out double-sided attack) against ANVIL-heavy,
// whose MinRowSamples gate sits close to the samples an attack row collects
// per window — the marginal regime where lost samples actually cost
// detections.
func degradedSamplingSpec(seed uint64, drop float64) scenario.Spec {
	s := scenario.Spec{
		Cores:        1,
		Seed:         seed,
		DisturbScale: 0.5,
		Attack: &scenario.Attack{
			Kind:      scenario.DoubleSidedFlush,
			WeakUnits: victimThreshold / 2,
		},
		Defense: scenario.ANVILHeavy,
	}
	if drop > 0 {
		s.Faults.PMU.SampleDropRate = drop
	}
	return s
}

// degradedSamplingReps is the sweep's seed-group count.
func degradedSamplingReps(cfg Config) int {
	if cfg.Quick {
		return 3
	}
	return 6
}

// DegradedSampling sweeps ANVIL's flip prevention against PMU sample-drop
// rates. Every drop rate runs the same paired replicate seeds (and the
// no-defense baseline runs once per seed), so the sweep isolates the fault
// injector: the only thing that changes along a row is the drop rate. A
// budget-truncated sweep degrades gracefully: rows aggregate only the seed
// groups whose replicates all completed and say so (Truncated, SeedsUsed) —
// a point is never averaged against a baseline it did not run under.
func DegradedSampling(cfg Config) ([]DegradedSamplingRow, error) {
	dur := cfg.ScaleDur(512 * time.Millisecond)
	reps := degradedSamplingReps(cfg)
	// Replicate layout: point 0 is the no-defense baseline, points 1.. are
	// the drop rates; all points of one seed share that seed.
	points := 1 + len(dropRates)
	runs, status, err := scenario.RunReplicatesSweep(cfg, reps*points, func(rep int) (scenario.Results, error) {
		seedIdx, point := rep/points, rep%points
		seed := scenario.ReplicateSeed(cfg.Seed, seedIdx)
		var spec scenario.Spec
		if point == 0 {
			spec = degradedSamplingSpec(seed, 0)
			spec.Defense = scenario.NoDefense
		} else {
			spec = degradedSamplingSpec(seed, dropRates[point-1])
		}
		spec.StepBatch = cfg.StepBatch
		in, err := scenario.Build(spec)
		if err != nil {
			return scenario.Results{}, err
		}
		if err := in.RunFor(dur); err != nil {
			// Injected-fault replicates may legitimately fail transiently
			// (e.g. an uncorrectable ECC stop); mark them retryable.
			if !spec.Faults.IsZero() {
				err = scenario.MarkTransient(err)
			}
			return scenario.Results{}, err
		}
		return in.Results(), nil
	})
	if err != nil {
		return nil, err
	}
	dropped := make(map[int]bool, len(status.Dropped))
	for _, rep := range status.Dropped {
		dropped[rep] = true
	}
	// A seed group counts only when all its points completed.
	var groups []int
	for seedIdx := 0; seedIdx < reps; seedIdx++ {
		whole := true
		for point := 0; point < points; point++ {
			if dropped[seedIdx*points+point] {
				whole = false
				break
			}
		}
		if whole {
			groups = append(groups, seedIdx)
		}
	}
	if status.Truncated && len(groups) == 0 {
		return nil, fmt.Errorf("experiments: degraded-sampling truncated (%s) before any seed group completed; nothing to aggregate", status.Reason)
	}
	baseline := 0
	for _, seedIdx := range groups {
		baseline += runs[seedIdx*points].Flips
	}
	if baseline == 0 {
		return nil, fmt.Errorf("experiments: degraded-sampling baseline produced no flips; sweep vacuous")
	}
	rows := make([]DegradedSamplingRow, len(dropRates))
	for i, rate := range dropRates {
		row := DegradedSamplingRow{DropRate: rate, BaselineFlips: baseline}
		if status.Truncated {
			row.Truncated = true
			row.SeedsUsed = len(groups)
		}
		for _, seedIdx := range groups {
			r := runs[seedIdx*points+1+i]
			row.Flips += r.Flips
			row.Detections += r.Detections
			row.InjectedDrops += r.PMUInjectedDrops
			row.SamplesTaken += r.SamplesTaken
		}
		row.Prevention = 1 - float64(row.Flips)/float64(baseline)
		rows[i] = row
	}
	return rows, nil
}

// RenderDegradedSampling formats the sweep.
func RenderDegradedSampling(rows []DegradedSamplingRow) string {
	t := report.New("Degraded Sampling: ANVIL-heavy flip prevention vs PMU sample-drop rate (future DRAM, 110K-access threshold)",
		"Drop Rate", "Prevention", "Flips (def/base)", "Detections", "Samples (taken/dropped)")
	for _, r := range rows {
		t.AddStrings(
			fmt.Sprintf("%.0f%%", r.DropRate*100),
			fmt.Sprintf("%.3f", r.Prevention),
			fmt.Sprintf("%d/%d", r.Flips, r.BaselineFlips),
			fmt.Sprintf("%d", r.Detections),
			fmt.Sprintf("%d/%d", r.SamplesTaken, r.InjectedDrops),
		)
	}
	return t.String()
}

// faultProfile is one named degraded-hardware configuration of the fault
// matrix.
type faultProfile struct {
	name     string
	desc     string
	faults   fault.Spec
	eccScrub time.Duration
}

// faultProfiles enumerates the matrix: one clean control plus one profile
// per degraded subsystem.
func faultProfiles() []faultProfile {
	return []faultProfile{
		{name: "clean", desc: "no injected faults"},
		{name: "degraded-pebs", desc: "25% sample drops, 25% skid up to 8 lines, 16-entry buffer",
			faults: fault.Spec{PMU: fault.PMUSpec{
				SampleDropRate: 0.25, SampleSkidRate: 0.25, SkidMaxLines: 8, BufferCap: 16,
			}}},
		{name: "slow-interrupts", desc: "timers late up to 20us, PMIs cost up to 5us",
			faults: fault.Spec{Machine: fault.MachineSpec{
				TimerMaxDelay: sim.DefaultFreq.Cycles(20 * time.Microsecond),
				IRQMaxCost:    sim.DefaultFreq.Cycles(5 * time.Microsecond),
			}}},
		{name: "flaky-refresh", desc: "25% of REF slots skipped",
			faults: fault.Spec{DRAM: fault.DRAMSpec{RefreshSkipRate: 0.25}}},
		{name: "noisy-ecc", desc: "transient ECC errors under an 8ms scrubber",
			faults: fault.Spec{DRAM: fault.DRAMSpec{
				ECCCorrectableRate: 2e-5, ECCUncorrectableRate: 2e-6,
			}},
			eccScrub: 8 * time.Millisecond},
	}
}

// FaultMatrixRow is one degraded-hardware profile's outcome against the
// standard attack under ANVIL-baseline.
type FaultMatrixRow struct {
	Profile string `json:"profile"`
	Desc    string `json:"desc"`
	// Err records a failed replicate (keep-going: the rest of the matrix
	// still reports).
	Err string `json:"err,omitempty"`
	// Skipped marks a profile the sweep's budget dropped before it ran; Err
	// carries the reason. A skipped row is not a failure.
	Skipped bool `json:"skipped,omitempty"`
	scenario.Results
}

// faultMatrixReplicate runs one degraded-hardware profile of the matrix: the
// double-sided CLFLUSH attack under ANVIL-baseline for dur. Failures of
// fault-injected profiles are marked transient — a retry under the same seed
// is the honest rerun of an injected-fault casualty.
func faultMatrixReplicate(cfg Config, p faultProfile, dur time.Duration) (scenario.Results, error) {
	in, err := scenario.Build(scenario.Spec{
		Cores:     1,
		Seed:      cfg.Seed,
		Attack:    &scenario.Attack{Kind: scenario.DoubleSidedFlush},
		Defense:   scenario.ANVILBaseline,
		Faults:    p.faults,
		ECCScrub:  p.eccScrub,
		StepBatch: cfg.StepBatch,
	})
	if err != nil {
		return scenario.Results{}, err
	}
	if err := in.RunFor(dur); err != nil {
		if !p.faults.IsZero() {
			err = scenario.MarkTransient(err)
		}
		return scenario.Results{}, err
	}
	return in.Results(), nil
}

// FaultMatrix runs the double-sided CLFLUSH attack under ANVIL-baseline on
// every degraded-hardware profile. The sweep always keeps going: one broken
// profile reports its error in its row instead of sinking the matrix, and a
// budget-truncated sweep reports the profiles it skipped in their rows.
func FaultMatrix(cfg Config) ([]FaultMatrixRow, error) {
	dur := cfg.ScaleDur(256 * time.Millisecond)
	profiles := faultProfiles()
	cfg.KeepGoing = true
	runs, status, err := scenario.RunReplicatesSweep(cfg, len(profiles), func(rep int) (scenario.Results, error) {
		return faultMatrixReplicate(cfg, profiles[rep], dur)
	})
	if err != nil {
		if _, ok := err.(*scenario.SweepError); !ok {
			return nil, err
		}
	}
	rows := make([]FaultMatrixRow, len(profiles))
	for i, p := range profiles {
		rows[i] = FaultMatrixRow{Profile: p.name, Desc: p.desc, Results: runs[i]}
	}
	for _, rep := range status.Dropped {
		rows[rep].Skipped = true
		rows[rep].Err = "skipped: " + status.Reason
	}
	if se, ok := err.(*scenario.SweepError); ok {
		for _, f := range se.Failures {
			rows[f.Rep].Err = f.Err.Error()
		}
	}
	return rows, nil
}

// RenderFaultMatrix formats the matrix.
func RenderFaultMatrix(rows []FaultMatrixRow) string {
	t := report.New("Fault Matrix: double-sided CLFLUSH vs ANVIL-baseline on degraded hardware",
		"Profile", "Flips", "Detections", "Refreshes", "Injected Noise")
	for _, r := range rows {
		if r.Skipped {
			t.AddStrings(r.Profile, "-", "-", "-", r.Err)
			continue
		}
		if r.Err != "" {
			t.AddStrings(r.Profile, "-", "-", "-", "error: "+r.Err)
			continue
		}
		noise := "-"
		switch {
		case r.PMUInjectedDrops > 0 || r.PMUSkiddedSamples > 0:
			noise = fmt.Sprintf("%d drops, %d skids", r.PMUInjectedDrops, r.PMUSkiddedSamples)
		case r.TimersDelayed > 0:
			noise = fmt.Sprintf("%d late timers", r.TimersDelayed)
		case r.DRAMSkippedRefreshes > 0:
			noise = fmt.Sprintf("%d skipped REFs", r.DRAMSkippedRefreshes)
		case r.ECCTransientSingle > 0 || r.ECCTransientDouble > 0:
			noise = fmt.Sprintf("%d/%d ECC corr/uncorr", r.ECCCorrected, r.ECCUncorrectable)
		}
		t.AddStrings(r.Profile,
			fmt.Sprintf("%d", r.Flips),
			fmt.Sprintf("%d", r.Detections),
			fmt.Sprintf("%d", r.DefenseRefreshes),
			noise)
	}
	return t.String()
}
