package experiments

import (
	"fmt"
	"time"

	"repro/internal/anvil"
	"repro/internal/defense"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/sim"
)

// Section45Row is one robustness scenario of §4.5: a future, weaker DRAM
// (flips at half the disturbance) attacked fast or slow, against the
// matching ANVIL configuration.
type Section45Row struct {
	Scenario   string
	Config     string
	Detections int
	BitFlips   int
}

// Section45 evaluates ANVIL-heavy against a flat-out attack and ANVIL-light
// against an attack spread across the whole refresh period, both on DRAM
// that flips at 110K double-sided accesses (200K units).
func Section45(cfg Config) ([]Section45Row, error) {
	dur := cfg.scaleDur(512 * time.Millisecond)
	type scenario struct {
		name   string
		delay  sim.Cycles
		params anvil.Params
		pname  string
	}
	scenarios := []scenario{
		{"fast attack (110K accesses in ~7ms)", 0, anvil.Heavy(), "ANVIL-heavy"},
		{"slow attack (110K accesses over 64ms)", 1200, anvil.Light(), "ANVIL-light"},
	}
	var rows []Section45Row
	for _, sc := range scenarios {
		m, err := newMachine(1, func(c *machine.Config) {
			c.Memory.DRAM.Disturb = c.Memory.DRAM.Disturb.Scaled(0.5)
		})
		if err != nil {
			return nil, err
		}
		opts := attackOptions(m)
		opts.ExtraDelay = sc.delay
		h, err := newHammer(doubleSidedFlush, opts)
		if err != nil {
			return nil, err
		}
		if _, err := m.Spawn(0, h); err != nil {
			return nil, err
		}
		v := h.Victim()
		if err := m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, victimThreshold/2); err != nil {
			return nil, err
		}
		det, err := startANVIL(m, sc.params)
		if err != nil {
			return nil, err
		}
		if err := runFor(m, dur); err != nil {
			return nil, err
		}
		rows = append(rows, Section45Row{
			Scenario:   sc.name,
			Config:     sc.pname,
			Detections: len(det.Stats().Detections),
			BitFlips:   m.Mem.DRAM.FlipCount(),
		})
	}
	return rows, nil
}

// RenderSection45 formats the robustness results.
func RenderSection45(rows []Section45Row) string {
	t := report.New("Section 4.5: Robustness to Future Attacks (DRAM flipping at 110K accesses)",
		"Scenario", "Detector", "Detections", "Bit Flips")
	for _, r := range rows {
		t.AddStrings(r.Scenario, r.Config, fmt.Sprintf("%d", r.Detections), fmt.Sprintf("%d", r.BitFlips))
	}
	return t.String()
}

// DefenseRow compares one mitigation against the CLFLUSH attack.
type DefenseRow struct {
	Defense    string
	BitFlips   int
	Refreshes  uint64
	Deployable string // "existing systems" vs "new hardware"
}

// Defenses is the extension comparison (§5 landscape): every mitigation in
// the repository against the double-sided CLFLUSH attack on the standard
// module.
func Defenses(cfg Config) ([]DefenseRow, error) {
	dur := cfg.scaleDur(256 * time.Millisecond)
	type entry struct {
		name       string
		refresh    int // refresh-rate scale
		mk         func() (defense.Defense, error)
		useANVIL   *anvil.Params
		deployable string
	}
	baseline := anvil.Baseline()
	entries := []entry{
		{"none (64ms refresh)", 1, nil, nil, "-"},
		{"2x refresh (32ms)", 2, nil, nil, "existing systems"},
		{"ANVIL-baseline", 1, nil, &baseline, "existing systems"},
		{"PARA p=0.001", 1, func() (defense.Defense, error) { return defense.NewPARA(0.001, 0xdead) }, nil, "new hardware"},
		{"TRR MAC=50K/16ms", 1, func() (defense.Defense, error) {
			return defense.NewTRR(50_000, sim.DefaultFreq.Cycles(16*time.Millisecond))
		}, nil, "new hardware"},
		{"pTRR 1%/64-entry", 1, func() (defense.Defense, error) {
			return defense.NewPTRR(0.01, 64, 500, 0x717)
		}, nil, "shipping (Xeon)"},
		{"CRA counters 100K", 1, func() (defense.Defense, error) { return defense.NewCRA(100_000) }, nil, "new hardware"},
		{"ARMOR hot-row buffer", 1, func() (defense.Defense, error) {
			return defense.NewARMOR(10_000, 8, sim.DefaultFreq.Cycles(32*time.Millisecond))
		}, nil, "new hardware"},
	}
	var rows []DefenseRow
	for _, e := range entries {
		m, err := newMachine(1, func(c *machine.Config) {
			if e.refresh > 1 {
				c.Memory.DRAM.Timing = c.Memory.DRAM.Timing.WithRefreshScale(e.refresh)
			}
		})
		if err != nil {
			return nil, err
		}
		var d defense.Defense
		if e.mk != nil {
			if d, err = e.mk(); err != nil {
				return nil, err
			}
			d.Attach(m.Mem.DRAM)
		}
		if _, err := spawnHammer(m, doubleSidedFlush, attackOptions(m)); err != nil {
			return nil, err
		}
		var det *anvil.Detector
		if e.useANVIL != nil {
			if det, err = startANVIL(m, *e.useANVIL); err != nil {
				return nil, err
			}
		}
		if err := runFor(m, dur); err != nil {
			return nil, err
		}
		row := DefenseRow{Defense: e.name, BitFlips: m.Mem.DRAM.FlipCount(), Deployable: e.deployable}
		if d != nil {
			row.Refreshes = d.Refreshes()
		}
		if det != nil {
			row.Refreshes = det.Stats().Refreshes
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderDefenses formats the comparison.
func RenderDefenses(rows []DefenseRow) string {
	t := report.New("Defense Comparison: double-sided CLFLUSH attack, weakest row 400K units",
		"Defense", "Bit Flips", "Victim Refreshes", "Deployability")
	for _, r := range rows {
		t.AddStrings(r.Defense, fmt.Sprintf("%d", r.BitFlips), fmt.Sprintf("%d", r.Refreshes), r.Deployable)
	}
	return t.String()
}
