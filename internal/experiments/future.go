package experiments

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Section45Row is one robustness scenario of §4.5: a future, weaker DRAM
// (flips at half the disturbance) attacked fast or slow, against the
// matching ANVIL configuration.
type Section45Row struct {
	Scenario   string `json:"scenario"`
	Config     string `json:"config"`
	Detections int    `json:"detections"`
	BitFlips   int    `json:"bit_flips"`
}

// Section45 evaluates ANVIL-heavy against a flat-out attack and ANVIL-light
// against an attack spread across the whole refresh period, both on DRAM
// that flips at 110K double-sided accesses (200K units).
func Section45(cfg Config) ([]Section45Row, error) {
	dur := cfg.ScaleDur(512 * time.Millisecond)
	type point struct {
		name    string
		delay   sim.Cycles
		defense scenario.DefenseKind
		pname   string
	}
	points := []point{
		{"fast attack (110K accesses in ~7ms)", 0, scenario.ANVILHeavy, "ANVIL-heavy"},
		{"slow attack (110K accesses over 64ms)", 1200, scenario.ANVILLight, "ANVIL-light"},
	}
	return scenario.RunReplicates(cfg, len(points), func(rep int) (Section45Row, error) {
		p := points[rep]
		in, err := scenario.Build(scenario.Spec{
			Cores:        1,
			Seed:         cfg.Seed,
			DisturbScale: 0.5,
			Attack: &scenario.Attack{
				Kind:       scenario.DoubleSidedFlush,
				WeakUnits:  victimThreshold / 2,
				ExtraDelay: p.delay,
			},
			Defense:   p.defense,
			StepBatch: cfg.StepBatch,
		})
		if err != nil {
			return Section45Row{}, err
		}
		if err := in.RunFor(dur); err != nil {
			return Section45Row{}, err
		}
		return Section45Row{
			Scenario:   p.name,
			Config:     p.pname,
			Detections: len(in.Detector.Stats().Detections),
			BitFlips:   in.Machine.Mem.DRAM.FlipCount(),
		}, nil
	})
}

// RenderSection45 formats the robustness results.
func RenderSection45(rows []Section45Row) string {
	t := report.New("Section 4.5: Robustness to Future Attacks (DRAM flipping at 110K accesses)",
		"Scenario", "Detector", "Detections", "Bit Flips")
	for _, r := range rows {
		t.AddStrings(r.Scenario, r.Config, fmt.Sprintf("%d", r.Detections), fmt.Sprintf("%d", r.BitFlips))
	}
	return t.String()
}

// DefenseRow compares one mitigation against the CLFLUSH attack.
type DefenseRow struct {
	Defense    string `json:"defense"`
	BitFlips   int    `json:"bit_flips"`
	Refreshes  uint64 `json:"refreshes"`
	Deployable string `json:"deployable"` // "existing systems" vs "new hardware"
}

// defenseEntryCount is the mitigation count of Defenses, kept next to its
// entry list for registry replicate estimates.
const defenseEntryCount = 8

// Defenses is the extension comparison (§5 landscape): every mitigation in
// the repository against the double-sided CLFLUSH attack on the standard
// module, one independent replicate per defense.
func Defenses(cfg Config) ([]DefenseRow, error) {
	dur := cfg.ScaleDur(256 * time.Millisecond)
	type entry struct {
		name         string
		refreshScale int
		defense      scenario.DefenseKind
		deployable   string
	}
	entries := []entry{
		{"none (64ms refresh)", 1, scenario.NoDefense, "-"},
		{"2x refresh (32ms)", 2, scenario.NoDefense, "existing systems"},
		{"ANVIL-baseline", 1, scenario.ANVILBaseline, "existing systems"},
		{"PARA p=0.001", 1, scenario.PARA, "new hardware"},
		{"TRR MAC=50K/16ms", 1, scenario.TRR, "new hardware"},
		{"pTRR 1%/64-entry", 1, scenario.PTRR, "shipping (Xeon)"},
		{"CRA counters 100K", 1, scenario.CRA, "new hardware"},
		{"ARMOR hot-row buffer", 1, scenario.ARMOR, "new hardware"},
	}
	if len(entries) != defenseEntryCount {
		return nil, fmt.Errorf("experiments: defenseEntryCount (%d) out of sync with the entry list (%d)", defenseEntryCount, len(entries))
	}
	return scenario.RunReplicates(cfg, len(entries), func(rep int) (DefenseRow, error) {
		e := entries[rep]
		in, err := scenario.Build(scenario.Spec{
			Cores:        1,
			Seed:         cfg.Seed,
			RefreshScale: e.refreshScale,
			Attack:       &scenario.Attack{Kind: scenario.DoubleSidedFlush},
			Defense:      e.defense,
			StepBatch:    cfg.StepBatch,
		})
		if err != nil {
			return DefenseRow{}, err
		}
		if err := in.RunFor(dur); err != nil {
			return DefenseRow{}, err
		}
		row := DefenseRow{Defense: e.name, BitFlips: in.Machine.Mem.DRAM.FlipCount(), Deployable: e.deployable}
		if in.HW != nil {
			row.Refreshes = in.HW.Refreshes()
		}
		if in.Detector != nil {
			row.Refreshes = in.Detector.Stats().Refreshes
		}
		return row, nil
	})
}

// RenderDefenses formats the comparison.
func RenderDefenses(rows []DefenseRow) string {
	t := report.New("Defense Comparison: double-sided CLFLUSH attack, weakest row 400K units",
		"Defense", "Bit Flips", "Victim Refreshes", "Deployability")
	for _, r := range rows {
		t.AddStrings(r.Defense, fmt.Sprintf("%d", r.BitFlips), fmt.Sprintf("%d", r.Refreshes), r.Deployable)
	}
	return t.String()
}
