package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// result adapts an experiment's structured data to the registry's Result
// interface: Render produces the paper's text rendering, Metrics the
// headline numbers (deterministic order), and JSON marshalling exposes the
// raw data for trend tracking.
type result[T any] struct {
	data    T
	render  func(T) string
	metrics func(T) []scenario.Metric
}

func (r result[T]) Render() string { return r.render(r.data) }

func (r result[T]) Metrics() []scenario.Metric {
	if r.metrics == nil {
		return nil
	}
	return r.metrics(r.data)
}

func (r result[T]) MarshalJSON() ([]byte, error) { return json.Marshal(r.data) }

// wrap builds a registry Run function from an experiment harness and its
// renderer/metrics.
func wrap[T any](run func(Config) (T, error), render func(T) string, metrics func(T) []scenario.Metric) func(Config) (scenario.Result, error) {
	return func(cfg Config) (scenario.Result, error) {
		data, err := run(cfg)
		if err != nil {
			return nil, err
		}
		return result[T]{data: data, render: render, metrics: metrics}, nil
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// init registers every table and figure of the evaluation, in the paper's
// presentation order. cmd/tables, the top-level benchmarks and the
// determinism tests all enumerate this registry instead of keeping their
// own step lists.
func init() {
	scenario.Register(scenario.Experiment{
		Name: "table1",
		Desc: "Table 1: min accesses and time to first flip for the three attacks",
		Run: wrap(Table1, RenderTable1, func(rows []Table1Row) []scenario.Metric {
			return []scenario.Metric{
				{Name: "singleK", Value: float64(rows[0].MinAccesses) / 1000},
				{Name: "doubleK", Value: float64(rows[1].MinAccesses) / 1000},
				{Name: "freeK", Value: float64(rows[2].MinAccesses) / 1000},
				{Name: "double-ms", Value: ms(rows[1].TimeToFlip)},
				{Name: "free-ms", Value: ms(rows[2].TimeToFlip)},
			}
		}),
		Reps: func(Config) int { return len(scenario.AttackKinds()) },
	})
	scenario.Register(scenario.Experiment{
		Name: "table1-sweep",
		Desc: "Table 1 re-run over seed-sharded replicates (min/median per technique)",
		Run: wrap(Table1Sweep, RenderTable1Sweep, func(rows []Table1SweepRow) []scenario.Metric {
			return []scenario.Metric{
				{Name: "double-med-ms", Value: ms(rows[1].TimeToFlipMedian)},
				{Name: "double-med-K", Value: float64(rows[1].MinAccessesMed) / 1000},
				{Name: "flips", Value: float64(rows[0].Flips + rows[1].Flips + rows[2].Flips)},
			}
		}),
		Reps: table1SweepSeeds,
	})
	scenario.Register(scenario.Experiment{
		Name: "figure1",
		Desc: "Figure 1: CLFLUSH vs CLFLUSH-free access-pattern properties",
		Run: wrap(Figure1, RenderFigure1, func(r Figure1Result) []scenario.Metric {
			return []scenario.Metric{
				{Name: "loads/iter", Value: float64(r.FreeSeqLen)},
				{Name: "misses/iter", Value: float64(r.FreeMissesPerIter)},
			}
		}),
	})
	scenario.Register(scenario.Experiment{
		Name: "section21",
		Desc: "Section 2.1: double-refresh-rate mitigation bypass",
		Run: wrap(Section21, RenderSection21, func(r Section21Result) []scenario.Metric {
			return []scenario.Metric{{Name: "ms-to-flip", Value: ms(r.TimeToFlip)}}
		}),
	})
	scenario.Register(scenario.Experiment{
		Name: "section22",
		Desc: "Section 2.2: LLC replacement-policy inference ranking",
		Run: wrap(Section22, RenderSection22, func(scores []attack.PolicyScore) []scenario.Metric {
			return []scenario.Metric{
				{Name: "best-agreement", Value: scores[0].Match},
				{Name: "runnerup-agreement", Value: scores[1].Match},
			}
		}),
	})
	scenario.Register(scenario.Experiment{
		Name: "table3",
		Desc: "Table 3: detection latency, refresh rate and flips under attack",
		Run: wrap(Table3, RenderTable3, func(rows []Table3Row) []scenario.Metric {
			return []scenario.Metric{
				{Name: "clflush-heavy-ms", Value: ms(rows[0].AvgTimeToDetect)},
				{Name: "free-light-ms", Value: ms(rows[3].AvgTimeToDetect)},
				{Name: "clflush-heavy-refr/64ms", Value: rows[0].RefreshesPer64ms},
			}
		}),
		Reps: func(cfg Config) int {
			trials := 4
			if cfg.Quick {
				trials = 2
			}
			return 4 * trials // four (attack, load) points
		},
	})
	scenario.Register(scenario.Experiment{
		Name: "table4",
		Desc: "Table 4: false-positive refresh rates per SPEC profile",
		Run: wrap(Table4, RenderTable4, func(rows []Table4Row) []scenario.Metric {
			var worst, sum float64
			for _, r := range rows {
				sum += r.RefreshesPerSec
				if r.RefreshesPerSec > worst {
					worst = r.RefreshesPerSec
				}
			}
			return []scenario.Metric{
				{Name: "worst-refr/s", Value: worst},
				{Name: "mean-refr/s", Value: sum / float64(len(rows))},
			}
		}),
		Reps: func(Config) int { return len(workload.SPEC2006()) },
	})
	scenario.Register(scenario.Experiment{
		Name: "figure3",
		Desc: "Figure 3: normalized execution time under ANVIL and 2x refresh",
		Run: wrap(Figure3, RenderFigure3, func(rows []Figure3Row) []scenario.Metric {
			avg, peak := Figure3Summary(rows)
			return []scenario.Metric{
				{Name: "anvil-mean-%", Value: (avg - 1) * 100},
				{Name: "anvil-peak-%", Value: (peak - 1) * 100},
			}
		}),
		Reps: func(Config) int { return len(workload.SPEC2006()) },
	})
	scenario.Register(scenario.Experiment{
		Name: "figure4",
		Desc: "Figure 4: overhead sensitivity to the detector configuration",
		Run: wrap(Figure4, RenderFigure4, func(rows []Figure4Row) []scenario.Metric {
			var base, light, heavy float64
			for _, r := range rows {
				base += r.Baseline - 1
				light += r.Light - 1
				heavy += r.Heavy - 1
			}
			n := float64(len(rows))
			return []scenario.Metric{
				{Name: "baseline-mean-%", Value: 100 * base / n},
				{Name: "light-mean-%", Value: 100 * light / n},
				{Name: "heavy-mean-%", Value: 100 * heavy / n},
			}
		}),
		Reps: func(Config) int { return len(figure4Benchmarks()) },
	})
	scenario.Register(scenario.Experiment{
		Name: "table5",
		Desc: "Table 5: false-positive rates under ANVIL-light and ANVIL-heavy",
		Run: wrap(Table5, RenderTable5, func(rows []Table5Row) []scenario.Metric {
			var light, heavy float64
			for _, r := range rows {
				light += r.Light
				heavy += r.Heavy
			}
			n := float64(len(rows))
			return []scenario.Metric{
				{Name: "light-mean-refr/s", Value: light / n},
				{Name: "heavy-mean-refr/s", Value: heavy / n},
			}
		}),
		Reps: func(Config) int { return 2 * len(figure4Benchmarks()) }, // light + heavy sweeps
	})
	scenario.Register(scenario.Experiment{
		Name: "section45",
		Desc: "Section 4.5: robustness to future attacks on weaker DRAM",
		Run: wrap(Section45, RenderSection45, func(rows []Section45Row) []scenario.Metric {
			return []scenario.Metric{
				{Name: "fast-detections", Value: float64(rows[0].Detections)},
				{Name: "slow-detections", Value: float64(rows[1].Detections)},
			}
		}),
		Reps: func(Config) int { return 2 },
	})
	scenario.Register(scenario.Experiment{
		Name: "defenses",
		Desc: "Extension: every mitigation vs the double-sided CLFLUSH attack",
		Run: wrap(Defenses, RenderDefenses, func(rows []DefenseRow) []scenario.Metric {
			return []scenario.Metric{{Name: "unprotected-flips", Value: float64(rows[0].BitFlips)}}
		}),
		Reps: func(Config) int { return defenseEntryCount },
	})
	scenario.Register(scenario.Experiment{
		Name: "degraded-sampling",
		Desc: "Robustness: ANVIL-heavy flip prevention vs PMU sample-drop rate",
		Run: wrap(DegradedSampling, RenderDegradedSampling, func(rows []DegradedSamplingRow) []scenario.Metric {
			out := make([]scenario.Metric, len(rows))
			for i, r := range rows {
				out[i] = scenario.Metric{
					Name:  fmt.Sprintf("prevention@%.0f%%", r.DropRate*100),
					Value: r.Prevention,
				}
			}
			return out
		}),
		Reps: func(cfg Config) int { return degradedSamplingReps(cfg) * (1 + len(dropRates)) },
	})
	scenario.Register(scenario.Experiment{
		Name: "fault-matrix",
		Desc: "Robustness: the standard attack vs ANVIL-baseline on degraded-hardware profiles",
		Run: wrap(FaultMatrix, RenderFaultMatrix, func(rows []FaultMatrixRow) []scenario.Metric {
			var flips, errs float64
			for _, r := range rows {
				flips += float64(r.Flips)
				if r.Err != "" {
					errs++
				}
			}
			return []scenario.Metric{
				{Name: "total-flips", Value: flips},
				{Name: "failed-profiles", Value: errs},
			}
		}),
		Reps: func(Config) int { return len(faultProfiles()) },
		// One top-level sweep, one replicate per profile: safe to shard
		// across worker processes.
		Shardable: true,
	})
}
