package experiments

import (
	"strings"
	"testing"
	"time"
)

var quick = Config{Quick: true}

func TestTable1ShapeHolds(t *testing.T) {
	rows, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	single, double, free := rows[0], rows[1], rows[2]
	for _, r := range rows {
		if !r.Flipped {
			t.Fatalf("%s never flipped", r.Technique)
		}
	}
	// The paper's shape: double-sided needs ~half the accesses of
	// single-sided; CLFLUSH-free needs the same accesses as double-sided
	// but takes longer; everything flips within one refresh-ish horizon.
	if double.MinAccesses >= single.MinAccesses*3/4 {
		t.Errorf("double-sided %d vs single-sided %d accesses; want ~half",
			double.MinAccesses, single.MinAccesses)
	}
	if free.MinAccesses > double.MinAccesses*5/4 || free.MinAccesses < double.MinAccesses*3/4 {
		t.Errorf("CLFLUSH-free accesses %d vs double-sided %d; want similar",
			free.MinAccesses, double.MinAccesses)
	}
	if !(double.TimeToFlip < free.TimeToFlip && free.TimeToFlip < 80*time.Millisecond) {
		t.Errorf("flip times: double %v, free %v", double.TimeToFlip, free.TimeToFlip)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "CLFLUSH") || !strings.Contains(out, "ms") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigure1Properties(t *testing.T) {
	r, err := Figure1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AggressorAlwaysMisses {
		t.Error("aggressor does not miss every iteration")
	}
	if r.FreeMissesPerIter < 2 || r.FreeMissesPerIter > 3 {
		t.Errorf("steady-state misses = %d", r.FreeMissesPerIter)
	}
	if r.FreeSeqLen < 13 {
		t.Errorf("sequence too short: %d", r.FreeSeqLen)
	}
}

func TestSection21Bypass(t *testing.T) {
	r, err := Section21(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Flipped {
		t.Fatal("no flip under 32ms refresh")
	}
	if r.TimeToFlip >= 32*time.Millisecond {
		t.Errorf("flip at %v, must beat the 32ms window", r.TimeToFlip)
	}
}

func TestSection22RanksBitPLRUFirst(t *testing.T) {
	scores, err := Section22(quick)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Policy != "bit-plru" {
		t.Errorf("ranking: %v", scores)
	}
	out := RenderSection22(scores)
	if !strings.Contains(out, "bit-plru") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTable3ZeroFlips(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	rows, err := Table3(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TotalBitFlips != 0 {
			t.Errorf("%s/%s: %d flips", r.Benchmark, r.Load, r.TotalBitFlips)
		}
		if r.Detections == 0 {
			t.Errorf("%s/%s: never detected", r.Benchmark, r.Load)
		}
		if r.AvgTimeToDetect <= 0 || r.AvgTimeToDetect > 64*time.Millisecond {
			t.Errorf("%s/%s: detect latency %v", r.Benchmark, r.Load, r.AvgTimeToDetect)
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "Heavy") || !strings.Contains(out, "Light") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigure3OverheadOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	rows, err := Figure3(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Figure3Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		if r.ANVIL < 0.999 || r.ANVIL > 1.10 {
			t.Errorf("%s ANVIL overhead out of band: %.4f", r.Benchmark, r.ANVIL)
		}
	}
	// Memory-intensive pays more than compute-bound under both protections.
	if byName["libquantum"].ANVIL <= byName["sjeng"].ANVIL {
		t.Error("libquantum should pay more ANVIL overhead than sjeng")
	}
	if byName["libquantum"].DoubleRefresh <= byName["sjeng"].DoubleRefresh {
		t.Error("libquantum should pay more refresh overhead than sjeng")
	}
	avg, peak := Figure3Summary(rows)
	if avg <= 1.0 || avg > 1.05 {
		t.Errorf("mean ANVIL overhead %.4f out of the paper's band (~1%%)", avg)
	}
	if peak > 1.06 {
		t.Errorf("peak ANVIL overhead %.4f too large", peak)
	}
	if out := RenderFigure3(rows); !strings.Contains(out, "mean") {
		t.Errorf("render:\n%s", out)
	}
}

func TestSection45NoFlips(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	rows, err := Section45(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BitFlips != 0 {
			t.Errorf("%s: %d flips", r.Scenario, r.BitFlips)
		}
		if r.Detections == 0 {
			t.Errorf("%s: never detected", r.Scenario)
		}
	}
	if out := RenderSection45(rows); !strings.Contains(out, "ANVIL-heavy") {
		t.Errorf("render:\n%s", out)
	}
}

func TestDefenseComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	rows, err := Defenses(quick)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].BitFlips == 0 {
		t.Error("unprotected run must flip")
	}
	for _, r := range rows[2:] { // every defense beyond 2x refresh
		if r.BitFlips != 0 {
			t.Errorf("%s allowed %d flips", r.Defense, r.BitFlips)
		}
	}
	if out := RenderDefenses(rows); !strings.Contains(out, "PARA") {
		t.Errorf("render:\n%s", out)
	}
}

func TestConfigScaling(t *testing.T) {
	full := Config{}
	if full.ScaleDur(4*time.Second) != 4*time.Second {
		t.Error("full duration scaled")
	}
	if quick.ScaleDur(4*time.Second) != time.Second {
		t.Error("quick duration not scaled")
	}
	if quick.ScaleOps(400) != 100 {
		t.Error("quick ops not scaled")
	}
}

func TestTable1SweepAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	rows, err := Table1Sweep(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Flips != r.Seeds {
			t.Errorf("%s: %d/%d replicates flipped", r.Technique, r.Flips, r.Seeds)
		}
		if r.MinAccessesMin > r.MinAccessesMed {
			t.Errorf("%s: min %d > median %d", r.Technique, r.MinAccessesMin, r.MinAccessesMed)
		}
		if r.TimeToFlipMin > r.TimeToFlipMedian {
			t.Errorf("%s: min %v > median %v", r.Technique, r.TimeToFlipMin, r.TimeToFlipMedian)
		}
	}
	if out := RenderTable1Sweep(rows); !strings.Contains(out, "multi-seed") {
		t.Errorf("render:\n%s", out)
	}
}
