package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func TestRegistryCoversEveryExperiment(t *testing.T) {
	want := []string{"table1", "table1-sweep", "figure1", "section21",
		"section22", "table3", "table4", "figure3", "figure4", "table5",
		"section45", "defenses", "degraded-sampling", "fault-matrix"}
	got := scenario.Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("registry order:\n got %v\nwant %v", got, want)
	}
	for _, e := range scenario.Experiments() {
		if e.Desc == "" {
			t.Errorf("%s: empty description", e.Name)
		}
		if found, ok := scenario.Find(e.Name); !ok || found.Name != e.Name {
			t.Errorf("Find(%q) = %v, %v", e.Name, found.Name, ok)
		}
	}
	if _, ok := scenario.Find("table9"); ok {
		t.Error("Find invented an experiment")
	}
}

// TestRegistryRunsEveryExperimentByName exercises the acceptance criterion
// that every registered experiment is runnable by name from go test. Short
// mode keeps to the sub-second experiments; the full run covers all of them.
func TestRegistryRunsEveryExperimentByName(t *testing.T) {
	cheap := map[string]bool{"table1": true, "figure1": true, "section21": true, "section22": true}
	for _, e := range scenario.Experiments() {
		if testing.Short() && !cheap[e.Name] {
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			res, err := e.Run(Config{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if out := res.Render(); out == "" {
				t.Error("empty rendering")
			}
			raw, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if len(raw) == 0 || string(raw) == "null" {
				t.Errorf("empty JSON artifact: %s", raw)
			}
			if m, ok := res.(scenario.Metricer); ok {
				for _, met := range m.Metrics() {
					if met.Name == "" {
						t.Error("metric with empty name")
					}
				}
			}
		})
	}
}
