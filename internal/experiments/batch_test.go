package experiments_test

// Batch-boundary determinism: the epoch-bounded batched core must produce
// output byte-identical to per-op stepping at every batch-cap choice. The
// referee experiments are table1 (against its pinned golden, so batching
// can never silently move the baseline) and fault-matrix (whose profiles
// inject late timers, PMI cost, PEBS drops and refresh faults — the event
// sources the epoch planner must not reorder). A worker-sweep variant runs
// under -race in CI, doubling as the data-race check on the batched paths.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	_ "repro/internal/experiments" // registers every table and figure
	"repro/internal/scenario"
)

// stepBatches is the table of batch horizons: the per-op escape hatch, two
// awkward caps that force frequent mid-run batch boundaries, and an
// effectively unbounded cap where only architectural horizons cut epochs.
var stepBatches = []struct {
	name string
	cap  int
}{
	{"per-op", 1},
	{"batch-7", 7},
	{"batch-64", 64},
	{"unbounded", 1 << 20},
}

// runJSON executes a registered experiment and returns its indented JSON in
// the golden-file framing.
func runJSON(t *testing.T, name string, cfg scenario.Config) []byte {
	t.Helper()
	e, ok := scenario.Find(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	res, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatalf("%s: marshal: %v", name, err)
	}
	return append(raw, '\n')
}

// TestBatchBoundaryTable1Golden pins table1 to its golden at every batch
// horizon: any batched-vs-per-op divergence shows up as a golden mismatch
// attributable to a specific cap.
func TestBatchBoundaryTable1Golden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "table1_quick_seed7.golden.json"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	for _, sb := range stepBatches {
		t.Run(sb.name, func(t *testing.T) {
			got := runJSON(t, "table1", scenario.Config{Quick: true, Seed: 7, StepBatch: sb.cap})
			if !bytes.Equal(got, want) {
				t.Errorf("table1 at StepBatch=%d diverged from the pinned golden.\ngot:\n%s\nwant:\n%s",
					sb.cap, got, want)
			}
		})
	}
}

// TestBatchBoundaryFaultMatrix runs the fault matrix — late timers, PMI
// cost, PEBS drops, flaky refresh, ECC scrubbing — at every batch horizon
// and requires byte-identical JSON to the per-op reference.
func TestBatchBoundaryFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix is not a short-mode experiment")
	}
	ref := runJSON(t, "fault-matrix", scenario.Config{Quick: true, Seed: 7, StepBatch: 1})
	for _, sb := range stepBatches[1:] {
		t.Run(sb.name, func(t *testing.T) {
			got := runJSON(t, "fault-matrix", scenario.Config{Quick: true, Seed: 7, StepBatch: sb.cap})
			if !bytes.Equal(got, ref) {
				t.Errorf("fault-matrix at StepBatch=%d diverged from per-op stepping.\ngot:\n%s\nwant:\n%s",
					sb.cap, got, ref)
			}
		})
	}
}

// TestBatchWorkersInvariant crosses the batched core with the parallel
// runner: a multi-replicate sweep must not notice worker count at any batch
// horizon. Runs under -race in CI.
func TestBatchWorkersInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment is not short-mode")
	}
	for _, sb := range []struct {
		name string
		cap  int
	}{{"batch-7", 7}, {"unbounded", 1 << 20}} {
		t.Run(sb.name, func(t *testing.T) {
			serial := runJSON(t, "table1-sweep", scenario.Config{Quick: true, Seed: 7, Parallel: 1, StepBatch: sb.cap})
			parallel := runJSON(t, "table1-sweep", scenario.Config{Quick: true, Seed: 7, Parallel: 8, StepBatch: sb.cap})
			if !bytes.Equal(serial, parallel) {
				t.Errorf("table1-sweep at StepBatch=%d depends on workers:\n1 worker: %s\n8 workers: %s",
					sb.cap, serial, parallel)
			}
		})
	}
}

// TestStepBatchEscapeHatchEveryExperiment is the acceptance sweep: every
// registered experiment must produce byte-identical JSON with the batch-size-1
// escape hatch and with the default batched core. Short mode keeps to the
// sub-second experiments, mirroring the registry runnability test.
func TestStepBatchEscapeHatchEveryExperiment(t *testing.T) {
	cheap := map[string]bool{"table1": true, "figure1": true, "section21": true, "section22": true}
	for _, e := range scenario.Experiments() {
		if testing.Short() && !cheap[e.Name] {
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			perOp := runJSON(t, e.Name, scenario.Config{Quick: true, Seed: 7, StepBatch: 1})
			batched := runJSON(t, e.Name, scenario.Config{Quick: true, Seed: 7})
			if !bytes.Equal(perOp, batched) {
				t.Errorf("%s: per-op (StepBatch=1) and batched output differ.\nper-op:\n%s\nbatched:\n%s",
					e.Name, perOp, batched)
			}
		})
	}
}
