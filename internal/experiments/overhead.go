package experiments

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Table4Row is one row of Table 4: false-positive refresh rates.
type Table4Row struct {
	Benchmark       string  `json:"benchmark"`
	RefreshesPerSec float64 `json:"refreshes_per_sec"`
	CrossingFrac    float64 `json:"crossing_frac"` // fraction of stage-1 windows crossed (§4.3)
}

// Table4 runs each SPEC profile alone under ANVIL-baseline and reports the
// rate of superfluous selective refreshes (every detection is a false
// positive: no attack is running).
func Table4(cfg Config) ([]Table4Row, error) {
	return falsePositives(cfg, scenario.ANVILBaseline, workload.SPEC2006())
}

// falsePositives measures benign-workload refresh rates under the given
// ANVIL configuration, one independent replicate per profile.
func falsePositives(cfg Config, def scenario.DefenseKind, profs []workload.Profile) ([]Table4Row, error) {
	dur := cfg.ScaleDur(4 * time.Second)
	return scenario.RunReplicates(cfg, len(profs), func(rep int) (Table4Row, error) {
		prof := profs[rep]
		in, err := scenario.Build(scenario.Spec{
			Cores:     1,
			Seed:      cfg.Seed,
			Workloads: []scenario.Workload{{Name: prof.Name}},
			Defense:   def,
			StepBatch: cfg.StepBatch,
		})
		if err != nil {
			return Table4Row{}, err
		}
		if err := in.RunFor(dur); err != nil {
			return Table4Row{}, err
		}
		st := in.Detector.Stats()
		return Table4Row{
			Benchmark:       prof.Name,
			RefreshesPerSec: float64(st.Refreshes) / dur.Seconds(),
			CrossingFrac:    st.CrossingFraction(),
		}, nil
	})
}

// RenderTable4 formats Table 4.
func RenderTable4(rows []Table4Row) string {
	t := report.New("Table 4: Rate of False Positive Refreshes (ANVIL-baseline)",
		"Benchmark", "Refreshes/sec", "Stage-1 crossing")
	for _, r := range rows {
		t.AddStrings(r.Benchmark,
			fmt.Sprintf("%.2f", r.RefreshesPerSec),
			fmt.Sprintf("%.0f%%", 100*r.CrossingFrac))
	}
	return t.String()
}

// Figure3Row is one bar pair of Figure 3: normalized execution time under
// ANVIL and under doubled refresh rate, relative to the unprotected system.
type Figure3Row struct {
	Benchmark     string  `json:"benchmark"`
	ANVIL         float64 `json:"anvil"`
	DoubleRefresh float64 `json:"double_refresh"`
}

// measureRuntime runs the profile for a fixed amount of work and returns
// the completion time in cycles.
func measureRuntime(cfg Config, prof workload.Profile, ops uint64, def scenario.DefenseKind, refreshScale int) (time.Duration, error) {
	in, err := scenario.Build(scenario.Spec{
		Cores:        1,
		Seed:         cfg.Seed,
		RefreshScale: refreshScale,
		Workloads:    []scenario.Workload{{Name: prof.Name, OpLimit: ops}},
		Defense:      def,
		StepBatch:    cfg.StepBatch,
	})
	if err != nil {
		return 0, err
	}
	if err := in.RunToCompletion(); err != nil {
		return 0, err
	}
	return in.Machine.Freq.Duration(in.Machine.Cores[0].Now), nil
}

// Figure3 measures, for every SPEC profile, the fixed-work slowdown of
// (a) running under ANVIL-baseline and (b) doubling the DRAM refresh rate.
// Each profile's three runs form one independent replicate.
func Figure3(cfg Config) ([]Figure3Row, error) {
	profs := workload.SPEC2006()
	return scenario.RunReplicates(cfg, len(profs), func(rep int) (Figure3Row, error) {
		prof := profs[rep]
		ops := cfg.ScaleOps(fixedWorkOps(prof))
		t0, err := measureRuntime(cfg, prof, ops, scenario.NoDefense, 1)
		if err != nil {
			return Figure3Row{}, err
		}
		t1, err := measureRuntime(cfg, prof, ops, scenario.ANVILBaseline, 1)
		if err != nil {
			return Figure3Row{}, err
		}
		t2, err := measureRuntime(cfg, prof, ops, scenario.NoDefense, 2)
		if err != nil {
			return Figure3Row{}, err
		}
		return Figure3Row{
			Benchmark:     prof.Name,
			ANVIL:         float64(t1) / float64(t0),
			DoubleRefresh: float64(t2) / float64(t0),
		}, nil
	})
}

// Figure3Summary returns the average and peak ANVIL overheads (the paper's
// headline numbers: average 1.17%, peak 3.18%).
func Figure3Summary(rows []Figure3Row) (avg, peak float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.ANVIL
		if r.ANVIL > peak {
			peak = r.ANVIL
		}
	}
	return sum / float64(len(rows)), peak
}

// RenderFigure3 formats the figure's series as a table.
func RenderFigure3(rows []Figure3Row) string {
	t := report.New("Figure 3: Normalized Execution Time (1.00 = unprotected, 64ms refresh)",
		"Benchmark", "ANVIL", "Double Refresh")
	for _, r := range rows {
		t.AddStrings(r.Benchmark, fmt.Sprintf("%.4f", r.ANVIL), fmt.Sprintf("%.4f", r.DoubleRefresh))
	}
	avg, peak := Figure3Summary(rows)
	t.AddStrings("mean", fmt.Sprintf("%.4f", avg), "")
	t.AddStrings("peak", fmt.Sprintf("%.4f", peak), "")
	bars := report.NewBars("\nANVIL overhead (bar = normalized execution time, 1.00-1.05)", 1.0, 1.05, 40)
	for _, r := range rows {
		bars.Add(r.Benchmark, r.ANVIL)
	}
	return t.String() + bars.String()
}

// figure4Benchmarks are the five profiles of Figure 4 / Table 5.
func figure4Benchmarks() []workload.Profile {
	var out []workload.Profile
	for _, name := range []string{"bzip2", "gcc", "gobmk", "libquantum", "perlbench"} {
		p, ok := workload.ByName(name)
		if !ok {
			panic("experiments: missing profile " + name)
		}
		out = append(out, p)
	}
	return out
}

// Figure4Row is one benchmark's normalized execution time under the three
// ANVIL configurations.
type Figure4Row struct {
	Benchmark string  `json:"benchmark"`
	Baseline  float64 `json:"baseline"`
	Light     float64 `json:"light"`
	Heavy     float64 `json:"heavy"`
}

// Figure4 measures the sensitivity of execution overhead to the detector
// configuration (§4.5), one independent replicate per benchmark.
func Figure4(cfg Config) ([]Figure4Row, error) {
	profs := figure4Benchmarks()
	return scenario.RunReplicates(cfg, len(profs), func(rep int) (Figure4Row, error) {
		prof := profs[rep]
		ops := cfg.ScaleOps(fixedWorkOps(prof))
		t0, err := measureRuntime(cfg, prof, ops, scenario.NoDefense, 1)
		if err != nil {
			return Figure4Row{}, err
		}
		norm := func(def scenario.DefenseKind) (float64, error) {
			t, err := measureRuntime(cfg, prof, ops, def, 1)
			if err != nil {
				return 0, err
			}
			return float64(t) / float64(t0), nil
		}
		row := Figure4Row{Benchmark: prof.Name}
		if row.Baseline, err = norm(scenario.ANVILBaseline); err != nil {
			return Figure4Row{}, err
		}
		if row.Light, err = norm(scenario.ANVILLight); err != nil {
			return Figure4Row{}, err
		}
		if row.Heavy, err = norm(scenario.ANVILHeavy); err != nil {
			return Figure4Row{}, err
		}
		return row, nil
	})
}

// RenderFigure4 formats the figure's series.
func RenderFigure4(rows []Figure4Row) string {
	t := report.New("Figure 4: Execution Overhead Sensitivity to Detector Configuration",
		"Benchmark", "ANVIL-baseline", "ANVIL-light", "ANVIL-heavy")
	for _, r := range rows {
		t.AddStrings(r.Benchmark,
			fmt.Sprintf("%.4f", r.Baseline),
			fmt.Sprintf("%.4f", r.Light),
			fmt.Sprintf("%.4f", r.Heavy))
	}
	bars := report.NewBars("\nANVIL-heavy overhead (1.00-1.05)", 1.0, 1.05, 40)
	for _, r := range rows {
		bars.Add(r.Benchmark, r.Heavy)
	}
	return t.String() + bars.String()
}

// Table5Row is one benchmark's false-positive rates under ANVIL-light and
// ANVIL-heavy.
type Table5Row struct {
	Benchmark string  `json:"benchmark"`
	Light     float64 `json:"light"`
	Heavy     float64 `json:"heavy"`
}

// Table5 measures false-positive refresh rates for the light and heavy
// configurations over the Figure 4 benchmarks.
func Table5(cfg Config) ([]Table5Row, error) {
	light, err := falsePositives(cfg, scenario.ANVILLight, figure4Benchmarks())
	if err != nil {
		return nil, err
	}
	heavy, err := falsePositives(cfg, scenario.ANVILHeavy, figure4Benchmarks())
	if err != nil {
		return nil, err
	}
	var rows []Table5Row
	for i := range light {
		rows = append(rows, Table5Row{
			Benchmark: light[i].Benchmark,
			Light:     light[i].RefreshesPerSec,
			Heavy:     heavy[i].RefreshesPerSec,
		})
	}
	return rows, nil
}

// RenderTable5 formats Table 5.
func RenderTable5(rows []Table5Row) string {
	t := report.New("Table 5: False Positive Refresh Rates, ANVIL-light vs ANVIL-heavy",
		"Benchmark", "Refreshes/sec (light)", "Refreshes/sec (heavy)")
	for _, r := range rows {
		t.AddStrings(r.Benchmark, fmt.Sprintf("%.2f", r.Light), fmt.Sprintf("%.2f", r.Heavy))
	}
	return t.String()
}
