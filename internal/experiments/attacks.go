package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/report"
	"repro/internal/scenario"
)

// Table1Row is one row of Table 1: rowhammer attack characteristics.
type Table1Row struct {
	Technique   string        `json:"technique"`
	MinAccesses uint64        `json:"min_accesses"` // DRAM row accesses to the first bit flip
	TimeToFlip  time.Duration `json:"time_to_flip"` // time until the first bit flip
	Flipped     bool          `json:"flipped"`
}

// table1Run measures one attack on the unprotected 64 ms machine.
func table1Run(kind scenario.AttackKind, cfg Config) (Table1Row, error) {
	in, err := scenario.Build(scenario.Spec{
		Cores:     1,
		Seed:      cfg.Seed,
		Attack:    &scenario.Attack{Kind: kind},
		StepBatch: cfg.StepBatch,
	})
	if err != nil {
		return Table1Row{}, fmt.Errorf("table1 %s: %w", kind.Label(), err)
	}
	ft, ok, err := in.RunUntilFlip(192 * time.Millisecond)
	if err != nil {
		return Table1Row{}, err
	}
	return Table1Row{
		Technique:   kind.Label(),
		MinAccesses: in.Hammer.AggressorAccesses(),
		TimeToFlip:  ft,
		Flipped:     ok,
	}, nil
}

// Table1 measures the three attacks on the unprotected 64 ms machine:
// single-sided CLFLUSH (paper: 400K / 58 ms), double-sided CLFLUSH
// (220K / 15 ms), double-sided CLFLUSH-free (220K / 45 ms). The three
// attacks run as independent replicates across the configured worker pool.
func Table1(cfg Config) ([]Table1Row, error) {
	kinds := scenario.AttackKinds()
	return scenario.RunReplicates(cfg, len(kinds), func(rep int) (Table1Row, error) {
		return table1Run(kinds[rep], cfg)
	})
}

// RenderTable1 formats Table 1.
func RenderTable1(rows []Table1Row) string {
	t := report.New("Table 1: Rowhammer Attack Characteristics",
		"Hammer Technique", "Min DRAM Row Accesses", "Time to First Bit Flip")
	for _, r := range rows {
		flip := "no flip"
		if r.Flipped {
			flip = fmt.Sprintf("%.1f ms", float64(r.TimeToFlip)/float64(time.Millisecond))
		}
		t.AddStrings(r.Technique, fmt.Sprintf("%dK", r.MinAccesses/1000), flip)
	}
	return t.String()
}

// Table1SweepRow aggregates one technique's Table 1 quantities over a
// multi-seed sweep.
type Table1SweepRow struct {
	Technique        string        `json:"technique"`
	Seeds            int           `json:"seeds"`
	Flips            int           `json:"flips"` // replicates that flipped
	MinAccessesMin   uint64        `json:"min_accesses_min"`
	MinAccessesMed   uint64        `json:"min_accesses_median"`
	TimeToFlipMin    time.Duration `json:"time_to_flip_min"`
	TimeToFlipMedian time.Duration `json:"time_to_flip_median"`
	// Truncated marks a row aggregated from a budget-truncated sweep; Seeds
	// then counts the seeds that actually completed, not the configured
	// sweep size.
	Truncated bool `json:"truncated,omitempty"`
}

// table1SweepSeeds is the replicate count of the multi-seed sweep: the full
// sweep matches the paper-style 16-seed min/median protocol.
func table1SweepSeeds(cfg Config) int {
	if cfg.Quick {
		return 8
	}
	return 16
}

// Table1Sweep reruns Table 1 under distinct machine seeds — each replicate
// owns its machine and a split RNG root — and reports min/median per
// technique. The replicates fan out across the configured worker pool;
// parallelism changes wall-clock time only, never a reported number.
func Table1Sweep(cfg Config) ([]Table1SweepRow, error) {
	seeds := table1SweepSeeds(cfg)
	reps, status, err := scenario.RunReplicatesSweep(cfg, seeds, func(rep int) ([]Table1Row, error) {
		return Table1(Config{
			Quick:     cfg.Quick,
			Seed:      scenario.ReplicateSeed(cfg.Seed, rep),
			Parallel:  1, // the sweep level owns the parallelism
			StepBatch: cfg.StepBatch,
		})
	})
	if err != nil {
		return nil, err
	}
	dropped := make(map[int]bool, len(status.Dropped))
	for _, rep := range status.Dropped {
		dropped[rep] = true
	}
	completed := seeds - len(status.Dropped)
	if status.Truncated && completed == 0 {
		return nil, fmt.Errorf("experiments: table1 sweep truncated (%s) before any seed completed; nothing to aggregate", status.Reason)
	}
	var out []Table1SweepRow
	for i, kind := range scenario.AttackKinds() {
		row := Table1SweepRow{Technique: kind.Label(), Seeds: completed, Truncated: status.Truncated}
		var accesses []uint64
		var times []time.Duration
		for repIdx, rows := range reps {
			if dropped[repIdx] {
				continue
			}
			r := rows[i]
			if !r.Flipped {
				continue
			}
			row.Flips++
			accesses = append(accesses, r.MinAccesses)
			times = append(times, r.TimeToFlip)
		}
		if row.Flips > 0 {
			sort.Slice(accesses, func(a, b int) bool { return accesses[a] < accesses[b] })
			sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
			row.MinAccessesMin = accesses[0]
			row.MinAccessesMed = accesses[len(accesses)/2]
			row.TimeToFlipMin = times[0]
			row.TimeToFlipMedian = times[len(times)/2]
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderTable1Sweep formats the sweep aggregate.
func RenderTable1Sweep(rows []Table1SweepRow) string {
	t := report.New("Table 1 (multi-seed): min/median over seed-sharded replicates",
		"Hammer Technique", "Flips", "Accesses (min/med)", "Time to Flip (min/med)")
	for _, r := range rows {
		t.AddStrings(r.Technique,
			fmt.Sprintf("%d/%d", r.Flips, r.Seeds),
			fmt.Sprintf("%dK/%dK", r.MinAccessesMin/1000, r.MinAccessesMed/1000),
			fmt.Sprintf("%.1f/%.1f ms",
				float64(r.TimeToFlipMin)/float64(time.Millisecond),
				float64(r.TimeToFlipMedian)/float64(time.Millisecond)))
	}
	return t.String()
}

// Figure1Result characterises the two access sequences of Figure 1.
type Figure1Result struct {
	// FlushSeqLen and FlushMisses: sequence (a) — every aggressor access
	// misses by construction (CLFLUSH).
	FlushSeqLen        int `json:"flush_seq_len"`
	FlushMissesPerIter int `json:"flush_misses_per_iter"`
	// FreeSeqLen and FreeMisses: sequence (b) — the eviction pattern's
	// steady state.
	FreeSeqLen        int `json:"free_seq_len"`
	FreeMissesPerIter int `json:"free_misses_per_iter"`
	// AggressorAlwaysMisses verifies the property the attack depends on.
	AggressorAlwaysMisses bool `json:"aggressor_always_misses"`
}

// Figure1 reproduces the figure's content as measurable properties: the
// CLFLUSH-free pattern reaches DRAM on the aggressor every iteration with
// only a constant number of extra misses.
func Figure1(cfg Config) (Figure1Result, error) {
	in, err := scenario.Build(scenario.Spec{
		Cores:     1,
		Seed:      cfg.Seed,
		Attack:    &scenario.Attack{Kind: scenario.ClflushFree},
		StepBatch: cfg.StepBatch,
	})
	if err != nil {
		return Figure1Result{}, err
	}
	a, ok := in.Hammer.(*attack.ClflushFree)
	if !ok {
		return Figure1Result{}, fmt.Errorf("figure1: unexpected hammer type %T", in.Hammer)
	}
	x, _ := a.Patterns()
	return Figure1Result{
		FlushSeqLen:           4, // load A0, CLFLUSH A0, load A1, CLFLUSH A1
		FlushMissesPerIter:    2,
		FreeSeqLen:            len(x.Seq),
		FreeMissesPerIter:     x.MissesPerIteration,
		AggressorAlwaysMisses: x.AggressorSlot >= 0,
	}, nil
}

// RenderFigure1 formats the access-pattern properties.
func RenderFigure1(r Figure1Result) string {
	return fmt.Sprintf("Figure 1: access patterns\n"+
		"  (a) CLFLUSH-based: %d ops/iteration, %d DRAM row accesses\n"+
		"  (b) CLFLUSH-free:  %d loads/iteration, %d LLC misses (aggressor always misses: %v)\n",
		r.FlushSeqLen, r.FlushMissesPerIter, r.FreeSeqLen, r.FreeMissesPerIter, r.AggressorAlwaysMisses)
}

// Section21Result reports the double-refresh bypass experiment.
type Section21Result struct {
	RefreshWindow time.Duration `json:"refresh_window"`
	TimeToFlip    time.Duration `json:"time_to_flip"`
	Flipped       bool          `json:"flipped"`
}

// Section21 demonstrates §2.1: the deployed "double refresh rate"
// mitigation (32 ms window) is beaten by double-sided CLFLUSH hammering.
func Section21(cfg Config) (Section21Result, error) {
	in, err := scenario.Build(scenario.Spec{
		Cores:        1,
		Seed:         cfg.Seed,
		RefreshScale: 2,
		Attack:       &scenario.Attack{Kind: scenario.DoubleSidedFlush},
		StepBatch:    cfg.StepBatch,
	})
	if err != nil {
		return Section21Result{}, err
	}
	ft, ok, err := in.RunUntilFlip(96 * time.Millisecond)
	if err != nil {
		return Section21Result{}, err
	}
	return Section21Result{RefreshWindow: 32 * time.Millisecond, TimeToFlip: ft, Flipped: ok}, nil
}

// RenderSection21 formats the bypass result.
func RenderSection21(r Section21Result) string {
	return fmt.Sprintf("Section 2.1: double refresh rate bypass\n"+
		"  refresh window %v, flipped: %v, time to first flip %.1f ms\n",
		r.RefreshWindow, r.Flipped, float64(r.TimeToFlip)/float64(time.Millisecond))
}

// Section22 reruns the replacement-policy inference of §2.2 and returns the
// ranked scores (Bit-PLRU must come first on the Sandy Bridge model).
func Section22(cfg Config) ([]attack.PolicyScore, error) {
	in, err := scenario.Build(scenario.Spec{Cores: 1, Seed: cfg.Seed, StepBatch: cfg.StepBatch})
	if err != nil {
		return nil, err
	}
	rounds := 60
	if cfg.Quick {
		rounds = 30
	}
	return attack.RunInference(in.Machine, in.AttackOptions(), rounds, cache.AllPolicies())
}

// RenderSection22 formats the inference ranking.
func RenderSection22(scores []attack.PolicyScore) string {
	t := report.New("Section 2.2: LLC replacement policy inference (hardware policy: bit-plru)",
		"Candidate Policy", "Trace Agreement")
	for _, s := range scores {
		t.AddStrings(string(s.Policy), fmt.Sprintf("%.3f", s.Match))
	}
	return t.String()
}
