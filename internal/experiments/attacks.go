package experiments

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/report"
)

// Table1Row is one row of Table 1: rowhammer attack characteristics.
type Table1Row struct {
	Technique   string
	MinAccesses uint64        // DRAM row accesses to the first bit flip
	TimeToFlip  time.Duration // time until the first bit flip
	Flipped     bool
}

// Table1 measures the three attacks on the unprotected 64 ms machine:
// single-sided CLFLUSH (paper: 400K / 58 ms), double-sided CLFLUSH
// (220K / 15 ms), double-sided CLFLUSH-free (220K / 45 ms).
func Table1(cfg Config) ([]Table1Row, error) {
	kinds := []hammerKind{singleSidedFlush, doubleSidedFlush, clflushFree}
	var rows []Table1Row
	for _, k := range kinds {
		m, err := newMachine(1, nil)
		if err != nil {
			return nil, err
		}
		h, err := spawnHammer(m, k, attackOptions(m))
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", k, err)
		}
		ft, ok, err := runUntilFlip(m, 192*time.Millisecond)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Technique:   k.String(),
			MinAccesses: h.AggressorAccesses(),
			TimeToFlip:  ft,
			Flipped:     ok,
		})
	}
	return rows, nil
}

// RenderTable1 formats Table 1.
func RenderTable1(rows []Table1Row) string {
	t := report.New("Table 1: Rowhammer Attack Characteristics",
		"Hammer Technique", "Min DRAM Row Accesses", "Time to First Bit Flip")
	for _, r := range rows {
		flip := "no flip"
		if r.Flipped {
			flip = fmt.Sprintf("%.1f ms", float64(r.TimeToFlip)/float64(time.Millisecond))
		}
		t.AddStrings(r.Technique, fmt.Sprintf("%dK", r.MinAccesses/1000), flip)
	}
	return t.String()
}

// Figure1Result characterises the two access sequences of Figure 1.
type Figure1Result struct {
	// FlushSeqLen and FlushMisses: sequence (a) — every aggressor access
	// misses by construction (CLFLUSH).
	FlushSeqLen, FlushMissesPerIter int
	// FreeSeqLen and FreeMisses: sequence (b) — the eviction pattern's
	// steady state.
	FreeSeqLen, FreeMissesPerIter int
	// AggressorAlwaysMisses verifies the property the attack depends on.
	AggressorAlwaysMisses bool
}

// Figure1 reproduces the figure's content as measurable properties: the
// CLFLUSH-free pattern reaches DRAM on the aggressor every iteration with
// only a constant number of extra misses.
func Figure1(cfg Config) (Figure1Result, error) {
	m, err := newMachine(1, nil)
	if err != nil {
		return Figure1Result{}, err
	}
	a, err := attack.NewClflushFree(attackOptions(m))
	if err != nil {
		return Figure1Result{}, err
	}
	if _, err := m.Spawn(0, a); err != nil {
		return Figure1Result{}, err
	}
	x, _ := a.Patterns()
	res := Figure1Result{
		FlushSeqLen:           4, // load A0, CLFLUSH A0, load A1, CLFLUSH A1
		FlushMissesPerIter:    2,
		FreeSeqLen:            len(x.Seq),
		FreeMissesPerIter:     x.MissesPerIteration,
		AggressorAlwaysMisses: x.AggressorSlot >= 0,
	}
	return res, nil
}

// Section21Result reports the double-refresh bypass experiment.
type Section21Result struct {
	RefreshWindow time.Duration
	TimeToFlip    time.Duration
	Flipped       bool
}

// Section21 demonstrates §2.1: the deployed "double refresh rate"
// mitigation (32 ms window) is beaten by double-sided CLFLUSH hammering.
func Section21(cfg Config) (Section21Result, error) {
	m, err := newMachine(1, func(c *machine.Config) {
		c.Memory.DRAM.Timing = c.Memory.DRAM.Timing.WithRefreshScale(2)
	})
	if err != nil {
		return Section21Result{}, err
	}
	if _, err := spawnHammer(m, doubleSidedFlush, attackOptions(m)); err != nil {
		return Section21Result{}, err
	}
	ft, ok, err := runUntilFlip(m, 96*time.Millisecond)
	if err != nil {
		return Section21Result{}, err
	}
	return Section21Result{RefreshWindow: 32 * time.Millisecond, TimeToFlip: ft, Flipped: ok}, nil
}

// Section22 reruns the replacement-policy inference of §2.2 and returns the
// ranked scores (Bit-PLRU must come first on the Sandy Bridge model).
func Section22(cfg Config) ([]attack.PolicyScore, error) {
	m, err := newMachine(1, nil)
	if err != nil {
		return nil, err
	}
	rounds := 60
	if cfg.Quick {
		rounds = 30
	}
	return attack.RunInference(m, attackOptions(m), rounds, cache.AllPolicies())
}

// RenderSection22 formats the inference ranking.
func RenderSection22(scores []attack.PolicyScore) string {
	t := report.New("Section 2.2: LLC replacement policy inference (hardware policy: bit-plru)",
		"Candidate Policy", "Trace Agreement")
	for _, s := range scores {
		t.AddStrings(string(s.Policy), fmt.Sprintf("%.3f", s.Match))
	}
	return t.String()
}
