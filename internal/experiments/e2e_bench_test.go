package experiments_test

// End-to-end throughput benchmark: how many Table-1 replicates per second
// the whole stack sustains (scenario build, machine run, attack, DRAM
// disturbance, JSON-ready results). Component ns/op benchmarks miss
// cross-package effects — dispatch overhead between machine, memsys and pmu
// is exactly what the batched core attacks — so `make bench` tracks this
// sweep-level number alongside them (the "replicates/s" metric in
// BENCH_PR7.json, guarded in CI against >20% regressions).

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// e2eWorkers pins the sweep's worker count so the metric is comparable
// across runs on the same machine regardless of GOMAXPROCS.
const e2eWorkers = 4

func BenchmarkEndToEnd(b *testing.B) {
	b.Run("table1sweep-quick", func(b *testing.B) {
		cfg := scenario.Config{Quick: true, Seed: 7, Parallel: e2eWorkers}
		reps := 0
		for i := 0; i < b.N; i++ {
			rows, err := experiments.Table1Sweep(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) == 0 {
				b.Fatal("empty sweep result")
			}
			// Quick sweep: table1SweepSeeds(quick) seeds x 3 attacks.
			reps += rows[0].Seeds * len(scenario.AttackKinds())
		}
		b.ReportMetric(float64(reps)/b.Elapsed().Seconds(), "replicates/s")
	})
}
