// Package experiments contains one harness per table and figure of the
// paper's evaluation, each returning structured rows that cmd/tables and
// the top-level benchmarks render. DESIGN.md carries the experiment index.
package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/anvil"
	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config tunes experiment durations. Quick mode shrinks run lengths so the
// whole suite fits in unit-test budgets; full mode matches the paper's
// measurement horizons.
type Config struct {
	Quick bool
	// Seed perturbs the stochastic components (workload address streams
	// keep their profile seeds; this seeds machine-level randomness).
	Seed uint64
}

// scaleDur shrinks full-length durations in quick mode.
func (c Config) scaleDur(full time.Duration) time.Duration {
	if c.Quick {
		return full / 4
	}
	return full
}

// scaleOps shrinks fixed-work op counts in quick mode.
func (c Config) scaleOps(full uint64) uint64 {
	if c.Quick {
		return full / 4
	}
	return full
}

// newMachine builds the paper's machine with the given core count.
func newMachine(cores int, mutate func(*machine.Config)) (*machine.Machine, error) {
	cfg := machine.DefaultConfig()
	cfg.Cores = cores
	if mutate != nil {
		mutate(&cfg)
	}
	return machine.New(cfg)
}

// attackOptions are the standard attacker capabilities on machine m.
func attackOptions(m *machine.Machine) attack.Options {
	return attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	}
}

// runFor advances the machine by d, tolerating early completion.
func runFor(m *machine.Machine, d time.Duration) error {
	err := m.Run(m.Time() + m.Freq.Cycles(d))
	if err != nil && !errors.Is(err, machine.ErrAllDone) {
		return err
	}
	return nil
}

// runUntilFlip drives the machine in fine slices until the first bit flip
// or the deadline. It returns the flip time and whether a flip occurred.
func runUntilFlip(m *machine.Machine, deadline time.Duration) (time.Duration, bool, error) {
	slice := m.Freq.Cycles(250 * time.Microsecond)
	end := m.Freq.Cycles(deadline)
	for now := sim.Cycles(0); now < end; now += slice {
		err := m.Run(now + slice)
		if err != nil && !errors.Is(err, machine.ErrAllDone) {
			return 0, false, err
		}
		if m.Mem.DRAM.FlipCount() > 0 {
			return m.Freq.Duration(m.Mem.DRAM.Flips()[0].Time), true, nil
		}
		if errors.Is(err, machine.ErrAllDone) {
			break
		}
	}
	return 0, false, nil
}

// victimThreshold is the paper module's weakest-cell disturbance limit.
const victimThreshold = 400_000

// hammerKind selects an attack implementation.
type hammerKind int

const (
	singleSidedFlush hammerKind = iota
	doubleSidedFlush
	clflushFree
)

func (k hammerKind) String() string {
	switch k {
	case singleSidedFlush:
		return "Single-Sided with CLFLUSH"
	case doubleSidedFlush:
		return "Double-Sided with CLFLUSH"
	case clflushFree:
		return "Double-Sided without CLFLUSH"
	default:
		return fmt.Sprintf("hammerKind(%d)", int(k))
	}
}

// hammerProgram instantiates the attack on machine m.
type hammerProgram interface {
	machine.Program
	Victim() attack.Target
	AggressorAccesses() uint64
	Iterations() uint64
}

func newHammer(k hammerKind, opts attack.Options) (hammerProgram, error) {
	switch k {
	case singleSidedFlush:
		return attack.NewSingleSidedFlush(opts)
	case doubleSidedFlush:
		return attack.NewDoubleSidedFlush(opts)
	case clflushFree:
		return attack.NewClflushFree(opts)
	default:
		return nil, fmt.Errorf("experiments: unknown hammer kind %d", k)
	}
}

// spawnHammer spawns the attack on core 0 and plants the paper-grade weak
// victim row it targets.
func spawnHammer(m *machine.Machine, k hammerKind, opts attack.Options) (hammerProgram, error) {
	h, err := newHammer(k, opts)
	if err != nil {
		return nil, err
	}
	if _, err := m.Spawn(0, h); err != nil {
		return nil, err
	}
	v := h.Victim()
	if err := m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, victimThreshold); err != nil {
		return nil, err
	}
	return h, nil
}

// startANVIL attaches and starts a detector.
func startANVIL(m *machine.Machine, p anvil.Params) (*anvil.Detector, error) {
	d, err := anvil.New(m, p, nil)
	if err != nil {
		return nil, err
	}
	d.Start()
	return d, nil
}

// spawnTrio puts the heavy-load background (mcf, libquantum, omnetpp) on
// cores 1..3.
func spawnTrio(m *machine.Machine) error {
	for i, prof := range workload.HeavyLoadTrio() {
		if _, err := m.Spawn(i+1, workload.MustNew(prof)); err != nil {
			return err
		}
	}
	return nil
}

// fixedWorkOps picks the op budget for a fixed-work benchmark run, sized so
// the base run covers at least a dozen detector windows.
func fixedWorkOps(prof workload.Profile) uint64 {
	switch {
	case prof.Compute >= 600: // compute-bound profiles
		return 300_000
	case prof.Compute >= 150:
		return 500_000
	default:
		return 900_000
	}
}
