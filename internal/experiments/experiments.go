// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each harness declares its runs as scenario.Specs,
// returns structured rows, and registers itself (registry.go) under the
// name cmd/tables and the top-level benchmarks enumerate. DESIGN.md carries
// the experiment index.
package experiments

import (
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Config tunes experiment durations, seeding and parallelism. It is the
// scenario registry's config: see scenario.Config for the field semantics.
type Config = scenario.Config

// victimThreshold is the paper module's weakest-cell disturbance limit.
const victimThreshold = scenario.DefaultWeakUnits

// heavyLoadNames are the cores-1..3 background programs of the heavy-load
// experiments (mcf, libquantum, omnetpp).
func heavyLoadNames() []scenario.Workload {
	var out []scenario.Workload
	for _, name := range workload.HeavyLoadNames() {
		out = append(out, scenario.Workload{Name: name})
	}
	return out
}

// fixedWorkOps picks the op budget for a fixed-work benchmark run, sized so
// the base run covers at least a dozen detector windows.
func fixedWorkOps(prof workload.Profile) uint64 {
	switch {
	case prof.Compute >= 600: // compute-bound profiles
		return 300_000
	case prof.Compute >= 150:
		return 500_000
	default:
		return 900_000
	}
}
