package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// The kill-and-resume test re-executes the test binary as a sweep process
// and kills it from the inside at a chosen replicate; these env vars carry
// the journal directory and kill point to the helper.
const (
	resumeHelperDirEnv  = "ANVIL_RESUME_HELPER_DIR"
	resumeHelperKillEnv = "ANVIL_RESUME_KILL_AFTER"
	resumeHelperExit    = 57
)

// resumeSweepConfig is the sweep both processes run: quick fault matrix,
// fixed seed. Parallelism intentionally differs between the killed run (1)
// and the resumed run (3) — the merged output must not care.
func resumeSweepConfig() (Config, []faultProfile, time.Duration) {
	cfg := Config{Quick: true, Seed: 7, Parallel: 1, Sweep: "fault-matrix"}
	return cfg, faultProfiles(), cfg.ScaleDur(256 * time.Millisecond)
}

// TestFaultMatrixResumeHelper is the subprocess body: it runs the
// fault-matrix sweep with a journal and exits hard — no cleanup, no journal
// Close — once killAfter replicates have completed, before the killAfter-th
// record reaches the journal. Skipped unless launched by the parent test.
func TestFaultMatrixResumeHelper(t *testing.T) {
	dir := os.Getenv(resumeHelperDirEnv)
	if dir == "" {
		t.Skip("helper body; run via TestFaultMatrixKillAndResume")
	}
	killAfter, err := strconv.Atoi(os.Getenv(resumeHelperKillEnv))
	if err != nil || killAfter < 1 {
		t.Fatalf("bad %s: %v", resumeHelperKillEnv, err)
	}
	cfg, profiles, dur := resumeSweepConfig()
	cfg = cfg.WithJournal(dir, false)
	var completed atomic.Int32
	_, _, _ = scenario.RunReplicatesSweep(cfg, len(profiles), func(rep int) (scenario.Results, error) {
		res, err := faultMatrixReplicate(cfg, profiles[rep], dur)
		if err == nil && int(completed.Add(1)) >= killAfter {
			os.Exit(resumeHelperExit) // simulate a kill mid-sweep
		}
		return res, err
	})
	t.Fatalf("sweep finished without reaching the kill point (killAfter=%d)", killAfter)
}

// TestFaultMatrixKillAndResume kills a journaled fault-matrix sweep at a
// (seeded-random) replicate in a subprocess, resumes it in-process at a
// different worker count, and asserts the merged JSON is byte-identical to
// an uninterrupted run.
func TestFaultMatrixKillAndResume(t *testing.T) {
	if os.Getenv(resumeHelperDirEnv) != "" {
		t.Skip("already inside the helper subprocess")
	}
	cfg, profiles, dur := resumeSweepConfig()

	// Golden: the uninterrupted sweep, no journal.
	golden, status, err := scenario.RunReplicatesSweep(cfg, len(profiles), func(rep int) (scenario.Results, error) {
		return faultMatrixReplicate(cfg, profiles[rep], dur)
	})
	if err != nil || status.Truncated {
		t.Fatalf("golden sweep: err=%v status=%+v", err, status)
	}
	goldenJSON, err := json.Marshal(golden)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the journaled sweep after a seeded-random number of completed
	// replicates (at least one record in the journal, at least one missing).
	dir := t.TempDir()
	killAfter := 2 + int(sim.NewRand(0xC0FFEE).Uint64n(uint64(len(profiles)-2)))
	cmd := exec.Command(os.Args[0], "-test.run=^TestFaultMatrixResumeHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		resumeHelperDirEnv+"="+dir,
		resumeHelperKillEnv+"="+strconv.Itoa(killAfter))
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != resumeHelperExit {
		t.Fatalf("helper did not die at the kill point: err=%v\n%s", err, out)
	}

	// Resume at a different worker count; the sweep must pick up exactly the
	// journaled replicates and merge byte-identically with the golden run.
	rcfg := cfg
	rcfg.Parallel = 3
	rcfg = rcfg.WithJournal(dir, true)
	resumed, rstatus, err := scenario.RunReplicatesSweep(rcfg, len(profiles), func(rep int) (scenario.Results, error) {
		return faultMatrixReplicate(rcfg, profiles[rep], dur)
	})
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	// The helper exits before the killAfter-th record is journaled, so
	// exactly killAfter-1 replicates come back from the journal.
	if rstatus.Resumed != killAfter-1 {
		t.Errorf("Resumed = %d, want %d", rstatus.Resumed, killAfter-1)
	}
	resumedJSON, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(goldenJSON, resumedJSON) {
		t.Fatalf("resumed sweep is not byte-identical to the uninterrupted run:\ngolden:  %s\nresumed: %s", goldenJSON, resumedJSON)
	}
}
