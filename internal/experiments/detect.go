package experiments

import (
	"fmt"
	"time"

	"repro/internal/anvil"
	"repro/internal/machine"
	"repro/internal/report"
)

// Table3Row is one row of Table 3: rowhammer detection results.
type Table3Row struct {
	Benchmark        string
	Load             string // "Heavy" or "Light"
	AvgTimeToDetect  time.Duration
	RefreshesPer64ms float64
	TotalBitFlips    int
	Detections       int
}

// Table3 runs both attacks under light and heavy load with ANVIL-baseline
// and reports detection latency, selective-refresh rate and (zero) flips.
func Table3(cfg Config) ([]Table3Row, error) {
	type scenario struct {
		kind  hammerKind
		heavy bool
	}
	scenarios := []scenario{
		{doubleSidedFlush, true},
		{doubleSidedFlush, false},
		{clflushFree, true},
		{clflushFree, false},
	}
	dur := cfg.scaleDur(512 * time.Millisecond)
	trials := 4
	if cfg.Quick {
		trials = 2
	}
	var rows []Table3Row
	for _, sc := range scenarios {
		row := Table3Row{
			Benchmark: sc.kind.String(),
			Load:      map[bool]string{true: "Heavy", false: "Light"}[sc.heavy],
		}
		// Detection latency: independent trials, each starting the attack
		// on a fresh machine (varying the sampler seed) and measuring the
		// time until the first detection — the "time to detect" of Table 3,
		// which includes identifying and refreshing the victims.
		var sumDetect time.Duration
		detected := 0
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(trial)*7919
			m, err := newMachine(4, func(c *machine.Config) {
				c.Memory.PMUSeed += seed
			})
			if err != nil {
				return nil, err
			}
			if _, err := spawnHammer(m, sc.kind, attackOptions(m)); err != nil {
				return nil, err
			}
			if sc.heavy {
				if err := spawnTrio(m); err != nil {
					return nil, err
				}
			}
			det, err := startANVIL(m, anvil.Baseline())
			if err != nil {
				return nil, err
			}
			trialDur := dur
			if trial > 0 {
				trialDur = 96 * time.Millisecond // latency-only trials
			}
			if err := runFor(m, trialDur); err != nil {
				return nil, err
			}
			st := det.Stats()
			if len(st.Detections) > 0 {
				sumDetect += m.Freq.Duration(st.Detections[0].Time)
				detected++
			}
			if trial == 0 {
				epochs := float64(dur) / float64(64*time.Millisecond)
				row.RefreshesPer64ms = float64(st.Refreshes) / epochs
				row.TotalBitFlips = m.Mem.DRAM.FlipCount()
				row.Detections = len(st.Detections)
			}
		}
		if detected > 0 {
			row.AvgTimeToDetect = sumDetect / time.Duration(detected)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []Table3Row) string {
	t := report.New("Table 3: Rowhammer Detection Results (ANVIL-baseline)",
		"Benchmark", "Load", "Avg Time to Detect", "Refreshes per 64ms", "Total Bit Flips")
	for _, r := range rows {
		t.AddStrings(
			r.Benchmark, r.Load,
			fmt.Sprintf("%.1f ms", float64(r.AvgTimeToDetect)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f", r.RefreshesPer64ms),
			fmt.Sprintf("%d", r.TotalBitFlips),
		)
	}
	return t.String()
}
