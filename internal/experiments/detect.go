package experiments

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
)

// Table3Row is one row of Table 3: rowhammer detection results.
type Table3Row struct {
	Benchmark        string        `json:"benchmark"`
	Load             string        `json:"load"` // "Heavy" or "Light"
	AvgTimeToDetect  time.Duration `json:"avg_time_to_detect"`
	RefreshesPer64ms float64       `json:"refreshes_per_64ms"`
	TotalBitFlips    int           `json:"total_bit_flips"`
	Detections       int           `json:"detections"`
}

// table3Trial is one independent detection run: a fresh machine with the
// attack (and, under heavy load, the background trio) under ANVIL-baseline.
type table3Trial struct {
	Detected   bool
	DetectTime time.Duration
	Refreshes  uint64
	BitFlips   int
	Detections int
}

func table3RunTrial(kind scenario.AttackKind, heavy bool, seed uint64, dur time.Duration, stepBatch int) (table3Trial, error) {
	spec := scenario.Spec{
		Cores:     4,
		Seed:      seed,
		Attack:    &scenario.Attack{Kind: kind},
		Defense:   scenario.ANVILBaseline,
		StepBatch: stepBatch,
	}
	if heavy {
		spec.Workloads = heavyLoadNames()
	}
	in, err := scenario.Build(spec)
	if err != nil {
		return table3Trial{}, err
	}
	if err := in.RunFor(dur); err != nil {
		return table3Trial{}, err
	}
	st := in.Detector.Stats()
	out := table3Trial{
		Refreshes:  st.Refreshes,
		BitFlips:   in.Machine.Mem.DRAM.FlipCount(),
		Detections: len(st.Detections),
	}
	if len(st.Detections) > 0 {
		out.Detected = true
		out.DetectTime = in.Machine.Freq.Duration(st.Detections[0].Time)
	}
	return out, nil
}

// Table3 runs both attacks under light and heavy load with ANVIL-baseline
// and reports detection latency, selective-refresh rate and (zero) flips.
// All (scenario, trial) pairs run as independent replicates across the
// worker pool; rows merge in the paper's order regardless of parallelism.
func Table3(cfg Config) ([]Table3Row, error) {
	type point struct {
		kind  scenario.AttackKind
		heavy bool
	}
	points := []point{
		{scenario.DoubleSidedFlush, true},
		{scenario.DoubleSidedFlush, false},
		{scenario.ClflushFree, true},
		{scenario.ClflushFree, false},
	}
	dur := cfg.ScaleDur(512 * time.Millisecond)
	trials := 4
	if cfg.Quick {
		trials = 2
	}
	// Detection latency: independent trials, each starting the attack on a
	// fresh machine (varying the machine seed) and measuring the time until
	// the first detection — the "time to detect" of Table 3, which includes
	// identifying and refreshing the victims. Trial 0 runs the full horizon
	// and also supplies the refresh-rate and flip columns; later trials are
	// latency-only.
	runs, err := scenario.RunReplicates(cfg, len(points)*trials, func(rep int) (table3Trial, error) {
		p := points[rep/trials]
		trial := rep % trials
		seed := cfg.Seed + uint64(trial)*7919
		trialDur := dur
		if trial > 0 {
			trialDur = 96 * time.Millisecond
		}
		return table3RunTrial(p.kind, p.heavy, seed, trialDur, cfg.StepBatch)
	})
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for i, p := range points {
		row := Table3Row{
			Benchmark: p.kind.Label(),
			Load:      "Light",
		}
		if p.heavy {
			row.Load = "Heavy"
		}
		var sumDetect time.Duration
		detected := 0
		for trial := 0; trial < trials; trial++ {
			t := runs[i*trials+trial]
			if t.Detected {
				sumDetect += t.DetectTime
				detected++
			}
			if trial == 0 {
				epochs := float64(dur) / float64(64*time.Millisecond)
				row.RefreshesPer64ms = float64(t.Refreshes) / epochs
				row.TotalBitFlips = t.BitFlips
				row.Detections = t.Detections
			}
		}
		if detected > 0 {
			row.AvgTimeToDetect = sumDetect / time.Duration(detected)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []Table3Row) string {
	t := report.New("Table 3: Rowhammer Detection Results (ANVIL-baseline)",
		"Benchmark", "Load", "Avg Time to Detect", "Refreshes per 64ms", "Total Bit Flips")
	for _, r := range rows {
		t.AddStrings(
			r.Benchmark, r.Load,
			fmt.Sprintf("%.1f ms", float64(r.AvgTimeToDetect)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f", r.RefreshesPer64ms),
			fmt.Sprintf("%d", r.TotalBitFlips),
		)
	}
	return t.String()
}
