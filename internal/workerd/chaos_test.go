package workerd

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/netchaos"
	"repro/internal/sweepd"
)

// The distributed chaos harness: a real in-process coordinator, real worker
// subprocesses (this test binary re-exec'd into TestWorkerdHelper), and real
// faults — SIGKILL mid-replicate, a TCP partition via netchaos.Proxy, and
// SIGTERM graceful stops. The invariant under all of it is the same one the
// single-process chaos harness proves for crashes: final artifact bytes are
// identical to an uninterrupted run, and the submitting caller is charged
// for exactly one computation of each replicate.

// TestWorkerdHelper is the worker subprocess body. It only runs re-exec'd
// with ANVILWORKERD_HELPER=1; in the normal suite it skips. It mirrors
// cmd/anvilworkerd's run(): a Worker under signal.NotifyContext, so SIGTERM
// exercises the same graceful path the production binary takes.
func TestWorkerdHelper(t *testing.T) {
	if os.Getenv("ANVILWORKERD_HELPER") != "1" {
		t.Skip("helper body; only runs as a re-exec'd worker subprocess")
	}
	seed, err := strconv.ParseUint(os.Getenv("AW_SEED"), 10, 64)
	if err != nil {
		t.Fatalf("AW_SEED: %v", err)
	}
	maxSlots, err := strconv.Atoi(os.Getenv("AW_MAXSLOTS"))
	if err != nil {
		t.Fatalf("AW_MAXSLOTS: %v", err)
	}
	poll, err := time.ParseDuration(os.Getenv("AW_POLL"))
	if err != nil {
		t.Fatalf("AW_POLL: %v", err)
	}
	grace, err := time.ParseDuration(os.Getenv("AW_GRACE"))
	if err != nil {
		t.Fatalf("AW_GRACE: %v", err)
	}
	w := New(Options{
		Coordinator: os.Getenv("AW_COORD"),
		ID:          os.Getenv("AW_ID"),
		MaxSlots:    maxSlots,
		Poll:        poll,
		Grace:       grace,
		Seed:        seed,
		Logf:        t.Logf,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker run: %v", err)
	}
}

// lockedBuf is a race-safe capture of a subprocess's combined output.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// workerProc is one worker subprocess under test control.
type workerProc struct {
	t    *testing.T
	id   string
	cmd  *exec.Cmd
	out  *lockedBuf
	err  error // cmd.Wait result; valid once done is closed
	done chan struct{}
}

// startWorker re-execs this test binary as a worker daemon pointed at coord.
func startWorker(t *testing.T, coord, id string, maxSlots int, seed uint64, poll, grace time.Duration) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestWorkerdHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"ANVILWORKERD_HELPER=1",
		"AW_COORD="+coord,
		"AW_ID="+id,
		"AW_MAXSLOTS="+strconv.Itoa(maxSlots),
		"AW_SEED="+strconv.FormatUint(seed, 10),
		"AW_POLL="+poll.String(),
		"AW_GRACE="+grace.String(),
	)
	out := &lockedBuf{}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker %s: %v", id, err)
	}
	wp := &workerProc{t: t, id: id, cmd: cmd, out: out, done: make(chan struct{})}
	go func() {
		wp.err = cmd.Wait()
		close(wp.done)
	}()
	t.Cleanup(wp.reap)
	return wp
}

// sigkill murders the worker outright — no cleanup, no lease release.
func (wp *workerProc) sigkill() {
	wp.t.Helper()
	if err := wp.cmd.Process.Kill(); err != nil {
		wp.t.Fatalf("SIGKILL %s: %v", wp.id, err)
	}
	<-wp.done
}

// sigterm asks for a graceful stop and asserts the worker exits cleanly
// within the deadline.
func (wp *workerProc) sigterm(timeout time.Duration) {
	wp.t.Helper()
	if err := wp.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		wp.t.Fatalf("SIGTERM %s: %v", wp.id, err)
	}
	select {
	case <-wp.done:
	case <-time.After(timeout):
		wp.t.Fatalf("worker %s still running %v after SIGTERM\n%s", wp.id, timeout, wp.out.String())
	}
	if wp.err != nil {
		wp.t.Fatalf("worker %s exited non-zero after SIGTERM: %v\n%s", wp.id, wp.err, wp.out.String())
	}
}

// reap kills any worker a test left running.
func (wp *workerProc) reap() {
	select {
	case <-wp.done:
		return
	default:
	}
	_ = wp.cmd.Process.Kill()
	<-wp.done
}

// claimNow polls the lease plane until a grant lands, bounded by within — a
// bound far under the lease TTL proves the previous holder released
// explicitly rather than timing out.
func claimNow(t *testing.T, c *sweepd.Client, worker string, within time.Duration) *sweepd.ClaimResponse {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), within)
	defer cancel()
	for {
		grant, err := c.ClaimLease(ctx, worker, 0)
		if err != nil {
			t.Fatalf("claim as %s: %v", worker, err)
		}
		if grant != nil {
			return grant
		}
		select {
		case <-ctx.Done():
			t.Fatalf("no lease granted to %s within %v", worker, within)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// uploadVal computes slot's deterministic value in-process and uploads it —
// the test standing in for a worker.
func uploadVal(t *testing.T, c *sweepd.Client, grant *sweepd.ClaimResponse, slot int, seed uint64) sweepd.UploadResponse {
	t.Helper()
	raw := json.RawMessage(strconv.FormatUint(wval(seed, slot), 10))
	ack, err := c.UploadResult(context.Background(), grant.LeaseID,
		sweepd.UploadRequest{JobID: grant.JobID, Replicate: slot, Result: raw})
	if err != nil {
		t.Fatalf("uploading slot %d: %v", slot, err)
	}
	return ack
}

// TestWorkerFleetChaos is the headline scenario: three real worker
// subprocesses share one job; one is SIGKILLed mid-replicate and one is
// network-partitioned by a chaos proxy mid-sweep. Their leases expire, the
// surviving worker absorbs the reassigned slots, and the finished artifact
// is byte-identical to an uninterrupted single-process run — with the
// caller charged for exactly one computation of each replicate.
func TestWorkerFleetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness")
	}
	co := startCoordinator(t, sweepd.ServerOptions{
		LeaseTTL:    400 * time.Millisecond,
		LeaseChunk:  2,
		WorkerGrace: 20 * time.Second,
	})
	spec := sweepd.JobSpec{Experiment: wexpChaos, Seed: 0x5EED}
	want := golden(t, spec)
	caller := &sweepd.Client{Base: co.http.URL, APIKey: "fleet"}
	ctx := context.Background()

	st, err := caller.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	proxy, err := netchaos.NewProxy(strings.TrimPrefix(co.http.URL, "http://"), netchaos.ProxyOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() }) //nolint:errcheck // teardown

	healthy := startWorker(t, co.http.URL, "w-healthy", 0, 1, 25*time.Millisecond, 10*time.Second)
	victim := startWorker(t, co.http.URL, "w-victim", 0, 2, 25*time.Millisecond, 10*time.Second)
	cutoff := startWorker(t, "http://"+proxy.Addr(), "w-cutoff", 0, 3, 25*time.Millisecond, 10*time.Second)

	// Let the fleet get properly into the sweep, then strike: the victim
	// dies instantly (held lease never released), and the cutoff worker's
	// link goes dark (heartbeats stop reaching the coordinator).
	pollProgress(t, caller, st.ID, 2)
	victim.sigkill()
	proxy.Partition()
	t.Logf("victim SIGKILLed and cutoff partitioned mid-sweep")

	fin := waitDone(t, caller, st.ID, 60*time.Second)
	if fin.State != sweepd.StateDone || fin.Error != "" {
		t.Fatalf("job finished %s (error %q), want done", fin.State, fin.Error)
	}
	if fin.Completed != wchaosReps {
		t.Fatalf("job completed %d replicates, want %d", fin.Completed, wchaosReps)
	}
	fctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	got, err := caller.FetchResult(fctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("artifact after kill+partition differs from the uninterrupted run:\ngot  %s\nwant %s", got, want)
	}
	q, err := caller.Quota(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if q.Used.Replicates != wchaosReps {
		t.Fatalf("caller charged %d replicates, want exactly %d (each slot computed once)",
			q.Used.Replicates, wchaosReps)
	}

	// The survivors still stop cleanly: the healthy worker drains its idle
	// claim loop, and the partitioned one abandons its dead link.
	healthy.sigterm(15 * time.Second)
	cutoff.sigterm(15 * time.Second)
}

// TestWorkerSIGTERMGraceful: SIGTERM mid-sweep finishes the in-flight
// replicate, abandons the rest, releases the lease explicitly — proven by a
// fresh claim succeeding far inside the 30s TTL — and exits zero within the
// grace bound.
func TestWorkerSIGTERMGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness")
	}
	co := startCoordinator(t, sweepd.ServerOptions{
		LeaseTTL:    30 * time.Second, // only an explicit release frees slots fast
		LeaseChunk:  wslowReps,
		WorkerGrace: 30 * time.Second,
	})
	spec := sweepd.JobSpec{Experiment: wexpSlow, Seed: 9}
	want := golden(t, spec)
	caller := &sweepd.Client{Base: co.http.URL, APIKey: "term"}
	ctx := context.Background()

	st, err := caller.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	w := startWorker(t, co.http.URL, "w-term", wslowReps, 7, 25*time.Millisecond, 10*time.Second)

	pollProgress(t, caller, st.ID, 1)
	w.sigterm(15 * time.Second)

	now, err := caller.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if now.Completed < 1 || now.Completed >= wslowReps {
		t.Fatalf("worker had completed %d of %d slots at exit; SIGTERM was meant to land mid-sweep",
			now.Completed, wslowReps)
	}
	if out := w.out.String(); !strings.Contains(out, "soft stop; abandoning") {
		t.Fatalf("worker took no graceful soft-stop path; output:\n%s", out)
	}

	// 2s << the 30s TTL: this claim only succeeds because the dying worker
	// released its lease instead of letting it expire.
	grant := claimNow(t, co.client, "prober", 2*time.Second)
	if grant.JobID != st.ID || len(grant.Slots) != wslowReps-now.Completed {
		t.Fatalf("reclaimed %v of job %s; want the %d slots the worker abandoned",
			grant.Slots, grant.JobID, wslowReps-now.Completed)
	}
	for _, slot := range grant.Slots {
		if ack := uploadVal(t, co.client, grant, slot, spec.Seed); ack.Duplicate {
			t.Fatalf("slot %d acked as duplicate; the worker was not supposed to have computed it", slot)
		}
	}

	fin := waitDone(t, caller, st.ID, 30*time.Second)
	if fin.State != sweepd.StateDone || fin.Completed != wslowReps {
		t.Fatalf("job finished %s with %d/%d replicates", fin.State, fin.Completed, wslowReps)
	}
	fctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	got, err := caller.FetchResult(fctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("artifact after graceful handoff differs:\ngot  %s\nwant %s", got, want)
	}
	q, err := caller.Quota(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if q.Used.Replicates != wslowReps {
		t.Fatalf("caller charged %d replicates, want exactly %d", q.Used.Replicates, wslowReps)
	}
}

// TestSoftStopFinishesInFlightReplicate pins the soft-stop contract
// deterministically, in-process: a replicate parked on a gate is in flight
// when the soft context cancels; the worker must finish and upload exactly
// that replicate and never start the next slot.
func TestSoftStopFinishesInFlightReplicate(t *testing.T) {
	co := startCoordinator(t, sweepd.ServerOptions{
		LeaseTTL:    30 * time.Second,
		LeaseChunk:  1, // one slot per lease: slot 1 needs a claim the stopped worker must not make
		WorkerGrace: 30 * time.Second,
	})
	spec := sweepd.JobSpec{Experiment: wexpGate, Seed: 0x42}
	want := golden(t, spec) // before arming the gate: golden runs ungated
	gateCh = make(chan struct{})
	startedCh = make(chan struct{})
	t.Cleanup(func() { gateCh, startedCh = nil, nil })

	caller := &sweepd.Client{Base: co.http.URL, APIKey: "soft"}
	ctx := context.Background()
	st, err := caller.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	w := New(Options{
		Coordinator: co.http.URL,
		ID:          "w-soft",
		Poll:        10 * time.Millisecond,
		Grace:       10 * time.Second,
		Seed:        3,
		Logf:        t.Logf,
	})
	soft, cancel := context.WithCancel(ctx)
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- w.Run(soft) }()

	<-startedCh   // replicate 0 is now in flight, parked on the gate
	cancel()      // soft stop lands mid-replicate
	close(gateCh) // release the replicate; the worker must still upload it
	if err := <-runErr; err != nil {
		t.Fatalf("worker run: %v", err)
	}

	now, err := caller.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if now.Completed != 1 {
		t.Fatalf("completed %d replicates after soft stop, want exactly the in-flight one", now.Completed)
	}

	// The worker released slot 0's lease and never claimed slot 1; claim it
	// and finish the job by hand.
	grant := claimNow(t, co.client, "prober", 2*time.Second)
	if len(grant.Slots) != 1 || grant.Slots[0] != 1 {
		t.Fatalf("reclaimed slots %v, want exactly the unstarted slot 1", grant.Slots)
	}
	uploadVal(t, co.client, grant, 1, spec.Seed)

	fin := waitDone(t, caller, st.ID, 30*time.Second)
	if fin.State != sweepd.StateDone || fin.Completed != wgateReps {
		t.Fatalf("job finished %s with %d/%d replicates", fin.State, fin.Completed, wgateReps)
	}
	fctx, fcancel := context.WithTimeout(ctx, 30*time.Second)
	defer fcancel()
	got, err := caller.FetchResult(fctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("artifact after soft stop differs:\ngot  %s\nwant %s", got, want)
	}
}

// TestWorkerRequiresCoordinator: a worker without a coordinator URL fails
// loudly instead of spinning.
func TestWorkerRequiresCoordinator(t *testing.T) {
	w := New(Options{})
	if err := w.Run(context.Background()); err == nil {
		t.Fatal("Run without a coordinator URL must error")
	}
}
