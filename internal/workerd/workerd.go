// Package workerd implements the stateless replicate worker of the
// distributed sweep plane. A worker owns no journal and no artifacts: it
// claims slot leases from an anvilserved coordinator (POST
// /v1/leases/claim), recomputes the leased replicates through the same
// experiment registry the coordinator would use — replicate seeds are pure
// functions of (base seed, slot), so the bytes are identical wherever they
// are computed — and uploads each result as it completes. Heartbeats renew
// the lease at a third of its TTL; a worker that dies or is partitioned
// simply stops renewing, the coordinator reassigns its slots, and any
// result the zombie still delivers is deduplicated server-side.
//
// Shutdown is two-phase. The soft context (SIGTERM in cmd/anvilworkerd)
// stops new claims and new slots but lets the in-flight replicate finish
// and upload — killing deterministic work halfway buys nothing, the next
// worker would recompute the same bytes. A bounded grace period later the
// hard context cancels whatever is still running; either way the worker
// releases its lease explicitly on the way out, so the coordinator learns
// immediately instead of waiting out the TTL.
//
//lint:zone host
package workerd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweepd"
)

// Defaults for zero Options fields.
const (
	// DefaultPoll is the idle claim-polling interval.
	DefaultPoll = 200 * time.Millisecond
	// DefaultGrace bounds how long a soft-stopped worker may keep finishing
	// its in-flight replicate before the hard context kills it.
	DefaultGrace = 20 * time.Second
	// releaseTimeout bounds the explicit lease release on the way out.
	releaseTimeout = 2 * time.Second
)

// Options configures a Worker.
type Options struct {
	// Coordinator is the anvilserved base URL (required).
	Coordinator string
	// APIKey identifies the worker to the coordinator.
	APIKey string
	// ID names the worker in leases and logs; empty derives one from the
	// PID.
	ID string
	// MaxSlots caps how many slots one claim asks for; zero accepts the
	// coordinator's chunk size.
	MaxSlots int
	// Poll is the claim interval while no work is available; zero means
	// DefaultPoll.
	Poll time.Duration
	// Grace bounds in-flight work after a soft stop; zero means
	// DefaultGrace.
	Grace time.Duration
	// Seed roots the transport-retry jitter stream, so a fleet of workers
	// backs off out of phase.
	Seed uint64
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
	// HTTPClient overrides the transport — chaos tests inject fault
	// transports here.
	HTTPClient *http.Client
}

// A Worker executes leased replicate slots until its context ends.
type Worker struct {
	opts   Options
	client *sweepd.Client
}

// New builds a worker. The coordinator URL is validated at claim time, not
// here — a worker may legitimately start before its coordinator.
func New(opts Options) *Worker {
	if opts.ID == "" {
		opts.ID = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if opts.Poll <= 0 {
		opts.Poll = DefaultPoll
	}
	if opts.Grace <= 0 {
		opts.Grace = DefaultGrace
	}
	return &Worker{
		opts: opts,
		client: &sweepd.Client{
			Base:       opts.Coordinator,
			APIKey:     opts.APIKey,
			HTTPClient: opts.HTTPClient,
			// Transport retries absorb request-level faults (drops, resets,
			// lost responses); anything that outlives them falls back to the
			// lease machinery — expiry and reassignment.
			MaxRetries: 4,
			RetryBase:  50 * time.Millisecond,
			RetrySeed:  opts.Seed,
		},
	}
}

// logf logs through the configured sink.
func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// Run claims and executes leases until ctx (the soft-stop signal) ends,
// then finishes the in-flight replicate — bounded by the grace period —
// releases any held lease, and returns. The returned error is nil for every
// orderly stop, including grace expiry.
func (w *Worker) Run(ctx context.Context) error {
	if w.opts.Coordinator == "" {
		return fmt.Errorf("workerd: Options.Coordinator is required")
	}
	// hard cancels in-flight work Grace after the soft stop; watchdogStop
	// tears the watchdog down if Run returns first.
	hard, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	watchdog, watchdogStop := context.WithCancel(context.Background())
	defer watchdogStop()
	go func() {
		select {
		case <-watchdog.Done():
			return
		case <-ctx.Done():
		}
		//lint:allow detrand shutdown grace is host wall-clock by definition
		t := time.NewTimer(w.opts.Grace)
		defer t.Stop()
		select {
		case <-watchdog.Done():
		case <-t.C:
			w.logf("%s: grace period expired; cancelling in-flight work", w.opts.ID)
			hardCancel()
		}
	}()

	w.logf("%s: polling %s for leases", w.opts.ID, w.opts.Coordinator)
	for {
		if ctx.Err() != nil {
			return nil
		}
		grant, err := w.client.ClaimLease(ctx, w.opts.ID, w.opts.MaxSlots)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			w.logf("%s: claim: %v", w.opts.ID, err)
			if !sleepCtx(ctx, w.opts.Poll) {
				return nil
			}
			continue
		}
		if grant == nil {
			if !sleepCtx(ctx, w.opts.Poll) {
				return nil
			}
			continue
		}
		w.serve(ctx, hard, grant)
	}
}

// serve executes one granted lease: heartbeat in the background, slots one
// at a time in the foreground (so a soft stop waits for at most one
// replicate), explicit release on every exit path.
func (w *Worker) serve(soft, hard context.Context, grant *sweepd.ClaimResponse) {
	w.logf("%s: lease %s: job %s slots %v (ttl %dms)",
		w.opts.ID, grant.LeaseID, grant.JobID, grant.Slots, grant.TTLMS)

	// leaseCtx dies with the hard context, or when the heartbeat learns the
	// lease is gone — either way the slot loop stops.
	leaseCtx, lost := context.WithCancel(hard)
	defer lost()
	hbDone := make(chan struct{})
	go w.heartbeat(leaseCtx, grant.LeaseID, time.Duration(grant.TTLMS)*time.Millisecond, lost, hbDone)

	completed := 0
	for _, slot := range grant.Slots {
		if soft.Err() != nil {
			// Soft stop between slots: whatever was in flight has finished
			// and uploaded; the rest is abandoned for reassignment.
			w.logf("%s: lease %s: soft stop; abandoning %d unstarted slots",
				w.opts.ID, grant.LeaseID, len(grant.Slots)-completed)
			break
		}
		if leaseCtx.Err() != nil {
			break
		}
		if err := w.runSlot(leaseCtx, grant, slot); err != nil {
			w.logf("%s: lease %s slot %d: %v; abandoning lease", w.opts.ID, grant.LeaseID, slot, err)
			break
		}
		completed++
	}

	lost()
	<-hbDone
	// Explicit release: even when the worker is shutting down (soft and
	// hard contexts dead), tell the coordinator now rather than making it
	// wait out the TTL. Independent short deadline; best effort.
	rctx, cancel := context.WithTimeout(context.Background(), releaseTimeout)
	defer cancel()
	if err := w.client.ReleaseLease(rctx, grant.LeaseID); err != nil {
		w.logf("%s: lease %s: release: %v", w.opts.ID, grant.LeaseID, err)
	}
	w.logf("%s: lease %s: released after %d/%d slots", w.opts.ID, grant.LeaseID, completed, len(grant.Slots))
}

// heartbeat renews the lease at a third of its TTL until ctx ends. Learning
// the lease is gone (410) cancels the slot loop through lost; transient
// renewal failures are logged and ridden out — the next beat may succeed,
// and if not, expiry and reassignment handle it.
func (w *Worker) heartbeat(ctx context.Context, id string, ttl time.Duration, lost context.CancelFunc, done chan<- struct{}) {
	defer close(done)
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	//lint:allow detrand heartbeat cadence is host wall-clock by definition
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if _, err := w.client.RenewLease(ctx, id); err != nil {
			if sweepd.IsGone(err) {
				w.logf("%s: lease %s: gone (expired and reassigned); abandoning", w.opts.ID, id)
				lost()
				return
			}
			if ctx.Err() != nil {
				return
			}
			w.logf("%s: lease %s: heartbeat: %v", w.opts.ID, id, err)
		}
	}
}

// runSlot recomputes one leased replicate and uploads its canonical bytes.
// The experiment runs with Slots restricted to exactly this index, so the
// registry Run executes one replicate and the OnResult hook fires once.
func (w *Worker) runSlot(ctx context.Context, grant *sweepd.ClaimResponse, slot int) error {
	exp, ok := scenario.Find(grant.Experiment)
	if !ok {
		return fmt.Errorf("experiment %q is not in this worker's registry", grant.Experiment)
	}
	uploaded := false
	cfg := scenario.Config{
		Quick:    grant.Quick,
		Seed:     grant.Seed,
		Ctx:      ctx,
		Slots:    []int{slot},
		Parallel: 1,
		OnResult: func(rep int, raw json.RawMessage) error {
			ack, err := w.client.UploadResult(ctx, grant.LeaseID, sweepd.UploadRequest{
				JobID:     grant.JobID,
				Replicate: rep,
				Result:    raw,
			})
			if err != nil {
				return fmt.Errorf("uploading replicate %d: %w", rep, err)
			}
			if ack.Duplicate {
				w.logf("%s: lease %s: replicate %d was already delivered (reassigned lease?)",
					w.opts.ID, grant.LeaseID, rep)
			}
			uploaded = true
			return nil
		},
	}
	if _, err := exp.Run(cfg); err != nil {
		return err
	}
	if !uploaded {
		return fmt.Errorf("replicate %d produced no result (slot out of range for %q?)", slot, grant.Experiment)
	}
	return nil
}

// sleepCtx waits d, returning false if ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	//lint:allow detrand poll pacing is host wall-clock by definition
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
