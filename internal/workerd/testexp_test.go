package workerd

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweepd"
)

// The workerd test registry (names are distinct from the sweepd test
// experiments — each test binary registers its own):
//
//   - workerd-test-chaos: 16 replicates of ~40ms — wide enough a window to
//     SIGKILL a worker or partition its link mid-sweep.
//   - workerd-test-slow: 4 replicates of ~250ms — the SIGTERM-mid-slot
//     scenario.
//   - workerd-test-gate: 2 replicates parked on a gate — deterministic
//     soft-stop semantics, in-process.
const (
	wexpChaos = "workerd-test-chaos"
	wexpSlow  = "workerd-test-slow"
	wexpGate  = "workerd-test-gate"

	wchaosReps = 16
	wslowReps  = 4
	wgateReps  = 2
)

// gateCh parks workerd-test-gate replicates; startedCh announces that a
// replicate has begun. The in-process soft-stop test (re)makes both.
var (
	gateCh    chan struct{}
	startedCh chan struct{}
)

// wval is the deterministic per-replicate value of every test experiment.
func wval(seed uint64, rep int) uint64 { return scenario.ReplicateSeed(seed, rep) % 1_000_003 }

// wResult is the artifact payload; it round-trips exactly through JSON.
type wResult struct {
	Experiment string   `json:"experiment"`
	Values     []uint64 `json:"values"`
}

func (r *wResult) Render() string { return fmt.Sprintf("%s: %d values", r.Experiment, len(r.Values)) }

// mkRun builds a single-sweep Run function of n replicates, each sleeping
// delay of host wall-clock.
func mkRun(name string, n int, delay time.Duration) func(scenario.Config) (scenario.Result, error) {
	return func(cfg scenario.Config) (scenario.Result, error) {
		vals, err := scenario.RunReplicates(cfg, n, func(rep int) (uint64, error) {
			if delay > 0 {
				time.Sleep(delay)
			}
			return wval(cfg.Seed, rep), nil
		})
		if err != nil {
			return nil, err
		}
		return &wResult{Experiment: name, Values: vals}, nil
	}
}

func init() {
	scenario.Register(scenario.Experiment{
		Name:      wexpChaos,
		Desc:      "workerd test: 16 slow replicates for kill/partition windows",
		Run:       mkRun(wexpChaos, wchaosReps, 40*time.Millisecond),
		Reps:      func(scenario.Config) int { return wchaosReps },
		Shardable: true,
	})
	scenario.Register(scenario.Experiment{
		Name:      wexpSlow,
		Desc:      "workerd test: 4 very slow replicates for SIGTERM-mid-slot",
		Run:       mkRun(wexpSlow, wslowReps, 250*time.Millisecond),
		Reps:      func(scenario.Config) int { return wslowReps },
		Shardable: true,
	})
	scenario.Register(scenario.Experiment{
		Name: wexpGate,
		Desc: "workerd test: gated replicates for deterministic soft stops",
		Run: func(cfg scenario.Config) (scenario.Result, error) {
			gate, started := gateCh, startedCh
			vals, err := scenario.RunReplicates(cfg, wgateReps, func(rep int) (uint64, error) {
				if started != nil {
					started <- struct{}{}
				}
				if gate != nil {
					<-gate
				}
				return wval(cfg.Seed, rep), nil
			})
			if err != nil {
				return nil, err
			}
			return &wResult{Experiment: wexpGate, Values: vals}, nil
		},
		Reps:      func(scenario.Config) int { return wgateReps },
		Shardable: true,
	})
}

// golden computes the artifact bytes an uninterrupted single-process run
// serves for a spec — the byte-identity baseline of every chaos scenario.
func golden(t *testing.T, spec sweepd.JobSpec) []byte {
	t.Helper()
	exp, ok := scenario.Find(spec.Experiment)
	if !ok {
		t.Fatalf("experiment %q not registered", spec.Experiment)
	}
	res, err := exp.Run(scenario.Config{Quick: spec.Quick, Seed: spec.Seed})
	if err != nil {
		t.Fatalf("golden run of %s: %v", spec.Experiment, err)
	}
	raw, err := sweepd.MarshalArtifact(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// coordinator is an in-process anvilserved: store + server + HTTP listener.
type coordinator struct {
	store  *sweepd.Store
	server *sweepd.Server
	http   *httptest.Server
	client *sweepd.Client
}

// startCoordinator serves a distributing sweepd server over a fresh store.
func startCoordinator(t *testing.T, opts sweepd.ServerOptions) *coordinator {
	t.Helper()
	store, err := sweepd.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	opts.Distribute = true
	srv := sweepd.NewServer(store, opts)
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	co := &coordinator{store: store, server: srv, http: ts, client: &sweepd.Client{Base: ts.URL}}
	t.Cleanup(func() { co.stop(t) })
	return co
}

// stop drains and closes the coordinator; safe to call twice.
func (co *coordinator) stop(t *testing.T) {
	t.Helper()
	if co.http == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := co.server.Drain(ctx); err != nil {
		t.Errorf("drain at teardown: %v", err)
	}
	co.http.Close()
	if err := co.store.Close(); err != nil {
		t.Errorf("store close at teardown: %v", err)
	}
	co.http = nil
}

// waitDone polls a job to a terminal state and returns its final status.
func waitDone(t *testing.T, c *sweepd.Client, id string, timeout time.Duration) sweepd.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	st, err := c.Wait(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("waiting for job %s: %v (last state %s)", id, err, st.State)
	}
	return st
}

// pollProgress waits until the job has at least min completed replicates
// while still running, so an interruption lands mid-sweep.
func pollProgress(t *testing.T, c *sweepd.Client, id string, min int) sweepd.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatalf("polling job %s: %v", id, err)
		}
		if st.Completed >= min {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s finished (%s) before the interrupt point %d", id, st.State, min)
		}
		select {
		case <-ctx.Done():
			t.Fatalf("job %s never reached %d completed replicates", id, min)
		case <-time.After(5 * time.Millisecond):
		}
	}
}
