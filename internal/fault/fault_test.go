package fault

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestSpecIsZero(t *testing.T) {
	if !(Spec{}).IsZero() {
		t.Error("zero spec not IsZero")
	}
	if (Spec{PMU: PMUSpec{SampleDropRate: 0.1}}).IsZero() {
		t.Error("non-zero spec reported IsZero")
	}
}

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{},
		{PMU: PMUSpec{SampleDropRate: 0.25, BufferCap: 8}},
		{PMU: PMUSpec{SampleSkidRate: 1, SkidMaxLines: 4}},
		{DRAM: DRAMSpec{RefreshSkipRate: 0.5, ECCCorrectableRate: 1e-6, ECCUncorrectableRate: 1e-9}},
		{Machine: MachineSpec{TimerMaxDelay: 1000, IRQMaxCost: 500}},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("valid spec %+v rejected: %v", s, err)
		}
	}
	bad := []Spec{
		{PMU: PMUSpec{SampleDropRate: -0.1}},
		{PMU: PMUSpec{SampleDropRate: 1.5}},
		{PMU: PMUSpec{SampleDropRate: math.NaN()}},
		{PMU: PMUSpec{SampleSkidRate: 0.5}}, // skid rate without distance
		{PMU: PMUSpec{SkidMaxLines: -1}},
		{PMU: PMUSpec{BufferCap: -2}},
		{DRAM: DRAMSpec{RefreshSkipRate: math.Inf(1)}},
		{DRAM: DRAMSpec{ECCCorrectableRate: -1}},
		{DRAM: DRAMSpec{ECCUncorrectableRate: math.NaN()}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid spec %+v accepted", s)
		}
	}
}

func TestNewPlanRejectsInvalidSpec(t *testing.T) {
	if _, err := NewPlan(Spec{PMU: PMUSpec{SampleDropRate: 2}}, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}

// degradedSpec exercises every layer at once.
func degradedSpec() Spec {
	return Spec{
		PMU:     PMUSpec{SampleDropRate: 0.2, SampleSkidRate: 0.1, SkidMaxLines: 4, OverflowMaxDelay: 2000},
		DRAM:    DRAMSpec{RefreshSkipRate: 0.1, ECCCorrectableRate: 1e-5, ECCUncorrectableRate: 1e-6},
		Machine: MachineSpec{TimerMaxDelay: 5000, IRQMaxCost: 1000},
	}
}

// runDegraded builds a machine, applies the plan, runs an mcf workload for a
// few milliseconds of simulated time, and returns the fault counters plus the
// DRAM activation count (a proxy for overall timing behaviour).
func runDegraded(t *testing.T, spec Spec, seed uint64) (Counters, uint64) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Apply(m); err != nil {
		t.Fatal(err)
	}
	prof, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("missing mcf profile")
	}
	prog, err := workload.New(prof)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, prog); err != nil {
		t.Fatal(err)
	}
	// A self-rearming kernel tick stands in for a detector's timer use, so
	// the machine-layer injector has something to delay.
	var tick func(now sim.Cycles)
	period := m.Freq.Cycles(100 * time.Microsecond)
	tick = func(now sim.Cycles) { m.Kernel.At(now+period, tick) }
	m.Kernel.At(period, tick)
	if err := m.Run(m.Freq.Cycles(4 * time.Millisecond)); err != nil && !errors.Is(err, machine.ErrAllDone) {
		t.Fatal(err)
	}
	return Snapshot(m), m.Mem.DRAM.Stats().Activations
}

func TestPlanDeterministic(t *testing.T) {
	c1, a1 := runDegraded(t, degradedSpec(), 42)
	c2, a2 := runDegraded(t, degradedSpec(), 42)
	if c1 != c2 {
		t.Errorf("same plan diverged:\n%+v\n%+v", c1, c2)
	}
	if a1 != a2 {
		t.Errorf("same plan diverged on activations: %d vs %d", a1, a2)
	}
}

func TestZeroSpecInstallsNothing(t *testing.T) {
	_, clean := runDegraded(t, Spec{}, 42)
	c, withZero := runDegraded(t, Spec{}, 99) // seed must not matter for a zero spec
	if clean != withZero {
		t.Errorf("zero spec perturbed the run: %d vs %d activations", clean, withZero)
	}
	if c != (Counters{}) {
		t.Errorf("zero spec produced fault counters: %+v", c)
	}
}

func TestDegradedRunInjects(t *testing.T) {
	c, _ := runDegraded(t, degradedSpec(), 42)
	// The mcf run fires kernel timers, so the machine layer must show work.
	if c.Machine.DelayedTimers == 0 {
		t.Errorf("no timers delayed under TimerMaxDelay: %+v", c.Machine)
	}
	if c.DRAM.SkippedRefreshes == 0 {
		t.Errorf("no refreshes skipped at 10%% skip rate: %+v", c.DRAM)
	}
}
