// Package fault is the simulator's deterministic fault-injection subsystem:
// a declarative Spec of hardware degradations (PMU sampling faults, DRAM
// refresh/reliability faults, kernel interrupt-delivery faults) and a seeded
// Plan that wires the matching injectors into a built machine.
//
// The determinism contract mirrors the rest of the simulator: every fault
// decision is drawn from substreams of a sim.Rand derived from the scenario
// seed, never from wall-clock or global state, so the same (Spec, seed,
// workload) degrades bit-identically on every run — and a zero Spec installs
// nothing at all, leaving fault-free runs byte-identical to builds that
// predate this package.
package fault

import (
	"fmt"

	"repro/internal/sim"
)

// PMUSpec declares sampling-path degradations (see pmu.FaultConfig).
type PMUSpec struct {
	// SampleDropRate is the probability a taken PEBS sample is lost.
	SampleDropRate float64 `json:"sample_drop_rate,omitempty"`
	// SampleSkidRate is the probability a sample's address skids by up to
	// SkidMaxLines cache lines; SkidMaxLines must be positive when the rate
	// is.
	SampleSkidRate float64 `json:"sample_skid_rate,omitempty"`
	SkidMaxLines   int     `json:"skid_max_lines,omitempty"`
	// BufferCap shrinks the PEBS buffer when positive and below the
	// machine's configured capacity.
	BufferCap int `json:"buffer_cap,omitempty"`
	// OverflowMaxDelay postpones overflow-interrupt delivery by up to this
	// many cycles.
	OverflowMaxDelay sim.Cycles `json:"overflow_max_delay,omitempty"`
}

// DRAMSpec declares refresh and reliability degradations (see
// dram.FaultConfig).
type DRAMSpec struct {
	// RefreshSkipRate is the probability a scheduled REF slot is skipped.
	RefreshSkipRate float64 `json:"refresh_skip_rate,omitempty"`
	// ECCCorrectableRate / ECCUncorrectableRate are per-activation
	// probabilities of transient single-bit and double-bit-per-word errors.
	ECCCorrectableRate   float64 `json:"ecc_correctable_rate,omitempty"`
	ECCUncorrectableRate float64 `json:"ecc_uncorrectable_rate,omitempty"`
}

// MachineSpec declares kernel interrupt-delivery degradations (see
// machine.FaultConfig).
type MachineSpec struct {
	// TimerMaxDelay postpones every kernel timer by up to this many cycles.
	TimerMaxDelay sim.Cycles `json:"timer_max_delay,omitempty"`
	// IRQMaxCost charges up to this many extra kernel cycles per fired
	// timer.
	IRQMaxCost sim.Cycles `json:"irq_max_cost,omitempty"`
}

// Spec is the full declarative fault plan of one scenario. The zero value
// means a perfect machine.
type Spec struct {
	PMU     PMUSpec     `json:"pmu,omitempty"`
	DRAM    DRAMSpec    `json:"dram,omitempty"`
	Machine MachineSpec `json:"machine,omitempty"`
}

// IsZero reports whether the spec injects nothing.
func (s Spec) IsZero() bool { return s == Spec{} }

func checkRate(name string, v float64) error {
	// NaN fails both comparisons' complement, so spell the check as "not
	// inside [0,1]" to reject it too.
	if !(v >= 0 && v <= 1) {
		return fmt.Errorf("fault: %s must be in [0,1], got %g", name, v)
	}
	return nil
}

// Validate checks every rate and bound. Probabilities must lie in [0,1]
// (NaN rejected); counts must be non-negative; a positive skid rate needs a
// positive skid distance.
func (s Spec) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"pmu.sample_drop_rate", s.PMU.SampleDropRate},
		{"pmu.sample_skid_rate", s.PMU.SampleSkidRate},
		{"dram.refresh_skip_rate", s.DRAM.RefreshSkipRate},
		{"dram.ecc_correctable_rate", s.DRAM.ECCCorrectableRate},
		{"dram.ecc_uncorrectable_rate", s.DRAM.ECCUncorrectableRate},
	} {
		if err := checkRate(r.name, r.v); err != nil {
			return err
		}
	}
	if s.PMU.SkidMaxLines < 0 {
		return fmt.Errorf("fault: pmu.skid_max_lines must be non-negative, got %d", s.PMU.SkidMaxLines)
	}
	if s.PMU.SampleSkidRate > 0 && s.PMU.SkidMaxLines == 0 {
		return fmt.Errorf("fault: pmu.sample_skid_rate %g needs a positive pmu.skid_max_lines",
			s.PMU.SampleSkidRate)
	}
	if s.PMU.BufferCap < 0 {
		return fmt.Errorf("fault: pmu.buffer_cap must be non-negative, got %d", s.PMU.BufferCap)
	}
	return nil
}
