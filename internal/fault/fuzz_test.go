package fault

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// FuzzFaultSpec: Validate never panics, and any spec that validates must
// survive a JSON round trip unchanged (the scenario engine persists specs in
// experiment artifacts).
func FuzzFaultSpec(f *testing.F) {
	f.Add(0.0, 0.0, 0, 0, uint64(0), 0.0, 0.0, 0.0, uint64(0), uint64(0))
	f.Add(0.25, 0.1, 4, 16, uint64(2000), 0.1, 1e-5, 1e-6, uint64(5000), uint64(1000))
	f.Add(-1.0, 2.0, -3, -1, uint64(1)<<63, 1.5, -0.5, 3.0, ^uint64(0), uint64(7))
	f.Fuzz(func(t *testing.T, drop, skid float64, skidLines, bufCap int, ovfDelay uint64,
		refSkip, eccC, eccU float64, timerDelay, irqCost uint64) {
		s := Spec{
			PMU: PMUSpec{
				SampleDropRate:   drop,
				SampleSkidRate:   skid,
				SkidMaxLines:     skidLines,
				BufferCap:        bufCap,
				OverflowMaxDelay: sim.Cycles(ovfDelay),
			},
			DRAM: DRAMSpec{
				RefreshSkipRate:      refSkip,
				ECCCorrectableRate:   eccC,
				ECCUncorrectableRate: eccU,
			},
			Machine: MachineSpec{
				TimerMaxDelay: sim.Cycles(timerDelay),
				IRQMaxCost:    sim.Cycles(irqCost),
			},
		}
		if err := s.Validate(); err != nil {
			return
		}
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("valid spec failed to marshal: %v", err)
		}
		var back Spec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("round trip failed to unmarshal: %v", err)
		}
		if back != s {
			t.Fatalf("round trip changed the spec:\n in: %+v\nout: %+v", s, back)
		}
	})
}
