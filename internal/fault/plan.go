package fault

import (
	"repro/internal/dram"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/sim"
)

// planSalt decorrelates the fault plan's RNG root from the scenario seed's
// other uses (PMU sampler stream, frame allocator stream).
const planSalt = 0xfa01_7a57_1c3d_b00f

// Plan is a validated Spec bound to a seed: the realisable fault plan of one
// replicate. Applying the same plan to identically built machines degrades
// them identically.
type Plan struct {
	Spec Spec
	seed uint64
}

// NewPlan validates the spec and binds it to the scenario seed.
func NewPlan(spec Spec, seed uint64) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Plan{Spec: spec, seed: seed}, nil
}

// Apply wires the plan's injectors into the machine. A zero spec installs
// nothing — not even the RNG — so fault-free machines behave byte-
// identically to builds without fault support. Per-layer substreams are
// split in a fixed order, so enabling one layer never perturbs another
// layer's decisions.
func (p *Plan) Apply(m *machine.Machine) error {
	if p.Spec.IsZero() {
		return nil
	}
	root := sim.NewRand(p.seed ^ planSalt)
	pmuRng, dramRng, machRng := root.Split(), root.Split(), root.Split()
	if s := p.Spec.PMU; s != (PMUSpec{}) {
		m.Mem.PMU.InjectFaults(pmu.FaultConfig{
			SampleDropRate:   s.SampleDropRate,
			SampleSkidRate:   s.SampleSkidRate,
			SkidMaxLines:     s.SkidMaxLines,
			BufferCap:        s.BufferCap,
			OverflowMaxDelay: s.OverflowMaxDelay,
		}, pmuRng)
	}
	if s := p.Spec.DRAM; s != (DRAMSpec{}) {
		if err := m.Mem.DRAM.InjectFaults(dram.FaultConfig{
			RefreshSkipRate:      s.RefreshSkipRate,
			ECCCorrectableRate:   s.ECCCorrectableRate,
			ECCUncorrectableRate: s.ECCUncorrectableRate,
		}, dramRng); err != nil {
			return err
		}
	}
	if s := p.Spec.Machine; s != (MachineSpec{}) {
		m.InjectFaults(machine.FaultConfig{
			TimerMaxDelay: s.TimerMaxDelay,
			IRQMaxCost:    s.IRQMaxCost,
		}, machRng)
	}
	return nil
}

// Counters is the aggregate fault telemetry of one machine after a run:
// what each injector actually did, so degraded-hardware experiments report
// their own noise level.
type Counters struct {
	PMU     pmu.FaultStats
	DRAM    dram.FaultStats
	Machine machine.FaultStats
}

// Snapshot collects the fault counters of a machine (all zero when no
// injector was installed).
func Snapshot(m *machine.Machine) Counters {
	return Counters{
		PMU:     m.Mem.PMU.FaultStats(),
		DRAM:    m.Mem.DRAM.FaultStats(),
		Machine: m.FaultStats(),
	}
}
