package cache

import (
	"testing"

	"repro/internal/sim"
)

// memStub counts memory accesses beneath the hierarchy.
type memStub struct {
	reads, writes int
	latency       sim.Cycles
}

func (m *memStub) Access(pa uint64, write bool, now sim.Cycles) sim.Cycles {
	if write {
		m.writes++
	} else {
		m.reads++
	}
	return m.latency
}

func newTestHierarchy(t *testing.T) (*Hierarchy, *memStub) {
	t.Helper()
	mem := &memStub{latency: 150}
	h, err := NewHierarchy(SandyBridgeConfig(), mem)
	if err != nil {
		t.Fatal(err)
	}
	return h, mem
}

func TestLevelConfigValidate(t *testing.T) {
	bad := []LevelConfig{
		{Name: "a", SizeKB: 0, Ways: 8, Slices: 1},
		{Name: "b", SizeKB: 32, Ways: 0, Slices: 1},
		{Name: "c", SizeKB: 32, Ways: 8, Slices: 0},
		{Name: "d", SizeKB: 33, Ways: 8, Slices: 1}, // non power-of-two sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestLevelBasicHitMiss(t *testing.T) {
	l, err := NewLevel(LevelConfig{Name: "t", SizeKB: 32, Ways: 8, Slices: 1, Policy: TrueLRU, Latency: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Access(0x1000, false) {
		t.Error("cold access hit")
	}
	l.Fill(0x1000, false)
	if !l.Access(0x1000, false) {
		t.Error("filled line missed")
	}
	if !l.Access(0x1000+LineSize-1, false) {
		t.Error("same-line offset missed")
	}
	if l.Access(0x1000+LineSize, false) {
		t.Error("adjacent line hit")
	}
	st := l.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLevelEvictionAndDirty(t *testing.T) {
	// 64 sets, 2 ways: tiny cache to force evictions.
	l, err := NewLevel(LevelConfig{Name: "t", SizeKB: 8, Ways: 2, Slices: 1, Policy: TrueLRU, Latency: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	setStride := uint64(l.Sets() * LineSize)
	a, b, c := uint64(0), setStride, 2*setStride // all map to set 0
	l.Fill(a, true)                              // dirty
	l.Fill(b, false)
	ev, evicted := l.Fill(c, false)
	if !evicted {
		t.Fatal("third fill into 2-way set did not evict")
	}
	if ev.PA != a || !ev.Dirty {
		t.Errorf("evicted %+v, want dirty line at %#x", ev, a)
	}
}

func TestLevelInvalidate(t *testing.T) {
	l, err := NewLevel(LevelConfig{Name: "t", SizeKB: 8, Ways: 2, Slices: 1, Policy: TrueLRU, Latency: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Fill(0x40, true)
	present, dirty := l.Invalidate(0x40)
	if !present || !dirty {
		t.Errorf("invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if l.Lookup(0x40) {
		t.Error("line still present after invalidate")
	}
	present, _ = l.Invalidate(0x40)
	if present {
		t.Error("double invalidate reported present")
	}
}

func TestSlicingSplitsAddresses(t *testing.T) {
	cfg := SandyBridgeConfig().Levels[2]
	l, err := NewLevel(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < 4096; i++ {
		pa := uint64(i) * 64 * 131 // scatter
		s := l.SliceOf(pa)
		if s < 0 || s >= cfg.Slices {
			t.Fatalf("slice %d out of range", s)
		}
		counts[s]++
	}
	if len(counts) != cfg.Slices {
		t.Fatalf("only %d slices used", len(counts))
	}
	for s, n := range counts {
		if n < 4096/cfg.Slices/2 {
			t.Errorf("slice %d badly underloaded: %d", s, n)
		}
	}
}

func TestCongruentRequiresSameSetAndSlice(t *testing.T) {
	cfg := SandyBridgeConfig().Levels[2]
	l, err := NewLevel(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(0x100000)
	stride := uint64(l.Sets() * LineSize)
	found := 0
	for i := uint64(1); i < 64; i++ {
		cand := base + i*stride
		if l.SetOf(cand) != l.SetOf(base) {
			t.Fatalf("stride %d changed the set index", stride)
		}
		if l.Congruent(base, cand) {
			found++
		}
	}
	if found == 0 {
		t.Error("no congruent addresses found at set stride; slice hash broken?")
	}
	if found == 63 {
		t.Error("every set-stride address congruent; slice hash is a no-op")
	}
}

func TestHierarchyMissGoesToMemoryOnce(t *testing.T) {
	h, mem := newTestHierarchy(t)
	res := h.Access(0x4000, false, 0)
	if res.Source != SrcDRAM || !res.LLCMiss {
		t.Errorf("cold access: %+v", res)
	}
	if mem.reads != 1 {
		t.Errorf("memory reads = %d, want 1", mem.reads)
	}
	if res.Latency <= 150 {
		t.Errorf("latency %d should include LLC probe + memory", res.Latency)
	}
	res = h.Access(0x4000, false, 100)
	if res.Source != SrcL1 {
		t.Errorf("second access source = %v, want L1", res.Source)
	}
	if mem.reads != 1 {
		t.Errorf("second access went to memory")
	}
}

func TestHierarchyInclusionOnLLCHit(t *testing.T) {
	h, _ := newTestHierarchy(t)
	h.Access(0x8000, false, 0)
	// Evict from L1 by filling its set, leaving the line in L2/L3.
	l1 := h.Level(0)
	setStride := uint64(l1.Sets() * LineSize)
	for i := uint64(1); i <= 8; i++ {
		h.Access(0x8000+i*setStride*37, false, 0) // different L1 sets mostly
	}
	// Force: access 8 conflicting lines in 0x8000's L1 set.
	for i := uint64(1); i <= 8; i++ {
		h.Access(0x8000+i*setStride, false, 0)
	}
	res := h.Access(0x8000, false, 0)
	if res.Source == SrcDRAM {
		t.Errorf("line lost from the whole hierarchy: %+v", res)
	}
	if res.Source == SrcL1 {
		t.Errorf("line unexpectedly still in L1")
	}
}

func TestHierarchyWritebackOnDirtyEviction(t *testing.T) {
	mem := &memStub{latency: 150}
	// Single tiny level so evictions go straight to memory.
	h, err := NewHierarchy(HierarchyConfig{
		Levels:       []LevelConfig{{Name: "only", SizeKB: 8, Ways: 2, Slices: 1, Policy: TrueLRU, Latency: 4}},
		FlushLatency: 10,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	sets := h.Level(0).Sets()
	stride := uint64(sets * LineSize)
	h.Access(0, true, 0) // dirty store
	h.Access(stride, false, 0)
	h.Access(2*stride, false, 0) // evicts the dirty line
	if mem.writes != 1 {
		t.Errorf("memory writes = %d, want 1 (dirty writeback)", mem.writes)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h, mem := newTestHierarchy(t)
	h.Access(0xC000, true, 0)
	if !h.Contains(0xC000) {
		t.Fatal("line not resident after access")
	}
	lat, wb := h.Flush(0xC000, 10)
	if lat != SandyBridgeConfig().FlushLatency {
		t.Errorf("flush latency = %d", lat)
	}
	if wb != 1 || mem.writes != 1 {
		t.Errorf("flush of dirty line: wb=%d memWrites=%d, want 1/1", wb, mem.writes)
	}
	if h.Contains(0xC000) {
		t.Error("line still resident after flush")
	}
	// Next access must go to DRAM again — the hammering primitive.
	res := h.Access(0xC000, false, 20)
	if res.Source != SrcDRAM {
		t.Errorf("post-flush access source = %v, want DRAM", res.Source)
	}
	// Flushing a clean or absent line writes nothing.
	if _, wb := h.Flush(0xF000, 30); wb != 0 {
		t.Error("flush of absent line wrote back")
	}
}

func TestHierarchyLLCBackInvalidation(t *testing.T) {
	// Build a hierarchy with a tiny LLC so we can evict deterministically,
	// and a large L1 so the victim line stays in L1 until back-invalidated.
	mem := &memStub{latency: 150}
	h, err := NewHierarchy(HierarchyConfig{
		Levels: []LevelConfig{
			{Name: "L1", SizeKB: 32, Ways: 8, Slices: 1, Policy: TrueLRU, Latency: 4},
			{Name: "LLC", SizeKB: 8, Ways: 2, Slices: 1, Policy: TrueLRU, Latency: 20},
		},
		FlushLatency: 10,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	llc := h.Level(1)
	stride := uint64(llc.Sets() * LineSize)
	base := uint64(0)
	h.Access(base, false, 0)
	h.Access(base+stride, false, 0)
	h.Access(base+2*stride, false, 0) // LLC eviction of base
	if h.Contains(base) {
		t.Error("inclusive hierarchy kept an LLC-evicted line in L1")
	}
	res := h.Access(base, false, 100)
	if res.Source != SrcDRAM {
		t.Errorf("re-access source = %v, want DRAM (line was back-invalidated)", res.Source)
	}
}

func TestHierarchyStoresAllocateAndDirty(t *testing.T) {
	h, mem := newTestHierarchy(t)
	h.Access(0x2000, true, 0)
	if mem.reads != 1 || mem.writes != 0 {
		t.Errorf("store miss: reads=%d writes=%d, want RFO read only", mem.reads, mem.writes)
	}
	lat, wb := h.Flush(0x2000, 10)
	_ = lat
	if wb != 1 {
		t.Error("store did not dirty the line")
	}
	st := h.Stats()
	if st.Stores != 1 || st.Loads != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHierarchyErrors(t *testing.T) {
	if _, err := NewHierarchy(HierarchyConfig{}, &memStub{}); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := NewHierarchy(SandyBridgeConfig(), nil); err == nil {
		t.Error("nil memory accepted")
	}
	bad := SandyBridgeConfig()
	bad.Levels[0].Ways = 0
	if _, err := NewHierarchy(bad, &memStub{}); err == nil {
		t.Error("bad level accepted")
	}
}

func TestBackToBackHitsPipeline(t *testing.T) {
	h, _ := newTestHierarchy(t)
	cfg := SandyBridgeConfig().Levels[0]
	h.Access(0x1000, false, 0) // cold fills
	h.Access(0x1040, false, 5)
	first := h.Access(0x1000, false, 10)  // L1 hit after a DRAM fill: full latency
	second := h.Access(0x1040, false, 20) // L1 hit right after an L1 hit
	if first.Latency != cfg.Latency {
		t.Errorf("post-miss hit latency %d, want full latency %d", first.Latency, cfg.Latency)
	}
	if second.Latency != cfg.Throughput {
		t.Errorf("back-to-back L1 hit cost %d, want throughput %d", second.Latency, cfg.Throughput)
	}
	// A miss resets the pipeline.
	h.Access(0x90000, false, 30)
	if h.Access(0x1000, false, 40); h.lastHit != 0 {
		t.Error("lastHit not tracking L1")
	}
}

func TestResidentWays(t *testing.T) {
	l, err := NewLevel(LevelConfig{Name: "t", SizeKB: 8, Ways: 2, Slices: 1, Policy: TrueLRU, Latency: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stride := uint64(l.Sets() * LineSize)
	if l.ResidentWays(0) != 0 {
		t.Error("empty set reports residents")
	}
	l.Fill(0, false)
	l.Fill(stride, false)
	if l.ResidentWays(0) != 2 {
		t.Errorf("ResidentWays = %d, want 2", l.ResidentWays(0))
	}
}

func TestNextLinePrefetchHelpsStreams(t *testing.T) {
	run := func(prefetch bool) (uint64, uint64) {
		mem := &memStub{latency: 150}
		cfg := SandyBridgeConfig()
		cfg.NextLinePrefetch = prefetch
		h, err := NewHierarchy(cfg, mem)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 4096; i++ {
			h.Access(i*LineSize, false, sim.Cycles(i*100))
		}
		return h.Stats().LLCMisses, h.Stats().Prefetches
	}
	missOff, pfOff := run(false)
	missOn, pfOn := run(true)
	if pfOff != 0 {
		t.Error("prefetches recorded while disabled")
	}
	if pfOn == 0 {
		t.Fatal("no prefetches recorded")
	}
	if missOn*2 > missOff {
		t.Errorf("prefetcher barely helped a pure stream: %d vs %d misses", missOn, missOff)
	}
}

func TestPrefetchMaintainsInclusion(t *testing.T) {
	mem := &memStub{latency: 150}
	cfg := SandyBridgeConfig()
	cfg.NextLinePrefetch = true
	h, err := NewHierarchy(cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(31)
	var lines []uint64
	for i := 0; i < 20000; i++ {
		pa := rng.Uint64n(1<<22) &^ (LineSize - 1)
		h.Access(pa, rng.Bool(0.2), sim.Cycles(i*20))
		lines = append(lines, pa)
		if len(lines) > 32 {
			lines = lines[1:]
		}
		if i%512 == 0 {
			for _, l := range lines {
				for j := 0; j < 2; j++ {
					if h.Level(j).Lookup(l) && !h.LLC().Lookup(l) {
						t.Fatalf("inclusion violated for %#x after prefetch evictions", l)
					}
				}
			}
		}
	}
}

func TestSandyBridgeConfigAndSourceStrings(t *testing.T) {
	h, err := NewHierarchy(SandyBridgeConfig(), &memStub{latency: 100})
	if err != nil {
		t.Fatal(err)
	}
	if h.LLC().Config().Ways != 12 {
		t.Errorf("LLC ways = %d", h.LLC().Config().Ways)
	}
	for src, want := range map[DataSource]string{
		SrcL1: "L1", SrcL2: "L2", SrcL3: "L3", SrcDRAM: "DRAM",
	} {
		if src.String() != want {
			t.Errorf("%d.String() = %q", src, src.String())
		}
	}
	if DataSource(9).String() != "DataSource(9)" {
		t.Error("unknown source string")
	}
}
