package cache

import (
	"testing"

	"repro/internal/sim"
)

// benchMem is a fixed-latency memory backend so the benchmarks measure the
// hierarchy itself, not the DRAM model.
type benchMem struct{}

func (benchMem) Access(pa uint64, write bool, now sim.Cycles) sim.Cycles { return 200 }

// sandyBridge builds the default hierarchy over the fixed-latency backend,
// failing the benchmark on error.
func sandyBridge(tb testing.TB) *Hierarchy {
	tb.Helper()
	h, err := NewHierarchy(SandyBridgeConfig(), benchMem{})
	if err != nil {
		tb.Fatal(err)
	}
	return h
}

// BenchmarkHotPath measures the per-access cost of the hierarchy on the
// access patterns that dominate real runs: the L1-hit steady state every
// workload spends most of its time in, the CLFLUSH hammer kernel, a
// streaming (all-miss) sweep, and a flush storm.
func BenchmarkHotPath(b *testing.B) {
	b.Run("l1-hit", func(b *testing.B) {
		h := sandyBridge(b)
		h.Access(0x1000, false, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Access(0x1000, false, sim.Cycles(i))
		}
	})
	b.Run("l1-stream", func(b *testing.B) {
		// 16 KB window: fits in L1, so the steady state is all L1 hits
		// across 256 distinct lines.
		h := sandyBridge(b)
		const lines = 256
		for i := 0; i < lines; i++ {
			h.Access(uint64(i)*LineSize, false, 0)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Access(uint64(i%lines)*LineSize, false, sim.Cycles(i))
		}
	})
	b.Run("hammer", func(b *testing.B) {
		// The CLFLUSH hammer kernel: two addresses in distinct rows, each
		// access followed by a flush, so every access misses to memory.
		h := sandyBridge(b)
		a1, a2 := uint64(0x10000), uint64(0x30000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now := sim.Cycles(i) * 400
			h.Access(a1, false, now)
			h.Flush(a1, now+100)
			h.Access(a2, false, now+200)
			h.Flush(a2, now+300)
		}
	})
	b.Run("stream", func(b *testing.B) {
		// Streaming sweep over 64 MB: misses, fills and LLC evictions.
		h := sandyBridge(b)
		const window = 64 << 20
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pa := (uint64(i) * LineSize) % window
			h.Access(pa, i&7 == 0, sim.Cycles(i)*200)
		}
	})
	b.Run("flush-storm", func(b *testing.B) {
		h := sandyBridge(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pa := uint64(i%512) * LineSize
			h.Flush(pa, sim.Cycles(i)*10)
		}
	})
}

// TestAccessSteadyStateAllocs pins the allocation-free property of the hot
// path: a cache hit in the steady state must not allocate.
func TestAccessSteadyStateAllocs(t *testing.T) {
	h := sandyBridge(t)
	h.Access(0x1000, false, 0)
	h.Access(0x2000, false, 1)
	now := sim.Cycles(2)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Access(0x1000, false, now)
		h.Access(0x2000, false, now+1)
		now += 2
	})
	if allocs != 0 {
		t.Errorf("steady-state Hierarchy.Access allocates %.1f times per run, want 0", allocs)
	}
}
