package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestNewPolicyErrors(t *testing.T) {
	if _, err := NewPolicy("bogus", 8, nil); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewPolicy(TrueLRU, 0, nil); err == nil {
		t.Error("zero ways accepted")
	}
}

func TestAllPoliciesConstructible(t *testing.T) {
	for _, k := range AllPolicies() {
		for _, ways := range []int{1, 2, 8, 12, 16} {
			p, err := NewPolicy(k, ways, sim.NewRand(1))
			if err != nil {
				t.Fatalf("%s/%d: %v", k, ways, err)
			}
			if p.Name() != string(k) {
				t.Errorf("%s reports name %s", k, p.Name())
			}
		}
	}
}

// Property: Victim always returns a way in range, whatever the access mix.
func TestPolicyVictimInRange(t *testing.T) {
	for _, k := range AllPolicies() {
		k := k
		err := quick.Check(func(ops []byte) bool {
			const ways = 12
			p := MustPolicy(k, ways, sim.NewRand(7))
			for _, op := range ops {
				switch op % 3 {
				case 0:
					p.Touch(int(op>>2) % ways)
				case 1:
					v := p.Victim()
					if v < 0 || v >= ways {
						return false
					}
				case 2:
					p.Invalidate(int(op>>2) % ways)
				}
			}
			v := p.Victim()
			return v >= 0 && v < ways
		}, &quick.Config{MaxCount: 50})
		if err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}

func TestTrueLRUOrder(t *testing.T) {
	p := MustPolicy(TrueLRU, 4, nil)
	p.Touch(0)
	p.Touch(1)
	p.Touch(2)
	p.Touch(3)
	if v := p.Victim(); v != 0 {
		t.Errorf("victim = %d, want 0 (least recent)", v)
	}
	p.Touch(0)
	if v := p.Victim(); v != 1 {
		t.Errorf("victim after touch(0) = %d, want 1", v)
	}
	p.Invalidate(3)
	if v := p.Victim(); v != 3 {
		t.Errorf("victim after invalidate(3) = %d, want 3", v)
	}
}

// TestBitPLRUPaperSemantics checks the exact behaviour the paper describes:
// MRU bit set on access; LRU is the lowest-index clear bit; setting the last
// clear bit clears all the others.
func TestBitPLRUPaperSemantics(t *testing.T) {
	p := MustPolicy(BitPLRU, 4, nil)
	if v := p.Victim(); v != 0 {
		t.Fatalf("initial victim = %d, want 0", v)
	}
	p.Touch(0)
	if v := p.Victim(); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
	p.Touch(1)
	p.Touch(2)
	// Bits: 0,1,2 set; victim = 3.
	if v := p.Victim(); v != 3 {
		t.Fatalf("victim = %d, want 3", v)
	}
	// Touching 3 saturates: others clear, only 3's bit remains set.
	p.Touch(3)
	if v := p.Victim(); v != 0 {
		t.Fatalf("victim after saturation = %d, want 0", v)
	}
	p.Touch(1)
	if v := p.Victim(); v != 0 {
		t.Fatalf("victim = %d, want 0 (bit 0 still clear)", v)
	}
}

// TestBitPLRUFigure1bPattern verifies the access-pattern property the
// CLFLUSH-free attack relies on (Fig. 1b): in a 12-way Bit-PLRU set holding
// the aggressor A and conflicting lines X1..X12, the crafted sequence
// misses only on A and X11 in every iteration.
func TestBitPLRUFigure1bPattern(t *testing.T) {
	const ways = 12
	// Simulate a single fully-warmed set: track which "address" occupies
	// each way plus the policy state. Addresses: 0 = A, 1..12 = X1..X12.
	p := MustPolicy(BitPLRU, ways, nil)
	occupant := make([]int, ways)
	where := map[int]int{} // address -> way
	for i := 0; i < ways; i++ {
		occupant[i] = -1
	}
	misses := map[int]int{}
	access := func(addr int) {
		if w, ok := where[addr]; ok {
			p.Touch(w)
			return
		}
		misses[addr]++
		// Fill: pick invalid way first, then the policy victim.
		way := -1
		for i, o := range occupant {
			if o == -1 {
				way = i
				break
			}
		}
		if way == -1 {
			way = p.Victim()
			delete(where, occupant[way])
		}
		occupant[way] = addr
		where[addr] = way
		p.Touch(way)
	}

	// Warm-up iteration (cold misses), then measure steady state.
	iter := func() {
		access(0) // A
		for x := 1; x <= 10; x++ {
			access(x) // X1..X10: drives A to the LRU position
		}
		access(11) // X11: evicts A
		for x := 1; x <= 9; x++ {
			access(x) // X1..X9 hit
		}
		access(12) // X12: puts X11 at LRU
	}
	for i := 0; i < 4; i++ {
		iter() // cold misses + convergence to the steady state
	}
	misses = map[int]int{}
	const n = 100
	for i := 0; i < n; i++ {
		iter()
	}
	// The steady state must have exactly two misses per iteration, on the
	// same two addresses every time. (Which two addresses of the 13 end up
	// in the miss slots depends on way-placement dynamics; the attack
	// dry-runs the pattern on a policy simulator and assigns the aggressor
	// address to one of the observed miss slots, exactly as the authors
	// tuned their pattern against simulators correlated with counters.)
	total := 0
	missEvery := 0
	for _, m := range misses {
		total += m
		if m == n {
			missEvery++
		}
	}
	if total != 2*n {
		t.Errorf("total misses = %d, want exactly %d: %v", total, 2*n, misses)
	}
	if missEvery != 2 {
		t.Errorf("want exactly 2 addresses missing every iteration, got %d: %v", missEvery, misses)
	}
}

func TestNRUAgesLazily(t *testing.T) {
	p := MustPolicy(NRU, 4, nil)
	p.Touch(0)
	p.Touch(1)
	p.Touch(2)
	p.Touch(3)
	// All referenced: NRU clears everyone and evicts way 0.
	if v := p.Victim(); v != 0 {
		t.Errorf("victim = %d, want 0", v)
	}
	// After the lazy clear, way 1 is a clear-bit victim... way 0 first.
	if v := p.Victim(); v != 0 {
		t.Errorf("victim = %d, want 0 (bits now all clear)", v)
	}
	p.Touch(0)
	if v := p.Victim(); v != 1 {
		t.Errorf("victim = %d, want 1", v)
	}
}

func TestNRUDiffersFromBitPLRU(t *testing.T) {
	// The distinguishing sequence: saturate all bits, then touch one more.
	// Bit-PLRU clears the others eagerly at saturation; NRU clears at
	// eviction time. After touching 0,1,2,3 then 1:
	//   Bit-PLRU: bits {3:set from saturation-clear? no ->} recompute:
	//   touch3 saturates -> only 3 set; touch1 -> {1,3} set; victim=0.
	//   NRU: bits all set, touch1 keeps all set; victim triggers clear -> 0,
	//   but *after* clearing, bit state differs.
	bp := MustPolicy(BitPLRU, 4, nil)
	nru := MustPolicy(NRU, 4, nil)
	for _, w := range []int{0, 1, 2, 3, 1} {
		bp.Touch(w)
		nru.Touch(w)
	}
	if v := bp.Victim(); v != 0 {
		t.Errorf("bit-plru victim = %d, want 0", v)
	}
	// NRU: all bits set -> lazy clear, victim 0, and now everything clear.
	if v := nru.Victim(); v != 0 {
		t.Errorf("nru victim = %d, want 0", v)
	}
	nru.Touch(0)
	bp.Touch(0)
	// bp bits now {0,1,3}: victim 2. nru bits {0}: victim 1.
	if bp.Victim() == nru.Victim() {
		t.Error("expected Bit-PLRU and NRU to diverge on this sequence")
	}
}

func TestTreePLRUBasics(t *testing.T) {
	p := MustPolicy(TreePLRU, 4, nil)
	p.Touch(0)
	p.Touch(1)
	p.Touch(2)
	p.Touch(3)
	// Tree now points away from 3 at root... victim must be in {0,1}.
	v := p.Victim()
	if v != 0 && v != 1 {
		t.Errorf("victim = %d, want 0 or 1", v)
	}
	p.Invalidate(2)
	if v := p.Victim(); v != 2 {
		t.Errorf("victim after invalidate = %d, want 2", v)
	}
}

func TestTreePLRUNonPowerOfTwo(t *testing.T) {
	p := MustPolicy(TreePLRU, 12, nil)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := p.Victim()
		if v < 0 || v >= 12 {
			t.Fatalf("victim %d out of range", v)
		}
		seen[v] = true
		p.Touch(v)
	}
	if len(seen) < 12 {
		t.Errorf("only %d distinct victims over 200 rounds; phantom ways leaking?", len(seen))
	}
}

func TestSRRIPPromotionAndAging(t *testing.T) {
	p := MustPolicy(SRRIP, 4, nil)
	// Fill all four ways (each Touch on an empty way inserts at max-1).
	for w := 0; w < 4; w++ {
		p.Touch(w)
	}
	// Promote way 2 to rrpv 0.
	p.Touch(2)
	// Victim search ages everyone until someone hits max; ways at max-1
	// reach max first; lowest index wins.
	if v := p.Victim(); v != 0 {
		t.Errorf("victim = %d, want 0", v)
	}
	p.Invalidate(3)
	if v := p.Victim(); v != 0 {
		// After aging in the previous Victim call, way 0 may already be max.
		t.Logf("victim after invalidate = %d (0 also acceptable)", v)
	}
}

func TestRandomPolicyCoversAllWays(t *testing.T) {
	p := MustPolicy(Random, 8, sim.NewRand(99))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[p.Victim()] = true
	}
	if len(seen) != 8 {
		t.Errorf("random victim covered %d/8 ways", len(seen))
	}
}

// Policies must be distinguishable by some access pattern — this is the
// foundation of the §2.2 inference experiment.
func TestPoliciesProduceDistinctVictimTraces(t *testing.T) {
	trace := func(k PolicyKind) []int {
		p := MustPolicy(k, 8, sim.NewRand(1))
		var out []int
		for i := 0; i < 64; i++ {
			p.Touch(i * 3 % 8)
			out = append(out, p.Victim())
		}
		return out
	}
	kinds := []PolicyKind{TrueLRU, BitPLRU, TreePLRU, NRU, SRRIP}
	traces := map[PolicyKind][]int{}
	for _, k := range kinds {
		traces[k] = trace(k)
	}
	same := func(a, b PolicyKind) bool {
		for j := range traces[a] {
			if traces[a][j] != traces[b][j] {
				return false
			}
		}
		return true
	}
	// Bit-PLRU (the policy the inference experiment must single out) has to
	// be distinguishable from every other deterministic policy on this
	// probe; the remaining pairs need not all differ on one fixed probe
	// (the full inference harness uses richer access patterns).
	for _, other := range []PolicyKind{TrueLRU, TreePLRU, NRU, SRRIP} {
		if same(BitPLRU, other) {
			t.Errorf("bit-plru indistinguishable from %s on the probe", other)
		}
	}
	if same(TrueLRU, TreePLRU) {
		t.Error("lru indistinguishable from tree-plru on the probe")
	}
}
