package cache

import (
	"testing"

	"repro/internal/sim"
)

// FuzzPolicyInvariants: every policy keeps victims in range and never
// panics, for arbitrary touch/victim/invalidate interleavings.
func FuzzPolicyInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 99})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		for _, k := range AllPolicies() {
			const ways = 12
			p := MustPolicy(k, ways, sim.NewRand(1))
			for _, op := range ops {
				switch op % 3 {
				case 0:
					p.Touch(int(op/3) % ways)
				case 1:
					if v := p.Victim(); v < 0 || v >= ways {
						t.Fatalf("%s: victim %d out of range", k, v)
					}
				default:
					p.Invalidate(int(op/3) % ways)
				}
			}
		}
	})
}
