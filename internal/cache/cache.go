package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// LineSize is the cache line size in bytes, fixed at 64 as on every modern
// x86 part (the paper's set-index bits 6..16 assume it).
const LineSize = 64

const lineShift = 6

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name    string
	SizeKB  int
	Ways    int
	Slices  int // >1 enables address-hashed slicing (LLC)
	Policy  PolicyKind
	Latency sim.Cycles // hit latency, in cycles
	// Throughput is the cost of a hit that immediately follows another hit
	// in the same level: out-of-order cores overlap independent cache hits,
	// so back-to-back hits cost pipeline throughput, not full latency.
	// Zero means no overlap (Throughput = Latency).
	Throughput sim.Cycles
}

// Validate checks the level configuration.
func (c LevelConfig) Validate() error {
	if c.SizeKB <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: %s: size and ways must be positive", c.Name)
	}
	if c.Slices <= 0 {
		return fmt.Errorf("cache: %s: slices must be >= 1", c.Name)
	}
	lines := c.SizeKB * 1024 / LineSize
	sets := lines / c.Ways / c.Slices
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %s: %dKB/%d-way/%d-slice gives %d sets per slice; must be a positive power of two",
			c.Name, c.SizeKB, c.Ways, c.Slices, sets)
	}
	return nil
}

// line is one cache line's metadata.
type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// Level is a single set-associative, optionally sliced cache level.
type Level struct {
	cfg      LevelConfig
	sets     int // sets per slice
	setMask  uint64
	lines    [][]line // [slice*sets+set][way]
	policies []Policy
	stats    LevelStats
}

// LevelStats counts per-level activity.
type LevelStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	Flushes    uint64
}

// NewLevel builds one cache level. rng seeds the random policy (and is
// shared across sets, which is fine for simulation purposes).
func NewLevel(cfg LevelConfig, rng *sim.Rand) (*Level, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeKB * 1024 / LineSize
	sets := lines / cfg.Ways / cfg.Slices
	l := &Level{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
	}
	total := sets * cfg.Slices
	l.lines = make([][]line, total)
	l.policies = make([]Policy, total)
	for i := range l.lines {
		l.lines[i] = make([]line, cfg.Ways)
		p, err := NewPolicy(cfg.Policy, cfg.Ways, rng)
		if err != nil {
			return nil, err
		}
		l.policies[i] = p
	}
	return l, nil
}

// Config returns the level's configuration.
func (l *Level) Config() LevelConfig { return l.cfg }

// Stats returns a snapshot of the level's counters.
func (l *Level) Stats() LevelStats { return l.stats }

// Sets reports the number of sets per slice.
func (l *Level) Sets() int { return l.sets }

// SliceOf returns the slice an address maps to. The hash XOR-folds all
// address bits above the line offset, approximating the undocumented Intel
// slice hash: addresses equal in bits 6..16 can still land in different
// slices unless their tag-bit parities match, exactly the obstacle the
// eviction-set search in the attack has to solve.
func (l *Level) SliceOf(pa uint64) int {
	if l.cfg.Slices == 1 {
		return 0
	}
	x := pa >> lineShift
	h := 0
	for x != 0 {
		h ^= int(x) & (l.cfg.Slices - 1)
		x >>= uint(bits.TrailingZeros(uint(l.cfg.Slices)))
	}
	return h
}

// SetOf returns the set index (within the slice) an address maps to.
func (l *Level) SetOf(pa uint64) int {
	return int((pa >> lineShift) & l.setMask)
}

// Congruent reports whether two addresses compete for the same slice+set.
func (l *Level) Congruent(a, b uint64) bool {
	return l.SetOf(a) == l.SetOf(b) && l.SliceOf(a) == l.SliceOf(b)
}

func (l *Level) index(pa uint64) int {
	return l.SliceOf(pa)*l.sets + l.SetOf(pa)
}

func tagOf(pa uint64) uint64 { return pa >> lineShift }

// Lookup probes the level without modifying replacement state.
func (l *Level) Lookup(pa uint64) bool {
	set := l.lines[l.index(pa)]
	t := tagOf(pa)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			return true
		}
	}
	return false
}

// Access probes the level, updating replacement state on a hit. It returns
// whether the access hit and, if so, records a write by dirtying the line.
func (l *Level) Access(pa uint64, write bool) bool {
	idx := l.index(pa)
	set := l.lines[idx]
	t := tagOf(pa)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			l.stats.Hits++
			l.policies[idx].Touch(i)
			if write {
				set[i].dirty = true
			}
			return true
		}
	}
	l.stats.Misses++
	return false
}

// Evicted describes a line displaced by Fill.
type Evicted struct {
	PA    uint64
	Dirty bool
}

// Fill inserts the line for pa, evicting if necessary. It returns the
// displaced line, if any. The new line is marked dirty when write is set.
func (l *Level) Fill(pa uint64, write bool) (Evicted, bool) {
	idx := l.index(pa)
	set := l.lines[idx]
	t := tagOf(pa)
	// Prefer an invalid way.
	way := -1
	for i := range set {
		if !set[i].valid {
			way = i
			break
		}
	}
	var ev Evicted
	evicted := false
	if way < 0 {
		way = l.policies[idx].Victim()
		old := &set[way]
		ev = Evicted{PA: old.tag << lineShift, Dirty: old.dirty}
		evicted = true
		l.stats.Evictions++
		if old.dirty {
			l.stats.Writebacks++
		}
	}
	set[way] = line{tag: t, valid: true, dirty: write}
	l.policies[idx].Touch(way)
	return ev, evicted
}

// Invalidate removes the line for pa if present, returning whether it was
// present and whether it was dirty.
func (l *Level) Invalidate(pa uint64) (present, dirty bool) {
	idx := l.index(pa)
	set := l.lines[idx]
	t := tagOf(pa)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			dirty = set[i].dirty
			set[i] = line{}
			l.policies[idx].Invalidate(i)
			l.stats.Flushes++
			return true, dirty
		}
	}
	return false, false
}

// MarkDirty flags the line for pa as dirty if present (used for writebacks
// arriving from an inner level of an inclusive hierarchy).
func (l *Level) MarkDirty(pa uint64) {
	idx := l.index(pa)
	set := l.lines[idx]
	t := tagOf(pa)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			set[i].dirty = true
			return
		}
	}
}

// ResidentWays returns how many valid lines the set containing pa holds.
func (l *Level) ResidentWays(pa uint64) int {
	set := l.lines[l.index(pa)]
	n := 0
	for i := range set {
		if set[i].valid {
			n++
		}
	}
	return n
}
