package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// LineSize is the cache line size in bytes, fixed at 64 as on every modern
// x86 part (the paper's set-index bits 6..16 assume it).
const LineSize = 64

const lineShift = 6

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name    string
	SizeKB  int
	Ways    int
	Slices  int // >1 enables address-hashed slicing (LLC)
	Policy  PolicyKind
	Latency sim.Cycles // hit latency, in cycles
	// Throughput is the cost of a hit that immediately follows another hit
	// in the same level: out-of-order cores overlap independent cache hits,
	// so back-to-back hits cost pipeline throughput, not full latency.
	// Zero means no overlap (Throughput = Latency).
	Throughput sim.Cycles
}

// Validate checks the level configuration.
func (c LevelConfig) Validate() error {
	if c.SizeKB <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: %s: size and ways must be positive", c.Name)
	}
	if c.Slices <= 0 {
		return fmt.Errorf("cache: %s: slices must be >= 1", c.Name)
	}
	lines := c.SizeKB * 1024 / LineSize
	sets := lines / c.Ways / c.Slices
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %s: %dKB/%d-way/%d-slice gives %d sets per slice; must be a positive power of two",
			c.Name, c.SizeKB, c.Ways, c.Slices, sets)
	}
	return nil
}

// A cache line is packed into one word: tag<<2 | dirty<<1 | valid. An
// 8-way set is then exactly 64 bytes — one host cache line — so probing a
// set costs a single cache-line fill on the machine running the simulator.
const (
	lineValid    uint64 = 1 << 0
	lineDirty    uint64 = 1 << 1
	lineTagShift        = 2
)

// Level is a single set-associative, optionally sliced cache level.
//
// All per-line and per-set state lives in flat contiguous arrays indexed by
// (slice*sets+set)*ways+way, and the two policies every shipped
// configuration uses (TrueLRU, BitPLRU) are devirtualized: their state is
// plain per-set metadata (a recency-order byte slice, an MRU-bit word) and
// the hot paths dispatch on it without an interface call. The exotic
// policies of the inference experiment (§2.2) keep the Policy interface.
type Level struct {
	cfg       LevelConfig
	sets      int // sets per slice
	ways      int
	setMask   uint64
	sliceBits uint // log2(Slices), for the slice-hash fold
	sliceMask int
	flat      []uint64 // packed lines, (slice*sets+set)*ways+way
	// invMask tracks each set's invalid ways as a bitmask (bit w set = way w
	// invalid), so the first-invalid-way scans in probe and Fill are a single
	// trailing-zeros count. Nil when ways > 64 (the scans remain).
	invMask []uint64
	stats   LevelStats

	// Devirtualized replacement state; exactly one of these is non-nil,
	// chosen by the policy kind (and associativity limits).
	lruWord  []uint64 // TrueLRU, ways <= 8: one recency word per set, byte i = way at recency i (0 = LRU)
	lruOrder []uint8  // TrueLRU, wider sets: ways entries per set, order[0] is LRU
	plruBits []uint64 // BitPLRU: one MRU-bit word per set
	policies []Policy // everything else, one instance per set

	// MRU line cache: flat index and tag of the last line touched. A repeat
	// access to it — the dominant pattern on the L1 — is served touching a
	// single cache line of simulator state. Only maintained for policies
	// whose Touch is idempotent on the most-recently-touched way (all but
	// SRRIP, whose fill/promote distinction makes a second Touch observable).
	mruIdx  int // -1 when invalid
	mruTag  uint64
	mruSafe bool
}

// LevelStats counts per-level activity.
type LevelStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	Flushes    uint64
}

// NewLevel builds one cache level. rng seeds the random policy (and is
// shared across sets, which is fine for simulation purposes).
func NewLevel(cfg LevelConfig, rng *sim.Rand) (*Level, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeKB * 1024 / LineSize
	sets := lines / cfg.Ways / cfg.Slices
	l := &Level{
		cfg:       cfg,
		sets:      sets,
		ways:      cfg.Ways,
		setMask:   uint64(sets - 1),
		sliceBits: uint(bits.TrailingZeros(uint(cfg.Slices))),
		sliceMask: cfg.Slices - 1,
		mruIdx:    -1,
		mruSafe:   cfg.Policy != SRRIP,
	}
	total := sets * cfg.Slices
	l.flat = make([]uint64, total*cfg.Ways)
	if cfg.Ways <= 64 {
		full := ^uint64(0) >> (64 - uint(cfg.Ways))
		l.invMask = make([]uint64, total)
		for s := range l.invMask {
			l.invMask[s] = full
		}
	}
	switch {
	case cfg.Policy == TrueLRU && cfg.Ways <= 8:
		var init uint64
		for w := cfg.Ways - 1; w >= 0; w-- {
			init = init<<8 | uint64(w)
		}
		l.lruWord = make([]uint64, total)
		for s := range l.lruWord {
			l.lruWord[s] = init
		}
	case cfg.Policy == TrueLRU && cfg.Ways <= 255:
		l.lruOrder = make([]uint8, total*cfg.Ways)
		for s := 0; s < total; s++ {
			for w := 0; w < cfg.Ways; w++ {
				l.lruOrder[s*cfg.Ways+w] = uint8(w)
			}
		}
	case cfg.Policy == BitPLRU && cfg.Ways <= 64:
		l.plruBits = make([]uint64, total)
	default:
		l.policies = make([]Policy, total)
		for i := range l.policies {
			p, err := NewPolicy(cfg.Policy, cfg.Ways, rng)
			if err != nil {
				return nil, err
			}
			l.policies[i] = p
		}
	}
	return l, nil
}

// Config returns the level's configuration.
func (l *Level) Config() LevelConfig { return l.cfg }

// Stats returns a snapshot of the level's counters.
func (l *Level) Stats() LevelStats { return l.stats }

// Sets reports the number of sets per slice.
func (l *Level) Sets() int { return l.sets }

// SliceOf returns the slice an address maps to. The hash XOR-folds all
// address bits above the line offset, approximating the undocumented Intel
// slice hash: addresses equal in bits 6..16 can still land in different
// slices unless their tag-bit parities match, exactly the obstacle the
// eviction-set search in the attack has to solve.
func (l *Level) SliceOf(pa uint64) int {
	if l.sliceMask == 0 {
		return 0
	}
	return l.sliceOfTag(pa >> lineShift)
}

// sliceOfTag XOR-folds the tag's k-bit chunks. Kept out of SliceOf/setIndex
// so those stay small enough to inline at the call sites on the hot path.
func (l *Level) sliceOfTag(x uint64) int {
	k := l.sliceBits
	if k == 1 {
		// Two slices: the chunk fold degenerates to whole-word parity.
		return bits.OnesCount64(x) & 1
	}
	// XOR-fold the k-bit chunks pairwise: shifting by any multiple of k
	// aligns chunks onto chunks, so folding by (rounded-up) halves computes
	// the same XOR-of-all-chunks as the naive walk in O(log) steps.
	for width := uint(64); width > k; {
		half := (width/2 + k - 1) / k * k
		x = (x ^ (x >> half)) & (1<<half - 1)
		width = half
	}
	return int(x) & l.sliceMask
}

// SetOf returns the set index (within the slice) an address maps to.
func (l *Level) SetOf(pa uint64) int {
	return int((pa >> lineShift) & l.setMask)
}

// Congruent reports whether two addresses compete for the same slice+set.
func (l *Level) Congruent(a, b uint64) bool {
	return l.SetOf(a) == l.SetOf(b) && l.SliceOf(a) == l.SliceOf(b)
}

// setIndex returns the global set number of pa (slice*sets+set).
func (l *Level) setIndex(pa uint64) int {
	t := pa >> lineShift
	if l.sliceMask == 0 {
		return int(t & l.setMask)
	}
	return l.sliceOfTag(t)*l.sets + int(t&l.setMask)
}

func tagOf(pa uint64) uint64 { return pa >> lineShift }

// lruFind locates way's recency position in a packed order word: XOR with
// the byte-broadcast of way turns the match into a zero byte, and the
// classic zero-byte-locate trick finds its position. False positives only
// occur above the lowest zero byte, so taking the trailing one is exact.
func lruFind(w uint64, way int) uint {
	x := w ^ uint64(way)*0x0101010101010101
	return uint(bits.TrailingZeros64((x-0x0101010101010101)&^x&0x8080808080808080)) >> 3
}

// touch records a reference to (set, way) in the replacement state and
// refreshes the MRU line cache.
func (l *Level) touch(set, way int) {
	switch {
	case l.lruWord != nil:
		w := l.lruWord[set]
		top := uint(l.ways-1) * 8
		if byte(w) == byte(way) {
			// LRU straight to MRU — the fill-after-eviction case — is a
			// plain byte rotation.
			l.lruWord[set] = w>>8&(1<<top-1) | uint64(way)<<top
		} else if p := lruFind(w, way); 8*p != top {
			low := w & (1<<(8*p) - 1)
			mid := w >> (8 * (p + 1)) << (8 * p) & (1<<top - 1)
			l.lruWord[set] = low | mid | uint64(way)<<top
		}
	case l.lruOrder != nil:
		ord := l.lruOrder[set*l.ways : set*l.ways+l.ways]
		w := uint8(way)
		for i, v := range ord {
			if v == w {
				copy(ord[i:], ord[i+1:])
				ord[len(ord)-1] = w
				break
			}
		}
	case l.plruBits != nil:
		full := ^uint64(0) >> (64 - uint(l.ways))
		b := l.plruBits[set] | 1<<uint(way)
		if b == full {
			// Last MRU bit was just set: clear all the others.
			b = 1 << uint(way)
		}
		l.plruBits[set] = b
	default:
		l.policies[set].Touch(way)
	}
	if l.mruSafe {
		idx := set*l.ways + way
		l.mruIdx = idx
		l.mruTag = l.flat[idx] >> lineTagShift
	}
}

// victim returns the way the replacement policy evicts next in set.
func (l *Level) victim(set int) int {
	switch {
	case l.lruWord != nil:
		return int(l.lruWord[set] & 0xff)
	case l.lruOrder != nil:
		return int(l.lruOrder[set*l.ways])
	case l.plruBits != nil:
		// Lowest index whose MRU bit is cleared; touch never leaves all
		// bits set, so the result is always a real way.
		return bits.TrailingZeros64(^l.plruBits[set])
	default:
		return l.policies[set].Victim()
	}
}

// invalidateWay clears the replacement state protecting (set, way), making
// it the preferred victim, and drops the MRU cache if it pointed there.
func (l *Level) invalidateWay(set, way int) {
	switch {
	case l.lruWord != nil:
		w := l.lruWord[set]
		top := uint(l.ways-1) * 8
		if byte(w>>top) == byte(way) {
			// MRU straight to LRU — flush right after the access — is a
			// plain byte rotation. (1<<(top+8) overshifts to 0 for 8 ways,
			// so the mask correctly becomes the full word.)
			l.lruWord[set] = w<<8&(uint64(1)<<(top+8)-1) | uint64(way)
		} else if p := lruFind(w, way); p != 0 {
			low := w & (1<<(8*p) - 1)
			high := w &^ (1<<(8*(p+1)) - 1)
			l.lruWord[set] = low<<8 | high | uint64(way)
		}
	case l.lruOrder != nil:
		ord := l.lruOrder[set*l.ways : set*l.ways+l.ways]
		w := uint8(way)
		for i, v := range ord {
			if v == w {
				copy(ord[1:i+1], ord[:i])
				ord[0] = w
				break
			}
		}
	case l.plruBits != nil:
		l.plruBits[set] &^= 1 << uint(way)
	default:
		l.policies[set].Invalidate(way)
	}
	if l.mruIdx == set*l.ways+way {
		l.mruIdx = -1
	}
}

// Lookup probes the level without modifying replacement state.
func (l *Level) Lookup(pa uint64) bool {
	want := tagOf(pa)<<lineTagShift | lineValid
	base := l.setIndex(pa) * l.ways
	set := l.flat[base : base+l.ways]
	for _, w := range set {
		if w&^lineDirty == want {
			return true
		}
	}
	return false
}

// Access probes the level, updating replacement state on a hit. It returns
// whether the access hit and, if so, records a write by dirtying the line.
func (l *Level) Access(pa uint64, write bool) bool {
	hit, _, _ := l.probe(pa, write)
	return hit
}

// probe is Access plus miss-side information: on a miss it also returns the
// global set index and the first invalid way (-1 when the set is full), so
// the fill that follows the miss can skip both scans. The hints are only
// valid until the set is mutated; the hierarchy discards them after an
// inclusive back-invalidation.
func (l *Level) probe(pa uint64, write bool) (hit bool, setIdx, freeWay int) {
	t := tagOf(pa)
	want := t<<lineTagShift | lineValid
	// MRU fast path: a repeat access to the last-touched line. Touching the
	// most-recently-touched way again is a no-op for every maintained
	// policy, so only the hit counter (and the dirty bit) need updating.
	if l.mruTag == t && l.mruIdx >= 0 {
		if w := l.flat[l.mruIdx]; w&^lineDirty == want {
			l.stats.Hits++
			if write {
				l.flat[l.mruIdx] = w | lineDirty
			}
			return true, 0, 0
		}
	}
	setIdx = int(t & l.setMask)
	if l.sliceMask != 0 {
		setIdx += l.sliceOfTag(t) * l.sets
	}
	base := setIdx * l.ways
	set := l.flat[base : base+l.ways]
	for i, w := range set {
		if w&^lineDirty == want {
			l.stats.Hits++
			l.touch(setIdx, i)
			if write {
				set[i] = w | lineDirty
			}
			return true, 0, 0
		}
	}
	l.stats.Misses++
	freeWay = -1
	if l.invMask != nil {
		if m := l.invMask[setIdx]; m != 0 {
			freeWay = bits.TrailingZeros64(m)
		}
		return false, setIdx, freeWay
	}
	for i, w := range set {
		if w&lineValid == 0 {
			freeWay = i
			break
		}
	}
	return false, setIdx, freeWay
}

// Evicted describes a line displaced by Fill.
type Evicted struct {
	PA    uint64
	Dirty bool
}

// Fill inserts the line for pa, evicting if necessary. It returns the
// displaced line, if any. The new line is marked dirty when write is set.
func (l *Level) Fill(pa uint64, write bool) (Evicted, bool) {
	setIdx := l.setIndex(pa)
	// Prefer an invalid way.
	way := -1
	if l.invMask != nil {
		if m := l.invMask[setIdx]; m != 0 {
			way = bits.TrailingZeros64(m)
		}
	} else {
		base := setIdx * l.ways
		set := l.flat[base : base+l.ways]
		for i, w := range set {
			if w&lineValid == 0 {
				way = i
				break
			}
		}
	}
	return l.fillAt(setIdx, way, pa, write)
}

// fillAt is Fill with the set scans already done: setIdx is pa's global set
// and way the first invalid way (-1 when the set is full), as returned by
// probe on a miss with no intervening mutation of the set.
func (l *Level) fillAt(setIdx, way int, pa uint64, write bool) (Evicted, bool) {
	base := setIdx * l.ways
	set := l.flat[base : base+l.ways]
	var ev Evicted
	evicted := false
	if way < 0 {
		way = l.victim(setIdx)
		old := set[way]
		ev = Evicted{PA: old >> lineTagShift << lineShift, Dirty: old&lineDirty != 0}
		evicted = true
		l.stats.Evictions++
		if old&lineDirty != 0 {
			l.stats.Writebacks++
		}
	}
	w := tagOf(pa)<<lineTagShift | lineValid
	if write {
		w |= lineDirty
	}
	set[way] = w
	if l.invMask != nil {
		l.invMask[setIdx] &^= 1 << uint(way)
	}
	l.touch(setIdx, way)
	return ev, evicted
}

// Invalidate removes the line for pa if present, returning whether it was
// present and whether it was dirty.
func (l *Level) Invalidate(pa uint64) (present, dirty bool) {
	t := tagOf(pa)
	setIdx := int(t & l.setMask)
	if l.sliceMask != 0 {
		setIdx += l.sliceOfTag(t) * l.sets
	}
	base := setIdx * l.ways
	want := t<<lineTagShift | lineValid
	// Flushing the line touched a moment ago — CLFLUSH right after the
	// access, the hammer idiom — finds it via the MRU cache, skipping the
	// set scan. invalidateWay drops the MRU entry itself.
	if l.mruTag == t && l.mruIdx >= base {
		if w := l.flat[l.mruIdx]; w&^lineDirty == want {
			way := l.mruIdx - base
			if way < l.ways {
				dirty = w&lineDirty != 0
				l.flat[l.mruIdx] = 0
				if l.invMask != nil {
					l.invMask[setIdx] |= 1 << uint(way)
				}
				l.invalidateWay(setIdx, way)
				l.stats.Flushes++
				return true, dirty
			}
		}
	}
	set := l.flat[base : base+l.ways]
	for i, w := range set {
		if w&^lineDirty == want {
			dirty = w&lineDirty != 0
			set[i] = 0
			if l.invMask != nil {
				l.invMask[setIdx] |= 1 << uint(i)
			}
			l.invalidateWay(setIdx, i)
			l.stats.Flushes++
			return true, dirty
		}
	}
	return false, false
}

// MarkDirty flags the line for pa as dirty if present (used for writebacks
// arriving from an inner level of an inclusive hierarchy).
func (l *Level) MarkDirty(pa uint64) {
	base := l.setIndex(pa) * l.ways
	set := l.flat[base : base+l.ways]
	want := tagOf(pa)<<lineTagShift | lineValid
	for i, w := range set {
		if w&^lineDirty == want {
			set[i] = w | lineDirty
			return
		}
	}
}

// ResidentWays returns how many valid lines the set containing pa holds.
func (l *Level) ResidentWays(pa uint64) int {
	base := l.setIndex(pa) * l.ways
	set := l.flat[base : base+l.ways]
	n := 0
	for _, w := range set {
		if w&lineValid != 0 {
			n++
		}
	}
	return n
}
