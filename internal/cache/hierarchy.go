package cache

import (
	"fmt"

	"repro/internal/sim"
)

// DataSource tells where an access was satisfied — the same information the
// PEBS load-latency facility's "data source" field carries, which ANVIL uses
// to confirm that sampled loads actually reached DRAM.
type DataSource int

// Data sources, nearest first.
const (
	SrcL1 DataSource = iota + 1
	SrcL2
	SrcL3
	SrcDRAM
)

func (s DataSource) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	case SrcL3:
		return "L3"
	case SrcDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("DataSource(%d)", int(s))
	}
}

// Memory is the backing store beneath the hierarchy (the DRAM module, via
// the memsys adapter). Access returns the access latency; writebacks are
// posted with their own calls.
type Memory interface {
	Access(pa uint64, write bool, now sim.Cycles) sim.Cycles
}

// Result describes one access through the hierarchy.
type Result struct {
	Latency sim.Cycles
	Source  DataSource
	LLCMiss bool
	// Writebacks counts dirty lines pushed to memory as a side effect.
	Writebacks int
}

// HierarchyConfig describes the full cache hierarchy.
type HierarchyConfig struct {
	Levels       []LevelConfig // ordered nearest (L1) to farthest (LLC)
	FlushLatency sim.Cycles    // CLFLUSH cost as seen by the executing core
	// NextLinePrefetch fills pa+64 into the LLC alongside every demand
	// miss, modelling the simplest hardware stream prefetcher. Off by
	// default (the paper's overhead calibration assumes no prefetching).
	NextLinePrefetch bool
	Seed             uint64
}

// SandyBridgeConfig models the i5-2540M used throughout the paper:
// 32 KB 8-way L1D, 256 KB 8-way L2, and a 3 MB 12-way inclusive LLC split
// into two address-hashed slices (one per core), with Bit-PLRU replacement —
// the policy the authors identified on their machine.
func SandyBridgeConfig() HierarchyConfig {
	return HierarchyConfig{
		Levels: []LevelConfig{
			{Name: "L1D", SizeKB: 32, Ways: 8, Slices: 1, Policy: TrueLRU, Latency: 4, Throughput: 2},
			{Name: "L2", SizeKB: 256, Ways: 8, Slices: 1, Policy: TrueLRU, Latency: 12, Throughput: 6},
			{Name: "LLC", SizeKB: 3072, Ways: 12, Slices: 2, Policy: BitPLRU, Latency: 29, Throughput: 10},
		},
		// CLFLUSH retires quickly; the flush itself proceeds mostly in the
		// background, overlapped with the next access.
		FlushLatency: 8,
		Seed:         0xcace,
	}
}

// Hierarchy is an inclusive multi-level cache in front of a Memory.
type Hierarchy struct {
	cfg     HierarchyConfig
	levels  []*Level
	mem     Memory
	stats   HierarchyStats
	lastHit int // level index of the previous access's hit, -1 otherwise

	// Per-level miss hints from the current access's probes (global set
	// index, first invalid way), letting fillAbove skip the scans probe
	// already did. Scratch state only — never carried across accesses.
	setHint  []int
	freeHint []int

	// Tags Flush proved absent from every level. The access that follows a
	// CLFLUSH of the same line — the hammer idiom this simulator spends its
	// life in — skips the per-level tag scans and goes straight to the miss
	// path. Two slots cover the double-sided pattern; a slot is consumed by
	// the access that uses it and dropped when a prefetch refills the line.
	flushedTag [2]uint64 // ^0 when empty
	flushedPos int
}

// HierarchyStats aggregates whole-hierarchy activity.
type HierarchyStats struct {
	Loads      uint64
	Stores     uint64
	LLCMisses  uint64
	MemReads   uint64
	MemWrites  uint64
	Flushes    uint64
	Prefetches uint64
}

// NewHierarchy builds the hierarchy over the given memory.
func NewHierarchy(cfg HierarchyConfig, mem Memory) (*Hierarchy, error) {
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one level")
	}
	if mem == nil {
		return nil, fmt.Errorf("cache: hierarchy needs a memory backend")
	}
	rng := sim.NewRand(cfg.Seed)
	h := &Hierarchy{
		cfg:        cfg,
		mem:        mem,
		lastHit:    -1,
		setHint:    make([]int, len(cfg.Levels)),
		freeHint:   make([]int, len(cfg.Levels)),
		flushedTag: [2]uint64{^uint64(0), ^uint64(0)},
	}
	for _, lc := range cfg.Levels {
		l, err := NewLevel(lc, rng.Split())
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, l)
	}
	return h, nil
}

// Level returns the i-th level (0 = L1).
func (h *Hierarchy) Level(i int) *Level { return h.levels[i] }

// LLC returns the last-level cache.
func (h *Hierarchy) LLC() *Level { return h.levels[len(h.levels)-1] }

// Stats returns a snapshot of the hierarchy counters.
func (h *Hierarchy) Stats() HierarchyStats { return h.stats }

// lineAlign truncates an address to its line base.
func lineAlign(pa uint64) uint64 { return pa &^ (LineSize - 1) }

// Access performs a load or store of pa at simulated time now.
func (h *Hierarchy) Access(pa uint64, write bool, now sim.Cycles) Result {
	pa = lineAlign(pa)
	if write {
		h.stats.Stores++
	} else {
		h.stats.Loads++
	}
	if t := pa >> lineShift; t == h.flushedTag[0] || t == h.flushedTag[1] {
		// The line was flushed out of every level and nothing has refilled
		// it: a guaranteed full miss. Count the per-level misses and gather
		// the fill hints, but skip the tag scans. Both slots can hold the
		// tag (a double flush), and the refill invalidates both.
		if t == h.flushedTag[0] {
			h.flushedTag[0] = ^uint64(0)
		}
		if t == h.flushedTag[1] {
			h.flushedTag[1] = ^uint64(0)
		}
		for _, l := range h.levels {
			l.stats.Misses++
		}
		return h.missEverywhere(pa, write, now, false)
	}
	for i, l := range h.levels {
		hit, setIdx, freeWay := l.probe(pa, write && i == 0)
		if hit {
			lat := l.cfg.Latency
			if h.lastHit == i && l.cfg.Throughput > 0 {
				lat = l.cfg.Throughput // back-to-back hits pipeline
			}
			h.lastHit = i
			res := Result{Latency: lat, Source: DataSource(i + 1)}
			// Fill the levels above the hit (inclusive hierarchy).
			res.Writebacks += h.fillAbove(i, pa, write, now)
			return res
		}
		h.setHint[i] = setIdx
		h.freeHint[i] = freeWay
	}
	return h.missEverywhere(pa, write, now, true)
}

// missEverywhere is the tail of Access once every level has missed: fetch
// from memory and fill the whole hierarchy. Stores allocate via
// read-for-ownership, so the memory access is a read either way.
func (h *Hierarchy) missEverywhere(pa uint64, write bool, now sim.Cycles, hinted bool) Result {
	h.lastHit = -1
	h.stats.LLCMisses++
	llcLat := h.LLC().cfg.Latency
	memLat := h.mem.Access(pa, false, now+llcLat)
	h.stats.MemReads++
	res := Result{Latency: llcLat + memLat, Source: SrcDRAM, LLCMiss: true}
	res.Writebacks += h.fill(len(h.levels), pa, write, now, hinted)
	if h.cfg.NextLinePrefetch {
		res.Writebacks += h.prefetch(pa+LineSize, now)
	}
	return res
}

// prefetch pulls a line into the LLC in the background (no latency charged
// to the triggering access). Evictions are handled as for demand fills.
func (h *Hierarchy) prefetch(pa uint64, now sim.Cycles) int {
	pa = lineAlign(pa)
	llc := h.LLC()
	if llc.Lookup(pa) {
		return 0
	}
	if t := pa >> lineShift; t == h.flushedTag[0] || t == h.flushedTag[1] {
		if t == h.flushedTag[0] {
			h.flushedTag[0] = ^uint64(0)
		}
		if t == h.flushedTag[1] {
			h.flushedTag[1] = ^uint64(0)
		}
	}
	h.stats.Prefetches++
	h.mem.Access(pa, false, now)
	h.stats.MemReads++
	ev, evicted := llc.Fill(pa, false)
	if !evicted {
		return 0
	}
	dirty := ev.Dirty
	for j := 0; j < len(h.levels)-1; j++ {
		if present, d := h.levels[j].Invalidate(ev.PA); present && d {
			dirty = true
		}
	}
	if dirty {
		h.mem.Access(ev.PA, true, now)
		h.stats.MemWrites++
		return 1
	}
	return 0
}

// fillAbove inserts pa into every level above `from` (exclusive), handling
// evictions: inclusive back-invalidation for LLC victims and dirty
// writebacks to the level below or to memory. It returns the number of
// memory writebacks performed.
func (h *Hierarchy) fillAbove(from int, pa uint64, write bool, now sim.Cycles) int {
	// Every level above `from` just missed, so its probe hints are fresh;
	// they stay valid until something mutates the sets they describe, which
	// only the back-invalidation in fill does.
	return h.fill(from, pa, write, now, true)
}

// fill inserts pa into every level above `from` (exclusive); see fillAbove.
// When hinted is false (the flushed-line fast path, where no probes ran),
// each level rescans for its own slot.
func (h *Hierarchy) fill(from int, pa uint64, write bool, now sim.Cycles, hinted bool) int {
	wb := 0
	for i := from - 1; i >= 0; i-- {
		var ev Evicted
		var evicted bool
		if hinted {
			ev, evicted = h.levels[i].fillAt(h.setHint[i], h.freeHint[i], pa, write && i == 0)
		} else {
			ev, evicted = h.levels[i].Fill(pa, write && i == 0)
		}
		if !evicted {
			continue
		}
		dirty := ev.Dirty
		if i == len(h.levels)-1 {
			// LLC victim: back-invalidate the inner levels (inclusion).
			for j := 0; j < i; j++ {
				if present, d := h.levels[j].Invalidate(ev.PA); present && d {
					dirty = true
				}
			}
			// The back-invalidation may have freed a way below an inner
			// level's hint; rescan from scratch for the remaining fills.
			hinted = false
			if dirty {
				h.mem.Access(ev.PA, true, now)
				h.stats.MemWrites++
				wb++
			}
			continue
		}
		// Inner-level victim: push dirty data one level down (it is present
		// there by inclusion).
		if dirty {
			h.levels[i+1].MarkDirty(ev.PA)
		}
	}
	return wb
}

// Flush implements CLFLUSH: the line is invalidated in every level and a
// dirty copy is written back to memory. It returns the latency charged to
// the executing core and the number of memory writebacks.
func (h *Hierarchy) Flush(pa uint64, now sim.Cycles) (sim.Cycles, int) {
	pa = lineAlign(pa)
	h.stats.Flushes++
	dirty := false
	for _, l := range h.levels {
		if present, d := l.Invalidate(pa); present && d {
			dirty = true
		}
	}
	wb := 0
	if dirty {
		h.mem.Access(pa, true, now)
		h.stats.MemWrites++
		wb = 1
	}
	h.flushedTag[h.flushedPos] = pa >> lineShift
	h.flushedPos ^= 1
	return h.cfg.FlushLatency, wb
}

// Contains reports whether pa is resident in any level.
func (h *Hierarchy) Contains(pa uint64) bool {
	pa = lineAlign(pa)
	for _, l := range h.levels {
		if l.Lookup(pa) {
			return true
		}
	}
	return false
}
