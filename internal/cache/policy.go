// Package cache models the on-chip cache hierarchy: set-associative levels
// with pluggable replacement policies, an inclusive, sliced, physically
// indexed last-level cache, and the CLFLUSH operation.
//
// The CLFLUSH-free rowhammer attack of the paper (§2.2) works by steering a
// real processor's replacement state — the authors identified Sandy Bridge's
// policy as Bit-PLRU by correlating performance-counter hit/miss traces with
// policy simulators. This package therefore implements the full policy zoo
// used in that experiment (true LRU, Bit-PLRU, Tree-PLRU, NRU, SRRIP,
// random) behind a single Policy interface.
package cache

import (
	"fmt"

	"repro/internal/sim"
)

// Policy manages the replacement state of a single cache set.
//
// Way indices are dense in [0, ways). The cache calls Touch on every hit and
// on every fill (after Victim chose the way), and Invalidate when a line is
// removed without replacement (CLFLUSH, back-invalidation).
type Policy interface {
	// Touch records a reference to the given way.
	Touch(way int)
	// Victim returns the way to evict next. It must be deterministic given
	// the state (except for the random policy).
	Victim() int
	// Invalidate clears any state that would protect the way, making it the
	// preferred victim.
	Invalidate(way int)
	// Name identifies the policy (for reports and the inference harness).
	Name() string
}

// PolicyKind selects a replacement policy implementation.
type PolicyKind string

// The implemented replacement policies.
const (
	TrueLRU  PolicyKind = "lru"
	BitPLRU  PolicyKind = "bit-plru" // Sandy Bridge's observed policy (paper §2.2)
	TreePLRU PolicyKind = "tree-plru"
	NRU      PolicyKind = "nru"
	SRRIP    PolicyKind = "srrip"
	Random   PolicyKind = "random"
)

// AllPolicies lists every implemented policy kind, in a stable order.
func AllPolicies() []PolicyKind {
	return []PolicyKind{TrueLRU, BitPLRU, TreePLRU, NRU, SRRIP, Random}
}

// NewPolicy constructs a policy instance for a set of the given
// associativity. rng is only used by the random policy; passing nil is fine
// for the deterministic ones.
func NewPolicy(kind PolicyKind, ways int, rng *sim.Rand) (Policy, error) {
	if ways <= 0 {
		return nil, fmt.Errorf("cache: associativity must be positive, got %d", ways)
	}
	switch kind {
	case TrueLRU:
		p := &lruPolicy{order: make([]int, ways)}
		for i := range p.order {
			p.order[i] = i
		}
		return p, nil
	case BitPLRU:
		return &bitPLRUPolicy{bits: make([]bool, ways)}, nil
	case TreePLRU:
		return newTreePLRU(ways), nil
	case NRU:
		return &nruPolicy{bits: make([]bool, ways)}, nil
	case SRRIP:
		p := &srripPolicy{rrpv: make([]uint8, ways), max: 3}
		for i := range p.rrpv {
			p.rrpv[i] = p.max // empty ways are immediate victims
		}
		return p, nil
	case Random:
		if rng == nil {
			rng = sim.NewRand(0) //lint:allow seedflow fixed zero seed keeps the zero-config Random policy deterministic; seeded callers pass a Split substream
		}
		return &randomPolicy{ways: ways, rng: rng}, nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %q", kind)
	}
}

// MustPolicy is NewPolicy that panics on error.
func MustPolicy(kind PolicyKind, ways int, rng *sim.Rand) Policy {
	p, err := NewPolicy(kind, ways, rng)
	if err != nil {
		panic(err) //lint:allow errpanic Must-prefixed constructor; panic-on-error is its documented contract
	}
	return p
}

// lruPolicy keeps an exact recency ordering (order[0] is LRU).
type lruPolicy struct {
	order []int
}

func (p *lruPolicy) Name() string { return string(TrueLRU) }

func (p *lruPolicy) Touch(way int) {
	for i, w := range p.order {
		if w == way {
			copy(p.order[i:], p.order[i+1:])
			p.order[len(p.order)-1] = way
			return
		}
	}
}

func (p *lruPolicy) Victim() int { return p.order[0] }

func (p *lruPolicy) Invalidate(way int) {
	for i, w := range p.order {
		if w == way {
			copy(p.order[1:i+1], p.order[:i])
			p.order[0] = way
			return
		}
	}
}

// bitPLRUPolicy is Bit-PLRU exactly as the paper describes it (§2.2):
// "each cache line in a set has a single MRU bit. Every time a cache line is
// accessed, its MRU bit is set. The least-recently used cache line is the
// line with the lowest index whose MRU bit is cleared. When the last MRU bit
// is set, the other MRU bits in the set are cleared."
type bitPLRUPolicy struct {
	bits []bool
}

func (p *bitPLRUPolicy) Name() string { return string(BitPLRU) }

func (p *bitPLRUPolicy) Touch(way int) {
	p.bits[way] = true
	for _, b := range p.bits {
		if !b {
			return
		}
	}
	// Last MRU bit was just set: clear all the others.
	for i := range p.bits {
		p.bits[i] = i == way
	}
}

func (p *bitPLRUPolicy) Victim() int {
	for i, b := range p.bits {
		if !b {
			return i
		}
	}
	return 0 // unreachable: Touch never leaves all bits set
}

func (p *bitPLRUPolicy) Invalidate(way int) { p.bits[way] = false }

// nruPolicy is Not-Recently-Used: like Bit-PLRU but the reference bits are
// cleared lazily at eviction time when no victim is available, rather than
// eagerly on the saturating touch.
type nruPolicy struct {
	bits []bool
}

func (p *nruPolicy) Name() string { return string(NRU) }

func (p *nruPolicy) Touch(way int) { p.bits[way] = true }

func (p *nruPolicy) Victim() int {
	for i, b := range p.bits {
		if !b {
			return i
		}
	}
	// All referenced: age everyone and evict way 0.
	for i := range p.bits {
		p.bits[i] = false
	}
	return 0
}

func (p *nruPolicy) Invalidate(way int) { p.bits[way] = false }

// treePLRUPolicy is the classic binary-tree pseudo-LRU. Associativity is
// rounded up to a power of two internally; phantom ways are never returned
// as victims because they are permanently marked most-recently-used.
type treePLRUPolicy struct {
	ways  int
	nodes []bool // nodes[i]: false = left subtree older, true = right older
	size  int    // power-of-two leaf count
}

func newTreePLRU(ways int) *treePLRUPolicy {
	size := 1
	for size < ways {
		size *= 2
	}
	return &treePLRUPolicy{ways: ways, size: size, nodes: make([]bool, size)}
}

func (p *treePLRUPolicy) Name() string { return string(TreePLRU) }

// touchLeaf walks root->leaf flipping node bits to point away from way.
func (p *treePLRUPolicy) touchLeaf(way int) {
	node := 1
	for bit := p.size >> 1; bit >= 1; bit >>= 1 {
		right := way&bit != 0
		// Make the node point at the *other* subtree (the older one).
		p.nodes[node] = !right
		node = node*2 + b2i(right)
	}
}

func (p *treePLRUPolicy) Touch(way int) { p.touchLeaf(way) }

func (p *treePLRUPolicy) Victim() int {
	node := 1
	way := 0
	for bit := p.size >> 1; bit >= 1; bit >>= 1 {
		right := p.nodes[node]
		// Never descend into a subtree made entirely of phantom ways
		// (associativity rounded up to a power of two).
		if right && way|bit >= p.ways {
			right = false
		}
		if right {
			way |= bit
		}
		node = node*2 + b2i(right)
	}
	return way
}

func (p *treePLRUPolicy) Invalidate(way int) {
	// Point the whole path at this way so it is evicted next.
	node := 1
	for bit := p.size >> 1; bit >= 1; bit >>= 1 {
		right := way&bit != 0
		p.nodes[node] = right
		node = node*2 + b2i(right)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// srripPolicy is 2-bit Static RRIP (Jaleel et al., ISCA'10 — reference [20]
// of the paper): lines are inserted with a long re-reference prediction,
// promoted to 0 on hit, and the victim is the first line predicted
// re-referenced in the distant future.
type srripPolicy struct {
	rrpv []uint8
	max  uint8
}

func (p *srripPolicy) Name() string { return string(SRRIP) }

func (p *srripPolicy) Touch(way int) {
	if p.rrpv[way] == p.max {
		// Fill: insert with "long" prediction (max-1).
		p.rrpv[way] = p.max - 1
		return
	}
	p.rrpv[way] = 0
}

func (p *srripPolicy) Victim() int {
	for {
		for i, v := range p.rrpv {
			if v == p.max {
				return i
			}
		}
		for i := range p.rrpv {
			p.rrpv[i]++
		}
	}
}

func (p *srripPolicy) Invalidate(way int) { p.rrpv[way] = p.max }

// randomPolicy evicts a uniformly random way.
type randomPolicy struct {
	ways int
	rng  *sim.Rand
}

func (p *randomPolicy) Name() string       { return string(Random) }
func (p *randomPolicy) Touch(way int)      {}
func (p *randomPolicy) Victim() int        { return p.rng.Intn(p.ways) }
func (p *randomPolicy) Invalidate(way int) {}
