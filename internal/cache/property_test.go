package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestInclusionInvariant drives the hierarchy with arbitrary access/flush
// sequences and checks the inclusive-LLC invariant after every operation:
// any line resident in an inner level must be resident in the LLC.
func TestInclusionInvariant(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		mem := &memStub{latency: 150}
		h, err := NewHierarchy(SandyBridgeConfig(), mem)
		if err != nil {
			return false
		}
		var lines []uint64
		now := sim.Cycles(0)
		for _, op := range ops {
			// Small address universe so sets collide and evictions happen.
			pa := uint64(op%512) * LineSize * 37
			switch {
			case op%11 == 0:
				h.Flush(pa, now)
			case op%7 == 0:
				h.Access(pa, true, now)
			default:
				h.Access(pa, false, now)
			}
			lines = append(lines, pa)
			now += 100
			if len(lines) > 64 {
				lines = lines[1:]
			}
			// Invariant: inner residency implies LLC residency.
			for _, l := range lines {
				for i := 0; i < 2; i++ {
					if h.Level(i).Lookup(l) && !h.LLC().Lookup(l) {
						t.Logf("line %#x in L%d but not LLC", l, i+1)
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

// TestNoDirtyDataLost checks write-back accounting: every store eventually
// reaches memory exactly once, via eviction writeback or flush.
func TestNoDirtyDataLost(t *testing.T) {
	mem := &memStub{latency: 150}
	h, err := NewHierarchy(SandyBridgeConfig(), mem)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(123)
	stores := map[uint64]bool{}
	now := sim.Cycles(0)
	for i := 0; i < 20000; i++ {
		pa := rng.Uint64n(1<<22) &^ (LineSize - 1)
		if rng.Bool(0.3) {
			h.Access(pa, true, now)
			stores[pa] = true
		} else {
			h.Access(pa, false, now)
		}
		now += 50
	}
	// Flush everything still resident.
	for pa := range stores {
		h.Flush(pa, now)
	}
	// Every dirtied line must have produced at least one memory write, and
	// clean traffic alone must not write.
	if mem.writes == 0 {
		t.Fatal("no writebacks at all")
	}
	if mem.writes > len(stores)*4 {
		t.Errorf("suspiciously many writebacks: %d for %d dirty lines", mem.writes, len(stores))
	}
}

// TestHierarchyDeterminism: identical access sequences produce identical
// hit/miss traces (the simulator's reproducibility guarantee).
func TestHierarchyDeterminism(t *testing.T) {
	trace := func() []DataSource {
		mem := &memStub{latency: 150}
		h, _ := NewHierarchy(SandyBridgeConfig(), mem)
		rng := sim.NewRand(7)
		var out []DataSource
		for i := 0; i < 5000; i++ {
			pa := rng.Uint64n(1 << 21)
			res := h.Access(pa, rng.Bool(0.2), sim.Cycles(i*10))
			out = append(out, res.Source)
		}
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
