// Package profiling wires the standard pprof collectors into the CLIs.
// The simulator's hot loop (machine.Step -> vm.Translate -> cache Access ->
// dram Access -> pmu.Observe) is tuned against profiles of real experiment
// runs, so every binary that drives experiments exposes -cpuprofile and
// -memprofile flags through this package.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling and/or arranges a heap profile for the paths
// that are non-empty (either may be ""). The returned stop function
// finalises both profiles and must run before the process exits; defer it
// from main. Start never returns a nil stop function.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle allocation stats so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
