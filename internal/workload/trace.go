package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Record is one operation of a recorded memory trace.
type Record struct {
	Kind   machine.OpKind
	VA     uint64
	Cycles sim.Cycles // OpCompute only
}

// ParseTrace reads the plain-text trace format, one record per line:
//
//	L <addr>      load
//	S <addr>      store
//	F <addr>      CLFLUSH
//	C <cycles>    compute
//
// Addresses accept 0x-prefixed hex or decimal. Blank lines and lines
// starting with '#' are ignored. The format is deliberately trivial so
// traces from pin tools or other simulators convert with a one-line awk.
func ParseTrace(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: trace line %d: want \"<op> <value>\", got %q", lineNo, line)
		}
		val, err := strconv.ParseUint(fields[1], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %v", lineNo, err)
		}
		var rec Record
		switch strings.ToUpper(fields[0]) {
		case "L":
			rec = Record{Kind: machine.OpLoad, VA: val}
		case "S":
			rec = Record{Kind: machine.OpStore, VA: val}
		case "F":
			rec = Record{Kind: machine.OpFlush, VA: val}
		case "C":
			rec = Record{Kind: machine.OpCompute, Cycles: sim.Cycles(val)}
		default:
			return nil, fmt.Errorf("workload: trace line %d: unknown op %q", lineNo, fields[0])
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return out, nil
}

// FormatTrace writes records in the ParseTrace format.
func FormatTrace(w io.Writer, recs []Record) error {
	for _, r := range recs {
		var err error
		switch r.Kind {
		case machine.OpLoad:
			_, err = fmt.Fprintf(w, "L %#x\n", r.VA)
		case machine.OpStore:
			_, err = fmt.Fprintf(w, "S %#x\n", r.VA)
		case machine.OpFlush:
			_, err = fmt.Fprintf(w, "F %#x\n", r.VA)
		case machine.OpCompute:
			_, err = fmt.Fprintf(w, "C %d\n", uint64(r.Cycles))
		default:
			err = fmt.Errorf("workload: cannot format op kind %d", r.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// TraceProgram replays a recorded trace on the machine, mapping every page
// the trace touches at Init.
type TraceProgram struct {
	name string
	recs []Record
	loop uint64 // total passes (0 = forever)
	pos  int
	pass uint64
}

// NewTraceProgram builds the replayer. loops is how many times to replay
// the trace (0 = forever).
func NewTraceProgram(name string, recs []Record, loops uint64) (*TraceProgram, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if name == "" {
		name = "trace"
	}
	return &TraceProgram{name: name, recs: recs, loop: loops}, nil
}

// Name implements machine.Program.
func (t *TraceProgram) Name() string { return t.name }

// Init implements machine.Program: maps the distinct pages the trace
// references.
func (t *TraceProgram) Init(p *machine.Proc) error {
	pages := map[uint64]bool{}
	for _, r := range t.recs {
		if r.Kind == machine.OpCompute {
			continue
		}
		pages[r.VA&^uint64(vm.PageSize-1)] = true
	}
	sorted := make([]uint64, 0, len(pages))
	for pg := range pages {
		sorted = append(sorted, pg)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, pg := range sorted {
		if err := p.AS.Map(pg, vm.PageSize); err != nil {
			return err
		}
	}
	return nil
}

// Next implements machine.Program.
func (t *TraceProgram) Next() machine.Op {
	if t.pos >= len(t.recs) {
		t.pos = 0
		t.pass++
		if t.loop > 0 && t.pass >= t.loop {
			return machine.Op{Kind: machine.OpDone}
		}
	}
	r := t.recs[t.pos]
	t.pos++
	return machine.Op{Kind: r.Kind, VA: r.VA, Cycles: r.Cycles}
}

var _ machine.Program = (*TraceProgram)(nil)

// Recorder wraps a Program and captures the operation stream it emits, so
// synthetic workloads (or attacks) can be exported as replayable traces.
type Recorder struct {
	inner machine.Program
	limit int
	recs  []Record
}

// NewRecorder wraps prog, recording up to limit operations (0 = unlimited;
// use with care).
func NewRecorder(prog machine.Program, limit int) *Recorder {
	return &Recorder{inner: prog, limit: limit}
}

// Name implements machine.Program.
func (r *Recorder) Name() string { return r.inner.Name() + "+rec" }

// Init implements machine.Program.
func (r *Recorder) Init(p *machine.Proc) error { return r.inner.Init(p) }

// Next implements machine.Program.
func (r *Recorder) Next() machine.Op {
	op := r.inner.Next()
	if op.Kind != machine.OpDone && (r.limit == 0 || len(r.recs) < r.limit) {
		r.recs = append(r.recs, Record{Kind: op.Kind, VA: op.VA, Cycles: op.Cycles})
	}
	return op
}

// Records returns the captured operations.
func (r *Recorder) Records() []Record { return r.recs }

var _ machine.Program = (*Recorder)(nil)
