package workload

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/pmu"
)

func TestParseTrace(t *testing.T) {
	in := `
# a comment
L 0x1000
S 4096
C 250
F 0x1000
`
	recs, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Kind: machine.OpLoad, VA: 0x1000},
		{Kind: machine.OpStore, VA: 4096},
		{Kind: machine.OpCompute, Cycles: 250},
		{Kind: machine.OpFlush, VA: 0x1000},
	}
	if len(recs) != len(want) {
		t.Fatalf("records = %d", len(recs))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"L",              // missing operand
		"L notanumber",   // bad operand
		"X 0x1000",       // unknown op
		"L 0x1000 extra", // too many fields
	}
	for _, in := range cases {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("ParseTrace(%q) succeeded", in)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: machine.OpLoad, VA: 0xABCDE0},
		{Kind: machine.OpStore, VA: 0x123456},
		{Kind: machine.OpCompute, Cycles: 999},
		{Kind: machine.OpFlush, VA: 0x40},
	}
	var buf bytes.Buffer
	if err := FormatTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Errorf("record %d: %+v vs %+v", i, back[i], recs[i])
		}
	}
	if err := FormatTrace(&buf, []Record{{Kind: machine.OpDone}}); err == nil {
		t.Error("formatting OpDone should fail")
	}
}

func TestTraceProgramReplaysOnMachine(t *testing.T) {
	recs := []Record{
		{Kind: machine.OpLoad, VA: 0x10_0000},
		{Kind: machine.OpLoad, VA: 0x20_0000},
		{Kind: machine.OpFlush, VA: 0x10_0000},
		{Kind: machine.OpLoad, VA: 0x10_0000},
		{Kind: machine.OpCompute, Cycles: 100},
	}
	prog, err := NewTraceProgram("replay", recs, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, machine.ErrAllDone) {
		t.Fatal(err)
	}
	st := m.Cores[0].Stats
	if st.Loads != 9 || st.Flushes != 3 {
		t.Errorf("stats = %+v, want 9 loads / 3 flushes", st)
	}
	// The flushed line re-misses every pass: at least 3 LLC misses beyond
	// the 2 cold ones.
	if misses := m.Mem.PMU.Read(pmu.EvLLCMiss); misses < 5 {
		t.Errorf("LLC misses = %d, want >= 5", misses)
	}
}

func TestTraceProgramValidation(t *testing.T) {
	if _, err := NewTraceProgram("x", nil, 1); err == nil {
		t.Error("empty trace accepted")
	}
	p, err := NewTraceProgram("", []Record{{Kind: machine.OpCompute, Cycles: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "trace" {
		t.Errorf("default name = %q", p.Name())
	}
}

func TestRecorderCapturesAndReplays(t *testing.T) {
	prof, _ := ByName("bzip2")
	rec := NewRecorder(mustNew(t, prof).WithOpLimit(200), 0)
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, rec); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, machine.ErrAllDone) {
		t.Fatal(err)
	}
	recs := rec.Records()
	if len(recs) == 0 {
		t.Fatal("nothing recorded")
	}
	// The recording round-trips through the text format and replays with
	// identical memory-op counts.
	var buf bytes.Buffer
	if err := FormatTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := NewTraceProgram("replay", parsed, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Spawn(0, replay); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(1 << 40); !errors.Is(err, machine.ErrAllDone) {
		t.Fatal(err)
	}
	a, b := m.Cores[0].Stats, m2.Cores[0].Stats
	if a.Loads != b.Loads || a.Stores != b.Stores {
		t.Errorf("replay diverged: %d/%d loads, %d/%d stores", a.Loads, b.Loads, a.Stores, b.Stores)
	}
}

func TestRecorderLimit(t *testing.T) {
	prof, _ := ByName("sjeng")
	rec := NewRecorder(mustNew(t, prof), 10)
	for i := 0; i < 100; i++ {
		rec.Next()
	}
	if len(rec.Records()) != 10 {
		t.Errorf("records = %d, want 10", len(rec.Records()))
	}
}
