package workload

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/pmu"
)

// mustNew builds a profile's synthetic program, failing the test on error.
func mustNew(tb testing.TB, p Profile) *Synthetic {
	tb.Helper()
	s, err := New(p)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x", FootprintMB: 0},
		{Name: "x", FootprintMB: 4, Pattern: Skewed, Skew: 0.5},
		{Name: "x", FootprintMB: 4, Skew: 1, HotPerCold: -1},
		{Name: "x", FootprintMB: 4, Skew: 1, StoreFrac: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	for _, p := range SPEC2006() {
		if err := p.Validate(); err != nil {
			t.Errorf("SPEC profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestSPEC2006Complete(t *testing.T) {
	ps := SPEC2006()
	if len(ps) != 12 {
		t.Fatalf("got %d profiles, want 12", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
	for _, name := range append(MemoryIntensive(), ComputeBound()...) {
		if !seen[name] {
			t.Errorf("class list references unknown profile %s", name)
		}
	}
	trio, err := HeavyLoadTrio()
	if err != nil {
		t.Fatalf("HeavyLoadTrio: %v", err)
	}
	if len(trio) != 3 {
		t.Error("heavy-load trio wrong size")
	}
	if _, ok := ByName("mcf"); !ok {
		t.Error("ByName(mcf) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	p, _ := ByName("bzip2")
	a := mustNew(t, p)
	b := mustNew(t, p)
	// Address streams must be identical for identical seeds.
	for i := 0; i < 1000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa != ob {
			t.Fatalf("op %d diverged: %+v vs %+v", i, oa, ob)
		}
	}
}

func TestSyntheticOpLimit(t *testing.T) {
	p, _ := ByName("hmmer")
	s := mustNew(t, p).WithOpLimit(100)
	memOps := 0
	for i := 0; i < 10000; i++ {
		op := s.Next()
		if op.Kind == machine.OpDone {
			break
		}
		if op.Kind == machine.OpLoad || op.Kind == machine.OpStore {
			memOps++
		}
	}
	if memOps != 100 {
		t.Errorf("mem ops before done = %d, want 100", memOps)
	}
	if s.MemOps() != 100 {
		t.Errorf("MemOps() = %d", s.MemOps())
	}
}

func TestSyntheticStoreFraction(t *testing.T) {
	p, _ := ByName("hmmer") // StoreFrac 0.45
	s := mustNew(t, p)
	loads, stores := 0, 0
	for i := 0; i < 40000; i++ {
		switch s.Next().Kind {
		case machine.OpLoad:
			loads++
		case machine.OpStore:
			stores++
		}
	}
	frac := float64(stores) / float64(loads+stores)
	if frac < 0.40 || frac > 0.50 {
		t.Errorf("store fraction = %g, want ~0.45", frac)
	}
}

func TestStreamPatternIsSequential(t *testing.T) {
	p, _ := ByName("libquantum")
	s := mustNew(t, p)
	var prev uint64
	first := true
	count := 0
	for i := 0; i < 2000 && count < 100; i++ {
		op := s.Next()
		if op.Kind != machine.OpLoad && op.Kind != machine.OpStore {
			continue
		}
		if op.VA < coldBase {
			continue // hot access
		}
		if !first && op.VA != prev+64 && op.VA != coldBase {
			t.Fatalf("stream jumped from %#x to %#x", prev, op.VA)
		}
		prev = op.VA
		first = false
		count++
	}
}

func TestSkewConcentratesRows(t *testing.T) {
	countTopRowShare := func(skew float64) float64 {
		p := Profile{Name: "t", Pattern: Skewed, FootprintMB: 8, Skew: skew, Compute: 10, Seed: 9}
		s := mustNew(t, p)
		rows := map[uint64]int{}
		const n = 20000
		for i := 0; i < n*2; i++ {
			op := s.Next()
			if op.Kind == machine.OpLoad || op.Kind == machine.OpStore {
				rows[(op.VA-coldBase)/rowBytes]++
			}
		}
		max := 0
		for _, c := range rows {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(n)
	}
	uniform := countTopRowShare(1.0)
	skewed := countTopRowShare(2.2)
	if skewed < 3*uniform {
		t.Errorf("skew 2.2 top-row share %.4f not much larger than uniform %.4f", skewed, uniform)
	}
}

// TestMissRateClasses runs each profile on the machine and checks the
// stage-1 classes of §4.3: the memory-intensive four sustain more than 20K
// LLC misses per 6ms, the compute-bound four far fewer.
func TestMissRateClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	const window = 6 * time.Millisecond
	rate := func(name string) float64 {
		prof, ok := ByName(name)
		if !ok {
			t.Fatalf("no profile %s", name)
		}
		cfg := machine.DefaultConfig()
		cfg.Cores = 1
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Spawn(0, mustNew(t, prof)); err != nil {
			t.Fatal(err)
		}
		// Warm up 6ms, then measure 24ms.
		if err := m.Run(m.Freq.Cycles(window)); err != nil {
			t.Fatal(err)
		}
		start := m.Mem.PMU.Read(pmu.EvLLCMiss)
		if err := m.Run(m.Freq.Cycles(5 * window)); err != nil {
			t.Fatal(err)
		}
		misses := m.Mem.PMU.Read(pmu.EvLLCMiss) - start
		return float64(misses) / 4 // per 6ms window
	}
	for _, name := range MemoryIntensive() {
		if r := rate(name); r < 20_000 {
			t.Errorf("%s: %.0f misses/6ms, want > 20000 (memory-intensive)", name, r)
		}
	}
	for _, name := range ComputeBound() {
		if r := rate(name); r > 10_000 {
			t.Errorf("%s: %.0f misses/6ms, want well under 20000 (compute-bound)", name, r)
		}
	}
}

func TestActiveRegionSlidesDeterministically(t *testing.T) {
	p := Profile{Name: "r", Pattern: Skewed, FootprintMB: 8, Skew: 1.5, Compute: 10,
		RegionKB: 512, RegionFrac: 1.0, RegionPeriod: 1000, Seed: 5}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, p)
	region := uint64(p.RegionKB) << 10
	bases := map[uint64]bool{}
	for i := 0; i < 40000; i++ {
		op := s.Next()
		if op.Kind != machine.OpLoad && op.Kind != machine.OpStore {
			continue
		}
		// Track which region-sized windows the accesses land in.
		bases[(op.VA-coldBase)/region*region] = true
	}
	if len(bases) < 3 {
		t.Errorf("region never slid: bases=%v", bases)
	}
	// Determinism.
	a, b := mustNew(t, p), mustNew(t, p)
	for i := 0; i < 5000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("region stream nondeterministic at %d", i)
		}
	}
}

func TestRegionAddressesWithinFootprint(t *testing.T) {
	p := Profile{Name: "r", Pattern: Skewed, FootprintMB: 4, Skew: 1.2, Compute: 10,
		RegionKB: 1024, RegionFrac: 0.5, RegionPeriod: 500, Seed: 8}
	s := mustNew(t, p)
	for i := 0; i < 50000; i++ {
		op := s.Next()
		if op.Kind == machine.OpLoad || op.Kind == machine.OpStore {
			if op.VA >= coldBase && op.VA >= coldBase+uint64(p.FootprintMB)<<20 {
				t.Fatalf("cold access %#x outside the footprint", op.VA)
			}
		}
	}
}

func TestNewRejectsInvalidProfile(t *testing.T) {
	if _, err := New(Profile{}); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := New(Profile{Name: "x", FootprintMB: -1}); err == nil {
		t.Error("negative footprint accepted")
	}
}

func TestHeavyLoadNamesResolve(t *testing.T) {
	for _, name := range HeavyLoadNames() {
		if _, ok := ByName(name); !ok {
			t.Errorf("heavy-load name %q missing from SPEC2006", name)
		}
	}
}
