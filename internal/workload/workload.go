// Package workload provides synthetic benchmark programs standing in for
// the SPEC2006 integer suite used in the paper's evaluation (reference [9]).
//
// Each profile is characterised by the properties that matter to ANVIL and
// to the refresh-rate experiments — nothing else about SPEC is relevant to
// the reproduction:
//
//   - the sustained LLC miss rate, which determines how often the detector's
//     stage-1 threshold (20K misses / 6 ms) is crossed;
//   - the DRAM row re-use distribution of those misses (streaming scans vs.
//     skewed pointer-chasing), which determines how often sampled rows
//     cluster enough to look like rowhammer aggressors (false positives);
//   - the load/store mix, which selects which PEBS facility ANVIL samples;
//   - memory-boundedness, which determines sensitivity to refresh blocking
//     (the doubled-refresh-rate baseline).
//
// The twelve profiles are calibrated so that the four memory-intensive
// benchmarks (mcf, libquantum, omnetpp, xalancbmk) cross stage 1 in ≳95% of
// windows, the four compute-bound ones (h264ref, gobmk, sjeng, hmmer) in
// <10%, matching §4.3 of the paper.
package workload

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Pattern selects how cold (cache-missing) accesses pick addresses.
type Pattern int

const (
	// Stream walks the footprint sequentially line by line, like
	// libquantum's vector sweeps: misses spread evenly across DRAM rows.
	Stream Pattern = iota
	// Skewed picks a row with a power-law bias and a uniform line within
	// it, like pointer-chasing over skewed data structures: a few rows
	// absorb a disproportionate share of the misses.
	Skewed
)

// Profile parameterises one synthetic benchmark.
type Profile struct {
	Name        string
	Pattern     Pattern
	FootprintMB int        // cold region size; must exceed the LLC to miss
	Skew        float64    // >= 1; 1 = uniform row choice (Skewed only)
	HotPerCold  int        // cache-resident accesses interleaved per cold access
	Compute     sim.Cycles // mean compute cycles between operations
	StoreFrac   float64    // fraction of memory operations that are stores
	Seed        uint64

	// Burst phases model the program-phase behaviour of the intermediate
	// benchmarks: for BurstFrac of every BurstPeriod memory operations, the
	// compute per operation drops by BurstSpeedup, spiking the LLC miss
	// rate. This is what makes a benchmark cross ANVIL's stage-1 threshold
	// in *some* windows rather than all or none.
	BurstPeriod  uint64  // memory ops per phase cycle (0 = no bursts)
	BurstFrac    float64 // fraction of the cycle spent in the bursty phase
	BurstSpeedup float64 // compute divisor during bursts (>1)

	// Active-region (block-processing) behaviour: a RegionFrac share of
	// cold accesses lands uniformly in a compact RegionKB window that
	// slides forward every RegionPeriod cold accesses — bzip2's block
	// sorting, gcc's per-function passes. Fresh regions are always cache
	// cold, so their misses concentrate on few DRAM rows: the "thrashing
	// access patterns" behind ANVIL's (rare) false positives.
	RegionKB     int     // active region size (0 = no region behaviour)
	RegionFrac   float64 // fraction of cold accesses into the region
	RegionPeriod uint64  // cold accesses before the region slides
}

// Validate checks the profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile needs a name")
	case p.FootprintMB <= 0:
		return fmt.Errorf("workload: %s: footprint must be positive", p.Name)
	case p.Skew < 1 && p.Pattern == Skewed:
		return fmt.Errorf("workload: %s: skew must be >= 1, got %g", p.Name, p.Skew)
	case p.HotPerCold < 0:
		return fmt.Errorf("workload: %s: negative HotPerCold", p.Name)
	case p.StoreFrac < 0 || p.StoreFrac > 1:
		return fmt.Errorf("workload: %s: StoreFrac out of range: %g", p.Name, p.StoreFrac)
	case p.BurstPeriod > 0 && (p.BurstFrac <= 0 || p.BurstFrac >= 1):
		return fmt.Errorf("workload: %s: BurstFrac must be in (0,1) with bursts on", p.Name)
	case p.BurstPeriod > 0 && p.BurstSpeedup <= 1:
		return fmt.Errorf("workload: %s: BurstSpeedup must exceed 1", p.Name)
	case p.RegionKB < 0 || p.RegionKB > p.FootprintMB<<10:
		return fmt.Errorf("workload: %s: RegionKB must be within the footprint", p.Name)
	case p.RegionKB > 0 && (p.RegionFrac <= 0 || p.RegionFrac > 1):
		return fmt.Errorf("workload: %s: RegionFrac must be in (0,1] with a region", p.Name)
	case p.RegionKB > 0 && p.RegionPeriod == 0:
		return fmt.Errorf("workload: %s: RegionPeriod must be positive with a region", p.Name)
	}
	return nil
}

// SPEC2006 returns the twelve SPEC2006-integer stand-in profiles.
func SPEC2006() []Profile {
	return []Profile{
		{Name: "astar", Pattern: Skewed, FootprintMB: 16, Skew: 1.9, HotPerCold: 3, Compute: 220, StoreFrac: 0.20, Seed: 101,
			BurstPeriod: 500_000, BurstFrac: 0.35, BurstSpeedup: 2.3,
			RegionKB: 512, RegionFrac: 0.7, RegionPeriod: 11_700},
		{Name: "bzip2", Pattern: Skewed, FootprintMB: 8, Skew: 2.4, HotPerCold: 2, Compute: 170, StoreFrac: 0.35, Seed: 102,
			BurstPeriod: 600_000, BurstFrac: 0.50, BurstSpeedup: 2.4,
			RegionKB: 512, RegionFrac: 0.75, RegionPeriod: 10_900},
		{Name: "gcc", Pattern: Skewed, FootprintMB: 12, Skew: 2.3, HotPerCold: 2, Compute: 185, StoreFrac: 0.30, Seed: 103,
			BurstPeriod: 600_000, BurstFrac: 0.45, BurstSpeedup: 2.0,
			RegionKB: 768, RegionFrac: 0.65, RegionPeriod: 18_900},
		{Name: "gobmk", Pattern: Skewed, FootprintMB: 8, Skew: 2.3, HotPerCold: 8, Compute: 650, StoreFrac: 0.25, Seed: 104,
			BurstPeriod: 750_000, BurstFrac: 0.55, BurstSpeedup: 22,
			RegionKB: 768, RegionFrac: 0.6, RegionPeriod: 20_500},
		{Name: "h264ref", Pattern: Stream, FootprintMB: 4, Skew: 1, HotPerCold: 12, Compute: 900, StoreFrac: 0.30, Seed: 105},
		{Name: "hmmer", Pattern: Skewed, FootprintMB: 4, Skew: 1.2, HotPerCold: 16, Compute: 1100, StoreFrac: 0.45, Seed: 106},
		{Name: "libquantum", Pattern: Stream, FootprintMB: 32, Skew: 1, HotPerCold: 0, Compute: 130, StoreFrac: 0.25, Seed: 107},
		{Name: "mcf", Pattern: Skewed, FootprintMB: 48, Skew: 1.2, HotPerCold: 1, Compute: 90, StoreFrac: 0.06, Seed: 108},
		{Name: "omnetpp", Pattern: Skewed, FootprintMB: 24, Skew: 1.3, HotPerCold: 1, Compute: 130, StoreFrac: 0.30, Seed: 109},
		{Name: "perlbench", Pattern: Skewed, FootprintMB: 8, Skew: 1.5, HotPerCold: 10, Compute: 750, StoreFrac: 0.35, Seed: 110,
			BurstPeriod: 420_000, BurstFrac: 0.50, BurstSpeedup: 12,
			RegionKB: 2048, RegionFrac: 0.5, RegionPeriod: 64_000},
		{Name: "sjeng", Pattern: Skewed, FootprintMB: 8, Skew: 1.3, HotPerCold: 12, Compute: 950, StoreFrac: 0.30, Seed: 111},
		{Name: "xalancbmk", Pattern: Skewed, FootprintMB: 24, Skew: 1.7, HotPerCold: 1, Compute: 140, StoreFrac: 0.25, Seed: 112,
			RegionKB: 2048, RegionFrac: 0.2, RegionPeriod: 163_000},
	}
}

// MemoryIntensive lists the benchmarks the paper identifies as crossing the
// stage-1 threshold in 95-99% of windows.
func MemoryIntensive() []string {
	return []string{"libquantum", "omnetpp", "mcf", "xalancbmk"}
}

// ComputeBound lists the benchmarks crossing stage 1 in <10% of windows.
func ComputeBound() []string {
	return []string{"h264ref", "gobmk", "sjeng", "hmmer"}
}

// HeavyLoadNames lists the heavy-load trio of the paper's detection
// experiments by profile name: "mcf, libquantum and omnetpp running at the
// same time".
func HeavyLoadNames() []string { return []string{"mcf", "libquantum", "omnetpp"} }

// HeavyLoadTrio resolves HeavyLoadNames to profiles. It errors (rather than
// panics) on a missing profile so callers that assemble scenarios from
// configuration keep their error path.
func HeavyLoadTrio() ([]Profile, error) {
	var out []Profile
	for _, name := range HeavyLoadNames() {
		p, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("workload: missing heavy-load profile %q", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// ByName returns the named SPEC profile.
func ByName(name string) (Profile, bool) {
	for _, p := range SPEC2006() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

const (
	hotBufBytes = 16 << 10 // cache-resident hot buffer
	hotBase     = uint64(0x10_0000)
	coldBase    = uint64(0x4000_0000)
	rowBytes    = 8192 // matches the DRAM row size for row-locality shaping
)

// Synthetic is the machine.Program implementation of a Profile.
type Synthetic struct {
	prof Profile
	rng  *sim.Rand

	footprint uint64
	rows      uint64

	// OpLimit stops the program after this many memory operations
	// (0 = run forever). Fixed-work runs make execution-time overheads
	// directly comparable across configurations.
	opLimit uint64

	// Generation-side state: everything that decides *which* operations the
	// program produces. The batched machine pulls operations ahead of
	// execution (NextRun), so none of this may be externally observable.
	genMemOps uint64 // memory operations generated (drives bursts, opLimit)
	phase     int    // 0 = memory op next, 1 = compute op next
	cold      int    // countdown of hot accesses until the next cold access
	streamPos uint64

	coldOps    uint64 // cold accesses issued (drives region rotation)
	regionBase uint64 // current active-region offset within the footprint

	// Execution-side state: committed operations, the externally observable
	// progress backing MemOps.
	execMemOps uint64

	pending   []machine.Op // generated but not yet committed operations
	pendStart int          // committed prefix of pending
}

// New builds the synthetic program for a profile.
func New(prof Profile) (*Synthetic, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	fp := uint64(prof.FootprintMB) << 20
	return &Synthetic{
		prof:      prof,
		rng:       sim.NewRand(prof.Seed),
		footprint: fp,
		rows:      fp / rowBytes,
	}, nil
}

// WithOpLimit makes the program finish after n memory operations.
func (s *Synthetic) WithOpLimit(n uint64) *Synthetic {
	s.opLimit = n
	return s
}

// Name implements machine.Program.
func (s *Synthetic) Name() string { return s.prof.Name }

// MemOps reports memory operations executed so far (committed by the
// machine; operations generated ahead by the batched path do not count
// until they run).
func (s *Synthetic) MemOps() uint64 { return s.execMemOps }

// Init implements machine.Program: maps the hot buffer and the footprint.
func (s *Synthetic) Init(p *machine.Proc) error {
	if err := p.AS.Map(hotBase, hotBufBytes); err != nil {
		return err
	}
	return p.AS.Map(coldBase, s.footprint)
}

// inBurst reports whether the program is in the high-intensity slice of its
// current phase cycle.
func (s *Synthetic) inBurst() bool {
	if s.prof.BurstPeriod == 0 {
		return false
	}
	return s.genMemOps%s.prof.BurstPeriod < uint64(float64(s.prof.BurstPeriod)*s.prof.BurstFrac)
}

// coldAddr picks the next cache-missing address per the profile's pattern.
func (s *Synthetic) coldAddr() uint64 {
	s.coldOps++
	switch s.prof.Pattern {
	case Stream:
		off := s.streamPos * 64
		s.streamPos++
		if off+64 > s.footprint {
			s.streamPos = 0
			off = 0
		}
		return coldBase + off
	default: // Skewed
		if s.prof.RegionKB > 0 && s.rng.Bool(s.prof.RegionFrac) {
			return s.regionAddr()
		}
		u := s.rng.Float64()
		row := uint64(float64(s.rows) * math.Pow(u, s.prof.Skew))
		if row >= s.rows {
			row = s.rows - 1
		}
		line := s.rng.Uint64n(rowBytes / 64)
		return coldBase + row*rowBytes + line*64
	}
}

// regionAddr picks a uniform line within the sliding active region,
// advancing the region every RegionPeriod cold accesses.
func (s *Synthetic) regionAddr() uint64 {
	region := uint64(s.prof.RegionKB) << 10
	if slot := s.coldOps / s.prof.RegionPeriod; true {
		// Deterministic slide: regions tile the footprint in order, like
		// block-structured processing of an input.
		s.regionBase = slot * region % (s.footprint - region + 1)
	}
	return coldBase + s.regionBase + s.rng.Uint64n(region/64)*64
}

// gen produces the next operation of the generation stream, advancing only
// generation-side state. The stream is identical whether operations are
// pulled one at a time (Next) or in runs (NextRun).
func (s *Synthetic) gen() machine.Op {
	if s.opLimit > 0 && s.genMemOps >= s.opLimit {
		return machine.Op{Kind: machine.OpDone}
	}
	if s.phase == 1 {
		s.phase = 0
		c := uint64(s.prof.Compute)
		if s.inBurst() {
			c = uint64(float64(c) / s.prof.BurstSpeedup)
		}
		if c == 0 {
			c = 1
		}
		// +-50% deterministic jitter.
		jit := c/2 + s.rng.Uint64n(c+1)
		return machine.Op{Kind: machine.OpCompute, Cycles: sim.Cycles(jit)}
	}
	s.phase = 1
	s.genMemOps++
	var va uint64
	if s.cold <= 0 {
		va = s.coldAddr()
		s.cold = s.prof.HotPerCold
	} else {
		s.cold--
		va = hotBase + s.rng.Uint64n(hotBufBytes/64)*64
	}
	kind := machine.OpLoad
	if s.rng.Bool(s.prof.StoreFrac) {
		kind = machine.OpStore
	}
	return machine.Op{Kind: kind, VA: va}
}

// commit records one operation as executed.
func (s *Synthetic) commit(op machine.Op) {
	if op.Kind == machine.OpLoad || op.Kind == machine.OpStore {
		s.execMemOps++
	}
}

// Next implements machine.Program: it drains the pregenerated buffer first
// so per-op stepping after a partially executed batch view stays on the
// exact same operation stream.
func (s *Synthetic) Next() machine.Op {
	if s.pendStart < len(s.pending) {
		op := s.pending[s.pendStart]
		s.pendStart++
		if s.pendStart == len(s.pending) {
			s.pending = s.pending[:0]
			s.pendStart = 0
		}
		s.commit(op)
		return op
	}
	op := s.gen()
	s.commit(op)
	return op
}

// NextRun implements machine.BatchProgram: it tops the pending buffer up to
// max uncommitted operations (stopping at OpDone) and returns them. Nothing
// commits until Advance.
func (s *Synthetic) NextRun(max int) []machine.Op {
	for len(s.pending)-s.pendStart < max {
		if n := len(s.pending); n > s.pendStart && s.pending[n-1].Kind == machine.OpDone {
			break
		}
		op := s.gen()
		s.pending = append(s.pending, op)
		if op.Kind == machine.OpDone {
			break
		}
	}
	return s.pending[s.pendStart:]
}

// Advance implements machine.BatchProgram.
func (s *Synthetic) Advance(n int) {
	for _, op := range s.pending[s.pendStart : s.pendStart+n] {
		s.commit(op)
	}
	s.pendStart += n
	if s.pendStart == len(s.pending) {
		s.pending = s.pending[:0]
		s.pendStart = 0
	}
}

var _ machine.BatchProgram = (*Synthetic)(nil)
