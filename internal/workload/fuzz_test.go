package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTrace: the parser never panics and every successfully parsed
// trace survives a format/parse round trip.
func FuzzParseTrace(f *testing.F) {
	f.Add("L 0x1000\nS 64\nC 10\nF 0x40\n")
	f.Add("# comment\n\nL 1\n")
	f.Add("bogus line")
	f.Add("L 0xffffffffffffffff\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := FormatTrace(&buf, recs); err != nil {
			t.Fatalf("formatting parsed records: %v", err)
		}
		again, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("re-parsing formatted records: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d vs %d", len(again), len(recs))
		}
		for i := range recs {
			if again[i] != recs[i] {
				t.Fatalf("record %d changed: %+v vs %+v", i, recs[i], again[i])
			}
		}
	})
}
