package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// slotVal is the deterministic per-replicate payload of the slot tests.
func slotVal(rep int) uint64 { return ReplicateSeed(42, rep) % 1_000_003 }

// TestSlotsRestrictExecution: only listed slots run; the rest stay zero
// values with no error, no progress event, and no dropped report.
func TestSlotsRestrictExecution(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	ran := map[int]bool{}
	var events []int
	opts := Options{
		Workers: 3,
		Slots:   []int{1, 4, 6, 97, -2}, // out-of-range entries are ignored
		OnProgress: func(ev ProgressEvent) {
			mu.Lock()
			events = append(events, ev.Rep)
			mu.Unlock()
		},
	}
	out, status, err := RunSweep(context.Background(), n, opts, func(_ context.Context, rep int) (uint64, error) {
		mu.Lock()
		ran[rep] = true
		mu.Unlock()
		return slotVal(rep), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if status.Truncated || len(status.Dropped) != 0 {
		t.Fatalf("slot restriction must not report truncation: %+v", status)
	}
	want := map[int]bool{1: true, 4: true, 6: true}
	if !reflect.DeepEqual(ran, want) {
		t.Fatalf("ran %v, want %v", ran, want)
	}
	if len(events) != 3 {
		t.Fatalf("progress events for %v, want exactly the 3 executed slots", events)
	}
	for rep := 0; rep < n; rep++ {
		if want[rep] && out[rep] != slotVal(rep) {
			t.Fatalf("slot %d: got %d, want %d", rep, out[rep], slotVal(rep))
		}
		if !want[rep] && out[rep] != 0 {
			t.Fatalf("unlisted slot %d computed a value: %d", rep, out[rep])
		}
	}
}

// TestSlotsShardMergeByteIdentical is the distribution contract: executing a
// sweep as disjoint slot shards and merging the per-replicate OnResult bytes
// reproduces the unrestricted sweep's journal bytes exactly, whatever the
// sharding.
func TestSlotsShardMergeByteIdentical(t *testing.T) {
	const n = 9
	run := func(_ context.Context, rep int) (uint64, error) { return slotVal(rep), nil }

	golden := make(map[int]string, n)
	opts := Options{OnResult: func(rep int, raw json.RawMessage) error {
		golden[rep] = string(raw)
		return nil
	}}
	if _, _, err := RunSweep(context.Background(), n, opts, run); err != nil {
		t.Fatal(err)
	}
	if len(golden) != n {
		t.Fatalf("OnResult saw %d replicates, want %d", len(golden), n)
	}

	shards := [][]int{{0, 3, 8}, {1, 2}, {4, 5, 6, 7}}
	var mu sync.Mutex
	merged := make(map[int]string, n)
	for _, shard := range shards {
		sopts := Options{
			Workers: 2,
			Slots:   shard,
			OnResult: func(rep int, raw json.RawMessage) error {
				mu.Lock()
				merged[rep] = string(raw)
				mu.Unlock()
				return nil
			},
		}
		if _, _, err := RunSweep(context.Background(), n, sopts, run); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(merged, golden) {
		t.Fatalf("sharded merge differs from unrestricted run:\n got %v\nwant %v", merged, golden)
	}
}

// TestSlotsSkipJournaledReplicates: a resumed journal must not merge results
// into slots outside the restriction — an excluded slot stays zero even when
// the journal holds it.
func TestSlotsSkipJournaledReplicates(t *testing.T) {
	dir := t.TempDir()
	meta := SweepMeta{Sweep: "slots", SpecHash: "abc", BaseSeed: 42, Replicates: 4}
	path := filepath.Join(dir, "slots.jnl")
	j, err := OpenJournal(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 4; rep++ {
		raw, _ := json.Marshal(slotVal(rep))
		if err := j.Record(rep, raw, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j, err = OpenJournal(path, meta, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	opts := Options{Journal: j, Resume: true, Slots: []int{2}}
	out, status, err := RunSweep(context.Background(), 4, opts, func(_ context.Context, rep int) (uint64, error) {
		t.Fatalf("replicate %d executed despite being journaled", rep)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if status.Resumed != 1 {
		t.Fatalf("resumed %d replicates, want exactly the restricted slot", status.Resumed)
	}
	for rep, v := range out {
		if rep == 2 && v != slotVal(2) {
			t.Fatalf("slot 2: got %d, want %d", v, slotVal(2))
		}
		if rep != 2 && v != 0 {
			t.Fatalf("excluded slot %d merged from journal: %d", rep, v)
		}
	}
}

// TestOnResultFailureFailsReplicate: a result that cannot be delivered is a
// failed replicate, attributable to its index; transient delivery failures
// retry like any other transient error.
func TestOnResultFailureFailsReplicate(t *testing.T) {
	boom := errors.New("upload refused")
	_, _, err := RunSweep(context.Background(), 3, Options{
		KeepGoing: true,
		OnResult: func(rep int, _ json.RawMessage) error {
			if rep == 1 {
				return boom
			}
			return nil
		},
	}, func(_ context.Context, rep int) (uint64, error) { return slotVal(rep), nil })
	var se *SweepError
	if !errors.As(err, &se) || len(se.Failures) != 1 || se.Failures[0].Rep != 1 {
		t.Fatalf("want exactly replicate 1 failed, got %v", err)
	}
	if !errors.Is(se.Failures[0].Err, boom) {
		t.Fatalf("failure does not unwrap to the delivery error: %v", se.Failures[0].Err)
	}

	// Transient delivery failures retry with the replicate's seeded backoff.
	attempts := 0
	out, status, err := RunSweep(context.Background(), 1, Options{
		MaxRetries:   3,
		RetryBackoff: 1, // nanoseconds: keep the test instant
		OnResult: func(_ int, _ json.RawMessage) error {
			attempts++
			if attempts < 3 {
				return MarkTransient(fmt.Errorf("flaky sink attempt %d", attempts))
			}
			return nil
		},
	}, func(_ context.Context, rep int) (uint64, error) { return slotVal(rep), nil })
	if err != nil {
		t.Fatalf("transient delivery failures should have retried clean: %v", err)
	}
	if attempts != 3 || status.Retries != 2 {
		t.Fatalf("attempts %d retries %d, want 3 and 2", attempts, status.Retries)
	}
	if out[0] != slotVal(0) {
		t.Fatalf("result lost across delivery retries: %d", out[0])
	}
}

// TestOpenFirstSweepJournalMatchesRunReplicates: the exported seq-0 journal
// opener must produce the file and meta that a journaling RunReplicatesSweep
// of the same Config opens — appends through one must resume through the
// other.
func TestOpenFirstSweepJournalMatchesRunReplicates(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 7, Sweep: "first-sweep"}.WithJournal(dir, false)
	j, err := OpenFirstSweepJournal(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Record slot 2 as a worker upload would: canonical JSON bytes.
	raw, _ := json.Marshal(slotVal(2))
	if err := j.Record(2, raw, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A resuming sweep of the same Config merges the upload and computes the
	// rest.
	rcfg := Config{Seed: 7, Sweep: "first-sweep"}.WithJournal(dir, true)
	executed := map[int]bool{}
	var mu sync.Mutex
	out, status, err := RunReplicatesSweep(rcfg, 4, func(rep int) (uint64, error) {
		mu.Lock()
		executed[rep] = true
		mu.Unlock()
		return slotVal(rep), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if status.Resumed != 1 || executed[2] {
		t.Fatalf("slot 2 was not merged from the coordinator journal: resumed=%d executed=%v", status.Resumed, executed)
	}
	for rep, v := range out {
		if v != slotVal(rep) {
			t.Fatalf("slot %d: got %d, want %d", rep, v, slotVal(rep))
		}
	}
}
