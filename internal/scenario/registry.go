package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"
)

// Config tunes experiment runs. Quick mode shrinks run lengths so the whole
// suite fits in unit-test budgets; full mode matches the paper's measurement
// horizons. Seed shards the stochastic machine components (see Spec.Seed);
// Parallel caps the worker pool used by multi-replicate experiments.
type Config struct {
	Quick bool
	// Seed is the base of every replicate seed an experiment derives (via
	// ReplicateSeed) and the Spec.Seed of single-run experiments.
	Seed uint64
	// Parallel is the worker count for RunMany-based experiments; zero or
	// negative means GOMAXPROCS. Parallelism never changes results — only
	// wall-clock time.
	Parallel int
	// StepBatch is forwarded to every Spec an experiment builds
	// (Spec.StepBatch): 1 forces per-op stepping, larger values bound the
	// batched inner loop, zero keeps the machine default. Never changes a
	// reported number — only how the core schedules the same operations.
	StepBatch int
	// Timeout is the per-replicate wall-clock deadline of RunReplicates
	// sweeps; zero means none. Like Parallel it never changes a reported
	// number — a replicate either completes identically or fails.
	Timeout time.Duration
	// KeepGoing makes RunReplicates sweeps return completed replicates plus
	// a *SweepError instead of discarding the sweep on the first failure.
	KeepGoing bool
	// MaxRetries re-runs transiently-failed replicates (see Transient) up to
	// this many extra times with seeded exponential backoff.
	MaxRetries int
	// Budget bounds each sweep's wall-clock time or executed replicate
	// count; exhaustion truncates the sweep gracefully instead of failing
	// it. Zero means unlimited.
	Budget Budget
	// Journal, when non-empty, is a directory where every RunReplicates
	// sweep checkpoints one journal file per sweep (named by Sweep name and
	// per-run sequence), so a killed run can resume. Build journaling
	// Configs with WithJournal.
	Journal string
	// Resume merges completed replicates out of an existing journal instead
	// of re-running them. Meaningless without Journal.
	Resume bool
	// Sweep names the running experiment for journal files and meta
	// (cmd/tables sets it to the experiment name).
	Sweep string
	// Ctx, when non-nil, cancels RunReplicates sweeps early (cmd/tables
	// wires it to signal handling; nil means context.Background()).
	Ctx context.Context
	// OnProgress, when non-nil, observes every replicate a sweep completes
	// or resumes (see Options.OnProgress). cmd/anvilserved wires it to job
	// progress streaming; observation never changes results.
	OnProgress func(ProgressEvent)
	// Slots, when non-nil, restricts every sweep the experiment runs to the
	// listed replicate indices (see Options.Slots). Distributed workers use
	// it to execute their leased share of a Shardable experiment's sweep;
	// the replicates they do run are byte-identical to the unrestricted
	// sweep's.
	Slots []int
	// OnResult, when non-nil, receives each freshly-computed replicate's
	// canonical JSON (see Options.OnResult) — what a distributed worker
	// uploads to its coordinator. A non-nil error fails the replicate.
	OnResult func(rep int, raw json.RawMessage) error

	// sweepSeq numbers the journaled sweeps of one experiment run in call
	// order, which is deterministic, so a resumed run opens the same files.
	// Shared by pointer across the Config copies an experiment passes down.
	sweepSeq *uint64
}

// WithJournal returns a copy of the Config that checkpoints every sweep to a
// journal file under dir, resuming existing journals when resume is set.
func (c Config) WithJournal(dir string, resume bool) Config {
	c.Journal = dir
	c.Resume = resume
	c.sweepSeq = new(uint64)
	return c
}

// Context resolves Ctx.
func (c Config) Context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// RunOptions resolves the Config's runner settings. Journal wiring happens
// in RunReplicatesSweep, which owns the per-sweep journal lifecycle.
func (c Config) RunOptions() Options {
	return Options{
		Workers:    c.Workers(),
		Timeout:    c.Timeout,
		KeepGoing:  c.KeepGoing,
		MaxRetries: c.MaxRetries,
		Budget:     c.Budget,
		BaseSeed:   c.Seed,
		OnProgress: c.OnProgress,
		Slots:      c.Slots,
		OnResult:   c.OnResult,
	}
}

// ScaleDur shrinks full-length durations in quick mode.
func (c Config) ScaleDur(full time.Duration) time.Duration {
	if c.Quick {
		return full / 4
	}
	return full
}

// ScaleOps shrinks fixed-work op counts in quick mode.
func (c Config) ScaleOps(full uint64) uint64 {
	if c.Quick {
		return full / 4
	}
	return full
}

// Workers resolves Parallel to a concrete worker count.
func (c Config) Workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Metric is one headline number of an experiment, named after the paper's
// quantities (ms-to-flip, refreshes/sec, normalized execution time, ...).
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Result is what an experiment returns: a structured value that marshals to
// JSON (for trend tracking) and renders to the paper's text table.
type Result interface {
	Render() string
}

// Metricer is optionally implemented by Results that expose headline
// metrics. The slice order must be deterministic.
type Metricer interface {
	Metrics() []Metric
}

// Experiment is one registered table or figure of the evaluation.
type Experiment struct {
	// Name is the registry key (table1, figure3, section45, ...).
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Run regenerates the experiment.
	Run func(Config) (Result, error)
	// Reps, when set, estimates how many top-level replicates Run will
	// execute under the given Config — what listings and budget planning
	// report. Nil means a single monolithic run.
	Reps func(Config) int
	// Shardable declares that Run is exactly one top-level
	// RunReplicates/RunReplicatesSweep sweep of Reps(cfg) replicates, so a
	// distributed coordinator may shard its replicate indices across worker
	// processes (Config.Slots) and merge their uploads through the sweep's
	// seq-0 checkpoint journal. Experiments with multiple sequential sweeps,
	// or whose Reps differs from the first sweep's size, must leave it false.
	Shardable bool
}

// EstimatedReps resolves Reps; experiments without a sweep count as one
// replicate.
func (e Experiment) EstimatedReps(cfg Config) int {
	if e.Reps == nil {
		return 1
	}
	return e.Reps(cfg)
}

// The registry. Registration happens from init functions (a single
// goroutine, before main); lookups afterwards are read-only, so no locking
// is needed. Order is registration order — a deliberate slice, never map
// iteration, so every enumeration is deterministic.
var (
	registry      []Experiment
	registryIndex = map[string]int{}
)

// Register adds an experiment to the registry. It panics on a duplicate or
// invalid registration: both are programming errors in an init function.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("scenario: Register needs a name and a Run function") //lint:allow errpanic init-time registration; failing fast at startup is the contract
	}
	if _, dup := registryIndex[e.Name]; dup {
		//lint:allow errpanic init-time registration; failing fast at startup is the contract
		panic(fmt.Sprintf("scenario: experiment %q registered twice", e.Name))
	}
	registryIndex[e.Name] = len(registry)
	registry = append(registry, e)
}

// Experiments returns the registered experiments in registration order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Find returns the experiment registered under name.
func Find(name string) (Experiment, bool) {
	i, ok := registryIndex[name]
	if !ok {
		return Experiment{}, false
	}
	return registry[i], true
}

// Names returns the registered experiment names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	return out
}
