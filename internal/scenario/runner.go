package scenario

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
)

// ReplicateSeed derives the root seed of replicate rep from a base seed. It
// is a pure function — the same (base, rep) always maps to the same seed —
// and consecutive replicates get decorrelated seeds, so a sweep can hand
// each replicate its own RNG root without the replicates sharing state.
func ReplicateSeed(base uint64, rep int) uint64 {
	r := sim.NewRand(base ^ 0x9e3779b97f4a7c15*uint64(rep+1))
	return r.Uint64()
}

// Options tunes a RunManyCtx sweep.
type Options struct {
	// Workers caps the worker pool; <= 0 means GOMAXPROCS. Parallelism never
	// changes results or errors — only wall-clock time.
	Workers int
	// Timeout is the per-replicate wall-clock deadline, enforced through
	// the context handed to each replicate; zero means none. A replicate
	// that ignores its context is abandoned (its goroutine keeps running,
	// its result is discarded) and reported as context.DeadlineExceeded.
	// Wall-clock deadlines never influence simulated results — a replicate
	// either completes (same bytes as ever) or errors out.
	Timeout time.Duration
	// KeepGoing returns every completed replicate's result plus a
	// *SweepError collecting the failures, instead of discarding the sweep
	// on the first error.
	KeepGoing bool
}

// ReplicateError is one replicate's failure, tagged with the replicate
// index so a partial sweep remains attributable. It renders exactly like the
// classic RunMany error ("scenario: replicate N: ...") and unwraps to the
// underlying error.
type ReplicateError struct {
	Rep int
	Err error
	// Panicked marks an error recovered from a panicking replicate; Stack
	// is the panicking goroutine's stack trace.
	Panicked bool
	Stack    string
}

func (e *ReplicateError) Error() string {
	return fmt.Sprintf("scenario: replicate %d: %v", e.Rep, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ReplicateError) Unwrap() error { return e.Err }

// SweepError aggregates every replicate failure of a keep-going sweep, in
// replicate order regardless of scheduling.
type SweepError struct {
	// Replicates is the sweep size; len(Failures) of them failed.
	Replicates int
	Failures   []*ReplicateError
}

func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %d of %d replicates failed", len(e.Failures), e.Replicates)
	for i, f := range e.Failures {
		if i == 3 && len(e.Failures) > 4 {
			fmt.Fprintf(&b, "; and %d more", len(e.Failures)-i)
			break
		}
		fmt.Fprintf(&b, "; replicate %d: %v", f.Rep, f.Err)
	}
	return b.String()
}

// Unwrap exposes the individual failures to errors.Is/As.
func (e *SweepError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f
	}
	return out
}

// RunManyCtx fans n replicates across a worker pool and merges their results
// in replicate order. Each call of fn must be self-contained (own machine,
// own RNG root — see ReplicateSeed), which every Spec-built instance is;
// under that contract the merged slice, the error, and the error *ordering*
// are all byte-identical at any parallelism.
//
// The runner is hardened for production sweeps:
//
//   - ctx cancellation stops the sweep promptly: running replicates see
//     their context cancelled, not-yet-started ones are not started, and
//     both report context.Canceled;
//   - Options.Timeout bounds each replicate; a replicate that ignores its
//     context is abandoned and reported as context.DeadlineExceeded;
//   - a panicking replicate becomes a *ReplicateError carrying the stack
//     trace instead of crashing the process;
//   - without KeepGoing, every replicate still runs (so failures are
//     independent of scheduling) and the first error in replicate order is
//     returned; with KeepGoing the completed results come back alongside a
//     *SweepError listing every failure in replicate order.
func RunManyCtx[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, rep int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]*ReplicateError, n)
	runOne := func(rep int) {
		if err := ctx.Err(); err != nil {
			errs[rep] = &ReplicateError{Rep: rep, Err: err}
			return
		}
		repCtx, cancel := ctx, context.CancelFunc(func() {})
		if opts.Timeout > 0 {
			repCtx, cancel = context.WithTimeout(ctx, opts.Timeout)
		}
		defer cancel()
		type outcome struct {
			val T
			err *ReplicateError
		}
		// The buffered channel lets an abandoned (timed-out) replicate
		// finish its send and exit without anyone receiving.
		done := make(chan outcome, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					done <- outcome{err: &ReplicateError{
						Rep:      rep,
						Err:      fmt.Errorf("panic: %v", r),
						Panicked: true,
						Stack:    string(debug.Stack()),
					}}
				}
			}()
			v, err := fn(repCtx, rep)
			if err != nil {
				done <- outcome{err: &ReplicateError{Rep: rep, Err: err}}
				return
			}
			done <- outcome{val: v}
		}()
		select {
		case o := <-done:
			out[rep], errs[rep] = o.val, o.err
		case <-repCtx.Done():
			errs[rep] = &ReplicateError{Rep: rep, Err: repCtx.Err()}
		}
	}

	if workers == 1 {
		for rep := 0; rep < n; rep++ {
			runOne(rep)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := range idx {
					runOne(rep)
				}
			}()
		}
	feed:
		for rep := 0; rep < n; rep++ {
			select {
			case idx <- rep:
			case <-ctx.Done():
				// Mark the unscheduled tail cancelled without starting it.
				for ; rep < n; rep++ {
					errs[rep] = &ReplicateError{Rep: rep, Err: ctx.Err()}
				}
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}

	var failures []*ReplicateError
	for _, e := range errs { // errs is replicate-ordered; scheduling can't reorder it
		if e != nil {
			failures = append(failures, e)
		}
	}
	if len(failures) == 0 {
		return out, nil
	}
	if opts.KeepGoing {
		return out, &SweepError{Replicates: n, Failures: failures}
	}
	return nil, failures[0]
}

// RunMany is RunManyCtx without cancellation, deadlines or keep-going: the
// classic sweep entry point. All n replicates run even if one fails; the
// first error in replicate order is returned, so the error too is
// independent of scheduling.
func RunMany[T any](n, workers int, fn func(rep int) (T, error)) ([]T, error) {
	return RunManyCtx(context.Background(), n, Options{Workers: workers},
		func(_ context.Context, rep int) (T, error) { return fn(rep) })
}

// RunReplicates runs a registry experiment's sweep under the experiment
// Config's runner settings (worker pool, per-replicate timeout, keep-going).
func RunReplicates[T any](cfg Config, n int, fn func(rep int) (T, error)) ([]T, error) {
	return RunManyCtx(cfg.Context(), n, cfg.RunOptions(),
		func(_ context.Context, rep int) (T, error) { return fn(rep) })
}
