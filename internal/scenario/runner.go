package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// ReplicateSeed derives the root seed of replicate rep from a base seed. It
// is a pure function — the same (base, rep) always maps to the same seed —
// and consecutive replicates get decorrelated seeds, so a sweep can hand
// each replicate its own RNG root without the replicates sharing state.
func ReplicateSeed(base uint64, rep int) uint64 {
	r := sim.NewRand(base ^ 0x9e3779b97f4a7c15*uint64(rep+1))
	return r.Uint64()
}

// ErrTransient marks a replicate failure worth retrying: the kind that a
// rerun on healthier resources can clear (a starved replicate blowing its
// wall-clock deadline, a degraded-hardware profile's injected fault). Wrap
// with MarkTransient; classify with Transient.
var ErrTransient = errors.New("transient failure")

// Transient reports whether a replicate error is retryable: anything marked
// ErrTransient, plus per-replicate wall-clock timeouts (a timed-out
// replicate gets a fresh deadline on retry). Cancellation is never
// transient — it is the caller stopping the sweep.
func Transient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, context.DeadlineExceeded)
}

// MarkTransient tags err as retryable. It is a no-op on nil and on errors
// already classified transient.
func MarkTransient(err error) error {
	if err == nil || Transient(err) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// DefaultRetryBackoff is the base backoff before a first retry when
// Options.RetryBackoff is zero.
const DefaultRetryBackoff = 100 * time.Millisecond

// retrySalt decorrelates the backoff jitter stream from the replicate's own
// simulation stream: both derive from ReplicateSeed, but the jitter draw
// must never advance (or collide with) the RNG the replicate simulates with.
const retrySalt = 0xb5ad4eceda1ce2a9

// RetryDelay is the backoff before retry attempt (1-based) of replicate rep:
// exponential doubling of the base, jittered into [base·2ᵃ⁻¹/2, base·2ᵃ⁻¹]
// by the replicate's own seed substream. The schedule is a pure function of
// (BaseSeed, RetryBackoff, rep, attempt), so retry timing — and therefore
// logs — is reproducible run over run.
func RetryDelay(opts Options, rep, attempt int) time.Duration {
	base := opts.RetryBackoff
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	if attempt < 1 {
		attempt = 1
	}
	shift := attempt - 1
	if shift > 16 {
		shift = 16 // cap the doubling; MaxRetries in the hundreds stays sane
	}
	exp := base << shift
	half := exp / 2
	r := sim.NewRand(ReplicateSeed(opts.BaseSeed, rep) ^ retrySalt ^ 0x9e3779b97f4a7c15*uint64(attempt))
	return half + time.Duration(r.Uint64n(uint64(half)+1))
}

// Budget bounds a sweep. When either limit is hit the sweep stops scheduling
// new replicates, journals a truncation marker (when journaling), and
// returns the completed replicates with SweepStatus.Truncated set and the
// dropped replicate indices reported — partial results are tagged, never
// silent, and never an invented failure.
type Budget struct {
	// WallClock bounds the sweep's host wall-clock time; zero means
	// unlimited. It is checked at scheduling points only, so an in-flight
	// replicate always finishes (or times out) — wall-clock pressure can
	// shrink a sweep but never change a completed replicate's bytes.
	WallClock time.Duration
	// Replicates bounds how many replicates may execute this run; zero
	// means unlimited. Replicates merged from a resumed journal are free.
	Replicates int
}

// IsZero reports whether the budget is unlimited.
func (b Budget) IsZero() bool { return b == Budget{} }

// A ProgressEvent reports one replicate of a sweep reaching its result slot:
// either freshly computed (and journaled, when the sweep journals) or merged
// back out of a resume journal. Events exist so a long sweep can be watched
// from outside — cmd/anvilserved streams them as job progress — and carry no
// information that feeds back into any replicate: observing a sweep can
// never change its bytes.
type ProgressEvent struct {
	// Rep is the replicate index that completed.
	Rep int
	// Resumed marks a replicate merged from the journal instead of run.
	Resumed bool
	// Completed counts replicates completed so far (resumed included);
	// Total is the sweep size. Completed == Total on the sweep's last event.
	Completed int
	Total     int
}

// Options tunes a RunSweep / RunManyCtx sweep. The zero value reproduces the
// classic runner exactly: no journal, no retries, no budget.
type Options struct {
	// Workers caps the worker pool; <= 0 means GOMAXPROCS. Parallelism never
	// changes results or errors — only wall-clock time.
	Workers int
	// Timeout is the per-replicate wall-clock deadline, enforced through
	// the context handed to each replicate; zero means none. A replicate
	// that ignores its context is abandoned (its goroutine keeps running,
	// its result is discarded) and reported as context.DeadlineExceeded.
	// Wall-clock deadlines never influence simulated results — a replicate
	// either completes (same bytes as ever) or errors out.
	Timeout time.Duration
	// KeepGoing returns every completed replicate's result plus a
	// *SweepError collecting the failures, instead of discarding the sweep
	// on the first error.
	KeepGoing bool
	// MaxRetries re-runs a replicate whose failure is Transient up to this
	// many extra times, sleeping RetryDelay between attempts. Retried
	// successes count as successes; the sweep's total retry count lands in
	// SweepStatus.Retries.
	MaxRetries int
	// RetryBackoff is the base backoff before the first retry; zero means
	// DefaultRetryBackoff. Backoff sleeps are host wall-clock only — they
	// are never folded into simulated time.
	RetryBackoff time.Duration
	// BaseSeed seeds the retry-backoff jitter substreams (see RetryDelay).
	// It has no effect on replicate results; Config.RunOptions wires it to
	// the experiment seed so retry schedules are reproducible.
	BaseSeed uint64
	// Journal, when non-nil, checkpoints one record per completed replicate
	// so a killed sweep can resume. Results must round-trip through
	// encoding/json (every registry result type does).
	Journal *Journal
	// Resume merges replicates already recorded in Journal instead of
	// re-running them. The journal's meta must match the running sweep.
	Resume bool
	// Budget bounds the sweep; see Budget.
	Budget Budget
	// Slots, when non-nil, restricts the sweep to the listed replicate
	// indices: replicates outside the set are skipped entirely — not
	// executed, not resumed, not reported as progress or failure; their
	// result slots stay zero values. Slot restriction is how a distributed
	// worker executes its leased share of a sweep: the per-replicate work it
	// does perform is byte-identical to the unrestricted sweep's, because a
	// replicate's seed and inputs depend only on its index (ReplicateSeed),
	// never on which other replicates run alongside it.
	Slots []int
	// OnResult, when non-nil, receives each freshly-computed replicate's
	// canonical JSON encoding — exactly the bytes a journal Record would
	// store, and therefore exactly the bytes a resume merges back. A
	// distributed worker uses it to upload replicate results keyed by
	// (spec-hash, replicate). A non-nil error fails the replicate (a result
	// that cannot be delivered is as lost as one that was never computed);
	// callers wanting retries classify the error Transient themselves.
	OnResult func(rep int, raw json.RawMessage) error
	// OnProgress, when non-nil, is invoked once per replicate that reaches
	// its result slot — resumed replicates first (in ascending order, before
	// any worker starts), then computed ones as they finish. It is called
	// from worker goroutines and must be safe for concurrent use; it must
	// not block, or it stalls the sweep. Progress observation never
	// influences replicate results.
	OnProgress func(ProgressEvent)
}

// SweepStatus reports how a sweep ended beyond its per-replicate failures.
// The zero value means: everything ran, nothing resumed, nothing retried.
type SweepStatus struct {
	// Truncated is set when the budget ran out before every replicate did;
	// Reason says which limit, Dropped lists the replicate indices that
	// never ran (their result slots are zero values).
	Truncated bool   `json:"truncated,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Dropped   []int  `json:"dropped,omitempty"`
	// Resumed counts replicates merged from the journal instead of run.
	Resumed int `json:"resumed,omitempty"`
	// Retries counts transient-failure retries across the whole sweep.
	Retries int `json:"retries,omitempty"`
}

// DroppedRange renders the dropped replicate indices compactly ("5-11" or
// "3,5-7"), for error text and reports.
func (s SweepStatus) DroppedRange() string {
	if len(s.Dropped) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(s.Dropped); {
		j := i
		for j+1 < len(s.Dropped) && s.Dropped[j+1] == s.Dropped[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if i == j {
			fmt.Fprintf(&b, "%d", s.Dropped[i])
		} else {
			fmt.Fprintf(&b, "%d-%d", s.Dropped[i], s.Dropped[j])
		}
		i = j + 1
	}
	return b.String()
}

// ReplicateError is one replicate's failure, tagged with the replicate
// index so a partial sweep remains attributable. It renders exactly like the
// classic RunMany error ("scenario: replicate N: ...") and unwraps to the
// underlying error.
type ReplicateError struct {
	Rep int
	Err error
	// Panicked marks an error recovered from a panicking replicate; Stack
	// is the panicking goroutine's stack trace.
	Panicked bool
	Stack    string
	// Attempts is how many times the replicate ran (1 without retries).
	Attempts int
}

func (e *ReplicateError) Error() string {
	return fmt.Sprintf("scenario: replicate %d: %v", e.Rep, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ReplicateError) Unwrap() error { return e.Err }

// SweepError aggregates every replicate failure of a keep-going sweep —
// exactly one entry per failed replicate index, in replicate order
// regardless of scheduling, cancellation timing, or retries.
type SweepError struct {
	// Replicates is the sweep size; len(Failures) of them failed.
	Replicates int
	Failures   []*ReplicateError
}

func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %d of %d replicates failed", len(e.Failures), e.Replicates)
	for i, f := range e.Failures {
		if i == 3 && len(e.Failures) > 4 {
			fmt.Fprintf(&b, "; and %d more", len(e.Failures)-i)
			break
		}
		fmt.Fprintf(&b, "; replicate %d: %v", f.Rep, f.Err)
	}
	return b.String()
}

// Unwrap exposes the individual failures to errors.Is/As.
func (e *SweepError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f
	}
	return out
}

// TruncatedError surfaces a budget-truncated sweep through APIs whose
// ([]T, error) signature has no SweepStatus channel. Err carries the sweep's
// replicate failures when there were any (a *SweepError under keep-going).
type TruncatedError struct {
	Status SweepStatus
	Err    error
}

func (e *TruncatedError) Error() string {
	msg := fmt.Sprintf("scenario: sweep truncated (%s); dropped replicates %s",
		e.Status.Reason, e.Status.DroppedRange())
	if e.Err != nil {
		msg += "; " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying sweep failures to errors.Is/As.
func (e *TruncatedError) Unwrap() error { return e.Err }

// RunSweep fans n replicates across a worker pool and merges their results
// in replicate order. Each call of fn must be self-contained (own machine,
// own RNG root — see ReplicateSeed), which every Spec-built instance is;
// under that contract the merged slice, the error, and the error *ordering*
// are all byte-identical at any parallelism — including a sweep that is
// killed, resumed from its journal at a different worker count, and merged.
//
// The runner is hardened for production sweeps:
//
//   - ctx cancellation stops the sweep promptly: running replicates see
//     their context cancelled, not-yet-started ones are not started, and
//     both report context.Canceled;
//   - Options.Timeout bounds each replicate; a replicate that ignores its
//     context is abandoned and reported as context.DeadlineExceeded;
//   - a panicking replicate becomes a *ReplicateError carrying the stack
//     trace instead of crashing the process;
//   - Transient failures retry up to Options.MaxRetries times with seeded
//     exponential backoff (RetryDelay), so retry schedules reproduce;
//   - Options.Journal checkpoints completed replicates; Options.Resume
//     merges them back instead of re-running;
//   - Options.Budget stops scheduling when exhausted and reports the
//     dropped replicates in SweepStatus instead of failing;
//   - a replicate contributes at most one entry to the failures, keyed by
//     replicate index, whatever combination of timeout, retry and
//     cancellation it dies under.
//
// The error is nil, or the first failure in replicate order, or (with
// KeepGoing) a *SweepError listing every failure in replicate order. The
// merged slice always comes back, including partial sweeps.
func RunSweep[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, rep int) (T, error)) ([]T, SweepStatus, error) {
	var status SweepStatus
	if n <= 0 {
		return nil, status, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	errs := make([]*ReplicateError, n)
	skip := make([]bool, n)

	// Slot restriction: replicates outside the set are out of scope for this
	// run — skipped before resume merging, budgets, and scheduling alike.
	excluded := 0
	if opts.Slots != nil {
		inSet := make(map[int]bool, len(opts.Slots))
		for _, s := range opts.Slots {
			if s >= 0 && s < n {
				inSet[s] = true
			}
		}
		for rep := 0; rep < n; rep++ {
			if !inSet[rep] {
				skip[rep] = true
				excluded++
			}
		}
	}

	// completed backs the OnProgress event counter; progress is
	// observation-only and never read by the sweep itself.
	var completed atomic.Int64
	notify := func(rep int, resumed bool) {
		if opts.OnProgress == nil {
			return
		}
		opts.OnProgress(ProgressEvent{
			Rep:       rep,
			Resumed:   resumed,
			Completed: int(completed.Add(1)),
			Total:     n,
		})
	}

	if opts.Journal != nil && opts.Resume {
		reps, results := opts.Journal.Completed()
		for _, rep := range reps {
			if rep >= n || skip[rep] {
				continue
			}
			var v T
			if err := json.Unmarshal(results[rep], &v); err != nil {
				return nil, status, fmt.Errorf("scenario: journal %s: replicate %d record does not decode into %T: %w",
					opts.Journal.Path(), rep, v, err)
			}
			out[rep] = v
			skip[rep] = true
			status.Resumed++
			notify(rep, true)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pending := n - status.Resumed - excluded
	if workers > pending {
		workers = pending
	}
	if pending == 0 {
		return out, status, nil
	}

	//lint:allow wallclock wall-clock sweep budget; scheduling only, never read by simulated code
	start := time.Now() //lint:allow detrand wall-clock sweep budget; scheduling only, never read by simulated code
	ran := 0            // replicates dispatched this run (owned by the scheduling goroutine)
	exhausted := func() (string, bool) {
		b := opts.Budget
		if b.Replicates > 0 && ran >= b.Replicates {
			return fmt.Sprintf("replicate budget %d exhausted", b.Replicates), true
		}
		//lint:allow wallclock wall-clock sweep budget; scheduling only, never read by simulated code
		if b.WallClock > 0 && time.Since(start) >= b.WallClock { //lint:allow detrand wall-clock sweep budget; scheduling only, never read by simulated code
			return fmt.Sprintf("wall-clock budget %v exhausted", b.WallClock), true
		}
		return "", false
	}
	// truncate marks every not-yet-scheduled replicate from rep on as
	// dropped (journal-resumed and already-dispatched ones excluded) and
	// journals the truncation marker.
	truncate := func(rep int, reason string) {
		status.Truncated = true
		status.Reason = reason
		for ; rep < n; rep++ {
			if !skip[rep] {
				status.Dropped = append(status.Dropped, rep)
			}
		}
		if opts.Journal != nil {
			if err := opts.Journal.Truncation(status.Dropped, reason); err != nil {
				// The marker is advisory; the dropped range still reaches the
				// caller through the status.
				status.Reason += fmt.Sprintf(" (journal marker failed: %v)", err)
			}
		}
	}

	var retries atomic.Int64
	// attemptOne executes one guarded attempt of a replicate: per-attempt
	// timeout, panic recovery, abandonment of attempts that ignore their
	// context.
	attemptOne := func(rep int) (T, *ReplicateError) {
		repCtx, cancel := ctx, context.CancelFunc(func() {})
		if opts.Timeout > 0 {
			repCtx, cancel = context.WithTimeout(ctx, opts.Timeout)
		}
		defer cancel()
		type outcome struct {
			val T
			err *ReplicateError
		}
		// The buffered channel lets an abandoned (timed-out) attempt finish
		// its send and exit without anyone receiving.
		done := make(chan outcome, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					done <- outcome{err: &ReplicateError{
						Rep:      rep,
						Err:      fmt.Errorf("panic: %v", r),
						Panicked: true,
						Stack:    string(debug.Stack()),
					}}
				}
			}()
			v, err := fn(repCtx, rep)
			if err != nil {
				done <- outcome{err: &ReplicateError{Rep: rep, Err: err}}
				return
			}
			done <- outcome{val: v}
		}()
		select {
		case o := <-done:
			return o.val, o.err
		case <-repCtx.Done():
			var zero T
			return zero, &ReplicateError{Rep: rep, Err: repCtx.Err()}
		}
	}
	// runOne drives a replicate to its final outcome — retrying transient
	// failures — and records exactly one result or one error in the
	// replicate's own slot. Slot-per-replicate is what makes double counting
	// structurally impossible, whatever interleaving of timeout, retry and
	// cancellation the replicate dies under.
	runOne := func(rep int) {
		if err := ctx.Err(); err != nil {
			errs[rep] = &ReplicateError{Rep: rep, Err: err}
			return
		}
		var last *ReplicateError
		for attempt := 1; ; attempt++ {
			val, rerr := attemptOne(rep)
			if rerr == nil {
				out[rep] = val
				if opts.Journal != nil || opts.OnResult != nil {
					raw, err := json.Marshal(val)
					if err == nil && opts.Journal != nil {
						if jerr := opts.Journal.Record(rep, raw, attempt-1); jerr != nil {
							err = fmt.Errorf("journaling result: %w", jerr)
						}
					}
					if err == nil && opts.OnResult != nil {
						// Delivery failure fails the replicate: a result
						// that never reached its consumer is as lost as one
						// never computed. OnResult errors marked Transient
						// re-enter the retry loop like any other failure.
						err = opts.OnResult(rep, raw)
					}
					if err != nil {
						// A checkpoint that cannot be written is a real
						// failure: resuming would silently re-run this
						// replicate at best, corrupt the journal at worst.
						rerr = &ReplicateError{Rep: rep, Err: err, Attempts: attempt}
						last = rerr
						if attempt > opts.MaxRetries || !Transient(err) || ctx.Err() != nil {
							break
						}
						retries.Add(1)
						if !sleepBackoff(ctx, RetryDelay(opts, rep, attempt)) {
							break
						}
						continue
					}
				}
				notify(rep, false)
				return
			}
			rerr.Attempts = attempt
			last = rerr
			if attempt > opts.MaxRetries || !Transient(rerr.Err) || ctx.Err() != nil {
				break
			}
			retries.Add(1)
			if !sleepBackoff(ctx, RetryDelay(opts, rep, attempt)) {
				break // cancelled mid-backoff; the attempt's own error stands
			}
		}
		errs[rep] = last
	}

	if workers == 1 {
		for rep := 0; rep < n; rep++ {
			if skip[rep] {
				continue
			}
			if ctx.Err() == nil {
				if reason, over := exhausted(); over {
					truncate(rep, reason)
					break
				}
			}
			ran++
			runOne(rep)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := range idx {
					runOne(rep)
				}
			}()
		}
	feed:
		for rep := 0; rep < n; rep++ {
			if skip[rep] {
				continue
			}
			if ctx.Err() == nil {
				if reason, over := exhausted(); over {
					truncate(rep, reason)
					break feed
				}
			}
			select {
			case idx <- rep:
				ran++
			case <-ctx.Done():
				// Mark the unscheduled tail cancelled without starting it.
				for ; rep < n; rep++ {
					if skip[rep] {
						continue
					}
					errs[rep] = &ReplicateError{Rep: rep, Err: ctx.Err()}
				}
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}
	status.Retries = int(retries.Load())

	var failures []*ReplicateError
	for _, e := range errs { // errs is replicate-ordered; scheduling can't reorder it
		if e != nil {
			failures = append(failures, e)
		}
	}
	if len(failures) == 0 {
		return out, status, nil
	}
	if opts.KeepGoing {
		return out, status, &SweepError{Replicates: n, Failures: failures}
	}
	return out, status, failures[0]
}

// sleepBackoff waits d of host wall-clock time (never simulated time),
// returning false if ctx is cancelled first.
func sleepBackoff(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	//lint:allow wallclock retry backoff is host wall-clock by design; never folded into simulated ticks
	t := time.NewTimer(d) //lint:allow detrand retry backoff is host wall-clock by design; never folded into simulated ticks
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// RunManyCtx is RunSweep behind the classic ([]T, error) signature. Without
// KeepGoing a failed sweep returns (nil, first failure); budget truncation —
// which the signature cannot tag onto the results — comes back as a
// *TruncatedError alongside the partial results.
func RunManyCtx[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, rep int) (T, error)) ([]T, error) {
	out, status, err := RunSweep(ctx, n, opts, fn)
	if status.Truncated {
		return out, &TruncatedError{Status: status, Err: err}
	}
	if err != nil && !opts.KeepGoing {
		return nil, err
	}
	return out, err
}

// RunMany is RunManyCtx without cancellation, deadlines or keep-going: the
// classic sweep entry point. All n replicates run even if one fails; the
// first error in replicate order is returned, so the error too is
// independent of scheduling.
func RunMany[T any](n, workers int, fn func(rep int) (T, error)) ([]T, error) {
	return RunManyCtx(context.Background(), n, Options{Workers: workers},
		func(_ context.Context, rep int) (T, error) { return fn(rep) })
}

// RunReplicatesSweep runs a registry experiment's sweep under the experiment
// Config's runner settings — worker pool, per-replicate timeout, keep-going,
// retries, budget — and, when the Config journals, checkpoints the sweep to
// a per-sweep journal file for resume. Sweep-shaped experiments use it to
// degrade gracefully: the status names what was resumed, retried or dropped.
func RunReplicatesSweep[T any](cfg Config, n int, fn func(rep int) (T, error)) ([]T, SweepStatus, error) {
	opts := cfg.RunOptions()
	j, err := openSweepJournal(cfg, n)
	if err != nil {
		return nil, SweepStatus{}, err
	}
	if j != nil {
		defer j.Close()
		opts.Journal = j
		opts.Resume = cfg.Resume
	}
	return RunSweep(cfg.Context(), n, opts,
		func(_ context.Context, rep int) (T, error) { return fn(rep) })
}

// RunReplicates is RunReplicatesSweep behind the classic ([]T, error)
// signature, used by experiments whose aggregation needs the full sweep: a
// budget-truncated sweep comes back as a loud *TruncatedError — partial
// aggregates are never passed off as complete.
func RunReplicates[T any](cfg Config, n int, fn func(rep int) (T, error)) ([]T, error) {
	out, status, err := RunReplicatesSweep(cfg, n, fn)
	if status.Truncated {
		return out, &TruncatedError{Status: status, Err: err}
	}
	if err != nil && !cfg.KeepGoing {
		return nil, err
	}
	return out, err
}
