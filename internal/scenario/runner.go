package scenario

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
)

// ReplicateSeed derives the root seed of replicate rep from a base seed. It
// is a pure function — the same (base, rep) always maps to the same seed —
// and consecutive replicates get decorrelated seeds, so a sweep can hand
// each replicate its own RNG root without the replicates sharing state.
func ReplicateSeed(base uint64, rep int) uint64 {
	r := sim.NewRand(base ^ 0x9e3779b97f4a7c15*uint64(rep+1))
	return r.Uint64()
}

// RunMany fans n replicates across a pool of workers goroutines and returns
// their results merged in replicate order. Each call of fn must be
// self-contained (own machine, own RNG root — see ReplicateSeed), which
// every Spec-built instance is; under that contract the merged slice is
// byte-identical at any parallelism, so multi-seed sweeps parallelise for
// free without perturbing a single reported number.
//
// workers <= 0 means GOMAXPROCS. All n replicates run even if one fails;
// the first error in replicate order is returned, so the error too is
// independent of scheduling.
func RunMany[T any](n, workers int, fn func(rep int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := range out {
			out[i], errs[i] = fn(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: replicate %d: %w", i, err)
		}
	}
	return out, nil
}
