// Determinism tests for the scenario engine: the same registry experiment
// must serialize byte-identically across runs, and RunMany must merge
// replicates into byte-identical output regardless of worker-pool size.
// These run under -race in CI, so they also double as the data-race check
// on the parallel runner.
package scenario_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	_ "repro/internal/experiments" // registers every table and figure
	"repro/internal/scenario"
)

// marshalRun executes a registered experiment and returns its JSON.
func marshalRun(t *testing.T, name string, cfg scenario.Config) []byte {
	t.Helper()
	e, ok := scenario.Find(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	res, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("%s: marshal: %v", name, err)
	}
	return raw
}

func TestRegistryExperimentRepeatsByteIdentical(t *testing.T) {
	cfg := scenario.Config{Quick: true, Seed: 7}
	first := marshalRun(t, "table1", cfg)
	second := marshalRun(t, "table1", cfg)
	if !bytes.Equal(first, second) {
		t.Errorf("same experiment, same config, different JSON:\n%s\nvs\n%s", first, second)
	}
	if len(first) == 0 || string(first) == "null" {
		t.Errorf("empty artifact: %s", first)
	}
}

// replicateJSON runs 8 seed-sharded attack replicates through RunMany at the
// given parallelism and serializes the merged results.
func replicateJSON(t *testing.T, workers int) []byte {
	t.Helper()
	type outcome struct {
		Seed      uint64 `json:"seed"`
		Accesses  uint64 `json:"accesses"`
		FlipCount int    `json:"flipCount"`
	}
	results, err := scenario.RunMany(8, workers, func(rep int) (outcome, error) {
		seed := scenario.ReplicateSeed(42, rep)
		in, err := scenario.Build(scenario.Spec{
			Seed:   seed,
			Attack: &scenario.Attack{Kind: scenario.DoubleSidedFlush},
		})
		if err != nil {
			return outcome{}, err
		}
		if err := in.RunFor(8 * time.Millisecond); err != nil {
			return outcome{}, err
		}
		return outcome{
			Seed:      seed,
			Accesses:  in.Hammer.AggressorAccesses(),
			FlipCount: in.Machine.Mem.DRAM.FlipCount(),
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestRunManyParallelismInvariant(t *testing.T) {
	serial := replicateJSON(t, 1)
	parallel := replicateJSON(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("RunMany output depends on parallelism:\n1 worker: %s\n8 workers: %s",
			serial, parallel)
	}
}
