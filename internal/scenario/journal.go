package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/journal"
)

// SweepMeta identifies the sweep a checkpoint journal belongs to. Resume
// refuses a journal whose meta does not match the running sweep exactly:
// merging replicates of a different spec would silently corrupt results.
type SweepMeta struct {
	// Sweep is the human-readable sweep name (the experiment name under
	// cmd/tables).
	Sweep string `json:"sweep"`
	// SpecHash fingerprints everything that determines replicate results
	// (see HashSpec); runner knobs that only change wall-clock behaviour —
	// workers, timeouts, budgets — are deliberately excluded so a sweep can
	// resume under different resources.
	SpecHash string `json:"spec_hash"`
	// BaseSeed is the sweep's root seed (replicates derive theirs via
	// ReplicateSeed).
	BaseSeed uint64 `json:"base_seed"`
	// Replicates is the sweep size.
	Replicates int `json:"replicates"`
}

// HashSpec derives a short stable hex fingerprint from the values that
// define a sweep's results. Values are rendered through %v with separators,
// so any comparable mix of names, flags and sizes hashes deterministically.
func HashSpec(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%v\x00", p)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// journalRecord is one framed record of a sweep journal, JSON-encoded. Kind
// discriminates: "meta" (first record, sweep identity), "replicate" (one
// completed replicate: index, derived seed, retry count, full result JSON —
// fault counters ride inside the result), "truncated" (budget exhaustion
// marker naming the dropped replicates).
type journalRecord struct {
	Kind    string          `json:"kind"`
	Meta    *SweepMeta      `json:"meta,omitempty"`
	Rep     int             `json:"rep"`
	Seed    uint64          `json:"seed,omitempty"`
	Retries int             `json:"retries,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Dropped []int           `json:"dropped,omitempty"`
	Reason  string          `json:"reason,omitempty"`
}

// A Journal checkpoints a sweep: one record per completed replicate, so a
// killed sweep resumes from its last fsync batch instead of from zero. It is
// safe for concurrent use by the runner's workers.
type Journal struct {
	mu   sync.Mutex
	w    *journal.Writer
	meta SweepMeta
	path string
	// done holds recovered results by replicate index (first record wins;
	// results are deterministic, so duplicates are interchangeable anyway).
	done map[int]json.RawMessage
}

// OpenJournal opens the checkpoint journal at path for the sweep described
// by meta.
//
//   - No file: a fresh journal is created (with or without resume — so the
//     same command line works for the first run and every rerun).
//   - Existing file with resume: the journal is recovered (torn tail
//     truncated), its meta record is checked against meta — any mismatch
//     refuses with an error naming both sweeps — and its completed
//     replicates become available to the runner.
//   - Existing file without resume: refused, to keep a stale journal from
//     being silently appended to.
func OpenJournal(path string, meta SweepMeta, resume bool) (*Journal, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return createJournal(path, meta)
	} else if err != nil {
		return nil, err
	}
	if !resume {
		return nil, fmt.Errorf("scenario: journal %s already exists; resume it (cmd/tables -resume) or remove it to start over", path)
	}
	records, w, err := journal.Recover(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{w: w, meta: meta, path: path, done: map[int]json.RawMessage{}}
	if len(records) == 0 {
		// Created-then-killed before the meta record reached the file:
		// indistinguishable from fresh, so restart it.
		if err := j.appendRecord(journalRecord{Kind: "meta", Meta: &meta}); err != nil {
			w.Close()
			return nil, err
		}
		return j, nil
	}
	var first journalRecord
	if err := json.Unmarshal(records[0], &first); err != nil || first.Kind != "meta" || first.Meta == nil {
		w.Close()
		return nil, fmt.Errorf("scenario: journal %s does not start with a sweep meta record; refusing to resume", path)
	}
	if *first.Meta != meta {
		w.Close()
		return nil, fmt.Errorf(
			"scenario: journal %s records sweep %q (spec %s, seed %d, %d replicates) but the running sweep is %q (spec %s, seed %d, %d replicates); refusing to resume",
			path, first.Meta.Sweep, first.Meta.SpecHash, first.Meta.BaseSeed, first.Meta.Replicates,
			meta.Sweep, meta.SpecHash, meta.BaseSeed, meta.Replicates)
	}
	for _, raw := range records[1:] {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			w.Close()
			return nil, fmt.Errorf("scenario: journal %s holds an undecodable record: %w", path, err)
		}
		if rec.Kind != "replicate" || rec.Rep < 0 || rec.Rep >= meta.Replicates {
			continue // truncation markers and out-of-range records are informational
		}
		if _, dup := j.done[rec.Rep]; !dup {
			j.done[rec.Rep] = rec.Result
		}
	}
	return j, nil
}

// openSweepJournal opens (or resumes) the journal file for one sweep of a
// journaling Config, or returns (nil, nil) when the Config does not journal.
// Files are named <dir>/<sweep>-<seq>.jnl, where seq numbers the journaled
// sweeps of the experiment run in call order; the sweep's spec hash covers
// everything that determines replicate bytes (name, sequence, quick mode,
// seed, size) and deliberately excludes workers, timeouts and budgets, so a
// sweep resumes under different resources.
func openSweepJournal(cfg Config, n int) (*Journal, error) {
	if cfg.Journal == "" {
		return nil, nil
	}
	name := cfg.Sweep
	if name == "" {
		name = "sweep"
	}
	var seq uint64
	if cfg.sweepSeq != nil {
		seq = atomic.AddUint64(cfg.sweepSeq, 1) - 1
	}
	if err := os.MkdirAll(cfg.Journal, 0o755); err != nil {
		return nil, fmt.Errorf("scenario: creating journal directory: %w", err)
	}
	path := filepath.Join(cfg.Journal, fmt.Sprintf("%s-%d.jnl", name, seq))
	meta := SweepMeta{
		Sweep:      name,
		SpecHash:   HashSpec("sweep", name, seq, cfg.Quick, cfg.Seed, n),
		BaseSeed:   cfg.Seed,
		Replicates: n,
	}
	return OpenJournal(path, meta, cfg.Resume)
}

// OpenFirstSweepJournal opens — creating or resuming — the checkpoint
// journal of the Config's first (seq-0) sweep, sized at n replicates. It is
// the coordinator half of distributed sharding: a Shardable experiment runs
// exactly one top-level sweep, so the seq-0 journal is the file a finalizing
// exp.Run(cfg) with Resume set will merge, and appending worker-uploaded
// replicate records here is indistinguishable from the sweep having computed
// them locally. Resume semantics are unconditional (an existing journal is
// recovered, a missing one created), because the coordinator may be
// restarted mid-job any number of times.
func OpenFirstSweepJournal(cfg Config, n int) (*Journal, error) {
	if cfg.Journal == "" {
		return nil, fmt.Errorf("scenario: OpenFirstSweepJournal needs a journaling Config (WithJournal)")
	}
	c := cfg.WithJournal(cfg.Journal, true)
	return openSweepJournal(c, n)
}

// createJournal starts a fresh journal with its meta record.
func createJournal(path string, meta SweepMeta) (*Journal, error) {
	w, err := journal.Create(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{w: w, meta: meta, path: path, done: map[int]json.RawMessage{}}
	if err := j.appendRecord(journalRecord{Kind: "meta", Meta: &meta}); err != nil {
		w.Close()
		return nil, err
	}
	return j, nil
}

// Meta returns the sweep identity the journal was opened with.
func (j *Journal) Meta() SweepMeta { return j.meta }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Completed returns the recovered replicate indices (ascending) and their
// recorded result JSON.
func (j *Journal) Completed() ([]int, map[int]json.RawMessage) {
	j.mu.Lock()
	defer j.mu.Unlock()
	reps := make([]int, 0, len(j.done))
	results := make(map[int]json.RawMessage, len(j.done))
	for rep, raw := range j.done { //lint:allow maporder keys are sorted below; the copy is per-key independent
		reps = append(reps, rep)
		results[rep] = raw
	}
	sort.Ints(reps)
	return reps, results
}

// Record checkpoints one completed replicate. The result must already be its
// canonical JSON encoding (the bytes merged back on resume).
func (j *Journal) Record(rep int, result json.RawMessage, retries int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendRecord(journalRecord{
		Kind:    "replicate",
		Rep:     rep,
		Seed:    ReplicateSeed(j.meta.BaseSeed, rep),
		Retries: retries,
		Result:  result,
	})
}

// Truncation journals a budget-exhaustion marker naming the replicates that
// were never run, so a truncated sweep is auditable from its journal alone.
func (j *Journal) Truncation(dropped []int, reason string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendRecord(journalRecord{Kind: "truncated", Dropped: dropped, Reason: reason})
}

// appendRecord frames and appends one record. Callers hold j.mu (or have
// exclusive access during open).
func (j *Journal) appendRecord(rec journalRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("scenario: encoding journal record: %w", err)
	}
	return j.w.Append(raw)
}

// Sync flushes outstanding records to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Close()
}
