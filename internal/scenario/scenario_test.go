package scenario

import (
	"strings"
	"testing"
	"time"
)

func TestBuildDefaultsCoresToPrograms(t *testing.T) {
	cases := []struct {
		spec Spec
		want int
	}{
		{Spec{}, 1},
		{Spec{Attack: &Attack{Kind: DoubleSidedFlush}}, 1},
		{Spec{Workloads: []Workload{{Name: "mcf"}, {Name: "sjeng"}}}, 2},
		{Spec{
			Attack:    &Attack{Kind: DoubleSidedFlush},
			Workloads: []Workload{{Name: "mcf"}, {Name: "sjeng"}},
		}, 3},
		{Spec{Cores: 4}, 4},
	}
	for i, c := range cases {
		in, err := Build(c.spec)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := len(in.Machine.Cores); got != c.want {
			t.Errorf("case %d: %d cores, want %d", i, got, c.want)
		}
	}
}

func TestBuildRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		spec Spec
		frag string
	}{
		{Spec{Attack: &Attack{Kind: "rowpress"}}, "unknown attack"},
		{Spec{Workloads: []Workload{{Name: "doom"}}}, "unknown workload"},
		{Spec{Defense: "faraday-cage"}, "unknown defense"},
	}
	for i, c := range cases {
		if _, err := Build(c.spec); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("case %d: err = %v, want %q", i, err, c.frag)
		}
	}
}

func TestBuildAttachesDefenses(t *testing.T) {
	for _, k := range DefenseKinds() {
		in, err := Build(Spec{Defense: k})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		_, isANVIL := k.anvilParams()
		if isANVIL != (in.Detector != nil) {
			t.Errorf("%s: detector = %v", k, in.Detector)
		}
		wantHW := k != NoDefense && k != DoubleRefresh && !isANVIL
		if wantHW != (in.HW != nil) {
			t.Errorf("%s: hw = %v", k, in.HW)
		}
	}
}

func TestBuildSeedIsDeterministic(t *testing.T) {
	run := func(seed uint64) (time.Duration, bool) {
		in, err := Build(Spec{Seed: seed, Attack: &Attack{Kind: DoubleSidedFlush}})
		if err != nil {
			t.Fatal(err)
		}
		d, flipped, err := in.RunUntilFlip(64 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return d, flipped
	}
	d1, f1 := run(7)
	d2, f2 := run(7)
	if d1 != d2 || f1 != f2 {
		t.Errorf("same seed diverged: %v/%v vs %v/%v", d1, f1, d2, f2)
	}
	if !f1 {
		t.Error("double-sided attack never flipped within 64ms")
	}
}

func TestRunHonorsDuration(t *testing.T) {
	d := 2 * time.Millisecond
	in, err := Run(Spec{Workloads: []Workload{{Name: "sjeng"}}, Duration: d})
	if err != nil {
		t.Fatal(err)
	}
	m := in.Machine
	if got := m.Freq.Duration(m.Cores[0].Now); got < d {
		t.Errorf("ran %v, want >= %v", got, d)
	}
}
