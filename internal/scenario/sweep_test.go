package scenario

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sweepResult is a representative result shape: floats, ints and nested
// counters, the mix the experiment result types use. It must round-trip
// through JSON bit-exactly (Go marshals float64 shortest-round-trip).
type sweepResult struct {
	Rep    int     `json:"rep"`
	Value  float64 `json:"value"`
	Cycles uint64  `json:"cycles"`
}

func makeResult(base uint64, rep int) sweepResult {
	seed := ReplicateSeed(base, rep)
	return sweepResult{
		Rep:    rep,
		Value:  1 / float64(seed%1000+3),
		Cycles: seed,
	}
}

func TestTransientClassification(t *testing.T) {
	if Transient(nil) {
		t.Error("nil is transient")
	}
	if Transient(errors.New("boom")) {
		t.Error("plain error is transient")
	}
	if !Transient(MarkTransient(errors.New("boom"))) {
		t.Error("MarkTransient did not mark")
	}
	if !Transient(context.DeadlineExceeded) {
		t.Error("deadline exceeded is not transient")
	}
	if Transient(context.Canceled) {
		t.Error("cancellation must never be transient")
	}
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) != nil")
	}
	// Marking twice must not stack wrappers.
	once := MarkTransient(errors.New("x"))
	if MarkTransient(once) != once {
		t.Error("MarkTransient re-wrapped an already-transient error")
	}
	// The underlying error stays visible through the marker.
	base := os.ErrNotExist
	if !errors.Is(MarkTransient(fmt.Errorf("wrap: %w", base)), base) {
		t.Error("marker hides the underlying error")
	}
}

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	opts := Options{BaseSeed: 7, RetryBackoff: 80 * time.Millisecond}
	for rep := 0; rep < 4; rep++ {
		for attempt := 1; attempt <= 5; attempt++ {
			d1 := RetryDelay(opts, rep, attempt)
			d2 := RetryDelay(opts, rep, attempt)
			if d1 != d2 {
				t.Fatalf("rep %d attempt %d: delay not deterministic (%v != %v)", rep, attempt, d1, d2)
			}
			exp := opts.RetryBackoff << (attempt - 1)
			if d1 < exp/2 || d1 > exp {
				t.Fatalf("rep %d attempt %d: delay %v outside [%v, %v]", rep, attempt, d1, exp/2, exp)
			}
		}
	}
	// Different replicates draw from different jitter substreams.
	same := 0
	for attempt := 1; attempt <= 8; attempt++ {
		if RetryDelay(opts, 0, attempt) == RetryDelay(opts, 1, attempt) {
			same++
		}
	}
	if same == 8 {
		t.Error("replicates 0 and 1 share an identical retry schedule")
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	var calls [4]atomic.Int32
	opts := Options{Workers: 2, MaxRetries: 3, RetryBackoff: time.Microsecond}
	out, status, err := RunSweep(context.Background(), 4, opts, func(_ context.Context, rep int) (int, error) {
		n := calls[rep].Add(1)
		// Replicate 2 fails transiently twice before succeeding.
		if rep == 2 && n <= 2 {
			return 0, MarkTransient(errors.New("flaky"))
		}
		return rep * 10, nil
	})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if want := []int{0, 10, 20, 30}; !reflect.DeepEqual(out, want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
	if status.Retries != 2 {
		t.Errorf("status.Retries = %d, want 2", status.Retries)
	}
	if got := calls[2].Load(); got != 3 {
		t.Errorf("replicate 2 ran %d times, want 3", got)
	}
}

func TestRetryExhaustionReportsAttempts(t *testing.T) {
	var calls atomic.Int32
	opts := Options{Workers: 1, MaxRetries: 2, RetryBackoff: time.Microsecond}
	_, status, err := RunSweep(context.Background(), 1, opts, func(_ context.Context, _ int) (int, error) {
		calls.Add(1)
		return 0, MarkTransient(errors.New("always down"))
	})
	if err == nil {
		t.Fatal("exhausted retries returned nil error")
	}
	var re *ReplicateError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not a *ReplicateError", err)
	}
	if re.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (1 + 2 retries)", re.Attempts)
	}
	if calls.Load() != 3 {
		t.Errorf("fn ran %d times, want 3", calls.Load())
	}
	if status.Retries != 2 {
		t.Errorf("status.Retries = %d, want 2", status.Retries)
	}
}

func TestNonTransientErrorIsNotRetried(t *testing.T) {
	var calls atomic.Int32
	opts := Options{Workers: 1, MaxRetries: 5, RetryBackoff: time.Microsecond}
	_, status, err := RunSweep(context.Background(), 1, opts, func(_ context.Context, _ int) (int, error) {
		calls.Add(1)
		return 0, errors.New("deterministic bug")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if calls.Load() != 1 {
		t.Errorf("non-transient error retried: fn ran %d times", calls.Load())
	}
	if status.Retries != 0 {
		t.Errorf("status.Retries = %d, want 0", status.Retries)
	}
}

func TestBudgetReplicatesTruncates(t *testing.T) {
	opts := Options{Workers: 1, Budget: Budget{Replicates: 3}}
	out, status, err := RunSweep(context.Background(), 8, opts, func(_ context.Context, rep int) (int, error) {
		return rep + 1, nil
	})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if !status.Truncated {
		t.Fatal("sweep not truncated")
	}
	if want := []int{3, 4, 5, 6, 7}; !reflect.DeepEqual(status.Dropped, want) {
		t.Errorf("Dropped = %v, want %v", status.Dropped, want)
	}
	if status.DroppedRange() != "3-7" {
		t.Errorf("DroppedRange = %q, want 3-7", status.DroppedRange())
	}
	// Completed slots are populated, dropped slots are zero values.
	if !reflect.DeepEqual(out[:3], []int{1, 2, 3}) || out[3] != 0 || out[7] != 0 {
		t.Errorf("out = %v", out)
	}
}

func TestBudgetWallClockTruncates(t *testing.T) {
	opts := Options{Workers: 1, Budget: Budget{WallClock: 30 * time.Millisecond}}
	_, status, err := RunSweep(context.Background(), 1000, opts, func(_ context.Context, rep int) (int, error) {
		time.Sleep(5 * time.Millisecond)
		return rep, nil
	})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if !status.Truncated {
		t.Fatal("wall-clock budget did not truncate")
	}
	if len(status.Dropped) == 0 || len(status.Dropped) == 1000 {
		t.Errorf("Dropped %d of 1000 replicates", len(status.Dropped))
	}
}

func TestTruncatedErrorSurfacesThroughRunManyCtx(t *testing.T) {
	opts := Options{Workers: 1, Budget: Budget{Replicates: 2}}
	out, err := RunManyCtx(context.Background(), 5, opts, func(_ context.Context, rep int) (int, error) {
		return rep, nil
	})
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("error %T, want *TruncatedError", err)
	}
	if te.Status.DroppedRange() != "2-4" {
		t.Errorf("DroppedRange = %q", te.Status.DroppedRange())
	}
	if len(out) != 5 || out[0] != 0 || out[1] != 1 {
		t.Errorf("partial results lost: %v", out)
	}
}

// TestSweepErrorSingleEntryPerReplicate is the regression test for the
// double-count bug class: a replicate that fails after the sweep's context
// is cancelled — here via per-replicate timeouts racing a mid-sweep cancel
// under keep-going — must contribute exactly one failure entry, and the
// entries must come back in ascending replicate order.
func TestSweepErrorSingleEntryPerReplicate(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 24
	opts := Options{Workers: 4, KeepGoing: true, Timeout: 5 * time.Millisecond, MaxRetries: 1, RetryBackoff: time.Millisecond}
	started := make(chan struct{}, n)
	_, _, err := RunSweep(ctx, n, opts, func(repCtx context.Context, rep int) (int, error) {
		started <- struct{}{}
		if rep == 2 {
			cancel() // mid-sweep cancellation races the timeouts
		}
		<-repCtx.Done() // every replicate dies by timeout or cancellation
		return 0, repCtx.Err()
	})
	if err == nil {
		t.Fatal("want a *SweepError")
	}
	se, ok := err.(*SweepError)
	if !ok {
		t.Fatalf("error %T, want *SweepError", err)
	}
	if se.Replicates != n {
		t.Errorf("Replicates = %d, want %d", se.Replicates, n)
	}
	if len(se.Failures) != n {
		t.Fatalf("%d failures for %d replicates", len(se.Failures), n)
	}
	seen := map[int]bool{}
	prev := -1
	for _, f := range se.Failures {
		if seen[f.Rep] {
			t.Fatalf("replicate %d double-counted", f.Rep)
		}
		seen[f.Rep] = true
		if f.Rep <= prev {
			t.Fatalf("failures out of replicate order: %d after %d", f.Rep, prev)
		}
		prev = f.Rep
		if !errors.Is(f.Err, context.Canceled) && !errors.Is(f.Err, context.DeadlineExceeded) {
			t.Errorf("replicate %d failed with %v, want cancellation or deadline", f.Rep, f.Err)
		}
	}
}

func testMeta(n int) SweepMeta {
	return SweepMeta{
		Sweep:      "unit",
		SpecHash:   HashSpec("sweep", "unit", 0, true, uint64(7), n),
		BaseSeed:   7,
		Replicates: n,
	}
}

func TestJournalResumeRoundTrip(t *testing.T) {
	const n = 6
	path := filepath.Join(t.TempDir(), "unit-0.jnl")
	meta := testMeta(n)

	j, err := OpenJournal(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	var firstCalls atomic.Int32
	out1, status1, err := RunSweep(context.Background(), n, Options{Workers: 2, Journal: j},
		func(_ context.Context, rep int) (sweepResult, error) {
			firstCalls.Add(1)
			return makeResult(meta.BaseSeed, rep), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if status1.Resumed != 0 || firstCalls.Load() != n {
		t.Fatalf("first run: resumed %d, ran %d", status1.Resumed, firstCalls.Load())
	}

	// Second run resumes everything: fn must not run at all, and the merged
	// results must be identical to the first run's.
	j2, err := OpenJournal(path, meta, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	out2, status2, err := RunSweep(context.Background(), n, Options{Workers: 5, Journal: j2, Resume: true},
		func(_ context.Context, rep int) (sweepResult, error) {
			t.Errorf("replicate %d re-ran on a fully-journaled sweep", rep)
			return sweepResult{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if status2.Resumed != n {
		t.Errorf("Resumed = %d, want %d", status2.Resumed, n)
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("resumed results differ:\n%v\n%v", out1, out2)
	}
}

func TestJournalTruncateThenResumeByteIdentical(t *testing.T) {
	const n = 9
	meta := testMeta(n)
	fn := func(_ context.Context, rep int) (sweepResult, error) {
		return makeResult(meta.BaseSeed, rep), nil
	}

	// Golden: one uninterrupted serial run, no journal.
	golden, _, err := RunSweep(context.Background(), n, Options{Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: a replicate budget cuts the sweep after 4.
	path := filepath.Join(t.TempDir(), "unit-0.jnl")
	j, err := OpenJournal(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	_, status, err := RunSweep(context.Background(), n,
		Options{Workers: 2, Journal: j, Budget: Budget{Replicates: 4}}, fn)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if !status.Truncated || len(status.Dropped) != n-4 {
		t.Fatalf("truncation status = %+v", status)
	}

	// Resume at a different worker count: merged output must equal golden.
	j2, err := OpenJournal(path, meta, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed, status2, err := RunSweep(context.Background(), n,
		Options{Workers: 7, Journal: j2, Resume: true}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if status2.Resumed != 4 {
		t.Errorf("Resumed = %d, want 4", status2.Resumed)
	}
	if !reflect.DeepEqual(golden, resumed) {
		t.Errorf("resumed sweep differs from uninterrupted run:\n%v\n%v", golden, resumed)
	}
}

func TestJournalRefusesMismatchedMeta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unit-0.jnl")
	meta := testMeta(4)
	j, err := OpenJournal(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(0, []byte(`{"rep":0}`), 0); err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := meta
	other.SpecHash = HashSpec("sweep", "unit", 0, false, uint64(7), 4) // quick flipped
	if _, err := OpenJournal(path, other, true); err == nil {
		t.Fatal("resume accepted a journal with a different spec hash")
	} else if got := err.Error(); !strings.Contains(got, "refusing to resume") {
		t.Errorf("mismatch error %q does not explain the refusal", got)
	}
}

func TestJournalRefusesExistingWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unit-0.jnl")
	meta := testMeta(4)
	j, err := OpenJournal(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, meta, false); err == nil {
		t.Fatal("re-open without resume succeeded on an existing journal")
	}
}

func TestRunReplicatesSweepJournalsUnderConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Quick: true, Seed: 7, Parallel: 2, Sweep: "unit"}.WithJournal(dir, false)
	const n = 5
	out1, status1, err := RunReplicatesSweep(cfg, n, func(rep int) (sweepResult, error) {
		return makeResult(cfg.Seed, rep), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if status1.Resumed != 0 {
		t.Fatalf("fresh run resumed %d", status1.Resumed)
	}
	if _, err := os.Stat(filepath.Join(dir, "unit-0.jnl")); err != nil {
		t.Fatalf("journal file missing: %v", err)
	}

	// Same Config with resume: everything merges from the journal.
	cfg2 := Config{Quick: true, Seed: 7, Parallel: 4, Sweep: "unit"}.WithJournal(dir, true)
	out2, status2, err := RunReplicatesSweep(cfg2, n, func(rep int) (sweepResult, error) {
		t.Errorf("replicate %d re-ran", rep)
		return sweepResult{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if status2.Resumed != n {
		t.Errorf("Resumed = %d, want %d", status2.Resumed, n)
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("journaled Config resume differs")
	}
}

// TestProgressEventsCoverEverySlot asserts the OnProgress stream: one event
// per replicate, Completed strictly climbing to Total, no event influencing
// results.
func TestProgressEventsCoverEverySlot(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	var events []ProgressEvent
	out, status, err := RunSweep(context.Background(), n,
		Options{Workers: 3, OnProgress: func(ev ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}},
		func(_ context.Context, rep int) (sweepResult, error) {
			return makeResult(11, rep), nil
		})
	if err != nil || status.Resumed != 0 {
		t.Fatalf("sweep: err=%v status=%+v", err, status)
	}
	if len(out) != n || len(events) != n {
		t.Fatalf("got %d results, %d events, want %d of each", len(out), len(events), n)
	}
	seenRep := map[int]bool{}
	seenCompleted := map[int]bool{}
	for _, ev := range events {
		if ev.Resumed {
			t.Errorf("event for replicate %d marked resumed on a fresh sweep", ev.Rep)
		}
		if ev.Total != n {
			t.Errorf("event Total = %d, want %d", ev.Total, n)
		}
		if seenRep[ev.Rep] {
			t.Errorf("replicate %d reported twice", ev.Rep)
		}
		seenRep[ev.Rep] = true
		seenCompleted[ev.Completed] = true
	}
	for c := 1; c <= n; c++ {
		if !seenCompleted[c] {
			t.Errorf("no event carried Completed = %d", c)
		}
	}
}

// TestProgressEventsMarkResumedReplicates asserts that a resumed sweep
// reports journal-merged replicates as Resumed events (before any worker
// runs) and freshly-computed ones as live events, still covering every slot.
func TestProgressEventsMarkResumedReplicates(t *testing.T) {
	const n = 6
	path := filepath.Join(t.TempDir(), "progress-0.jnl")
	meta := testMeta(n)
	j, err := OpenJournal(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	// First run journals only replicates 0 and 1 (replicate budget 2).
	_, status, err := RunSweep(context.Background(), n,
		Options{Workers: 1, Journal: j, Budget: Budget{Replicates: 2}},
		func(_ context.Context, rep int) (sweepResult, error) {
			return makeResult(meta.BaseSeed, rep), nil
		})
	if err != nil || !status.Truncated {
		t.Fatalf("truncated run: err=%v status=%+v", err, status)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, meta, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var mu sync.Mutex
	var resumed, fresh []int
	_, status2, err := RunSweep(context.Background(), n,
		Options{Workers: 2, Journal: j2, Resume: true, OnProgress: func(ev ProgressEvent) {
			mu.Lock()
			defer mu.Unlock()
			if ev.Resumed {
				resumed = append(resumed, ev.Rep)
			} else {
				fresh = append(fresh, ev.Rep)
			}
		}},
		func(_ context.Context, rep int) (sweepResult, error) {
			return makeResult(meta.BaseSeed, rep), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if status2.Resumed != 2 {
		t.Fatalf("Resumed = %d, want 2", status2.Resumed)
	}
	if !reflect.DeepEqual(resumed, []int{0, 1}) {
		t.Errorf("resumed events = %v, want [0 1] in ascending order", resumed)
	}
	if len(fresh) != n-2 {
		t.Errorf("fresh events = %v, want the remaining %d replicates", fresh, n-2)
	}
}
