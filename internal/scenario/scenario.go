// Package scenario is the declarative layer between the simulator's raw
// building blocks (machine, attack, workload, defense, anvil) and everything
// that runs experiments on them (internal/experiments, cmd/anvilsim,
// cmd/tables, the examples). A Spec names *what* a run looks like — machine
// mutations, workloads, attack, defense, horizon, seed — and Build turns it
// into a ready-to-run Instance, so no caller assembles machines by hand.
//
// The package also hosts the experiment registry (registry.go) and the
// parallel seed-sharded runner (runner.go): RunMany fans replicates across a
// worker pool with each replicate owning its own machine and derived seed,
// and merges results in replicate order so output is bit-identical at any
// parallelism.
package scenario

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/anvil"
	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/defense"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AttackKind names a rowhammer implementation. The string values double as
// CLI tokens (anvilsim -attack).
type AttackKind string

// The three attacks of the paper's Table 1.
const (
	SingleSidedFlush AttackKind = "single-flush"
	DoubleSidedFlush AttackKind = "double-flush"
	ClflushFree      AttackKind = "clflush-free"
)

// AttackKinds lists the attacks in the paper's Table 1 order.
func AttackKinds() []AttackKind {
	return []AttackKind{SingleSidedFlush, DoubleSidedFlush, ClflushFree}
}

// Label returns the paper's name for the attack, as used in table rows.
func (k AttackKind) Label() string {
	switch k {
	case SingleSidedFlush:
		return "Single-Sided with CLFLUSH"
	case DoubleSidedFlush:
		return "Double-Sided with CLFLUSH"
	case ClflushFree:
		return "Double-Sided without CLFLUSH"
	default:
		return string(k)
	}
}

// DefaultWeakUnits is the paper module's weakest-cell disturbance limit,
// planted at the attack's victim row.
const DefaultWeakUnits = 400_000

// Attack declares the attacker on core 0.
type Attack struct {
	Kind AttackKind
	// WeakUnits is the disturbance threshold planted at the victim row the
	// attack selects; zero means DefaultWeakUnits.
	WeakUnits float64
	// ExtraDelay inserts compute cycles after each hammer access (the §4.5
	// "spread the activations across the refresh period" evasion).
	ExtraDelay sim.Cycles
}

// Workload declares one SPEC-profile program by name, optionally bounded to
// a fixed amount of work (fixed-work benchmarking runs to completion).
type Workload struct {
	Name    string
	OpLimit uint64
}

// DefenseKind names a mitigation from the repository's menu, with its
// canonical parameters. The string values double as CLI tokens
// (anvilsim -defense).
type DefenseKind string

// The defense menu. ANVIL variants run the software detector; the rest are
// the hardware mitigations of the §5 landscape with their canonical
// parameters (PARA p=0.001, TRR MAC=50K/16ms, pTRR 1%/64-entry,
// CRA 100K counters, ARMOR 10K/8-entry/32ms).
const (
	NoDefense     DefenseKind = "none"
	ANVILBaseline DefenseKind = "anvil"
	ANVILLight    DefenseKind = "anvil-light"
	ANVILHeavy    DefenseKind = "anvil-heavy"
	DoubleRefresh DefenseKind = "2x-refresh"
	PARA          DefenseKind = "para"
	TRR           DefenseKind = "trr"
	PTRR          DefenseKind = "ptrr"
	CRA           DefenseKind = "cra"
	ARMOR         DefenseKind = "armor"
)

// DefenseKinds lists the full menu in presentation order.
func DefenseKinds() []DefenseKind {
	return []DefenseKind{NoDefense, ANVILBaseline, ANVILLight, ANVILHeavy,
		DoubleRefresh, PARA, TRR, PTRR, CRA, ARMOR}
}

// anvilParams returns the detector parameters for an ANVIL kind.
func (k DefenseKind) anvilParams() (anvil.Params, bool) {
	switch k {
	case ANVILBaseline:
		return anvil.Baseline(), true
	case ANVILLight:
		return anvil.Light(), true
	case ANVILHeavy:
		return anvil.Heavy(), true
	}
	return anvil.Params{}, false
}

// Spec declares one simulated scenario. The zero value is a bare one-core
// paper machine with nothing running on it.
type Spec struct {
	// Cores sizes the machine; zero means one core per declared program
	// (attack + workloads), minimum one.
	Cores int
	// Seed is the replicate's root: it perturbs machine-level randomness
	// (the PMU sampler stream and the frame allocator stream) through split
	// substreams. Zero keeps the calibrated defaults, so a zero-seed Spec
	// reproduces the paper runs bit-for-bit. Workload address streams keep
	// their per-profile seeds, and the DRAM weak-cell map stays the paper's
	// module: the seed varies the run, not the hardware.
	Seed uint64
	// RefreshScale multiplies the DRAM refresh rate (2 = the §2.1 "double
	// refresh" mitigation); values below 2 leave the paper's 64 ms window.
	RefreshScale int
	// DisturbScale scales the module's flip thresholds (§4.5 uses 0.5 for
	// future, weaker DRAM); zero or one keeps the paper module.
	DisturbScale float64
	// Attack, when non-nil, spawns the attacker on core 0 and plants its
	// victim row.
	Attack *Attack
	// Workloads spawn on the cores after the attack, in order.
	Workloads []Workload
	// Defense selects a mitigation; empty means none. DoubleRefresh is
	// equivalent to RefreshScale 2.
	Defense DefenseKind
	// Duration is the run horizon for Run; zero runs to completion.
	Duration time.Duration
	// Faults declares deterministic hardware degradations (see
	// internal/fault). The zero value installs nothing, keeping fault-free
	// runs byte-identical; a non-zero spec is realised as a Plan seeded from
	// Seed, so the same Spec degrades the same way on every run.
	Faults fault.Spec
	// ECCScrub, when positive, attaches a SECDED scrubbing pass at this
	// period (Instance.ECC reports corrected/uncorrectable words) —
	// typically paired with Faults.DRAM transient-error rates.
	ECCScrub time.Duration
	// StepBatch overrides the machine's batch cap (machine.Config.BatchCap):
	// 1 forces per-op stepping — the escape hatch for bisecting any suspected
	// batched-vs-per-op divergence — and larger values bound the batched
	// inner loop. Zero keeps the machine default. Like Parallel, it never
	// changes a reported number, only how the core schedules the same ops.
	StepBatch int
	// Mutate is a last-resort hook over the assembled machine config,
	// applied after every declarative field.
	Mutate func(*machine.Config)
}

// Hammer is the view of a spawned attack that experiments need.
type Hammer interface {
	machine.Program
	Victim() attack.Target
	AggressorAccesses() uint64
	Iterations() uint64
}

// Instance is a built scenario, ready to run.
type Instance struct {
	Spec    Spec
	Machine *machine.Machine
	// Hammer is the spawned attack, nil without one.
	Hammer Hammer
	// Detector is the ANVIL detector, nil unless an ANVIL defense was
	// selected. It is started.
	Detector *anvil.Detector
	// HW is the attached hardware defense, nil unless one was selected.
	HW defense.Defense
	// ECC is the SECDED scrubber, nil unless Spec.ECCScrub was set.
	ECC *defense.ECC
}

// newHammer instantiates an attack implementation.
func newHammer(k AttackKind, opts attack.Options) (Hammer, error) {
	switch k {
	case SingleSidedFlush:
		return attack.NewSingleSidedFlush(opts)
	case DoubleSidedFlush:
		return attack.NewDoubleSidedFlush(opts)
	case ClflushFree:
		return attack.NewClflushFree(opts)
	default:
		return nil, fmt.Errorf("scenario: unknown attack kind %q", k)
	}
}

// Build assembles the machine, attaches the defense, spawns the attack and
// workloads, and starts the detector. It does not advance simulated time.
func Build(s Spec) (*Instance, error) {
	cores := s.Cores
	if cores <= 0 {
		cores = len(s.Workloads)
		if s.Attack != nil {
			cores++
		}
		if cores == 0 {
			cores = 1
		}
	}

	cfg := machine.DefaultConfig()
	cfg.Cores = cores
	if s.Seed != 0 {
		// Split the root seed into independent per-component streams, added
		// on top of the calibrated defaults so seed zero is the identity.
		root := sim.NewRand(s.Seed)
		cfg.Memory.PMUSeed += root.Uint64()
		cfg.AllocSeed += root.Uint64()
	}
	scale := s.RefreshScale
	if s.Defense == DoubleRefresh && scale < 2 {
		scale = 2
	}
	if scale > 1 {
		timing, err := cfg.Memory.DRAM.Timing.RefreshScaled(scale)
		if err != nil {
			return nil, err
		}
		cfg.Memory.DRAM.Timing = timing
	}
	if s.DisturbScale > 0 && s.DisturbScale != 1 {
		cfg.Memory.DRAM.Disturb = cfg.Memory.DRAM.Disturb.Scaled(s.DisturbScale)
	}
	if s.StepBatch > 0 {
		cfg.BatchCap = s.StepBatch
	}
	if s.Mutate != nil {
		s.Mutate(&cfg)
	}
	plan, err := fault.NewPlan(s.Faults, s.Seed)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	// Degrade the hardware before anything observes it: the injectors must
	// be in place before the first access, activation or timer.
	if err := plan.Apply(m); err != nil {
		return nil, err
	}
	in := &Instance{Spec: s, Machine: m}

	if s.ECCScrub > 0 {
		ecc, err := defense.NewECC(m.Freq.Cycles(s.ECCScrub), 64)
		if err != nil {
			return nil, err
		}
		ecc.Attach(m.Mem.DRAM)
		in.ECC = ecc
	}

	// Hardware defenses observe every activation, so they attach before
	// anything is spawned.
	switch s.Defense {
	case PARA:
		in.HW, err = defense.NewPARA(0.001, 0xdead)
	case TRR:
		in.HW, err = defense.NewTRR(50_000, m.Freq.Cycles(16*time.Millisecond))
	case PTRR:
		in.HW, err = defense.NewPTRR(0.01, 64, 500, 0x717)
	case CRA:
		in.HW, err = defense.NewCRA(100_000)
	case ARMOR:
		in.HW, err = defense.NewARMOR(10_000, 8, m.Freq.Cycles(32*time.Millisecond))
	case NoDefense, DoubleRefresh, ANVILBaseline, ANVILLight, ANVILHeavy, "":
	default:
		return nil, fmt.Errorf("scenario: unknown defense kind %q", s.Defense)
	}
	if err != nil {
		return nil, err
	}
	if in.HW != nil {
		in.HW.Attach(m.Mem.DRAM)
	}

	core := 0
	if s.Attack != nil {
		opts := in.AttackOptions()
		opts.ExtraDelay = s.Attack.ExtraDelay
		h, err := newHammer(s.Attack.Kind, opts)
		if err != nil {
			return nil, err
		}
		if _, err := m.Spawn(core, h); err != nil {
			return nil, err
		}
		weak := s.Attack.WeakUnits
		if weak == 0 {
			weak = DefaultWeakUnits
		}
		v := h.Victim()
		if err := m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, weak); err != nil {
			return nil, err
		}
		in.Hammer = h
		core++
	}
	for _, w := range s.Workloads {
		prof, ok := workload.ByName(w.Name)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown workload %q", w.Name)
		}
		prog, err := workload.New(prof)
		if err != nil {
			return nil, err
		}
		if w.OpLimit > 0 {
			prog = prog.WithOpLimit(w.OpLimit)
		}
		if _, err := m.Spawn(core, prog); err != nil {
			return nil, err
		}
		core++
	}

	if params, ok := s.Defense.anvilParams(); ok {
		det, err := anvil.New(m, params, nil)
		if err != nil {
			return nil, err
		}
		det.Start()
		in.Detector = det
	}
	return in, nil
}

// Run builds the scenario and advances it over its Duration (or to
// completion when Duration is zero), returning the finished instance.
func Run(s Spec) (*Instance, error) {
	in, err := Build(s)
	if err != nil {
		return nil, err
	}
	if s.Duration > 0 {
		err = in.RunFor(s.Duration)
	} else {
		err = in.RunToCompletion()
	}
	if err != nil {
		return nil, err
	}
	return in, nil
}

// AttackOptions are the standard attacker capabilities on the instance's
// machine: the reverse-engineered address maps, the Sandy Bridge LLC model,
// and a contiguous 16 MB buffer with self-selected victim.
func (in *Instance) AttackOptions() attack.Options {
	return attack.Options{
		Mapper:     in.Machine.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	}
}

// RunFor advances the machine by d of simulated time, tolerating early
// completion.
func (in *Instance) RunFor(d time.Duration) error {
	m := in.Machine
	err := m.Run(m.Time() + m.Freq.Cycles(d))
	if err != nil && !errors.Is(err, machine.ErrAllDone) {
		return err
	}
	return nil
}

// RunToCompletion advances the machine until every program finishes.
func (in *Instance) RunToCompletion() error {
	err := in.Machine.Run(1 << 62)
	if err != nil && !errors.Is(err, machine.ErrAllDone) {
		return err
	}
	return nil
}

// RunForCtx is RunFor with cooperative cancellation: it advances the
// machine in 1 ms simulated slices and aborts with ctx.Err() at the first
// slice boundary after ctx is done. Slice boundaries are fixed simulated
// instants, so cancellation never perturbs the results of runs that
// complete.
func (in *Instance) RunForCtx(ctx context.Context, d time.Duration) error {
	m := in.Machine
	end := m.Time() + m.Freq.Cycles(d)
	slice := m.Freq.Cycles(time.Millisecond)
	for now := m.Time(); now < end; {
		if err := ctx.Err(); err != nil {
			return err
		}
		next := now + slice
		if next > end {
			next = end
		}
		err := m.Run(next)
		if errors.Is(err, machine.ErrAllDone) {
			return nil
		}
		if err != nil {
			return err
		}
		now = next
	}
	return nil
}

// Results is a JSON-marshalling snapshot of an instance's observable
// counters after a run. Fault-telemetry fields carry omitempty so that
// fault-free snapshots stay compact, and every field is deterministic for a
// given Spec.
type Results struct {
	// Flips counts hammer-induced bit flips (transient fault-injected
	// errors are reported separately below).
	Flips       int    `json:"flips"`
	Activations uint64 `json:"activations"`
	// Detections / DefenseRefreshes / SamplesTaken describe the ANVIL
	// detector when one is attached; DefenseRefreshes falls back to the
	// hardware defense's refresh count when that is attached instead.
	Detections       int    `json:"detections"`
	DefenseRefreshes uint64 `json:"defense_refreshes"`
	SamplesTaken     uint64 `json:"samples_taken"`
	// PMUDropped counts samples lost to a full PEBS buffer — the
	// experiment's own noise level, which fault injection can inflate via
	// Faults.PMU.BufferCap.
	PMUDropped uint64 `json:"pmu_dropped"`

	// Injected-fault telemetry (all zero without Spec.Faults).
	PMUInjectedDrops     uint64 `json:"pmu_injected_drops,omitempty"`
	PMUSkiddedSamples    uint64 `json:"pmu_skidded_samples,omitempty"`
	PMUDelayedOverflows  uint64 `json:"pmu_delayed_overflows,omitempty"`
	DRAMSkippedRefreshes uint64 `json:"dram_skipped_refreshes,omitempty"`
	ECCTransientSingle   uint64 `json:"ecc_transient_single,omitempty"`
	ECCTransientDouble   uint64 `json:"ecc_transient_double,omitempty"`
	TimersDelayed        uint64 `json:"timers_delayed,omitempty"`
	IRQCostCycles        uint64 `json:"irq_cost_cycles,omitempty"`

	// ECC scrubber outcomes (zero without Spec.ECCScrub).
	ECCCorrected     uint64 `json:"ecc_corrected,omitempty"`
	ECCUncorrectable uint64 `json:"ecc_uncorrectable,omitempty"`
}

// Results snapshots the instance's counters.
func (in *Instance) Results() Results {
	m := in.Machine
	r := Results{
		Flips:       m.Mem.DRAM.FlipCount(),
		Activations: m.Mem.DRAM.Stats().Activations,
		PMUDropped:  m.Mem.PMU.Dropped(),
	}
	if in.Detector != nil {
		st := in.Detector.Stats()
		r.Detections = len(st.Detections)
		r.DefenseRefreshes = st.Refreshes
		r.SamplesTaken = st.SamplesTaken
	} else if in.HW != nil {
		r.DefenseRefreshes = in.HW.Refreshes()
	}
	fc := fault.Snapshot(m)
	r.PMUInjectedDrops = fc.PMU.InjectedDrops
	r.PMUSkiddedSamples = fc.PMU.SkiddedSamples
	r.PMUDelayedOverflows = fc.PMU.DelayedOverflows
	r.DRAMSkippedRefreshes = fc.DRAM.SkippedRefreshes
	r.ECCTransientSingle = fc.DRAM.TransientSingle
	r.ECCTransientDouble = fc.DRAM.TransientDouble
	r.TimersDelayed = fc.Machine.DelayedTimers
	r.IRQCostCycles = uint64(fc.Machine.IRQCostCycles)
	if in.ECC != nil {
		r.ECCCorrected = in.ECC.Corrected()
		r.ECCUncorrectable = in.ECC.Uncorrectable()
	}
	return r
}

// RunUntilFlip drives the machine in fine slices until the first bit flip
// or the deadline. It returns the flip time and whether a flip occurred.
func (in *Instance) RunUntilFlip(deadline time.Duration) (time.Duration, bool, error) {
	m := in.Machine
	slice := m.Freq.Cycles(250 * time.Microsecond)
	end := m.Freq.Cycles(deadline)
	for now := sim.Cycles(0); now < end; now += slice {
		err := m.Run(now + slice)
		if err != nil && !errors.Is(err, machine.ErrAllDone) {
			return 0, false, err
		}
		if m.Mem.DRAM.FlipCount() > 0 {
			return m.Freq.Duration(m.Mem.DRAM.Flips()[0].Time), true, nil
		}
		if errors.Is(err, machine.ErrAllDone) {
			break
		}
	}
	return 0, false, nil
}
