package scenario

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestRunManyPreservesReplicateOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 32} {
		got, err := RunMany(16, workers, func(rep int) (int, error) {
			return rep * rep, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := make([]int, 16)
		for i := range want {
			want[i] = i * i
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: got %v", workers, got)
		}
	}
}

func TestRunManyZeroReplicates(t *testing.T) {
	got, err := RunMany(0, 4, func(rep int) (string, error) {
		t.Error("fn called for n=0")
		return "", nil
	})
	if err != nil || len(got) != 0 {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestRunManyFirstErrorInReplicateOrder(t *testing.T) {
	// Replicates 3 and 7 fail; regardless of scheduling, the reported
	// error must be replicate 3's, and every replicate must still run.
	for _, workers := range []int{1, 8} {
		ran := make([]bool, 10)
		_, err := RunMany(10, workers, func(rep int) (int, error) {
			ran[rep] = true
			if rep == 3 || rep == 7 {
				return 0, fmt.Errorf("boom %d", rep)
			}
			return rep, nil
		})
		if err == nil || err.Error() != "scenario: replicate 3: boom 3" {
			t.Errorf("workers=%d: err = %v", workers, err)
		}
		for i, r := range ran {
			if !r {
				t.Errorf("workers=%d: replicate %d skipped", workers, i)
			}
		}
	}
}

func TestRunManyErrorUnwraps(t *testing.T) {
	sentinel := errors.New("sentinel")
	_, err := RunMany(2, 2, func(rep int) (int, error) {
		if rep == 1 {
			return 0, sentinel
		}
		return 0, nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err %v does not wrap sentinel", err)
	}
}

func TestReplicateSeedIsPureAndDecorrelated(t *testing.T) {
	seen := map[uint64]int{}
	for rep := 0; rep < 64; rep++ {
		s := ReplicateSeed(7, rep)
		if again := ReplicateSeed(7, rep); again != s {
			t.Fatalf("rep %d: %#x then %#x", rep, s, again)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("reps %d and %d collide on %#x", prev, rep, s)
		}
		seen[s] = rep
	}
	if ReplicateSeed(7, 0) == ReplicateSeed(8, 0) {
		t.Error("different base seeds produce the same replicate seed")
	}
}

func TestRunManyCtxPanicNamesReplicate(t *testing.T) {
	for _, workers := range []int{1, 8} {
		_, err := RunManyCtx(context.Background(), 8, Options{Workers: workers},
			func(_ context.Context, rep int) (int, error) {
				if rep == 5 {
					panic("kaboom")
				}
				return rep, nil
			})
		var re *ReplicateError
		if !errors.As(err, &re) {
			t.Fatalf("workers=%d: error %v is not a *ReplicateError", workers, err)
		}
		if re.Rep != 5 || !re.Panicked {
			t.Errorf("workers=%d: got Rep=%d Panicked=%v, want 5/true", workers, re.Rep, re.Panicked)
		}
		if !strings.Contains(re.Error(), "scenario: replicate 5: panic: kaboom") {
			t.Errorf("workers=%d: error text %q", workers, re.Error())
		}
		if !strings.Contains(re.Stack, "runner_test") {
			t.Errorf("workers=%d: stack trace does not name the panicking test: %q", workers, re.Stack)
		}
	}
}

func TestRunManyCtxCancellationReturnsPromptly(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{}, 64)
		_, err := RunManyCtx(ctx, 64, Options{Workers: workers},
			func(ctx context.Context, rep int) (int, error) {
				started <- struct{}{}
				// The first replicate cancels the sweep; everyone else just
				// waits on the context, so only cancellation lets them finish.
				if rep == 0 {
					cancel()
				}
				<-ctx.Done()
				return 0, ctx.Err()
			})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The unscheduled tail must never have started: far fewer than 64
		// replicates ran.
		if n := len(started); n >= 64 {
			t.Errorf("workers=%d: all %d replicates started despite cancellation", workers, n)
		}
	}
}

func TestRunManyCtxKeepGoingPartialResults(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out, err := RunManyCtx(context.Background(), 8, Options{Workers: workers, KeepGoing: true},
			func(_ context.Context, rep int) (int, error) {
				switch rep {
				case 3:
					return 0, fmt.Errorf("boom %d", rep)
				case 5:
					panic("kaboom")
				}
				return rep * 10, nil
			})
		var se *SweepError
		if !errors.As(err, &se) {
			t.Fatalf("workers=%d: error %v is not a *SweepError", workers, err)
		}
		if se.Replicates != 8 || len(se.Failures) != 2 {
			t.Fatalf("workers=%d: %d/%d failures, want 2/8", workers, len(se.Failures), se.Replicates)
		}
		if se.Failures[0].Rep != 3 || se.Failures[1].Rep != 5 {
			t.Errorf("workers=%d: failure order %d,%d; want 3,5",
				workers, se.Failures[0].Rep, se.Failures[1].Rep)
		}
		if !se.Failures[1].Panicked {
			t.Error("panic failure not marked Panicked")
		}
		for _, rep := range []int{0, 1, 2, 4, 6, 7} {
			if out[rep] != rep*10 {
				t.Errorf("workers=%d: completed result %d = %d, want %d", workers, rep, out[rep], rep*10)
			}
		}
		want := "scenario: 2 of 8 replicates failed; replicate 3: boom 3; replicate 5: panic: kaboom"
		if se.Error() != want {
			t.Errorf("workers=%d: sweep error %q, want %q", workers, se.Error(), want)
		}
	}
}

func TestRunManyCtxTimeoutAbandonsStuckReplicate(t *testing.T) {
	for _, workers := range []int{1, 4} {
		block := make(chan struct{})
		out, err := RunManyCtx(context.Background(), 4,
			Options{Workers: workers, Timeout: 20 * time.Millisecond, KeepGoing: true},
			func(ctx context.Context, rep int) (int, error) {
				if rep == 1 {
					<-block // ignores its context: must be abandoned
				}
				return rep, nil
			})
		close(block)
		var se *SweepError
		if !errors.As(err, &se) {
			t.Fatalf("workers=%d: error %v is not a *SweepError", workers, err)
		}
		if len(se.Failures) != 1 || se.Failures[0].Rep != 1 {
			t.Fatalf("workers=%d: failures %v, want exactly replicate 1", workers, se.Failures)
		}
		if !errors.Is(se.Failures[0], context.DeadlineExceeded) {
			t.Errorf("workers=%d: stuck replicate reported %v, want DeadlineExceeded", workers, se.Failures[0].Err)
		}
		for _, rep := range []int{0, 2, 3} {
			if out[rep] != rep {
				t.Errorf("workers=%d: result %d = %d, want %d", workers, rep, out[rep], rep)
			}
		}
	}
}

func TestRunManyCtxPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := RunManyCtx(ctx, 4, Options{Workers: 2},
		func(_ context.Context, rep int) (int, error) { ran = true; return rep, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("replicates ran under a pre-cancelled context")
	}
}

func TestRunManyParallelismInvariantWithFailures(t *testing.T) {
	run := func(workers int) ([]int, string) {
		out, err := RunManyCtx(context.Background(), 16, Options{Workers: workers, KeepGoing: true},
			func(_ context.Context, rep int) (int, error) {
				if rep%5 == 4 {
					return 0, fmt.Errorf("boom %d", rep)
				}
				return rep * rep, nil
			})
		return out, err.Error()
	}
	out1, err1 := run(1)
	out8, err8 := run(8)
	if err1 != err8 {
		t.Errorf("error text differs by parallelism:\n 1: %s\n 8: %s", err1, err8)
	}
	for i := range out1 {
		if out1[i] != out8[i] {
			t.Errorf("result %d differs: %d vs %d", i, out1[i], out8[i])
		}
	}
}
