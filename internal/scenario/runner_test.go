package scenario

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestRunManyPreservesReplicateOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 32} {
		got, err := RunMany(16, workers, func(rep int) (int, error) {
			return rep * rep, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := make([]int, 16)
		for i := range want {
			want[i] = i * i
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: got %v", workers, got)
		}
	}
}

func TestRunManyZeroReplicates(t *testing.T) {
	got, err := RunMany(0, 4, func(rep int) (string, error) {
		t.Error("fn called for n=0")
		return "", nil
	})
	if err != nil || len(got) != 0 {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestRunManyFirstErrorInReplicateOrder(t *testing.T) {
	// Replicates 3 and 7 fail; regardless of scheduling, the reported
	// error must be replicate 3's, and every replicate must still run.
	for _, workers := range []int{1, 8} {
		ran := make([]bool, 10)
		_, err := RunMany(10, workers, func(rep int) (int, error) {
			ran[rep] = true
			if rep == 3 || rep == 7 {
				return 0, fmt.Errorf("boom %d", rep)
			}
			return rep, nil
		})
		if err == nil || err.Error() != "scenario: replicate 3: boom 3" {
			t.Errorf("workers=%d: err = %v", workers, err)
		}
		for i, r := range ran {
			if !r {
				t.Errorf("workers=%d: replicate %d skipped", workers, i)
			}
		}
	}
}

func TestRunManyErrorUnwraps(t *testing.T) {
	sentinel := errors.New("sentinel")
	_, err := RunMany(2, 2, func(rep int) (int, error) {
		if rep == 1 {
			return 0, sentinel
		}
		return 0, nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err %v does not wrap sentinel", err)
	}
}

func TestReplicateSeedIsPureAndDecorrelated(t *testing.T) {
	seen := map[uint64]int{}
	for rep := 0; rep < 64; rep++ {
		s := ReplicateSeed(7, rep)
		if again := ReplicateSeed(7, rep); again != s {
			t.Fatalf("rep %d: %#x then %#x", rep, s, again)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("reps %d and %d collide on %#x", prev, rep, s)
		}
		seen[s] = rep
	}
	if ReplicateSeed(7, 0) == ReplicateSeed(8, 0) {
		t.Error("different base seeds produce the same replicate seed")
	}
}
