package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestFreqRoundTrip(t *testing.T) {
	f := DefaultFreq
	cases := []time.Duration{
		time.Nanosecond, time.Microsecond, time.Millisecond,
		64 * time.Millisecond, time.Second, 90 * time.Second,
	}
	for _, d := range cases {
		c := f.Cycles(d)
		back := f.Duration(c)
		if diff := d - back; diff < 0 || diff > time.Nanosecond {
			t.Errorf("round trip %v -> %v -> %v", d, c, back)
		}
	}
}

func TestFreqKnownValues(t *testing.T) {
	f := NewFreq(2_600_000_000)
	if got := f.Cycles(64 * time.Millisecond); got != 166_400_000 {
		t.Errorf("64ms at 2.6GHz = %d cycles, want 166400000", got)
	}
	if got := f.Millis(166_400_000); math.Abs(got-64) > 1e-9 {
		t.Errorf("Millis = %g, want 64", got)
	}
	if got := f.Nanos(26); math.Abs(got-10) > 1e-9 {
		t.Errorf("Nanos(26) = %g, want 10", got)
	}
	if got := f.PerSecond(2_600_000, 2_600_000_000); math.Abs(got-2_600_000) > 1e-6 {
		t.Errorf("PerSecond = %g", got)
	}
}

func TestFreqZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFreq(0) did not panic")
		}
	}()
	NewFreq(0)
}

func TestCyclesMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical values of 1000", same)
	}
}

func TestRandUint64nBounds(t *testing.T) {
	r := NewRand(7)
	err := quick.Check(func(n uint64) bool {
		n = n%1000 + 1
		v := r.Uint64n(n)
		return v < n
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRandUint64nUniform(t *testing.T) {
	r := NewRand(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	for i, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Errorf("bucket %d count %d far from %d", i, c, draws/n)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestRandBoolExtremes(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	trues := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	if trues < 23000 || trues > 27000 {
		t.Errorf("Bool(0.25) true %d/100000", trues)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(9)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandGeometricMean(t *testing.T) {
	r := NewRand(13)
	const p = 0.1
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // 9
	if math.Abs(mean-want) > 0.5 {
		t.Errorf("geometric mean %g, want ~%g", mean, want)
	}
}

func TestRandSplitIndependence(t *testing.T) {
	parent := NewRand(1)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams matched %d/1000 times", same)
	}
}

// TestRandSplitStreamsUncorrelated is the stronger cousin of
// TestRandSplitIndependence: beyond not colliding, sibling streams (and the
// parent they were split from) should show no linear correlation.
func TestRandSplitStreamsUncorrelated(t *testing.T) {
	parent := NewRand(42)
	a := parent.Split()
	b := parent.Split()
	const n = 20000
	sample := func(r *Rand) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = r.Float64()
		}
		return out
	}
	xs, ys, ps := sample(a), sample(b), sample(parent)
	for _, pair := range []struct {
		name string
		a, b []float64
	}{
		{"sibling/sibling", xs, ys},
		{"parent/child", ps, xs},
	} {
		if c := Correlation(pair.a, pair.b); math.Abs(c) > 0.03 {
			t.Errorf("%s correlation = %g, want ~0", pair.name, c)
		}
	}
}

func TestRandNormFloat64(t *testing.T) {
	r := NewRand(17)
	var sum, sq float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean %g", mean)
	}
	if math.Abs(std-1) > 0.03 {
		t.Errorf("normal stddev %g", std)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := Correlation(xs, ys); math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect positive correlation = %g", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, neg); math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect negative correlation = %g", c)
	}
	if c := Correlation(xs, []float64{3, 3, 3, 3, 3}); c != 0 {
		t.Errorf("constant series correlation = %g, want 0", c)
	}
	if Correlation(xs, ys[:3]) != 0 {
		t.Error("mismatched length should give 0")
	}
}

func TestMatchFraction(t *testing.T) {
	a := []bool{true, false, true, true}
	b := []bool{true, true, true, false}
	if got := MatchFraction(a, b); got != 0.5 {
		t.Errorf("MatchFraction = %g, want 0.5", got)
	}
	if MatchFraction(nil, nil) != 0 {
		t.Error("empty MatchFraction should be 0")
	}
	if MatchFraction(a, a) != 1 {
		t.Error("self MatchFraction should be 1")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(42)
	for i, b := range h.Buckets {
		if b != 1 {
			t.Errorf("bucket %d = %d, want 1", i, b)
		}
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", h.Under, h.Over)
	}
	if h.N != 12 {
		t.Errorf("N = %d", h.N)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Mean() != 0 {
		t.Error("empty counter mean should be 0")
	}
	c.Add(2)
	c.Add(4)
	if c.Mean() != 3 || c.Count != 2 {
		t.Errorf("counter = %+v", c)
	}
}

func TestRandShuffle(t *testing.T) {
	r := NewRand(21)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != len(orig) {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
	same := true
	for i := range xs {
		if xs[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Error("shuffle left the identity permutation (possible but vanishingly unlikely)")
	}
}

func TestCyclesString(t *testing.T) {
	if Cycles(42).String() != "42cyc" {
		t.Errorf("String = %q", Cycles(42).String())
	}
}
