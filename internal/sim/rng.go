package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded through splitmix64). Every stochastic component of
// the simulator owns its own Rand so that adding or removing one component
// never perturbs the random streams seen by the others.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from the given value. Any seed,
// including zero, produces a valid non-degenerate state.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the state derived from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

// Split derives an independent generator from r's current state, advancing r.
// Use it to hand child components their own streams.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n is 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with n == 0") //lint:allow errpanic documented contract; n==0 is a programmer error, not a recoverable simulation state
	}
	// Lemire-style rejection-free bias for our purposes is acceptable only
	// for small n; use simple rejection to stay exactly uniform.
	mask := ^uint64(0)
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	limit := mask - mask%n
	for {
		v := r.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0") //lint:allow errpanic documented contract; n<=0 is a programmer error, not a recoverable simulation state
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p: the number of failures before the first success. Used for
// "next sampled event in N occurrences" style probabilistic sampling.
func (r *Rand) Geometric(p float64) uint64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return 1 << 62 // effectively never
	}
	n := uint64(0)
	for !r.Bool(p) {
		n++
		if n >= 1<<32 {
			return n
		}
	}
	return n
}

// NormFloat64 returns a normally distributed value with mean 0 and stddev 1,
// using the polar (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}
