package sim

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
// It returns 0 when the slices are empty, mismatched, or constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var num, dx, dy float64
	for i := range xs {
		a := xs[i] - mx
		b := ys[i] - my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// MatchFraction returns the fraction of positions where the two boolean
// sequences agree. It is used by the replacement-policy inference harness to
// score candidate policies against observed hit/miss traces.
func MatchFraction(a, b []bool) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	match := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(n)
}

// Histogram is a fixed-bucket histogram over float64 samples.
type Histogram struct {
	Lo, Hi  float64
	Buckets []uint64
	Under   uint64
	Over    uint64
	N       uint64
	Sum     float64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		//lint:allow errpanic impossible-shape guard; histogram bounds are compile-time constants at every call site
		panic(fmt.Sprintf("sim: invalid histogram [%g,%g) x%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.N++
	h.Sum += x
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i >= len(h.Buckets) {
			i = len(h.Buckets) - 1
		}
		h.Buckets[i]++
	}
}

// Mean returns the mean of all recorded samples (including out-of-range ones).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Counter accumulates a simple count/sum pair; handy for rates.
type Counter struct {
	Count uint64
	Total float64
}

// Add records one observation.
func (c *Counter) Add(v float64) { c.Count++; c.Total += v }

// Mean returns Total/Count or 0.
func (c *Counter) Mean() float64 {
	if c.Count == 0 {
		return 0
	}
	return c.Total / float64(c.Count)
}
