// Package sim provides the primitive substrate shared by every component of
// the simulator: a virtual cycle clock, deterministic random number
// generation, and small statistics helpers.
//
// All time in the simulation is expressed in CPU cycles of a nominal-frequency
// core (2.6 GHz by default, matching the i5-2540M used in the paper). Wall
// clock quantities reported by experiments ("ms", "ns") are always *simulated*
// time derived from cycle counts, never host time, which keeps every
// experiment deterministic and host-independent.
package sim

import (
	"fmt"
	"time"
)

// Cycles is a duration or instant measured in CPU clock cycles.
type Cycles uint64

// DefaultClockHz is the nominal core frequency used throughout the
// reproduction: 2.6 GHz, the frequency of the Intel i5-2540M in the paper.
const DefaultClockHz = 2_600_000_000

// Freq converts between cycles and wall-clock durations at a fixed frequency.
type Freq struct {
	hz uint64
}

// NewFreq returns a Freq for the given clock rate in Hertz.
// It panics if hz is zero, since a zero-frequency clock cannot advance.
func NewFreq(hz uint64) Freq {
	if hz == 0 {
		panic("sim: zero clock frequency") //lint:allow errpanic impossible-state guard; a zero-frequency clock cannot advance and is a programmer error
	}
	return Freq{hz: hz}
}

// DefaultFreq is the 2.6 GHz clock used by all experiments.
var DefaultFreq = NewFreq(DefaultClockHz)

// Hz reports the clock rate in Hertz.
func (f Freq) Hz() uint64 { return f.hz }

// Cycles converts a wall-clock duration to cycles, rounding down.
func (f Freq) Cycles(d time.Duration) Cycles {
	if d <= 0 {
		return 0
	}
	// cycles = d * hz / 1e9, computed carefully to avoid overflow for the
	// durations used in practice (minutes at single-digit GHz fits in uint64).
	ns := uint64(d.Nanoseconds())
	whole := ns / 1_000_000_000
	frac := ns % 1_000_000_000
	return Cycles(whole*f.hz + frac*f.hz/1_000_000_000)
}

// Duration converts cycles to a wall-clock duration, rounding down to the
// nearest nanosecond.
func (f Freq) Duration(c Cycles) time.Duration {
	whole := uint64(c) / f.hz
	frac := uint64(c) % f.hz
	return time.Duration(whole)*time.Second + time.Duration(frac*1_000_000_000/f.hz)
}

// Millis converts cycles to fractional milliseconds.
func (f Freq) Millis(c Cycles) float64 {
	return float64(c) / float64(f.hz) * 1e3
}

// Nanos converts cycles to fractional nanoseconds.
func (f Freq) Nanos(c Cycles) float64 {
	return float64(c) / float64(f.hz) * 1e9
}

// PerSecond converts an event count accumulated over the given number of
// cycles into an events-per-second rate. It returns 0 when c is 0.
func (f Freq) PerSecond(events uint64, c Cycles) float64 {
	if c == 0 {
		return 0
	}
	return float64(events) * float64(f.hz) / float64(c)
}

func (c Cycles) String() string {
	return fmt.Sprintf("%dcyc", uint64(c))
}

// Min returns the smaller of a and b.
func Min(a, b Cycles) Cycles {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Cycles) Cycles {
	if a > b {
		return a
	}
	return b
}
