package defense

import (
	"errors"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// hammeredMachine builds a machine with a planted 400K-unit victim under a
// double-sided CLFLUSH attack and the given defense attached.
func hammeredMachine(t *testing.T, d Defense) (*machine.Machine, attack.Target) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		d.Attach(m.Mem.DRAM)
	}
	a, err := attack.NewDoubleSidedFlush(attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
	return m, v
}

func runFor(t *testing.T, m *machine.Machine, d time.Duration) {
	t.Helper()
	if err := m.Run(m.Freq.Cycles(d)); err != nil && !errors.Is(err, machine.ErrAllDone) {
		t.Fatal(err)
	}
}

func TestUnprotectedMachineFlips(t *testing.T) {
	m, _ := hammeredMachine(t, nil)
	runFor(t, m, 64*time.Millisecond)
	if m.Mem.DRAM.FlipCount() == 0 {
		t.Fatal("control run did not flip; defense tests would be vacuous")
	}
}

func TestPARAPreventsFlips(t *testing.T) {
	d, err := NewPARA(0.001, 42)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := hammeredMachine(t, d)
	runFor(t, m, 128*time.Millisecond)
	if n := m.Mem.DRAM.FlipCount(); n != 0 {
		t.Errorf("PARA allowed %d flips", n)
	}
	if d.Refreshes() == 0 {
		t.Error("PARA never refreshed under an active attack")
	}
}

func TestPARAValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := NewPARA(p, 1); err == nil {
			t.Errorf("PARA accepted p=%g", p)
		}
	}
}

func TestTRRPreventsFlips(t *testing.T) {
	// MAC 50K activations per 16ms window: well under the 220K needed.
	d, err := NewTRR(50_000, sim.DefaultFreq.Cycles(16*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := hammeredMachine(t, d)
	runFor(t, m, 128*time.Millisecond)
	if n := m.Mem.DRAM.FlipCount(); n != 0 {
		t.Errorf("TRR allowed %d flips", n)
	}
	if d.Refreshes() == 0 {
		t.Error("TRR never refreshed under an active attack")
	}
}

func TestTRRValidation(t *testing.T) {
	if _, err := NewTRR(0, 100); err == nil {
		t.Error("zero MAC accepted")
	}
	if _, err := NewTRR(10, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestCRAPreventsFlipsWithMinimalRefreshes(t *testing.T) {
	d, err := NewCRA(100_000)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := hammeredMachine(t, d)
	runFor(t, m, 128*time.Millisecond)
	if n := m.Mem.DRAM.FlipCount(); n != 0 {
		t.Errorf("CRA allowed %d flips", n)
	}
	// Ideal counters refresh very rarely: roughly once per 100K
	// activations per aggressor.
	acts := m.Mem.DRAM.Stats().Activations
	if d.Refreshes() == 0 {
		t.Error("CRA never refreshed")
	}
	if float64(d.Refreshes()) > float64(acts)/20_000 {
		t.Errorf("CRA refreshed %d times for %d activations; should be rare", d.Refreshes(), acts)
	}
}

func TestCRAValidation(t *testing.T) {
	if _, err := NewCRA(0); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestARMORAbsorbsHammering(t *testing.T) {
	d, err := NewARMOR(10_000, 8, sim.DefaultFreq.Cycles(32*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := hammeredMachine(t, d)
	runFor(t, m, 128*time.Millisecond)
	if n := m.Mem.DRAM.FlipCount(); n != 0 {
		t.Errorf("ARMOR allowed %d flips", n)
	}
	if d.Absorbed() == 0 {
		t.Error("ARMOR buffer absorbed nothing under an active attack")
	}
}

func TestARMORValidation(t *testing.T) {
	if _, err := NewARMOR(0, 8, 100); err == nil {
		t.Error("zero promote accepted")
	}
	if _, err := NewARMOR(10, 0, 100); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewARMOR(10, 8, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestDoubleRefreshScalingStillFlips(t *testing.T) {
	// §2.1: the deployed mitigation — a 32ms refresh window — does NOT stop
	// the double-sided CLFLUSH attack (first flip ~14ms < 32ms).
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory.DRAM.Timing = refreshScaled(t, cfg.Memory.DRAM.Timing, 2)
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := attack.NewDoubleSidedFlush(attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
	runFor(t, m, 64*time.Millisecond)
	if m.Mem.DRAM.FlipCount() == 0 {
		t.Error("double refresh rate stopped the attack; §2.1 says it must not")
	}
	var dr DoubleRefresh
	if dr.Name() == "" || dr.Refreshes() != 0 {
		t.Error("DoubleRefresh descriptor wrong")
	}
	dr.Attach(m.Mem.DRAM) // no-op
}

func TestQuadRefreshScalingStopsThisAttack(t *testing.T) {
	// At a 16ms window the sweep outruns our attack's ~14ms... narrowly.
	// §2.1 notes flips were still possible at 16ms on their module; on our
	// module the margin is what matters: flips require beating the sweep.
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory.DRAM.Timing = refreshScaled(t, cfg.Memory.DRAM.Timing, 8) // 8ms window
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := attack.NewDoubleSidedFlush(attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
	runFor(t, m, 64*time.Millisecond)
	if n := m.Mem.DRAM.FlipCount(); n != 0 {
		t.Errorf("8x refresh rate should outrun a 14ms attack, got %d flips", n)
	}
}

func TestPTRRValidation(t *testing.T) {
	if _, err := NewPTRR(0, 32, 100, 1); err == nil {
		t.Error("zero sample probability accepted")
	}
	if _, err := NewPTRR(1.5, 32, 100, 1); err == nil {
		t.Error("out-of-range probability accepted")
	}
	if _, err := NewPTRR(0.01, 0, 100, 1); err == nil {
		t.Error("zero table accepted")
	}
	if _, err := NewPTRR(0.01, 32, 0, 1); err == nil {
		t.Error("zero MAC accepted")
	}
}

func TestPTRRPreventsFlips(t *testing.T) {
	// Sample 1% of activations; a tracked row hitting 500 samples (~50K
	// real activations) refreshes its neighbours — far under the 220K an
	// attack needs.
	d, err := NewPTRR(0.01, 64, 500, 77)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := hammeredMachine(t, d)
	runFor(t, m, 128*time.Millisecond)
	if n := m.Mem.DRAM.FlipCount(); n != 0 {
		t.Errorf("pTRR allowed %d flips", n)
	}
	if d.Refreshes() == 0 {
		t.Error("pTRR never refreshed under an active attack")
	}
	if d.Tracked() == 0 {
		t.Error("pTRR tracker empty under an active attack")
	}
}

func TestPTRRTableEvictionUnderScan(t *testing.T) {
	// A streaming scan touches far more rows than the tracker holds; the
	// table must stay bounded.
	d, err := NewPTRR(0.05, 16, 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Attach(m.Mem.DRAM)
	prog := workloadStream()
	if _, err := m.Spawn(0, prog); err != nil {
		t.Fatal(err)
	}
	runFor(t, m, 20*time.Millisecond)
	if d.Tracked() > 16 {
		t.Errorf("tracker grew to %d entries, cap is 16", d.Tracked())
	}
}

// refreshScaled scales a timing's refresh period, failing the test on a bad
// scale.
func refreshScaled(t *testing.T, tm dram.Timing, scale int) dram.Timing {
	t.Helper()
	out, err := tm.RefreshScaled(scale)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// workloadStream returns a libquantum-style streaming program.
func workloadStream() machine.Program {
	p, ok := workload.ByName("libquantum")
	if !ok {
		panic("missing libquantum profile")
	}
	s, err := workload.New(p)
	if err != nil {
		panic(err)
	}
	return s
}
