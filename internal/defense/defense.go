// Package defense implements the hardware rowhammer mitigations the paper
// compares ANVIL against (§1.2, §5.2):
//
//   - refresh-rate scaling (the deployed BIOS mitigation; configured on the
//     DRAM module via Timing.RefreshScaled — see DoubleRefresh),
//   - PARA, probabilistic adjacent row activation (Kim et al. [24]),
//   - TRR, targeted row refresh with windowed activation counting (the
//     LPDDR4/DDR4 mechanism [19, 21]),
//   - CRA, ideal per-row activation counters (Kim/Nair/Qureshi [23]),
//   - ARMOR, a controller-side hot-row buffer that absorbs repeated
//     activations [25].
//
// All of them attach to the DRAM module's activation stream, exactly where
// the real mechanisms live (the memory controller or the module itself).
// Unlike ANVIL they need new hardware; they serve as the comparison points
// for the extension benchmarks.
package defense

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/sim"
)

// Defense is a hardware mitigation attached to a DRAM module.
type Defense interface {
	// Name identifies the mechanism.
	Name() string
	// Attach hooks the defense into the module's command stream.
	Attach(m *dram.Module)
	// Refreshes reports how many victim-row refreshes the defense issued.
	Refreshes() uint64
}

// DoubleRefresh documents the refresh-rate mitigation: it has no runtime
// component — build the DRAM module with Timing.RefreshScaled(2) instead.
// The type exists so comparison tables can carry a uniform Defense value.
type DoubleRefresh struct{}

// Name implements Defense.
func (DoubleRefresh) Name() string { return "2x-refresh" }

// Attach implements Defense; scaling is a module-construction property, so
// this is a no-op.
func (DoubleRefresh) Attach(*dram.Module) {}

// Refreshes implements Defense.
func (DoubleRefresh) Refreshes() uint64 { return 0 }

// PARA is probabilistic adjacent row activation: on every activation, each
// neighbouring row is refreshed with a small probability p. Repeatedly
// hammering a row triggers a neighbour refresh with overwhelming cumulative
// probability long before the flip threshold.
type PARA struct {
	p         float64
	rng       *sim.Rand
	mod       *dram.Module
	refreshes uint64
}

// NewPARA builds the mechanism. The canonical probability is 0.001 (the
// PARA paper uses 0.001-0.01).
func NewPARA(p float64, seed uint64) (*PARA, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("defense: PARA probability must be in (0,1), got %g", p)
	}
	return &PARA{p: p, rng: sim.NewRand(seed)}, nil
}

// Name implements Defense.
func (d *PARA) Name() string { return "para" }

// Refreshes implements Defense.
func (d *PARA) Refreshes() uint64 { return d.refreshes }

// Attach implements Defense.
func (d *PARA) Attach(m *dram.Module) {
	d.mod = m
	rows := m.Config().Geometry.RowsPerBank
	m.OnActivate(func(c dram.Coord, now sim.Cycles) {
		for _, r := range []int{c.Row - 1, c.Row + 1} {
			if r < 0 || r >= rows {
				continue
			}
			if d.rng.Bool(d.p) {
				d.refreshes++
				m.RefreshRow(c.Bank, r, now)
			}
		}
	})
}

// TRR is targeted row refresh: activations per row are counted within a
// rolling time window; crossing the maximum activation count (MAC) triggers
// a refresh of both neighbours and resets the row's count.
type TRR struct {
	mac       uint64
	window    sim.Cycles
	mod       *dram.Module
	counts    map[uint64]uint64
	winStart  sim.Cycles
	refreshes uint64
}

// NewTRR builds the mechanism. mac is the per-window activation budget;
// window is the counting horizon (typically a fraction of the refresh
// period).
func NewTRR(mac uint64, window sim.Cycles) (*TRR, error) {
	if mac == 0 || window == 0 {
		return nil, fmt.Errorf("defense: TRR needs positive MAC and window")
	}
	return &TRR{mac: mac, window: window, counts: make(map[uint64]uint64)}, nil
}

// Name implements Defense.
func (d *TRR) Name() string { return "trr" }

// Refreshes implements Defense.
func (d *TRR) Refreshes() uint64 { return d.refreshes }

func key(bank, row int) uint64 { return uint64(bank)<<32 | uint64(uint32(row)) }

// Attach implements Defense.
func (d *TRR) Attach(m *dram.Module) {
	d.mod = m
	rows := m.Config().Geometry.RowsPerBank
	m.OnActivate(func(c dram.Coord, now sim.Cycles) {
		if now-d.winStart >= d.window {
			d.counts = make(map[uint64]uint64)
			d.winStart = now - now%d.window
		}
		k := key(c.Bank, c.Row)
		d.counts[k]++
		if d.counts[k] < d.mac {
			return
		}
		d.counts[k] = 0
		for _, r := range []int{c.Row - 1, c.Row + 1} {
			if r >= 0 && r < rows {
				d.refreshes++
				m.RefreshRow(c.Bank, r, now)
			}
		}
	})
}

// CRA models ideal per-row activation counters (the "activation counter
// for each row" design the literature considers too expensive [23, 24]):
// a precise count of activations since the victim's last refresh, with
// deterministic neighbour refresh at the threshold. It is the oracle
// defense: zero false negatives, minimal refreshes.
type CRA struct {
	threshold uint64
	counts    map[uint64]uint64
	refreshes uint64
}

// NewCRA builds the mechanism with the given activation threshold (set
// safely below the weakest cell's disturbance limit).
func NewCRA(threshold uint64) (*CRA, error) {
	if threshold == 0 {
		return nil, fmt.Errorf("defense: CRA needs a positive threshold")
	}
	return &CRA{threshold: threshold, counts: make(map[uint64]uint64)}, nil
}

// Name implements Defense.
func (d *CRA) Name() string { return "cra" }

// Refreshes implements Defense.
func (d *CRA) Refreshes() uint64 { return d.refreshes }

// Attach implements Defense.
func (d *CRA) Attach(m *dram.Module) {
	rows := m.Config().Geometry.RowsPerBank
	m.OnActivate(func(c dram.Coord, now sim.Cycles) {
		k := key(c.Bank, c.Row)
		d.counts[k]++
		if d.counts[k] < d.threshold {
			return
		}
		d.counts[k] = 0
		for _, r := range []int{c.Row - 1, c.Row + 1} {
			if r >= 0 && r < rows {
				d.refreshes++
				m.RefreshRow(c.Bank, r, now)
				// The refresh restores the neighbour; its own counter can
				// also restart.
				d.counts[key(c.Bank, r)] = 0
			}
		}
	})
}

// ARMOR is a controller-side hot-row cache: rows that activate repeatedly
// within a window are promoted into a small buffer, and accesses to
// buffered rows are served from the buffer — the DRAM row is never opened
// again, so hammering stops at the controller.
type ARMOR struct {
	promote  uint64 // activations within the window to promote a row
	capacity int
	window   sim.Cycles
	counts   map[uint64]uint64
	buffer   map[uint64]bool
	order    []uint64 // FIFO for eviction
	winStart sim.Cycles
	absorbed uint64
}

// NewARMOR builds the mechanism.
func NewARMOR(promote uint64, capacity int, window sim.Cycles) (*ARMOR, error) {
	if promote == 0 || capacity <= 0 || window == 0 {
		return nil, fmt.Errorf("defense: ARMOR needs positive promote/capacity/window")
	}
	return &ARMOR{
		promote:  promote,
		capacity: capacity,
		window:   window,
		counts:   make(map[uint64]uint64),
		buffer:   make(map[uint64]bool),
	}, nil
}

// Name implements Defense.
func (d *ARMOR) Name() string { return "armor" }

// Refreshes implements Defense: ARMOR absorbs activations rather than
// issuing refreshes; it reports 0.
func (d *ARMOR) Refreshes() uint64 { return 0 }

// Absorbed reports how many activations the buffer absorbed.
func (d *ARMOR) Absorbed() uint64 { return d.absorbed }

// Attach implements Defense.
func (d *ARMOR) Attach(m *dram.Module) {
	m.SetInterceptor(func(c dram.Coord, now sim.Cycles) bool {
		if now-d.winStart >= d.window {
			d.counts = make(map[uint64]uint64)
			d.winStart = now - now%d.window
			// Buffered rows are written back at window turnover.
			d.buffer = make(map[uint64]bool)
			d.order = nil
		}
		k := key(c.Bank, c.Row)
		if d.buffer[k] {
			d.absorbed++
			return true
		}
		d.counts[k]++
		if d.counts[k] >= d.promote {
			if len(d.order) >= d.capacity {
				oldest := d.order[0]
				d.order = d.order[1:]
				delete(d.buffer, oldest)
			}
			d.buffer[k] = true
			d.order = append(d.order, k)
			d.counts[k] = 0
		}
		return false
	})
}

var (
	_ Defense = DoubleRefresh{}
	_ Defense = (*PARA)(nil)
	_ Defense = (*TRR)(nil)
	_ Defense = (*CRA)(nil)
	_ Defense = (*ARMOR)(nil)
)
