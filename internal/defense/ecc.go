package defense

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/sim"
)

// ECC models SECDED error-correcting memory with periodic scrubbing — the
// mitigation some manufacturers floated ("increasing ECC scrub rates could
// be a rowhammer protection mechanism", §1.2). The scrubber walks memory
// every Interval; a word with a single flipped bit is corrected, but a word
// accumulating two or more flips between scrub passes is *uncorrectable*:
// SECDED detects it and the machine takes a fatal machine-check. The paper
// dismisses this defense because rowhammering produces "multiple bit-flips
// per word", and even corrected flips turn into a denial of service through
// machine-check exception storms.
type ECC struct {
	interval  sim.Cycles
	wordBits  int
	mod       *dram.Module
	processed int // hammer flips already classified
	transient int // fault-injected transient flips already classified
	lastScrub sim.Cycles

	corrected     uint64
	uncorrectable uint64
}

// NewECC builds the scrubber. interval is the scrub period; wordBits is the
// ECC word size (64 for standard SECDED over 64-bit words).
func NewECC(interval sim.Cycles, wordBits int) (*ECC, error) {
	if interval == 0 {
		return nil, fmt.Errorf("defense: ECC needs a positive scrub interval")
	}
	if wordBits <= 0 {
		return nil, fmt.Errorf("defense: ECC needs a positive word size")
	}
	return &ECC{interval: interval, wordBits: wordBits}, nil
}

// Name implements Defense.
func (d *ECC) Name() string { return "ecc-scrub" }

// Refreshes implements Defense: ECC never refreshes rows; it repairs (or
// fails to repair) data after the fact.
func (d *ECC) Refreshes() uint64 { return 0 }

// Corrected reports single-bit flips repaired by scrub passes.
func (d *ECC) Corrected() uint64 { return d.corrected }

// Uncorrectable reports multi-bit-per-word flips: fatal machine checks.
func (d *ECC) Uncorrectable() uint64 { return d.uncorrectable }

// Attach implements Defense. The scrubber piggybacks on the activation
// stream for its notion of time (it needs no command of its own).
func (d *ECC) Attach(m *dram.Module) {
	d.mod = m
	m.OnActivate(func(c dram.Coord, now sim.Cycles) {
		if now-d.lastScrub >= d.interval {
			d.Scrub(now)
		}
	})
}

// Scrub classifies all bit flips that occurred since the previous pass —
// hammer-induced flips and fault-injected transient errors alike, since the
// scrubber cannot tell them apart: words with exactly one flip are
// corrected; words with more are uncorrectable. Explicit calls let harnesses
// force a final pass.
func (d *ECC) Scrub(now sim.Cycles) {
	if d.mod == nil {
		return
	}
	d.lastScrub = now - now%d.interval
	flips := d.mod.Flips()
	transient := d.mod.TransientFlips()
	if d.processed >= len(flips) && d.transient >= len(transient) {
		return
	}
	type word struct {
		bank, row, w int
	}
	counts := make(map[word]int)
	for _, f := range flips[d.processed:] {
		counts[word{f.Bank, f.Row, f.Bit / d.wordBits}]++
	}
	for _, f := range transient[d.transient:] {
		counts[word{f.Bank, f.Row, f.Bit / d.wordBits}]++
	}
	d.processed = len(flips)
	d.transient = len(transient)
	for _, n := range counts {
		if n == 1 {
			d.corrected++
		} else {
			d.uncorrectable++
		}
	}
}

var _ Defense = (*ECC)(nil)
