package defense

import (
	"testing"
	"time"

	"repro/internal/dram"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestECCValidation(t *testing.T) {
	if _, err := NewECC(0, 64); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewECC(100, 0); err == nil {
		t.Error("zero word size accepted")
	}
}

// TestECCCorrectsSingleBitFlips: a victim row with one weak cell flips, but
// the scrubber repairs it (no machine check) — the optimistic case.
func TestECCCorrectsSingleBitFlips(t *testing.T) {
	d, err := NewECC(sim.DefaultFreq.Cycles(8*time.Millisecond), 64)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := hammeredMachine(t, d) // plants a single 400K-unit cell
	runFor(t, m, 64*time.Millisecond)
	d.Scrub(m.Freq.Cycles(64 * time.Millisecond))
	if m.Mem.DRAM.FlipCount() == 0 {
		t.Fatal("no flips; ECC test vacuous")
	}
	if d.Corrected() == 0 {
		t.Error("scrubber corrected nothing")
	}
	if d.Uncorrectable() != 0 {
		t.Errorf("single-cell flips reported uncorrectable: %d", d.Uncorrectable())
	}
}

// TestECCFailsOnMultiBitWords reproduces the paper's §1.2 argument: two
// weak cells in the same 64-bit word flip within one scrub interval, which
// SECDED can detect but not correct.
func TestECCFailsOnMultiBitWords(t *testing.T) {
	d, err := NewECC(sim.DefaultFreq.Cycles(8*time.Millisecond), 64)
	if err != nil {
		t.Fatal(err)
	}
	m, v := hammeredMachine(t, d)
	// Two weak cells in word 0 of the victim row, close enough in
	// threshold to flip within the same scrub window.
	m.Mem.DRAM.PlantWeakCell(v.Bank, v.VictimRow, 400_000, 5)
	m.Mem.DRAM.PlantWeakCell(v.Bank, v.VictimRow, 402_000, 37)
	runFor(t, m, 64*time.Millisecond)
	d.Scrub(m.Freq.Cycles(64 * time.Millisecond))
	if d.Uncorrectable() == 0 {
		t.Errorf("two flips in one word were not reported uncorrectable (flips=%d corrected=%d)",
			m.Mem.DRAM.FlipCount(), d.Corrected())
	}
}

// TestMultiCellRowsFlipProgressively checks the extended disturbance model:
// a row with several planted cells flips them in threshold order.
func TestMultiCellRowsFlipProgressively(t *testing.T) {
	m, v := hammeredMachine(t, nil)
	m.Mem.DRAM.PlantWeakCell(v.Bank, v.VictimRow, 400_000, 5)
	m.Mem.DRAM.PlantWeakCell(v.Bank, v.VictimRow, 430_000, 700)
	runFor(t, m, 64*time.Millisecond)
	flips := m.Mem.DRAM.Flips()
	var bits []int
	for _, f := range flips {
		if f.Row == v.VictimRow {
			bits = append(bits, f.Bit)
		}
	}
	if len(bits) < 2 {
		t.Fatalf("expected at least two flips in the victim row, got %v", bits)
	}
	// Both explicit cells flip, weakest before strongest.
	idx := func(bit int) int {
		for i, b := range bits {
			if b == bit {
				return i
			}
		}
		return -1
	}
	if idx(5) < 0 || idx(700) < 0 {
		t.Fatalf("planted cells missing from flips %v", bits)
	}
	if idx(5) > idx(700) {
		t.Errorf("flip order %v: bit 5 (400K) should precede bit 700 (430K)", bits)
	}
}

// eccStreamMachine builds a machine with no planted weak cells, the given
// transient-error rates injected into DRAM, and the scrubber attached, then
// runs a streaming workload so activations (and scrub passes) happen.
func eccStreamMachine(t *testing.T, d *ECC, correctable, uncorrectable float64) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.DRAM.InjectFaults(dram.FaultConfig{
		ECCCorrectableRate:   correctable,
		ECCUncorrectableRate: uncorrectable,
	}, sim.NewRand(21)); err != nil {
		t.Fatal(err)
	}
	d.Attach(m.Mem.DRAM)
	if _, err := m.Spawn(0, workloadStream()); err != nil {
		t.Fatal(err)
	}
	runFor(t, m, 20*time.Millisecond)
	if m.Mem.DRAM.FlipCount() != 0 {
		t.Fatal("streaming run produced hammer flips; transient test vacuous")
	}
	d.Scrub(m.Freq.Cycles(20 * time.Millisecond))
}

// TestECCCorrectsTransientSingles: injected single-bit transients are
// repaired by the scrubber, not escalated to machine checks.
func TestECCCorrectsTransientSingles(t *testing.T) {
	d, err := NewECC(sim.DefaultFreq.Cycles(2*time.Millisecond), 64)
	if err != nil {
		t.Fatal(err)
	}
	eccStreamMachine(t, d, 1e-4, 0)
	if d.Corrected() == 0 {
		t.Error("scrubber corrected no transient singles")
	}
	if d.Uncorrectable() != 0 {
		t.Errorf("isolated singles reported uncorrectable: %d", d.Uncorrectable())
	}
}

// TestECCFailsOnTransientDoubles: injected double-bit-per-word transients
// are uncorrectable — the §1.2 SECDED failure mode, now reachable without a
// hammering attack.
func TestECCFailsOnTransientDoubles(t *testing.T) {
	d, err := NewECC(sim.DefaultFreq.Cycles(2*time.Millisecond), 64)
	if err != nil {
		t.Fatal(err)
	}
	eccStreamMachine(t, d, 0, 1e-4)
	if d.Uncorrectable() == 0 {
		t.Errorf("transient doubles were not reported uncorrectable (corrected=%d)", d.Corrected())
	}
}
