package defense

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/sim"
)

// PTRR models Intel's pseudo-targeted row refresh ("Intel has partially
// disclosed the existence of pTRR in Xeon-class Ivybridge architectures...
// but Intel has yet to release the details of this mechanism", §1.2). With
// no public specification, we model the obvious low-cost design the name
// implies: the controller probabilistically samples activate commands into
// a small tracker table; rows whose tracked count crosses a budget get
// their neighbours refreshed. Sampling keeps the hardware tiny (a handful
// of counters instead of one per row); the cost is probabilistic coverage,
// which is why the paper treats pTRR as an unknown quantity rather than a
// guarantee.
type PTRR struct {
	sampleP   float64
	tableSize int
	mac       uint64 // tracked activations before refreshing neighbours

	rng       *sim.Rand
	table     map[uint64]uint64
	order     []uint64 // FIFO eviction of tracker entries
	refreshes uint64
}

// NewPTRR builds the mechanism: each activation is sampled into the tracker
// with probability sampleP; a tracked row reaching mac sampled activations
// (≈ mac/sampleP real ones) triggers a neighbour refresh.
func NewPTRR(sampleP float64, tableSize int, mac uint64, seed uint64) (*PTRR, error) {
	if sampleP <= 0 || sampleP >= 1 {
		return nil, fmt.Errorf("defense: pTRR sample probability must be in (0,1), got %g", sampleP)
	}
	if tableSize <= 0 || mac == 0 {
		return nil, fmt.Errorf("defense: pTRR needs positive table size and MAC")
	}
	return &PTRR{
		sampleP:   sampleP,
		tableSize: tableSize,
		mac:       mac,
		rng:       sim.NewRand(seed),
		table:     make(map[uint64]uint64),
	}, nil
}

// Name implements Defense.
func (d *PTRR) Name() string { return "ptrr" }

// Refreshes implements Defense.
func (d *PTRR) Refreshes() uint64 { return d.refreshes }

// Tracked reports the current tracker occupancy.
func (d *PTRR) Tracked() int { return len(d.table) }

// Attach implements Defense.
func (d *PTRR) Attach(m *dram.Module) {
	rows := m.Config().Geometry.RowsPerBank
	m.OnActivate(func(c dram.Coord, now sim.Cycles) {
		if !d.rng.Bool(d.sampleP) {
			return
		}
		k := key(c.Bank, c.Row)
		if _, ok := d.table[k]; !ok {
			if len(d.order) >= d.tableSize {
				oldest := d.order[0]
				d.order = d.order[1:]
				delete(d.table, oldest)
			}
			d.order = append(d.order, k)
		}
		d.table[k]++
		if d.table[k] < d.mac {
			return
		}
		d.table[k] = 0
		for _, r := range []int{c.Row - 1, c.Row + 1} {
			if r >= 0 && r < rows {
				d.refreshes++
				m.RefreshRow(c.Bank, r, now)
			}
		}
	})
}

var _ Defense = (*PTRR)(nil)
