package pmu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

func benchAccess(i int) Access {
	return Access{
		VA:      uint64(i) * 64,
		PA:      uint64(i) * 64,
		Write:   i&3 == 3,
		Latency: 29,
		Source:  cache.SrcL3,
		LLCMiss: i&15 == 0,
		Task:    1,
		Core:    0,
		Now:     sim.Cycles(i) * 100,
	}
}

// BenchmarkHotPath measures Observe, the call made once per program memory
// access: with the samplers idle (the overwhelmingly common case), and with
// the load sampler armed at a realistic interval.
func BenchmarkHotPath(b *testing.B) {
	b.Run("observe-idle", func(b *testing.B) {
		p := New(1, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Observe(benchAccess(i))
		}
	})
	b.Run("observe-sampling", func(b *testing.B) {
		p := New(1, 0)
		p.ConfigureLoadSampler(SamplerConfig{Enabled: true, LatencyThreshold: 20, Interval: 25_000}, 0)
		p.ConfigureStoreSampler(SamplerConfig{Enabled: true, Interval: 25_000}, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Observe(benchAccess(i))
			if i&0xffff == 0xffff {
				p.Samples() // periodic drain, as the detector does
			}
		}
	})
}

// TestObserveSteadyStateAllocs pins the allocation-free property of the hot
// path: an observed access that takes no sample must not allocate, and with
// the preallocated sample buffer neither does one that is sampled.
func TestObserveSteadyStateAllocs(t *testing.T) {
	p := New(1, 64)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		p.Observe(benchAccess(i))
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state Observe (samplers idle) allocates %.1f times per run, want 0", allocs)
	}

	// With the samplers armed the records land in the preallocated buffer:
	// still no allocation per observed access, sampled or not.
	p.ConfigureLoadSampler(SamplerConfig{Enabled: true, LatencyThreshold: 20, Interval: 100}, 0)
	p.ConfigureStoreSampler(SamplerConfig{Enabled: true, Interval: 100}, 0)
	allocs = testing.AllocsPerRun(1000, func() {
		p.Observe(benchAccess(i))
		i++
		if len(p.Samples()) > 60 {
			t.Fatal("unexpected sample volume")
		}
	})
	// Samples() itself may allocate its copy-out slice; Observe must not
	// grow the buffer. Draining every run keeps the buffer from filling, so
	// any allocation here beyond the drain's copy indicates Observe grew it.
	if allocs > 1 {
		t.Errorf("steady-state Observe (samplers armed) allocates %.1f times per run, want <= 1 (the drain copy)", allocs)
	}
}
