package pmu

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/sim"
)

func load(va uint64, lat sim.Cycles, miss bool, now sim.Cycles) Access {
	src := cache.SrcL1
	if miss {
		src = cache.SrcDRAM
	}
	return Access{VA: va, PA: va, Latency: lat, Source: src, LLCMiss: miss, Now: now}
}

func store(va uint64, miss bool, now sim.Cycles) Access {
	a := load(va, 100, miss, now)
	a.Write = true
	return a
}

func TestCountersBasic(t *testing.T) {
	p := New(1, 0)
	p.Observe(load(0, 200, true, 10))
	p.Observe(load(0, 4, false, 20))
	p.Observe(store(0, true, 30))
	if got := p.Read(EvLLCMiss); got != 2 {
		t.Errorf("LLC misses = %d, want 2", got)
	}
	if got := p.Read(EvLLCMissLoads); got != 1 {
		t.Errorf("LLC miss loads = %d, want 1 (stores excluded)", got)
	}
	if p.Read(EvLoads) != 2 || p.Read(EvStores) != 1 {
		t.Errorf("loads/stores = %d/%d", p.Read(EvLoads), p.Read(EvStores))
	}
	if p.Read(EvLLCReference) != 3 {
		t.Errorf("references = %d", p.Read(EvLLCReference))
	}
	p.Reset(EvLLCMiss)
	if p.Read(EvLLCMiss) != 0 {
		t.Error("reset did not zero")
	}
}

func TestOverflowInterrupt(t *testing.T) {
	p := New(1, 0)
	fired := sim.Cycles(0)
	count := 0
	p.ArmOverflow(EvLLCMiss, 3, func(now sim.Cycles) {
		fired = now
		count++
	})
	for i := 0; i < 10; i++ {
		p.Observe(load(0, 200, true, sim.Cycles(100*(i+1))))
	}
	if count != 1 {
		t.Fatalf("overflow fired %d times, want exactly 1 (one-shot)", count)
	}
	if fired != 300 {
		t.Errorf("overflow at %d, want 300 (third miss)", fired)
	}
}

func TestOverflowRearmFromHandler(t *testing.T) {
	p := New(1, 0)
	var fires []sim.Cycles
	var rearm func(now sim.Cycles)
	rearm = func(now sim.Cycles) {
		fires = append(fires, now)
		p.ArmOverflow(EvLLCMiss, 2, rearm)
	}
	p.ArmOverflow(EvLLCMiss, 2, rearm)
	for i := 1; i <= 8; i++ {
		p.Observe(load(0, 200, true, sim.Cycles(i)))
	}
	if len(fires) != 4 {
		t.Errorf("periodic overflow fired %d times, want 4: %v", len(fires), fires)
	}
}

func TestDisarmOverflow(t *testing.T) {
	p := New(1, 0)
	p.ArmOverflow(EvLLCMiss, 1, func(now sim.Cycles) { t.Error("disarmed overflow fired") })
	p.DisarmOverflow(EvLLCMiss)
	p.Observe(load(0, 200, true, 1))
}

func TestLoadSamplerLatencyThreshold(t *testing.T) {
	p := New(1, 0)
	p.ConfigureLoadSampler(SamplerConfig{Enabled: true, LatencyThreshold: 150, Interval: 1}, 0)
	p.Observe(load(0xAAA, 200, true, 10)) // qualifies
	p.Observe(load(0xBBB, 30, false, 20)) // below threshold
	p.Observe(load(0xCCC, 400, true, 30)) // qualifies
	got := p.Samples()
	if len(got) != 2 {
		t.Fatalf("samples = %d, want 2", len(got))
	}
	if got[0].VA != 0xAAA || got[1].VA != 0xCCC {
		t.Errorf("sampled VAs %#x %#x", got[0].VA, got[1].VA)
	}
	if got[0].Source != cache.SrcDRAM {
		t.Errorf("data source = %v, want DRAM", got[0].Source)
	}
}

func TestStoreSamplerIgnoresLatency(t *testing.T) {
	p := New(1, 0)
	p.ConfigureStoreSampler(SamplerConfig{Enabled: true, Interval: 1}, 0)
	p.Observe(store(0x111, false, 10))
	p.Observe(load(0x222, 500, true, 20)) // load sampler disabled
	got := p.Samples()
	if len(got) != 1 || !got[0].Write || got[0].VA != 0x111 {
		t.Fatalf("samples = %+v", got)
	}
}

func TestSamplingRateHonoursInterval(t *testing.T) {
	f := sim.DefaultFreq
	p := New(7, 1<<20)
	// 5000 samples/sec: the ANVIL configuration.
	interval := sim.Cycles(f.Hz() / 5000)
	p.ConfigureLoadSampler(SamplerConfig{Enabled: true, LatencyThreshold: 100, Interval: interval}, 0)
	// Qualifying loads every 500 cycles for 100 simulated ms.
	end := f.Cycles(100 * time.Millisecond)
	for now := sim.Cycles(0); now < end; now += 500 {
		p.Observe(load(uint64(now), 200, true, now))
	}
	n := len(p.Samples())
	// Expect ~500 samples in 100 ms at 5000/s.
	if n < 400 || n > 600 {
		t.Errorf("samples in 100ms = %d, want ~500", n)
	}
}

func TestSamplerJitterAvoidsPhaseLock(t *testing.T) {
	p := New(3, 1<<20)
	p.ConfigureLoadSampler(SamplerConfig{Enabled: true, LatencyThreshold: 0, Interval: 1000}, 0)
	// Accesses at two alternating addresses with a period that divides the
	// interval: without jitter we would sample only one of them.
	for i := 0; i < 4000; i++ {
		p.Observe(load(uint64(i%2), 10, false, sim.Cycles(i*500)))
	}
	seen := map[uint64]int{}
	for _, s := range p.Samples() {
		seen[s.VA]++
	}
	if len(seen) != 2 {
		t.Errorf("phase-locked sampling: only VAs %v sampled", seen)
	}
}

func TestBufferCapacityDrops(t *testing.T) {
	p := New(1, 4)
	p.ConfigureLoadSampler(SamplerConfig{Enabled: true, LatencyThreshold: 0, Interval: 1}, 0)
	for i := 0; i < 10; i++ {
		p.Observe(load(uint64(i), 10, false, sim.Cycles(i*10)))
	}
	if n := len(p.Samples()); n != 4 {
		t.Errorf("buffered samples = %d, want 4", n)
	}
	if p.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", p.Dropped())
	}
	// Drain resets the buffer.
	p.Observe(load(99, 10, false, 1000))
	if n := len(p.Samples()); n != 1 {
		t.Errorf("post-drain samples = %d, want 1", n)
	}
}

func TestOnSampleHook(t *testing.T) {
	p := New(1, 0)
	var hooked []Sample
	p.OnSample(func(s Sample) { hooked = append(hooked, s) })
	p.ConfigureLoadSampler(SamplerConfig{Enabled: true, LatencyThreshold: 0, Interval: 1}, 0)
	p.Observe(load(0x42, 10, false, 5))
	if len(hooked) != 1 || hooked[0].VA != 0x42 {
		t.Errorf("hook saw %+v", hooked)
	}
}

func TestDisabledSamplersTakeNothing(t *testing.T) {
	p := New(1, 0)
	p.Observe(load(1, 1000, true, 10))
	p.Observe(store(2, true, 20))
	if n := len(p.Samples()); n != 0 {
		t.Errorf("disabled samplers recorded %d samples", n)
	}
}

func TestSamplerDisableStopsSampling(t *testing.T) {
	p := New(1, 0)
	p.ConfigureLoadSampler(SamplerConfig{Enabled: true, LatencyThreshold: 0, Interval: 1}, 0)
	p.Observe(load(1, 10, false, 10))
	p.ConfigureLoadSampler(SamplerConfig{}, 20)
	p.Observe(load(2, 10, false, 30))
	got := p.Samples()
	if len(got) != 1 || got[0].VA != 1 {
		t.Errorf("samples after disable = %+v", got)
	}
}

func TestEventStrings(t *testing.T) {
	for _, e := range []Event{EvLLCMiss, EvLLCMissLoads, EvLoads, EvStores, EvLLCReference} {
		if e.String() == "" {
			t.Errorf("event %d has empty name", int(e))
		}
	}
	if Event(99).String() != "Event(99)" {
		t.Error("unknown event string")
	}
}
