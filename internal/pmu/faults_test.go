package pmu

import (
	"testing"

	"repro/internal/sim"
)

func TestFaultSampleDropLosesSamples(t *testing.T) {
	p := New(1, 0)
	p.InjectFaults(FaultConfig{SampleDropRate: 1}, sim.NewRand(5))
	p.ConfigureLoadSampler(SamplerConfig{Enabled: true, Interval: 1}, 0)
	for i := 0; i < 50; i++ {
		p.Observe(load(uint64(i)*64, 200, true, sim.Cycles(i*10)))
	}
	if n := len(p.Samples()); n != 0 {
		t.Errorf("drop rate 1 left %d samples in the buffer", n)
	}
	if got := p.FaultStats().InjectedDrops; got != 50 {
		t.Errorf("InjectedDrops = %d, want 50", got)
	}
	// Injected drops are distinct from buffer-full drops.
	if p.Dropped() != 0 {
		t.Errorf("buffer-full drops = %d, want 0", p.Dropped())
	}
}

func TestFaultSkidMovesSampleAddresses(t *testing.T) {
	const maxLines = 4
	p := New(1, 0)
	p.InjectFaults(FaultConfig{SampleSkidRate: 1, SkidMaxLines: maxLines}, sim.NewRand(7))
	p.ConfigureLoadSampler(SamplerConfig{Enabled: true, Interval: 1}, 0)
	const n = 40
	for i := 0; i < n; i++ {
		p.Observe(load(uint64(i)*4096, 200, true, sim.Cycles(i*10)))
	}
	got := p.Samples()
	if len(got) != n {
		t.Fatalf("samples = %d, want %d", len(got), n)
	}
	for i, s := range got {
		diff := int64(s.VA) - int64(uint64(i)*4096)
		if diff == 0 {
			t.Errorf("sample %d did not skid at rate 1", i)
		}
		if diff%64 != 0 {
			t.Errorf("sample %d skidded by %d bytes: not line-aligned", i, diff)
		}
		if diff > maxLines*64 || diff < -maxLines*64 {
			t.Errorf("sample %d skidded by %d bytes, beyond %d lines", i, diff, maxLines)
		}
	}
	if got := p.FaultStats().SkiddedSamples; got != n {
		t.Errorf("SkiddedSamples = %d, want %d", got, n)
	}
}

func TestFaultDelayedOverflow(t *testing.T) {
	p := New(1, 0)
	p.InjectFaults(FaultConfig{OverflowMaxDelay: 10_000}, sim.NewRand(2))
	var fired []sim.Cycles
	p.ArmOverflow(EvLLCMiss, 3, func(now sim.Cycles) { fired = append(fired, now) })
	for i := 1; i <= 20; i++ {
		p.Observe(load(0, 200, true, sim.Cycles(i*1000)))
	}
	if len(fired) != 1 {
		t.Fatalf("overflow fired %d times, want 1", len(fired))
	}
	// The counter crosses its target at t=3000; delivery must be postponed.
	if fired[0] <= 3000 {
		t.Errorf("overflow delivered at %d, want later than the crossing at 3000", fired[0])
	}
	if got := p.FaultStats().DelayedOverflows; got != 1 {
		t.Errorf("DelayedOverflows = %d, want 1", got)
	}
}

func TestFaultBufferCapShrinksBuffer(t *testing.T) {
	p := New(1, 100)
	p.InjectFaults(FaultConfig{BufferCap: 4}, sim.NewRand(1))
	p.ConfigureLoadSampler(SamplerConfig{Enabled: true, Interval: 1}, 0)
	for i := 0; i < 10; i++ {
		p.Observe(load(uint64(i), 10, false, sim.Cycles(i*10)))
	}
	if n := len(p.Samples()); n != 4 {
		t.Errorf("buffered samples = %d, want 4", n)
	}
	if p.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", p.Dropped())
	}
	// A cap above the machine's capacity must not grow the buffer.
	p2 := New(1, 4)
	p2.InjectFaults(FaultConfig{BufferCap: 100}, sim.NewRand(1))
	p2.ConfigureLoadSampler(SamplerConfig{Enabled: true, Interval: 1}, 0)
	for i := 0; i < 10; i++ {
		p2.Observe(load(uint64(i), 10, false, sim.Cycles(i*10)))
	}
	if n := len(p2.Samples()); n != 4 {
		t.Errorf("cap 100 over capacity 4 buffered %d samples, want 4", n)
	}
}
