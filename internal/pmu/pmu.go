// Package pmu simulates the hardware performance-monitoring facilities that
// ANVIL is built on (paper §3.3):
//
//   - event counters, including LONGEST_LAT_CACHE.MISS and
//     MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS, with an overflow interrupt that
//     fires after a programmable number of events;
//   - the PEBS Load Latency facility: probabilistic sampling of retired
//     loads whose latency exceeds a programmable threshold, recording the
//     load's virtual address, data source and latency;
//   - the Precise Store facility: the analogous sampler for stores.
//
// The memory system feeds every program access into Observe; detectors read
// counters, arm overflow interrupts, and drain sample buffers.
package pmu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/sim"
)

// Event identifies a hardware event counter.
type Event int

// The counted events. Names follow the Intel events the paper uses.
const (
	// EvLLCMiss is LONGEST_LAT_CACHE.MISS: every last-level cache miss.
	EvLLCMiss Event = iota
	// EvLLCMissLoads is MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS: retired load
	// operations that missed the last-level cache.
	EvLLCMissLoads
	// EvLoads counts retired loads.
	EvLoads
	// EvStores counts retired stores.
	EvStores
	// EvLLCReference counts LLC lookups (hits + misses).
	EvLLCReference
	numEvents
)

func (e Event) String() string {
	switch e {
	case EvLLCMiss:
		return "LONGEST_LAT_CACHE.MISS"
	case EvLLCMissLoads:
		return "MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS"
	case EvLoads:
		return "MEM_TRANS_RETIRED.LOADS"
	case EvStores:
		return "MEM_TRANS_RETIRED.STORES"
	case EvLLCReference:
		return "LONGEST_LAT_CACHE.REFERENCE"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// Access describes one memory operation as seen by the monitoring hardware.
type Access struct {
	VA      uint64
	PA      uint64
	Write   bool
	Latency sim.Cycles
	Source  cache.DataSource
	LLCMiss bool
	Task    int // owning task id (for the task_struct sampled alongside)
	Core    int
	Now     sim.Cycles
}

// Sample is one PEBS record.
type Sample struct {
	VA      uint64
	Latency sim.Cycles
	Source  cache.DataSource
	Write   bool
	Task    int
	Core    int
	Time    sim.Cycles
}

// SamplerConfig programs one PEBS facility.
type SamplerConfig struct {
	// Enabled arms the facility.
	Enabled bool
	// LatencyThreshold qualifies loads with at least this latency (the
	// Load Latency facility's dedicated threshold register). Ignored by
	// the store facility, whose records always carry the data source.
	LatencyThreshold sim.Cycles
	// Interval is the minimum simulated time between samples, i.e. the
	// inverse of the sampling rate. The first qualifying event after each
	// interval tick is sampled, with a deterministic +-20% jitter to avoid
	// phase-locking onto periodic access patterns.
	Interval sim.Cycles
}

type sampler struct {
	cfg  SamplerConfig
	next sim.Cycles
	rng  *sim.Rand
}

func (s *sampler) configure(cfg SamplerConfig, now sim.Cycles) {
	s.cfg = cfg
	s.next = now // first qualifying event samples immediately
}

// take decides whether this event is sampled and schedules the next tick.
func (s *sampler) take(now sim.Cycles) bool {
	if !s.cfg.Enabled || now < s.next {
		return false
	}
	iv := uint64(s.cfg.Interval)
	if iv == 0 {
		iv = 1
	}
	jitter := iv / 5
	next := iv - jitter
	if jitter > 0 {
		next += s.rng.Uint64n(2*jitter + 1)
	}
	s.next = now + sim.Cycles(next)
	return true
}

// Overflow configures a counter-overflow interrupt.
type overflow struct {
	armed  bool
	target uint64
	fn     func(now sim.Cycles)
}

// PMU is the performance monitoring unit shared by the machine (counters
// model the uncore LLC events; samples carry core/task provenance).
type PMU struct {
	counts   [numEvents]uint64
	over     [numEvents]overflow
	loads    sampler
	stores   sampler
	buf      []Sample
	capacity int
	dropped  uint64
	onSample func(s Sample) // PMI hook: detectors charge per-sample cost here
}

// New creates a PMU. bufferCap bounds the PEBS buffer (a full buffer drops
// further records, as real debug-store areas do between drains).
func New(seed uint64, bufferCap int) *PMU {
	if bufferCap <= 0 {
		bufferCap = 4096
	}
	p := &PMU{capacity: bufferCap, buf: make([]Sample, 0, bufferCap)}
	rng := sim.NewRand(seed)
	p.loads.rng = rng.Split()
	p.stores.rng = rng.Split()
	return p
}

// Read returns the current value of an event counter.
func (p *PMU) Read(e Event) uint64 { return p.counts[e] }

// Reset zeroes an event counter.
func (p *PMU) Reset(e Event) { p.counts[e] = 0 }

// ArmOverflow fires fn once when the counter for e has advanced by n more
// events. Re-arm from inside fn for periodic interrupts.
func (p *PMU) ArmOverflow(e Event, n uint64, fn func(now sim.Cycles)) {
	p.over[e] = overflow{armed: true, target: p.counts[e] + n, fn: fn}
}

// DisarmOverflow cancels a pending overflow interrupt.
func (p *PMU) DisarmOverflow(e Event) { p.over[e].armed = false }

// ConfigureLoadSampler programs the Load Latency facility.
func (p *PMU) ConfigureLoadSampler(cfg SamplerConfig, now sim.Cycles) {
	p.loads.configure(cfg, now)
}

// ConfigureStoreSampler programs the Precise Store facility.
func (p *PMU) ConfigureStoreSampler(cfg SamplerConfig, now sim.Cycles) {
	p.stores.configure(cfg, now)
}

// OnSample registers the PMI handler invoked for every sample taken
// (used by detectors to model per-sample interrupt cost).
func (p *PMU) OnSample(fn func(s Sample)) { p.onSample = fn }

// Samples drains and returns the PEBS buffer. The returned slice is the
// caller's to keep; the internal buffer is reused so that steady-state
// Observe never allocates.
func (p *PMU) Samples() []Sample {
	if len(p.buf) == 0 {
		return nil
	}
	out := make([]Sample, len(p.buf))
	copy(out, p.buf)
	p.buf = p.buf[:0]
	return out
}

// Dropped reports how many samples were lost to a full buffer.
func (p *PMU) Dropped() uint64 { return p.dropped }

func (p *PMU) bump(e Event, now sim.Cycles) {
	p.counts[e]++
	o := &p.over[e]
	if o.armed && p.counts[e] >= o.target {
		o.armed = false
		o.fn(now)
	}
}

// Observe feeds one memory access into the PMU. The memory system calls it
// for every program load and store.
func (p *PMU) Observe(a Access) {
	if a.Write {
		p.bump(EvStores, a.Now)
	} else {
		p.bump(EvLoads, a.Now)
	}
	p.bump(EvLLCReference, a.Now)
	if a.LLCMiss {
		p.bump(EvLLCMiss, a.Now)
		if !a.Write {
			p.bump(EvLLCMissLoads, a.Now)
		}
	}

	var take bool
	if a.Write {
		take = p.stores.take(a.Now)
	} else if a.Latency >= p.loads.cfg.LatencyThreshold {
		take = p.loads.take(a.Now)
	}
	if !take {
		return
	}
	if len(p.buf) >= p.capacity {
		p.dropped++
		return
	}
	s := Sample{
		VA:      a.VA,
		Latency: a.Latency,
		Source:  a.Source,
		Write:   a.Write,
		Task:    a.Task,
		Core:    a.Core,
		Time:    a.Now,
	}
	p.buf = append(p.buf, s)
	if p.onSample != nil {
		p.onSample(s)
	}
}
