// Package pmu simulates the hardware performance-monitoring facilities that
// ANVIL is built on (paper §3.3):
//
//   - event counters, including LONGEST_LAT_CACHE.MISS and
//     MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS, with an overflow interrupt that
//     fires after a programmable number of events;
//   - the PEBS Load Latency facility: probabilistic sampling of retired
//     loads whose latency exceeds a programmable threshold, recording the
//     load's virtual address, data source and latency;
//   - the Precise Store facility: the analogous sampler for stores.
//
// The memory system feeds every program access into Observe; detectors read
// counters, arm overflow interrupts, and drain sample buffers.
package pmu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/sim"
)

// Event identifies a hardware event counter.
type Event int

// The counted events. Names follow the Intel events the paper uses.
const (
	// EvLLCMiss is LONGEST_LAT_CACHE.MISS: every last-level cache miss.
	EvLLCMiss Event = iota
	// EvLLCMissLoads is MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS: retired load
	// operations that missed the last-level cache.
	EvLLCMissLoads
	// EvLoads counts retired loads.
	EvLoads
	// EvStores counts retired stores.
	EvStores
	// EvLLCReference counts LLC lookups (hits + misses).
	EvLLCReference
	numEvents
)

func (e Event) String() string {
	switch e {
	case EvLLCMiss:
		return "LONGEST_LAT_CACHE.MISS"
	case EvLLCMissLoads:
		return "MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS"
	case EvLoads:
		return "MEM_TRANS_RETIRED.LOADS"
	case EvStores:
		return "MEM_TRANS_RETIRED.STORES"
	case EvLLCReference:
		return "LONGEST_LAT_CACHE.REFERENCE"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// Access describes one memory operation as seen by the monitoring hardware.
type Access struct {
	VA      uint64
	PA      uint64
	Write   bool
	Latency sim.Cycles
	Source  cache.DataSource
	LLCMiss bool
	Task    int // owning task id (for the task_struct sampled alongside)
	Core    int
	Now     sim.Cycles
}

// Sample is one PEBS record.
type Sample struct {
	VA      uint64
	Latency sim.Cycles
	Source  cache.DataSource
	Write   bool
	Task    int
	Core    int
	Time    sim.Cycles
}

// SamplerConfig programs one PEBS facility.
type SamplerConfig struct {
	// Enabled arms the facility.
	Enabled bool
	// LatencyThreshold qualifies loads with at least this latency (the
	// Load Latency facility's dedicated threshold register). Ignored by
	// the store facility, whose records always carry the data source.
	LatencyThreshold sim.Cycles
	// Interval is the minimum simulated time between samples, i.e. the
	// inverse of the sampling rate. The first qualifying event after each
	// interval tick is sampled, with a deterministic +-20% jitter to avoid
	// phase-locking onto periodic access patterns.
	Interval sim.Cycles
}

type sampler struct {
	cfg  SamplerConfig
	next sim.Cycles
	rng  *sim.Rand
}

func (s *sampler) configure(cfg SamplerConfig, now sim.Cycles) {
	s.cfg = cfg
	s.next = now // first qualifying event samples immediately
}

// take decides whether this event is sampled and schedules the next tick.
func (s *sampler) take(now sim.Cycles) bool {
	if !s.cfg.Enabled || now < s.next {
		return false
	}
	iv := uint64(s.cfg.Interval)
	if iv == 0 {
		iv = 1
	}
	jitter := iv / 5
	next := iv - jitter
	if jitter > 0 {
		next += s.rng.Uint64n(2*jitter + 1)
	}
	s.next = now + sim.Cycles(next)
	return true
}

// Overflow configures a counter-overflow interrupt. pending/fireAt model a
// fault-injected delivery delay: the counter has crossed its target but the
// interrupt is still in flight and lands at the first event at or after
// fireAt.
type overflow struct {
	armed   bool
	target  uint64
	pending bool
	fireAt  sim.Cycles
	fn      func(now sim.Cycles)
}

// FaultConfig injects PEBS/PMI degradations into the PMU. The zero value
// injects nothing; installing it via InjectFaults is a no-op on behaviour.
// All randomness comes from the *sim.Rand handed to InjectFaults, so a given
// (config, seed, access stream) always degrades identically.
type FaultConfig struct {
	// SampleDropRate is the probability that a sample the sampler decided to
	// take is silently lost before reaching the buffer (PEBS micro-assist
	// aborts, lost DS records).
	SampleDropRate float64
	// SampleSkidRate is the probability a recorded sample's virtual address
	// skids by up to SkidMaxLines cache lines in either direction, the way
	// imprecise PEBS attribution lands on a neighbouring instruction's
	// operand.
	SampleSkidRate float64
	SkidMaxLines   int
	// BufferCap, when positive and smaller than the configured capacity,
	// shrinks the PEBS buffer (a cramped debug-store area drops more samples
	// between drains).
	BufferCap int
	// OverflowMaxDelay postpones counter-overflow interrupt delivery by a
	// uniform 0..OverflowMaxDelay cycles; the interrupt lands on the first
	// event after the delay. Disarming while in flight loses it.
	OverflowMaxDelay sim.Cycles
}

// FaultStats counts the degradations actually injected.
type FaultStats struct {
	InjectedDrops    uint64
	SkiddedSamples   uint64
	DelayedOverflows uint64
}

type pmuFault struct {
	cfg   FaultConfig
	rng   *sim.Rand
	stats FaultStats
}

// PMU is the performance monitoring unit shared by the machine (counters
// model the uncore LLC events; samples carry core/task provenance).
type PMU struct {
	counts   [numEvents]uint64
	over     [numEvents]overflow
	loads    sampler
	stores   sampler
	buf      []Sample
	capacity int
	dropped  uint64
	onSample func(s Sample) // PMI hook: detectors charge per-sample cost here
	fault    *pmuFault      // nil unless InjectFaults installed one
	// watch counts events with an armed or in-flight (pending) overflow, so
	// Observe can skip all overflow bookkeeping when nothing is watching.
	watch int
	// cfgGen increments whenever overflow configuration changes (arm, disarm,
	// or a fire that disarms). Batched callers snapshot it to detect that a
	// previously computed overflow bound went stale mid-run.
	cfgGen uint64
}

// New creates a PMU. bufferCap bounds the PEBS buffer (a full buffer drops
// further records, as real debug-store areas do between drains).
func New(seed uint64, bufferCap int) *PMU {
	if bufferCap <= 0 {
		bufferCap = 4096
	}
	p := &PMU{capacity: bufferCap, buf: make([]Sample, 0, bufferCap)}
	rng := sim.NewRand(seed)
	p.loads.rng = rng.Split()
	p.stores.rng = rng.Split()
	return p
}

// Read returns the current value of an event counter.
func (p *PMU) Read(e Event) uint64 { return p.counts[e] }

// Reset zeroes an event counter.
func (p *PMU) Reset(e Event) { p.counts[e] = 0 }

// ArmOverflow fires fn once when the counter for e has advanced by n more
// events. Re-arm from inside fn for periodic interrupts.
func (p *PMU) ArmOverflow(e Event, n uint64, fn func(now sim.Cycles)) {
	if !p.watching(e) {
		p.watch++
	}
	p.over[e] = overflow{armed: true, target: p.counts[e] + n, fn: fn}
	p.cfgGen++
}

// DisarmOverflow cancels a pending overflow interrupt, including one whose
// fault-delayed delivery is still in flight.
func (p *PMU) DisarmOverflow(e Event) {
	if p.watching(e) {
		p.watch--
	}
	p.over[e].armed = false
	p.over[e].pending = false
	p.cfgGen++
}

func (p *PMU) watching(e Event) bool {
	return p.over[e].armed || p.over[e].pending
}

// ConfigGen identifies the current overflow configuration; any arm, disarm,
// or overflow delivery changes it. A batched caller that computed
// AccessesUntilOverflow must abandon the bound when ConfigGen moves.
func (p *PMU) ConfigGen() uint64 { return p.cfgGen }

// AccessesUntilOverflow returns how many further memory accesses are
// guaranteed not to deliver an overflow interrupt, no matter how the events
// classify. Each access bumps any one counter at most once, so the bound is
// min over armed counters of (target - count - 1). An in-flight delayed
// interrupt can land on any bump, so a pending overflow bounds it to zero.
// With nothing armed the bound is effectively unlimited.
func (p *PMU) AccessesUntilOverflow() uint64 {
	if p.watch == 0 {
		return ^uint64(0)
	}
	bound := ^uint64(0)
	for e := Event(0); e < numEvents; e++ {
		o := &p.over[e]
		if o.pending {
			return 0
		}
		if !o.armed {
			continue
		}
		if o.target <= p.counts[e]+1 {
			return 0
		}
		if n := o.target - p.counts[e] - 1; n < bound {
			bound = n
		}
	}
	return bound
}

// InjectFaults installs a degradation model. Call at most once, before the
// run; a zero cfg changes nothing. rng must be dedicated to the PMU (see
// sim.Rand.Split) so fault decisions do not perturb other streams.
func (p *PMU) InjectFaults(cfg FaultConfig, rng *sim.Rand) {
	p.fault = &pmuFault{cfg: cfg, rng: rng}
	if cfg.BufferCap > 0 && cfg.BufferCap < p.capacity {
		p.capacity = cfg.BufferCap
	}
}

// FaultStats reports the degradations injected so far (zero value without
// InjectFaults).
func (p *PMU) FaultStats() FaultStats {
	if p.fault == nil {
		return FaultStats{}
	}
	return p.fault.stats
}

// ConfigureLoadSampler programs the Load Latency facility.
func (p *PMU) ConfigureLoadSampler(cfg SamplerConfig, now sim.Cycles) {
	p.loads.configure(cfg, now)
}

// ConfigureStoreSampler programs the Precise Store facility.
func (p *PMU) ConfigureStoreSampler(cfg SamplerConfig, now sim.Cycles) {
	p.stores.configure(cfg, now)
}

// OnSample registers the PMI handler invoked for every sample taken
// (used by detectors to model per-sample interrupt cost).
func (p *PMU) OnSample(fn func(s Sample)) { p.onSample = fn }

// Samples drains and returns the PEBS buffer. The returned slice is the
// caller's to keep; the internal buffer is reused so that steady-state
// Observe never allocates.
func (p *PMU) Samples() []Sample {
	if len(p.buf) == 0 {
		return nil
	}
	out := make([]Sample, len(p.buf))
	copy(out, p.buf)
	p.buf = p.buf[:0]
	return out
}

// Dropped reports how many samples were lost to a full buffer.
func (p *PMU) Dropped() uint64 { return p.dropped }

func (p *PMU) bump(e Event, now sim.Cycles) {
	p.counts[e]++
	o := &p.over[e]
	if o.pending && now >= o.fireAt {
		o.pending = false
		p.watch--
		p.cfgGen++
		o.fn(now)
		return
	}
	if o.armed && p.counts[e] >= o.target {
		o.armed = false
		p.cfgGen++
		if f := p.fault; f != nil && f.cfg.OverflowMaxDelay > 0 {
			if delay := sim.Cycles(f.rng.Uint64n(uint64(f.cfg.OverflowMaxDelay) + 1)); delay > 0 {
				// armed -> pending: still watching, only the bound changed.
				o.pending = true
				o.fireAt = now + delay
				f.stats.DelayedOverflows++
				return
			}
		}
		p.watch--
		o.fn(now)
	}
}

// Observe feeds one memory access into the PMU. The memory system calls it
// for every program load and store.
func (p *PMU) Observe(a Access) {
	if p.watch == 0 {
		// Nothing armed or in flight: plain counter increments, no overflow
		// bookkeeping per event.
		p.CountAccess(a.Write, a.LLCMiss)
	} else {
		if a.Write {
			p.bump(EvStores, a.Now)
		} else {
			p.bump(EvLoads, a.Now)
		}
		p.bump(EvLLCReference, a.Now)
		if a.LLCMiss {
			p.bump(EvLLCMiss, a.Now)
			if !a.Write {
				p.bump(EvLLCMissLoads, a.Now)
			}
		}
	}
	if p.WantSample(a.Write, a.Latency, a.Now) {
		p.sample(a)
	}
}

// ObserveCounted is Observe minus overflow delivery: counters advance and the
// samplers run, but armed overflows are not checked. Only valid while the
// caller holds an AccessesUntilOverflow budget (and ConfigGen is unchanged),
// which guarantees no counter can reach its target on this access.
func (p *PMU) ObserveCounted(a Access) {
	p.CountAccess(a.Write, a.LLCMiss)
	if p.WantSample(a.Write, a.Latency, a.Now) {
		p.sample(a)
	}
}

// CountAccess advances the event counters for one access (write/miss
// classification) without overflow checks — the counter half of
// ObserveCounted, split out and inlineable so batched callers can classify
// first and build a full Access record only when WantSample says a PEBS
// record will actually be taken.
func (p *PMU) CountAccess(write, llcMiss bool) {
	if write {
		p.counts[EvStores]++
	} else {
		p.counts[EvLoads]++
	}
	p.counts[EvLLCReference]++
	if llcMiss {
		p.counts[EvLLCMiss]++
		if !write {
			p.counts[EvLLCMissLoads]++
		}
	}
}

// WantSample is an inlineable pre-filter for the PEBS tail: it restates
// exactly the conditions under which sample() would reject the access without
// mutating any state (sampler disabled, below the latency threshold, or
// before the next sampling tick), so the common case skips the call.
func (p *PMU) WantSample(write bool, latency, now sim.Cycles) bool {
	if write {
		return p.stores.cfg.Enabled && now >= p.stores.next
	}
	return p.loads.cfg.Enabled && latency >= p.loads.cfg.LatencyThreshold && now >= p.loads.next
}

// TakeSample runs the PEBS tail for an access that passed WantSample:
// sampler decision, fault injection, buffering and the PMI hook. Calling it
// when WantSample is false is also valid (the sampler re-rejects).
func (p *PMU) TakeSample(a Access) { p.sample(a) }

// sample runs the PEBS tail of Observe: sampler decision, fault injection,
// buffering and the PMI hook.
func (p *PMU) sample(a Access) {
	var take bool
	if a.Write {
		take = p.stores.take(a.Now)
	} else if a.Latency >= p.loads.cfg.LatencyThreshold {
		take = p.loads.take(a.Now)
	}
	if !take {
		return
	}
	if f := p.fault; f != nil && f.cfg.SampleDropRate > 0 && f.rng.Bool(f.cfg.SampleDropRate) {
		f.stats.InjectedDrops++
		return
	}
	if len(p.buf) >= p.capacity {
		p.dropped++
		return
	}
	s := Sample{
		VA:      a.VA,
		Latency: a.Latency,
		Source:  a.Source,
		Write:   a.Write,
		Task:    a.Task,
		Core:    a.Core,
		Time:    a.Now,
	}
	if f := p.fault; f != nil && f.cfg.SampleSkidRate > 0 && f.cfg.SkidMaxLines > 0 &&
		f.rng.Bool(f.cfg.SampleSkidRate) {
		// Uniform in [-SkidMaxLines, +SkidMaxLines] lines, excluding zero so
		// every skid actually moves the address.
		lines := int64(f.rng.Uint64n(uint64(2*f.cfg.SkidMaxLines))) - int64(f.cfg.SkidMaxLines)
		if lines >= 0 {
			lines++
		}
		s.VA = uint64(int64(s.VA) + lines*64)
		f.stats.SkiddedSamples++
	}
	p.buf = append(p.buf, s)
	if p.onSample != nil {
		p.onSample(s)
	}
}
