package machine

import (
	"testing"
)

// TestBatchedEpochSteadyStateAllocs pins the allocation-free property of the
// epoch planner and batched inner loop: once the core's request scratch and
// the memory system's lazy state are warm, advancing the machine through
// many epochs must not allocate.
func TestBatchedEpochSteadyStateAllocs(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, &loadLoop{n: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	if err := m.RunFor(1 << 16); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := m.RunFor(1 << 12); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state batched Run allocates %.1f times per run, want 0", allocs)
	}
}

// TestPerOpSteadyStateAllocs pins the same property for the BatchCap=1
// escape hatch, so forcing per-op stepping for bisection never changes the
// allocation profile either.
func TestPerOpSteadyStateAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchCap = 1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, &loadLoop{n: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	if err := m.RunFor(1 << 16); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := m.RunFor(1 << 12); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state per-op Run allocates %.1f times per run, want 0", allocs)
	}
}
