package machine

import (
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Batch-stepped execution. The per-op loop pays interpretive dispatch on
// every operation: a schedule scan, a timer-heap check, a virtual Next()
// call, and a full walk through System.Access. The batched core instead
// plans an *epoch* — the span up to the next architectural event horizon,
// min(next kernel timer, sibling core's clock, next DRAM refresh slot, run
// deadline) — and lets the earliest core execute a pre-generated run of
// operations to that horizon in a tight loop. Nothing observable can happen
// inside an epoch (no timer is due, no other core is earlier, and the PMU
// overflow budget is re-priced inside memsys.AccessRun), so the output is
// byte-identical to per-op stepping; Config.BatchCap=1 forces the per-op
// path for A/B bisection.

// DefaultBatchCap is the view size requested from a BatchProgram when
// Config.BatchCap is zero.
const DefaultBatchCap = 256

// minEpochSpan is the shortest horizon gap worth planning an epoch for; a
// tighter horizon (sibling cores in near-lockstep) runs per-op instead. Purely
// a performance cutoff — both paths produce identical output.
const minEpochSpan = 64

// BatchProgram is optionally implemented by Programs that can expose a run
// of upcoming operations without committing to them, enabling batched
// execution. Programs that observe machine state between operations
// (Proc.LastLatency, Proc.Time, ...) to decide their next op must NOT
// implement it: a view has to be a pure function of the program's own
// committed state.
type BatchProgram interface {
	Program
	// NextRun returns a view of up to max upcoming operations, in exactly
	// the order Next would produce them. It commits nothing: the machine may
	// execute any prefix (including none) and report it via Advance, and
	// operations not advanced past must be re-served by later NextRun or
	// Next calls. The returned slice is only valid until the next method
	// call on the program.
	NextRun(max int) []Op
	// Advance commits the first n operations of the most recent NextRun
	// view as executed.
	Advance(n int)
}

// runCore advances c — which the caller established as the earliest active
// core — by one epoch (batch-capable programs) or one operation (everything
// else), returning the error left on c, if any.
func (m *Machine) runCore(c *Core, until sim.Cycles) error {
	bp := c.bprog
	if bp == nil {
		return m.stepCore(c)
	}
	horizon := until
	for _, cc := range m.Cores {
		if cc != c && !cc.Done && cc.Now < horizon {
			horizon = cc.Now
		}
	}
	kern := m.Kernel
	if len(kern.timers) > 0 && kern.timers[0].due < horizon {
		horizon = kern.timers[0].due
	}
	if horizon < c.Now+minEpochSpan {
		// The epoch is too short to amortise planning (typically a sibling
		// core sharing the clock, sometimes an imminent timer): interleave
		// through the per-op path, which re-evaluates the schedule op by op
		// and also skips the refresh-slot computation. Per-op stepping is the
		// reference semantics, so bailing here is always output-identical.
		return m.stepCore(c)
	}
	kern.fireDue(c.Now)
	gen := kern.gen
	if rs := m.Mem.DRAM.NextRefreshSlot(c.Now); rs < horizon {
		horizon = rs
	}
	if horizon <= c.Now {
		return m.stepCore(c)
	}
	for c.Now < horizon && !c.Done && kern.gen == gen {
		m.current = c
		ops := bp.NextRun(m.batchCap)
		m.current = nil
		n := m.execView(c, ops, horizon, gen)
		if n == 0 {
			// Heterogeneous head (OpDone, invalid op, translation fault,
			// empty view): one per-op step reproduces the bookkeeping and
			// error wrapping exactly, ending the program if need be.
			return m.stepCore(c)
		}
		bp.Advance(n)
	}
	return c.Err
}

// execView executes a prefix of ops on c and returns how many operations
// completed. It stops — always at an operation boundary — at the horizon, on
// a kernel-generation change (a handler armed an earlier event), or before
// the first operation the batched path cannot express (OpDone, invalid
// kinds, translation faults).
func (m *Machine) execView(c *Core, ops []Op, horizon sim.Cycles, gen uint64) int {
	kern := m.Kernel
	i := 0
	for i < len(ops) && c.Now < horizon && kern.gen == gen {
		switch ops[i].Kind {
		case OpCompute:
			c.Stats.Ops++
			c.Stats.ComputeCycles += ops[i].Cycles
			c.Now += ops[i].Cycles
			i++
		case OpLoad, OpStore, OpFlush:
			reqs := c.reqs[:0]
			// One-entry page memo: nothing can remap between gather
			// iterations, so a VA on the same page as the previous op reuses
			// its frame. memoPage starts unaligned, so it never matches.
			memoPage, memoFrame := uint64(1), uint64(0)
		gather:
			for j := i; j < len(ops); j++ {
				var kind memsys.ReqKind
				switch ops[j].Kind {
				case OpLoad:
					kind = memsys.ReqLoad
				case OpStore:
					kind = memsys.ReqStore
				case OpFlush:
					kind = memsys.ReqFlush
				default:
					break gather
				}
				va := ops[j].VA
				var pa uint64
				if page := va &^ uint64(vm.PageSize-1); page == memoPage {
					pa = memoFrame | va&uint64(vm.PageSize-1)
				} else {
					var err error
					pa, err = c.Proc.AS.Translate(va)
					if err != nil {
						// Leave the faulting op for the per-op path, which
						// reports it with exact wrapping.
						break gather
					}
					memoPage = page
					memoFrame = pa &^ uint64(vm.PageSize-1)
				}
				reqs = append(reqs, memsys.Req{VA: va, PA: pa, Kind: kind})
			}
			c.reqs = reqs
			if len(reqs) == 0 {
				return i
			}
			m.current = c
			rr := m.Mem.AccessRun(reqs, c.Proc.ID, c.ID, &c.Now, horizon, &kern.gen)
			m.current = nil
			c.Stats.Ops += uint64(rr.Executed)
			c.Stats.Loads += rr.Loads
			c.Stats.Stores += rr.Stores
			c.Stats.Flushes += rr.Flushes
			c.Stats.MemCycles += rr.MemCycles
			if rr.HadMem {
				c.Proc.LastLatency = rr.LastLatency
			}
			i += rr.Executed
			if rr.Executed < len(reqs) {
				return i
			}
		default:
			return i
		}
	}
	return i
}
