package machine

import (
	"testing"

	"repro/internal/sim"
)

func TestFaultDelaysKernelTimers(t *testing.T) {
	m := newMachine(t, 1)
	m.InjectFaults(FaultConfig{TimerMaxDelay: 50_000}, sim.NewRand(11))
	if _, err := m.Spawn(0, &loopProgram{name: "loop", stride: 64, n: 4}); err != nil {
		t.Fatal(err)
	}
	var fired []sim.Cycles
	for i := 0; i < 8; i++ {
		due := sim.Cycles(10_000 * (i + 1))
		m.Kernel.At(due, func(now sim.Cycles) { fired = append(fired, now) })
	}
	if err := m.Run(500_000); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 8 {
		t.Fatalf("fired %d timers, want 8: %v", len(fired), fired)
	}
	st := m.FaultStats()
	if st.DelayedTimers == 0 {
		t.Errorf("no timers delayed under TimerMaxDelay: %+v", st)
	}
	if st.DelayCycles == 0 {
		t.Errorf("delayed timers accumulated zero delay: %+v", st)
	}
	for i, at := range fired {
		if at < sim.Cycles(10_000*(i+1)) {
			t.Errorf("timer %d fired at %d, before its requested due time", i, at)
		}
	}
}

func TestFaultChargesIRQCost(t *testing.T) {
	m := newMachine(t, 1)
	m.InjectFaults(FaultConfig{IRQMaxCost: 5_000}, sim.NewRand(12))
	if _, err := m.Spawn(0, &loopProgram{name: "loop", stride: 64, n: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		m.Kernel.At(sim.Cycles(10_000*(i+1)), func(sim.Cycles) {})
	}
	if err := m.Run(500_000); err != nil {
		t.Fatal(err)
	}
	st := m.FaultStats()
	if st.IRQCostCycles == 0 {
		t.Errorf("no IRQ cost charged across 16 timer fires: %+v", st)
	}
	if kc := m.Cores[0].Stats.KernelCycles; kc < st.IRQCostCycles {
		t.Errorf("kernel cycles %v below injected IRQ cost %v", kc, st.IRQCostCycles)
	}
}

func TestFaultStatsZeroWithoutInjection(t *testing.T) {
	m := newMachine(t, 1)
	if st := m.FaultStats(); st != (FaultStats{}) {
		t.Errorf("fault stats non-zero without injection: %+v", st)
	}
}
