package machine

import (
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/vm"
)

func TestScriptRunsToCompletion(t *testing.T) {
	m := newMachine(t, 1)
	var coldLat, warmLat sim.Cycles
	s := NewScript("probe", func(ctx *ScriptCtx) error {
		if err := ctx.Map(0x10000, vm.PageSize); err != nil {
			return err
		}
		coldLat = ctx.Load(0x10000)
		warmLat = ctx.Load(0x10000)
		ctx.Compute(500)
		ctx.Store(0x10040)
		ctx.Flush(0x10000)
		return nil
	})
	if _, err := m.Spawn(0, s); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, ErrAllDone) {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatalf("script error: %v", s.Err())
	}
	if coldLat < 100 {
		t.Errorf("cold load latency %d, want DRAM-scale", coldLat)
	}
	if warmLat >= coldLat {
		t.Errorf("warm load (%d) not faster than cold (%d)", warmLat, coldLat)
	}
	st := m.Cores[0].Stats
	if st.Loads != 2 || st.Stores != 1 || st.Flushes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.ComputeCycles != 500 {
		t.Errorf("compute = %d", st.ComputeCycles)
	}
}

func TestScriptErrorPropagates(t *testing.T) {
	m := newMachine(t, 1)
	boom := errors.New("boom")
	s := NewScript("failing", func(ctx *ScriptCtx) error {
		ctx.Compute(10)
		return boom
	})
	if _, err := m.Spawn(0, s); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, ErrAllDone) {
		t.Fatal(err)
	}
	if !errors.Is(s.Err(), boom) {
		t.Errorf("script error = %v", s.Err())
	}
}

func TestScriptTimeAdvances(t *testing.T) {
	m := newMachine(t, 1)
	var t0, t1 sim.Cycles
	s := NewScript("clock", func(ctx *ScriptCtx) error {
		t0 = ctx.Time()
		ctx.Compute(1000)
		t1 = ctx.Time()
		return nil
	})
	if _, err := m.Spawn(0, s); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, ErrAllDone) {
		t.Fatal(err)
	}
	if t1-t0 != 1000 {
		t.Errorf("rdtsc delta = %d, want 1000", t1-t0)
	}
}

func TestScriptWithoutBodyFailsInit(t *testing.T) {
	m := newMachine(t, 1)
	if _, err := m.Spawn(0, NewScript("empty", nil)); err == nil {
		t.Error("nil-body script accepted")
	}
}

func TestScriptInterleavesWithOtherCores(t *testing.T) {
	m := newMachine(t, 2)
	s := NewScript("walker", func(ctx *ScriptCtx) error {
		if err := ctx.Map(0, 1<<20); err != nil {
			return err
		}
		for i := 0; i < 1000; i++ {
			ctx.Load(uint64(i%256) * 4096)
		}
		return nil
	})
	if _, err := m.Spawn(0, s); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(1, &loopProgram{name: "bg", stride: 64, n: 8}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(3_000_000); err != nil && !errors.Is(err, ErrAllDone) {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if m.Cores[0].Stats.Loads != 1000 {
		t.Errorf("script loads = %d", m.Cores[0].Stats.Loads)
	}
	if m.Cores[1].Stats.Ops == 0 {
		t.Error("background core starved")
	}
}
