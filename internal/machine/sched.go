package machine

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vm"
)

// Time-slicing: a core can run several programs round-robin, the way the
// paper's dual-core i5-2540M ran four processes. SpawnShared enqueues a
// program on a core's run queue; the core rotates tasks every Quantum
// cycles, charging ContextSwitchCost per switch. Cores driven only through
// Spawn keep the one-program-per-core behaviour.

// SchedParams configures per-core time slicing.
type SchedParams struct {
	Quantum           sim.Cycles // slice length (0 selects the default 1ms-at-2.6GHz)
	ContextSwitchCost sim.Cycles // cycles charged per rotation
}

// DefaultSchedParams is a 1 ms quantum with a 2K-cycle switch cost.
func DefaultSchedParams() SchedParams {
	return SchedParams{Quantum: 2_600_000, ContextSwitchCost: 2000}
}

// task is one scheduled program on a core.
type task struct {
	proc *Proc
	prog Program
	done bool
	err  error
}

// SpawnShared creates a process for prog and enqueues it on the given
// core's run queue, enabling time slicing when the core already runs
// something. The scheduler parameters apply machine-wide (set Machine.Sched
// before the first SpawnShared).
func (m *Machine) SpawnShared(core int, prog Program) (*Proc, error) {
	if core < 0 || core >= len(m.Cores) {
		return nil, fmt.Errorf("machine: no core %d", core)
	}
	c := m.Cores[core]
	p, err := m.newProc(prog)
	if err != nil {
		return nil, err
	}
	t := &task{proc: p, prog: prog}
	if c.Done && len(c.tasks) == 0 {
		// First occupant: behave exactly like Spawn, except run queues always
		// step per-op (rotation decides the next op's owner).
		c.Proc = p
		c.Prog = prog
		c.Done = false
		c.Err = nil
		c.bprog = nil
		p.core = c
	}
	c.tasks = append(c.tasks, t)
	if c.sliceLeft == 0 {
		c.sliceLeft = m.quantum()
	}
	m.spawnGen++
	m.Kernel.gen++
	return p, nil
}

// newProc builds the process context and runs the program's Init.
func (m *Machine) newProc(prog Program) (*Proc, error) {
	k := m.Kernel
	k.nextTID++
	p := &Proc{
		ID:     k.nextTID,
		Name:   prog.Name(),
		AS:     vm.NewAddressSpace(k.Alloc),
		kernel: k,
	}
	k.procs[p.ID] = p
	if err := prog.Init(p); err != nil {
		delete(k.procs, p.ID)
		return nil, fmt.Errorf("machine: init %s: %w", prog.Name(), err)
	}
	return p, nil
}

func (m *Machine) quantum() sim.Cycles {
	if m.Sched.Quantum > 0 {
		return m.Sched.Quantum
	}
	return DefaultSchedParams().Quantum
}

// rotate advances the core to its next runnable task, charging the context
// switch. It returns false when no runnable task remains.
func (c *Core) rotate(m *Machine) bool {
	if len(c.tasks) == 0 {
		return !c.Done // single-program core: nothing to rotate
	}
	start := c.cur
	for i := 1; i <= len(c.tasks); i++ {
		next := (start + i) % len(c.tasks)
		if c.tasks[next].done {
			continue
		}
		if next != start || i < len(c.tasks) {
			// A genuine switch (or re-selection of the only runnable task).
			if next != start {
				c.Now += m.Sched.ContextSwitchCost
				c.Stats.ContextSwitches++
			}
		}
		c.cur = next
		t := c.tasks[next]
		c.Proc = t.proc
		c.Prog = t.prog
		t.proc.core = c
		c.sliceLeft = m.quantum()
		return true
	}
	return false
}

// syncTask records the outcome of the current task after an op and handles
// quantum accounting. elapsed is how far the core clock moved.
func (c *Core) syncTask(m *Machine, elapsed sim.Cycles, done bool, err error) {
	if len(c.tasks) == 0 {
		// Single-program core: legacy behaviour.
		if done || err != nil {
			c.Done = true
			c.Err = err
		}
		return
	}
	t := c.tasks[c.cur]
	if err != nil {
		t.done = true
		t.err = err
		c.Err = err
		c.Done = true // a faulting program aborts the run, as with Spawn
		return
	}
	if done {
		t.done = true
	}
	if elapsed >= c.sliceLeft {
		c.sliceLeft = 0
	} else {
		c.sliceLeft -= elapsed
	}
	if t.done || c.sliceLeft == 0 {
		if !c.rotate(m) {
			c.Done = true
		}
	}
}

// TaskErr returns the error recorded for the i-th task spawned on the core
// via SpawnShared (nil when it completed cleanly).
func (c *Core) TaskErr(i int) error {
	if i < 0 || i >= len(c.tasks) {
		return nil
	}
	return c.tasks[i].err
}
