package machine

import (
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/vm"
)

// scriptProgram replays a fixed op list.
type scriptProgram struct {
	name    string
	mapVA   uint64
	mapLen  uint64
	ops     []Op
	idx     int
	initErr error
}

func (p *scriptProgram) Name() string { return p.name }

func (p *scriptProgram) Init(proc *Proc) error {
	if p.initErr != nil {
		return p.initErr
	}
	if p.mapLen > 0 {
		return proc.AS.Map(p.mapVA, p.mapLen)
	}
	return nil
}

func (p *scriptProgram) Next() Op {
	if p.idx >= len(p.ops) {
		return Op{Kind: OpDone}
	}
	op := p.ops[p.idx]
	p.idx++
	return op
}

// loopProgram issues loads over a buffer forever.
type loopProgram struct {
	name   string
	stride uint64
	n      uint64
	i      uint64
}

func (p *loopProgram) Name() string { return p.name }
func (p *loopProgram) Init(proc *Proc) error {
	return proc.AS.Map(0, p.n*p.stride+vm.PageSize)
}
func (p *loopProgram) Next() Op {
	va := (p.i % p.n) * p.stride
	p.i++
	return Op{Kind: OpLoad, VA: va}
}

func newMachine(t *testing.T, cores int) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cores = cores
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineRunsScriptToCompletion(t *testing.T) {
	m := newMachine(t, 1)
	prog := &scriptProgram{
		name: "script", mapLen: vm.PageSize,
		ops: []Op{
			{Kind: OpCompute, Cycles: 100},
			{Kind: OpLoad, VA: 8},
			{Kind: OpStore, VA: 16},
			{Kind: OpFlush, VA: 8},
			{Kind: OpLoad, VA: 8},
		},
	}
	if _, err := m.Spawn(0, prog); err != nil {
		t.Fatal(err)
	}
	err := m.Run(1 << 40)
	if !errors.Is(err, ErrAllDone) {
		t.Fatalf("Run = %v, want ErrAllDone", err)
	}
	c := m.Cores[0]
	if c.Stats.Loads != 2 || c.Stats.Stores != 1 || c.Stats.Flushes != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if c.Stats.ComputeCycles != 100 {
		t.Errorf("compute cycles = %d", c.Stats.ComputeCycles)
	}
	// The flushed line had to be refetched from DRAM.
	if got := m.Mem.PMU.Read(0); got == 0 { // EvLLCMiss
		t.Error("no LLC misses counted")
	}
	if c.Now == 0 {
		t.Error("core clock did not advance")
	}
}

func TestMachinePageFaultAbortsProgram(t *testing.T) {
	m := newMachine(t, 1)
	prog := &scriptProgram{
		name: "faulty", mapLen: vm.PageSize,
		ops: []Op{{Kind: OpLoad, VA: 1 << 30}},
	}
	if _, err := m.Spawn(0, prog); err != nil {
		t.Fatal(err)
	}
	err := m.Run(1 << 40)
	if err == nil || errors.Is(err, ErrAllDone) {
		t.Fatalf("Run = %v, want page-fault error", err)
	}
	if !errors.Is(err, vm.ErrUnmapped) {
		t.Errorf("error chain missing ErrUnmapped: %v", err)
	}
}

func TestMachineDeadlineStopsRun(t *testing.T) {
	m := newMachine(t, 1)
	if _, err := m.Spawn(0, &loopProgram{name: "loop", stride: 64, n: 4}); err != nil {
		t.Fatal(err)
	}
	deadline := sim.Cycles(1_000_000)
	if err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	now := m.Cores[0].Now
	if now < deadline || now > deadline+10_000 {
		t.Errorf("stopped at %d, want just past %d", now, deadline)
	}
}

func TestMachineMultiCoreInterleavesByTime(t *testing.T) {
	m := newMachine(t, 2)
	fast := &loopProgram{name: "fast", stride: 64, n: 4}         // cache-resident
	slow := &loopProgram{name: "slow", stride: 1 << 13, n: 4096} // DRAM-heavy
	if _, err := m.Spawn(0, fast); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(1, slow); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	f, s := m.Cores[0].Stats, m.Cores[1].Stats
	if f.Ops <= s.Ops {
		t.Errorf("cache-resident core ran %d ops vs %d for DRAM-bound; expected more", f.Ops, s.Ops)
	}
	// Both clocks must have reached the deadline zone.
	if m.Cores[0].Now < 2_000_000 || m.Cores[1].Now < 2_000_000 {
		t.Errorf("clocks: %d, %d", m.Cores[0].Now, m.Cores[1].Now)
	}
}

func TestKernelTimersFireInOrder(t *testing.T) {
	m := newMachine(t, 1)
	if _, err := m.Spawn(0, &loopProgram{name: "loop", stride: 64, n: 4}); err != nil {
		t.Fatal(err)
	}
	var fired []sim.Cycles
	m.Kernel.At(50_000, func(now sim.Cycles) { fired = append(fired, now) })
	m.Kernel.At(10_000, func(now sim.Cycles) {
		fired = append(fired, now)
		// Handlers can schedule follow-ups.
		m.Kernel.At(now+5_000, func(n2 sim.Cycles) { fired = append(fired, n2) })
	})
	if err := m.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v", fired)
	}
	if fired[0] != 10_000 || fired[1] != 15_000 || fired[2] != 50_000 {
		t.Errorf("firing order %v", fired)
	}
}

func TestChargeStealsCycles(t *testing.T) {
	m := newMachine(t, 1)
	if _, err := m.Spawn(0, &loopProgram{name: "loop", stride: 64, n: 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100_000); err != nil {
		t.Fatal(err)
	}
	before := m.Cores[0].Now
	m.Charge(0, 12_345)
	if m.Cores[0].Now != before+12_345 {
		t.Error("Charge did not advance the clock")
	}
	if m.Cores[0].Stats.KernelCycles != 12_345 {
		t.Errorf("kernel cycles = %d", m.Cores[0].Stats.KernelCycles)
	}
	m.ChargeCurrent(5) // no current op: charged to core 0
	if m.Cores[0].Stats.KernelCycles != 12_350 {
		t.Errorf("kernel cycles = %d", m.Cores[0].Stats.KernelCycles)
	}
}

func TestSpawnErrors(t *testing.T) {
	m := newMachine(t, 1)
	if _, err := m.Spawn(5, &scriptProgram{name: "x"}); err == nil {
		t.Error("bad core accepted")
	}
	if _, err := m.Spawn(0, &scriptProgram{name: "bad", initErr: errors.New("boom")}); err == nil {
		t.Error("failing Init accepted")
	}
	if _, err := m.Spawn(0, &loopProgram{name: "a", stride: 64, n: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, &loopProgram{name: "b", stride: 64, n: 4}); err == nil {
		t.Error("double spawn on one core accepted")
	}
}

func TestTaskSpaceLookup(t *testing.T) {
	m := newMachine(t, 1)
	p, err := m.Spawn(0, &loopProgram{name: "loop", stride: 64, n: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kernel.TaskSpace(p.ID) != p.AS {
		t.Error("TaskSpace returned wrong address space")
	}
	if m.Kernel.TaskSpace(9999) != nil {
		t.Error("unknown task returned non-nil space")
	}
}

func TestRunWithNoPrograms(t *testing.T) {
	m := newMachine(t, 2)
	if err := m.Run(1000); !errors.Is(err, ErrAllDone) {
		t.Errorf("Run with no programs = %v", err)
	}
}

func TestNewRejectsZeroCores(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestTimeReporting(t *testing.T) {
	m := newMachine(t, 2)
	if m.Time() != 0 {
		t.Errorf("initial time = %d", m.Time())
	}
	if _, err := m.Spawn(0, &scriptProgram{name: "s", mapLen: vm.PageSize, ops: []Op{{Kind: OpCompute, Cycles: 500}}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 30); !errors.Is(err, ErrAllDone) {
		t.Fatal(err)
	}
	if m.Time() != 500 {
		t.Errorf("final time = %d, want 500", m.Time())
	}
}

func TestProcTimeAndLastLatency(t *testing.T) {
	m := newMachine(t, 1)
	p, err := m.Spawn(0, &loopProgram{name: "loop", stride: 1 << 13, n: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if p.Time() != 0 {
		t.Errorf("initial Time = %d", p.Time())
	}
	if err := m.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if p.Time() != m.Cores[0].Now {
		t.Errorf("Time = %d, core clock = %d", p.Time(), m.Cores[0].Now)
	}
	// DRAM-bound loop: the last access latency must look like a miss.
	if p.LastLatency < 50 {
		t.Errorf("LastLatency = %d, want a DRAM-ish latency", p.LastLatency)
	}
}

// TestMachineDeterminism: identical configuration and programs produce
// identical counters — the foundation of every experiment in the repo.
func TestMachineDeterminism(t *testing.T) {
	run := func() (sim.Cycles, uint64) {
		m := newMachine(t, 2)
		if _, err := m.Spawn(0, &loopProgram{name: "a", stride: 1 << 13, n: 2048}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Spawn(1, &loopProgram{name: "b", stride: 64, n: 128}); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Cores[0].Now, m.Mem.DRAM.Stats().Activations
	}
	t1, a1 := run()
	t2, a2 := run()
	if t1 != t2 || a1 != a2 {
		t.Errorf("nondeterminism: (%d,%d) vs (%d,%d)", t1, a1, t2, a2)
	}
}
