// Package machine assembles the simulated computer: cores with local cycle
// clocks executing Programs inside process address spaces, a kernel with
// timers and pagemap services, and the shared memory system.
//
// The run loop is a conservative multi-core interleaving: the core with the
// minimum local time executes its next operation, so interactions through
// the shared LLC and DRAM are ordered by simulated time and the whole
// simulation is deterministic.
package machine

import (
	"errors"
	"fmt"

	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/vm"
)

// OpKind classifies a program operation.
type OpKind int

// Program operations.
const (
	// OpCompute spends Cycles of pure CPU work.
	OpCompute OpKind = iota
	// OpLoad reads VA.
	OpLoad
	// OpStore writes VA.
	OpStore
	// OpFlush executes CLFLUSH on VA.
	OpFlush
	// OpDone terminates the program.
	OpDone
)

// Op is one program operation.
type Op struct {
	Kind   OpKind
	VA     uint64
	Cycles sim.Cycles // OpCompute only
}

// Program generates the operation stream of one process. Implementations
// live in internal/workload (benchmarks) and internal/attack (rowhammers).
type Program interface {
	// Name identifies the program in reports.
	Name() string
	// Init is called once, before the first operation, with the program's
	// process context (address space, pagemap access, ...).
	Init(p *Proc) error
	// Next returns the next operation.
	Next() Op
}

// Proc is the process context a Program runs in.
type Proc struct {
	ID     int
	Name   string
	AS     *vm.AddressSpace
	kernel *Kernel
	core   *Core

	// LastLatency is the observed latency of the process's most recent
	// memory operation — what a program measures by bracketing a load with
	// RDTSC. Timing side channels (Flush+Reload, Evict+Reload) are built
	// on exactly this observable.
	LastLatency sim.Cycles
}

// Pagemap exposes the kernel's /proc/pagemap interface to the process.
func (p *Proc) Pagemap() *vm.Pagemap { return &p.kernel.Pagemap }

// Time returns the process's current cycle count (RDTSC).
func (p *Proc) Time() sim.Cycles {
	if p.core == nil {
		return 0
	}
	return p.core.Now
}

// Kernel bundles the OS services visible to programs and detectors.
type Kernel struct {
	Alloc   *vm.Allocator
	Pagemap vm.Pagemap
	procs   map[int]*Proc
	timers  []timer
	nextTID int
	seq     int
	fault   *kernelFault // nil unless Machine.InjectFaults installed one
	// gen counts schedule-shaping events (timer arming, spawns). The batched
	// core snapshots it when planning an epoch: any change mid-epoch means a
	// handler armed an event the plan did not account for, so the epoch ends
	// at the next operation boundary.
	gen uint64
}

// FaultConfig injects interrupt-delivery degradations into the kernel. The
// zero value injects nothing. Randomness comes from the *sim.Rand handed to
// InjectFaults, so a given (config, seed, schedule) degrades identically.
type FaultConfig struct {
	// TimerMaxDelay postpones every scheduled timer by a uniform
	// 0..TimerMaxDelay cycles (hrtimer latency under interrupt pressure).
	TimerMaxDelay sim.Cycles
	// IRQMaxCost charges a uniform 0..IRQMaxCost extra kernel cycles per
	// fired timer (slow interrupt entry/exit on a degraded machine).
	IRQMaxCost sim.Cycles
}

// FaultStats counts the degradations actually injected.
type FaultStats struct {
	DelayedTimers uint64     // timers whose deadline was postponed
	DelayCycles   sim.Cycles // total postponement
	IRQCostCycles sim.Cycles // total extra interrupt-delivery cost charged
}

type kernelFault struct {
	cfg    FaultConfig
	rng    *sim.Rand
	charge func(sim.Cycles) // ChargeCurrent backref for IRQ cost
	stats  FaultStats
}

// InjectFaults installs a kernel degradation model. Call at most once,
// before the run; a zero cfg changes nothing. rng must be dedicated to the
// kernel (see sim.Rand.Split).
func (m *Machine) InjectFaults(cfg FaultConfig, rng *sim.Rand) {
	m.Kernel.fault = &kernelFault{cfg: cfg, rng: rng, charge: m.ChargeCurrent}
}

// FaultStats reports the degradations injected so far (zero value without
// InjectFaults).
func (m *Machine) FaultStats() FaultStats {
	if m.Kernel.fault == nil {
		return FaultStats{}
	}
	return m.Kernel.fault.stats
}

// timers form a binary min-heap ordered by (due, seq); seq breaks ties so
// handlers scheduled for the same instant fire in scheduling order, keeping
// the simulation deterministic.
type timer struct {
	due sim.Cycles
	seq int // tie-break for determinism
	fn  func(now sim.Cycles)
}

func (t timer) before(u timer) bool {
	if t.due != u.due {
		return t.due < u.due
	}
	return t.seq < u.seq
}

// TaskSpace resolves a task id to its address space — what ANVIL does with
// the sampled task_struct to turn sampled virtual addresses into physical
// ones. It returns nil for unknown tasks.
func (k *Kernel) TaskSpace(task int) *vm.AddressSpace {
	if p, ok := k.procs[task]; ok {
		return p.AS
	}
	return nil
}

// At schedules fn to run at the given simulated time. O(log n) heap push,
// where the sorted slice this replaces paid an O(n log n) sort per insert.
func (k *Kernel) At(t sim.Cycles, fn func(now sim.Cycles)) {
	if f := k.fault; f != nil && f.cfg.TimerMaxDelay > 0 {
		if d := sim.Cycles(f.rng.Uint64n(uint64(f.cfg.TimerMaxDelay) + 1)); d > 0 {
			t += d
			f.stats.DelayedTimers++
			f.stats.DelayCycles += d
		}
	}
	k.seq++
	k.gen++
	k.timers = append(k.timers, timer{due: t, seq: k.seq, fn: fn})
	i := len(k.timers) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.timers[i].before(k.timers[parent]) {
			break
		}
		k.timers[i], k.timers[parent] = k.timers[parent], k.timers[i]
		i = parent
	}
}

// fireDue runs all timers due at or before now, in deadline order. Handlers
// may schedule new timers; those are honoured within the same call if also
// due.
func (k *Kernel) fireDue(now sim.Cycles) {
	for len(k.timers) > 0 && k.timers[0].due <= now {
		t := k.timers[0]
		n := len(k.timers) - 1
		k.timers[0] = k.timers[n]
		k.timers[n] = timer{} // drop the fn reference
		k.timers = k.timers[:n]
		for i := 0; ; {
			small := 2*i + 1
			if small >= n {
				break
			}
			if r := small + 1; r < n && k.timers[r].before(k.timers[small]) {
				small = r
			}
			if !k.timers[small].before(k.timers[i]) {
				break
			}
			k.timers[i], k.timers[small] = k.timers[small], k.timers[i]
			i = small
		}
		if f := k.fault; f != nil && f.cfg.IRQMaxCost > 0 {
			if c := sim.Cycles(f.rng.Uint64n(uint64(f.cfg.IRQMaxCost) + 1)); c > 0 {
				f.charge(c)
				f.stats.IRQCostCycles += c
			}
		}
		t.fn(t.due)
	}
}

// CoreStats aggregates one core's activity.
type CoreStats struct {
	Ops             uint64
	Loads           uint64
	Stores          uint64
	Flushes         uint64
	ContextSwitches uint64
	ComputeCycles   sim.Cycles
	MemCycles       sim.Cycles
	KernelCycles    sim.Cycles // cycles stolen by kernel work (PMIs, detector)
}

// Core executes one program, or a round-robin run queue of several (see
// SpawnShared).
type Core struct {
	ID    int
	Now   sim.Cycles
	Proc  *Proc // currently scheduled process
	Prog  Program
	Done  bool
	Err   error
	Stats CoreStats

	tasks     []*task
	cur       int
	sliceLeft sim.Cycles
	reqs      []memsys.Req // scratch buffer for the batched access path
	// bprog caches the BatchProgram assertion on Prog, set by Spawn when the
	// machine batches (BatchCap > 1). Nil selects the per-op step path; cores
	// with SpawnShared run queues always step per-op.
	bprog BatchProgram
}

// Config sets up a Machine.
type Config struct {
	Freq   sim.Freq
	Cores  int
	Memory memsys.Config
	// AllocPolicy controls physical frame allocation (vm.FirstFit gives the
	// attacker contiguous buffers; vm.Scatter forces pagemap use).
	AllocPolicy vm.AllocPolicy
	AllocSeed   uint64
	// BatchCap bounds how many operations a batch-capable program executes
	// per inner-loop view (see BatchProgram). Zero selects DefaultBatchCap;
	// 1 disables batching entirely, forcing the per-op step path — the
	// escape hatch for bisecting any batched-vs-per-op divergence. Results
	// are byte-identical at every setting.
	BatchCap int
}

// DefaultConfig models the paper's dual-core i5-2540M (2 cores; we ignore
// SMT) at 2.6 GHz. Four cores are used for the heavy-load experiments, one
// per co-running program.
func DefaultConfig() Config {
	return Config{
		Freq:        sim.DefaultFreq,
		Cores:       4,
		Memory:      memsys.DefaultConfig(sim.DefaultFreq),
		AllocPolicy: vm.FirstFit,
		AllocSeed:   0x05,
	}
}

// Machine is the assembled system.
type Machine struct {
	Freq   sim.Freq
	Mem    *memsys.System
	Kernel *Kernel
	Cores  []*Core
	// Sched configures per-core time slicing for SpawnShared run queues.
	Sched SchedParams

	current  *Core // core whose op is executing (for Charge)
	spawnGen int   // bumped by Spawn/SpawnShared; invalidates Run's fast path
	batchCap int   // resolved Config.BatchCap (<=1 means per-op stepping)
}

// New builds a machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("machine: need at least one core, got %d", cfg.Cores)
	}
	if cfg.BatchCap < 0 {
		return nil, fmt.Errorf("machine: batch cap must be non-negative, got %d", cfg.BatchCap)
	}
	batchCap := cfg.BatchCap
	if batchCap == 0 {
		batchCap = DefaultBatchCap
	}
	mem, err := memsys.New(cfg.Memory)
	if err != nil {
		return nil, err
	}
	alloc, err := vm.NewAllocator(cfg.Memory.DRAM.Geometry.Size(), cfg.AllocPolicy, cfg.AllocSeed)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Freq:     cfg.Freq,
		Mem:      mem,
		Kernel:   &Kernel{Alloc: alloc, procs: make(map[int]*Proc)},
		Sched:    DefaultSchedParams(),
		batchCap: batchCap,
	}
	for i := 0; i < cfg.Cores; i++ {
		m.Cores = append(m.Cores, &Core{ID: i, Done: true})
	}
	return m, nil
}

// Spawn creates a process for prog and assigns it to the given core.
func (m *Machine) Spawn(core int, prog Program) (*Proc, error) {
	if core < 0 || core >= len(m.Cores) {
		return nil, fmt.Errorf("machine: no core %d", core)
	}
	c := m.Cores[core]
	if !c.Done {
		return nil, fmt.Errorf("machine: core %d already running %s", core, c.Prog.Name())
	}
	p, err := m.newProc(prog)
	if err != nil {
		return nil, err
	}
	c.Proc = p
	c.Prog = prog
	c.Done = false
	c.Err = nil
	c.bprog = nil
	if bp, ok := prog.(BatchProgram); ok && m.batchCap > 1 {
		c.bprog = bp
	}
	p.core = c
	m.spawnGen++
	m.Kernel.gen++
	return p, nil
}

// Charge adds kernel-stolen cycles to a core's clock (PMI handling, the
// detector's analysis work, selective-refresh reads).
func (m *Machine) Charge(core int, cycles sim.Cycles) {
	if core < 0 || core >= len(m.Cores) {
		return
	}
	c := m.Cores[core]
	c.Now += cycles
	c.Stats.KernelCycles += cycles
}

// ChargeCurrent charges the core whose operation is currently executing
// (or core 0 between operations).
func (m *Machine) ChargeCurrent(cycles sim.Cycles) {
	if m.current != nil {
		m.current.Now += cycles
		m.current.Stats.KernelCycles += cycles
		return
	}
	m.Charge(0, cycles)
}

// ErrAllDone is returned by Run when every program finished before the
// deadline.
var ErrAllDone = errors.New("machine: all programs finished")

// next returns the active core with the minimum local time.
func (m *Machine) next() *Core {
	var best *Core
	for _, c := range m.Cores {
		if c.Done {
			continue
		}
		if best == nil || c.Now < best.Now {
			best = c
		}
	}
	return best
}

// Step executes one operation on the earliest active core. It returns false
// when no core is active.
func (m *Machine) Step() bool {
	c := m.next()
	if c == nil {
		return false
	}
	m.stepCore(c)
	return true
}

// stepCore executes one operation on c, which the caller has established is
// the earliest active core. It returns the error the step left on c, if
// any — a step can only fault the core it ran on, so callers need not sweep
// the others.
func (m *Machine) stepCore(c *Core) error {
	m.Kernel.fireDue(c.Now)
	m.current = c
	op := c.Prog.Next()
	m.current = nil
	c.Stats.Ops++
	switch op.Kind {
	case OpCompute:
		c.Stats.ComputeCycles += op.Cycles
		c.Now += op.Cycles
		c.syncTask(m, op.Cycles, false, nil)
	case OpLoad, OpStore:
		pa, err := c.Proc.AS.Translate(op.VA)
		if err != nil {
			c.syncTask(m, 0, false, fmt.Errorf("machine: %s: %w", c.Prog.Name(), err))
			return c.Err
		}
		write := op.Kind == OpStore
		if write {
			c.Stats.Stores++
		} else {
			c.Stats.Loads++
		}
		m.current = c
		res := m.Mem.Access(op.VA, pa, write, c.Proc.ID, c.ID, c.Now)
		m.current = nil
		c.Proc.LastLatency = res.Latency
		c.Stats.MemCycles += res.Latency
		c.Now += res.Latency
		c.syncTask(m, res.Latency, false, nil)
	case OpFlush:
		pa, err := c.Proc.AS.Translate(op.VA)
		if err != nil {
			c.syncTask(m, 0, false, fmt.Errorf("machine: %s: %w", c.Prog.Name(), err))
			return c.Err
		}
		c.Stats.Flushes++
		lat := m.Mem.Flush(pa, c.Now)
		c.Now += lat
		c.syncTask(m, lat, false, nil)
	case OpDone:
		c.syncTask(m, 0, true, nil)
	default:
		c.syncTask(m, 0, false, fmt.Errorf("machine: %s produced invalid op kind %d", c.Prog.Name(), op.Kind))
	}
	return c.Err
}

// Run executes until every active core's clock reaches the deadline or all
// programs finish (returning ErrAllDone in that case). Program errors (page
// faults, invalid ops) abort the run.
func (m *Machine) Run(until sim.Cycles) error {
	for {
		c := m.next()
		if c == nil {
			return ErrAllDone
		}
		// Single-active-core fast path: almost every experiment runs one
		// program, making the per-step minimum-clock scan pure overhead.
		// Step the lone core in a tight loop; only a Spawn from a timer
		// handler can activate another core, so watch the spawn generation.
		if m.onlyActive(c) {
			gen := m.spawnGen
			for !c.Done {
				if c.Now >= until {
					m.Kernel.fireDue(until)
					return nil
				}
				if err := m.runCore(c, until); err != nil {
					return err
				}
				if m.spawnGen != gen {
					break
				}
			}
			continue
		}
		if c.Now >= until {
			m.Kernel.fireDue(until)
			return nil
		}
		if err := m.runCore(c, until); err != nil {
			return err
		}
	}
}

// onlyActive reports whether c is the only core still running a program.
func (m *Machine) onlyActive(c *Core) bool {
	for _, cc := range m.Cores {
		if cc != c && !cc.Done {
			return false
		}
	}
	return true
}

// RunFor is Run with a duration relative to the current earliest clock.
func (m *Machine) RunFor(d sim.Cycles) error {
	start := m.Time()
	return m.Run(start + d)
}

// Time returns the current simulated time: the minimum clock among active
// cores, or the maximum among all cores when none are active.
func (m *Machine) Time() sim.Cycles {
	if c := m.next(); c != nil {
		return c.Now
	}
	var t sim.Cycles
	for _, c := range m.Cores {
		t = sim.Max(t, c.Now)
	}
	return t
}
