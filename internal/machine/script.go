package machine

import (
	"fmt"

	"repro/internal/sim"
)

// Script adapts imperative code to the pull-based Program interface: the
// body runs in its own goroutine and each memory operation blocks until the
// machine has executed it, returning the observed latency. This is how
// timing-driven attacker logic (eviction-set discovery by measurement,
// covert-channel clocking) is written naturally:
//
//	prog := machine.NewScript("probe", func(ctx *machine.ScriptCtx) error {
//	    if err := ctx.Map(base, 1<<20); err != nil { return err }
//	    lat := ctx.Load(base)       // measured cycles, like rdtsc deltas
//	    ...
//	})
//
// The handoff between the machine and the script goroutine is fully
// synchronous, so simulations remain deterministic. The goroutine exits
// when the body returns; if the machine is abandoned mid-script the
// goroutine parks forever on an unbuffered channel, which Go's runtime
// collects with the channel — acceptable for simulation lifetimes.
type Script struct {
	name string
	body func(ctx *ScriptCtx) error

	ctx     *ScriptCtx
	started bool
	done    bool
	err     error
}

// ScriptCtx is the script body's handle on the machine.
type ScriptCtx struct {
	proc *Proc

	ops     chan Op
	results chan sim.Cycles
}

// NewScript builds a Script program around body.
func NewScript(name string, body func(ctx *ScriptCtx) error) *Script {
	if name == "" {
		name = "script"
	}
	return &Script{name: name, body: body}
}

// Name implements Program.
func (s *Script) Name() string { return s.name }

// Err returns the script body's error after it finishes.
func (s *Script) Err() error { return s.err }

// Init implements Program.
func (s *Script) Init(p *Proc) error {
	if s.body == nil {
		return fmt.Errorf("machine: script %q has no body", s.name)
	}
	s.ctx = &ScriptCtx{
		proc:    p,
		ops:     make(chan Op),
		results: make(chan sim.Cycles),
	}
	return nil
}

// Next implements Program: resume the script goroutine until it emits the
// next operation.
func (s *Script) Next() Op {
	if s.done {
		return Op{Kind: OpDone}
	}
	if !s.started {
		s.started = true
		go func() {
			s.err = s.body(s.ctx)
			close(s.ctx.ops)
		}()
	} else {
		// Deliver the previous operation's latency, resuming the body.
		s.ctx.results <- s.ctx.proc.LastLatency
	}
	op, ok := <-s.ctx.ops
	if !ok {
		s.done = true
		return Op{Kind: OpDone}
	}
	return op
}

// do submits one operation and blocks until the machine executed it.
func (c *ScriptCtx) do(op Op) sim.Cycles {
	c.ops <- op
	return <-c.results
}

// Load reads va and returns the observed latency.
func (c *ScriptCtx) Load(va uint64) sim.Cycles {
	return c.do(Op{Kind: OpLoad, VA: va})
}

// Store writes va and returns the observed latency.
func (c *ScriptCtx) Store(va uint64) sim.Cycles {
	return c.do(Op{Kind: OpStore, VA: va})
}

// Flush executes CLFLUSH on va.
func (c *ScriptCtx) Flush(va uint64) {
	c.do(Op{Kind: OpFlush, VA: va})
}

// Compute burns n cycles.
func (c *ScriptCtx) Compute(n sim.Cycles) {
	c.do(Op{Kind: OpCompute, Cycles: n})
}

// Time returns the core's current cycle count (RDTSC).
func (c *ScriptCtx) Time() sim.Cycles { return c.proc.Time() }

// Proc exposes the process context (address space, pagemap).
func (c *ScriptCtx) Proc() *Proc { return c.proc }

// Map allocates backing for [va, va+bytes).
func (c *ScriptCtx) Map(va, bytes uint64) error { return c.proc.AS.Map(va, bytes) }

var _ Program = (*Script)(nil)
