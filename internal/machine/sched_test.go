package machine

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestSpawnSharedRoundRobin(t *testing.T) {
	m := newMachine(t, 1)
	m.Sched = SchedParams{Quantum: 50_000, ContextSwitchCost: 1000}
	a := &loopProgram{name: "a", stride: 64, n: 4}
	b := &loopProgram{name: "b", stride: 64, n: 4}
	pa, err := m.SpawnShared(0, a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.SpawnShared(0, b)
	if err != nil {
		t.Fatal(err)
	}
	if pa.ID == pb.ID {
		t.Fatal("shared tasks share a PID")
	}
	if err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	// Both programs must have run a similar amount.
	if a.i == 0 || b.i == 0 {
		t.Fatalf("starvation: a=%d b=%d", a.i, b.i)
	}
	ratio := float64(a.i) / float64(b.i)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("unfair slicing: a=%d b=%d", a.i, b.i)
	}
	if m.Cores[0].Stats.ContextSwitches == 0 {
		t.Error("no context switches recorded")
	}
}

func TestSpawnSharedCompletion(t *testing.T) {
	m := newMachine(t, 1)
	m.Sched = SchedParams{Quantum: 10_000, ContextSwitchCost: 500}
	short := &scriptProgram{name: "short", mapLen: 4096, ops: []Op{{Kind: OpCompute, Cycles: 100}}}
	long := &scriptProgram{name: "long", mapVA: 0x100000, mapLen: 4096}
	for i := 0; i < 50; i++ {
		long.ops = append(long.ops, Op{Kind: OpCompute, Cycles: 5000})
	}
	if _, err := m.SpawnShared(0, short); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnShared(0, long); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, ErrAllDone) {
		t.Fatalf("Run = %v", err)
	}
	if short.idx != len(short.ops) || long.idx != len(long.ops) {
		t.Errorf("tasks incomplete: short %d/%d, long %d/%d",
			short.idx, len(short.ops), long.idx, len(long.ops))
	}
	if m.Cores[0].TaskErr(0) != nil || m.Cores[0].TaskErr(1) != nil {
		t.Error("task errors recorded for clean completion")
	}
	if m.Cores[0].TaskErr(99) != nil {
		t.Error("out-of-range TaskErr non-nil")
	}
}

func TestSpawnSharedFaultAborts(t *testing.T) {
	m := newMachine(t, 1)
	bad := &scriptProgram{name: "bad", mapLen: 4096, ops: []Op{{Kind: OpLoad, VA: 1 << 40}}}
	ok := &loopProgram{name: "ok", stride: 64, n: 4}
	if _, err := m.SpawnShared(0, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnShared(0, ok); err != nil {
		t.Fatal(err)
	}
	err := m.Run(1 << 40)
	if err == nil || errors.Is(err, ErrAllDone) {
		t.Fatalf("Run = %v, want fault", err)
	}
	if m.Cores[0].TaskErr(0) == nil {
		t.Error("faulting task has no recorded error")
	}
}

func TestSpawnSharedSingleTaskBehavesLikeSpawn(t *testing.T) {
	m := newMachine(t, 1)
	p := &scriptProgram{name: "solo", mapLen: 4096, ops: []Op{
		{Kind: OpCompute, Cycles: 100}, {Kind: OpLoad, VA: 8},
	}}
	if _, err := m.SpawnShared(0, p); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, ErrAllDone) {
		t.Fatal(err)
	}
	if m.Cores[0].Stats.Ops != 3 { // 2 ops + OpDone
		t.Errorf("ops = %d", m.Cores[0].Stats.Ops)
	}
}

func TestSpawnSharedRejectsBadCore(t *testing.T) {
	m := newMachine(t, 1)
	if _, err := m.SpawnShared(7, &loopProgram{name: "x", stride: 64, n: 4}); err == nil {
		t.Error("bad core accepted")
	}
}

func TestQuantumDefaults(t *testing.T) {
	m := newMachine(t, 1)
	m.Sched.Quantum = 0
	if q := m.quantum(); q != DefaultSchedParams().Quantum {
		t.Errorf("default quantum = %d", q)
	}
	if DefaultSchedParams().Quantum != sim.Cycles(2_600_000) {
		t.Error("default quantum is not 1ms at 2.6GHz")
	}
}

func TestSharedProcTimeTracksCore(t *testing.T) {
	m := newMachine(t, 1)
	m.Sched = SchedParams{Quantum: 20_000, ContextSwitchCost: 100}
	a := &loopProgram{name: "a", stride: 64, n: 4}
	b := &loopProgram{name: "b", stride: 64, n: 4}
	pa, _ := m.SpawnShared(0, a)
	pb, _ := m.SpawnShared(0, b)
	if err := m.Run(500_000); err != nil {
		t.Fatal(err)
	}
	// Both procs read the same core clock.
	if pa.Time() != pb.Time() || pa.Time() != m.Cores[0].Now {
		t.Errorf("proc clocks diverge: %d %d core %d", pa.Time(), pb.Time(), m.Cores[0].Now)
	}
}
