package machine

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// loadLoop is a minimal program: n loads cycling through a small buffer
// (L1-resident after warm-up), so machine benchmarks measure the Step /
// Translate / memory-system pipeline rather than DRAM behaviour.
type loadLoop struct {
	n     uint64
	lines uint64
	base  uint64
	i     uint64
	ring  []Op // loads unrolled to at least one full batch (len is a multiple of lines)
}

var _ BatchProgram = (*loadLoop)(nil)

func (p *loadLoop) Name() string { return "load-loop" }

func (p *loadLoop) Init(pr *Proc) error {
	p.base = 0x100000
	if p.lines == 0 {
		p.lines = 64
	}
	copies := (DefaultBatchCap + int(p.lines) - 1) / int(p.lines)
	if copies < 2 {
		copies = 2
	}
	p.ring = make([]Op, 0, copies*int(p.lines))
	for c := 0; c < copies; c++ {
		for j := uint64(0); j < p.lines; j++ {
			p.ring = append(p.ring, Op{Kind: OpLoad, VA: p.base + j*64})
		}
	}
	return pr.AS.Map(p.base, p.lines*64)
}

func (p *loadLoop) Next() Op {
	if p.i >= p.n {
		return Op{Kind: OpDone}
	}
	va := p.base + (p.i%p.lines)*64
	p.i++
	return Op{Kind: OpLoad, VA: va}
}

var loadLoopDone = [1]Op{{Kind: OpDone}}

// NextRun serves a contiguous window of the unrolled ring; the ring length is
// a multiple of lines, so i mod len(ring) lands on the same VA as Next would.
func (p *loadLoop) NextRun(max int) []Op {
	if p.i >= p.n {
		return loadLoopDone[:]
	}
	ringLen := uint64(len(p.ring))
	start := p.i % ringLen
	end := start + uint64(max)
	if end > ringLen {
		end = ringLen
	}
	if left := p.n - p.i; start+left < end {
		end = start + left
	}
	return p.ring[start:end]
}

func (p *loadLoop) Advance(n int) { p.i += uint64(n) }

// runOps builds a machine with `progs` load-loop programs of n ops each and
// runs it to completion.
func runOps(b *testing.B, progs int, n uint64) {
	b.Helper()
	cfg := DefaultConfig()
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for c := 0; c < progs; c++ {
		if _, err := m.Spawn(c, &loadLoop{n: n}); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.Run(1 << 62); err != nil && !errors.Is(err, ErrAllDone) {
		b.Fatal(err)
	}
}

// BenchmarkHotPath measures the full per-operation pipeline (Step ->
// Translate -> cache -> PMU) in steps per second, for the single-active-core
// case every single-program experiment runs in and for a fully loaded
// machine.
func BenchmarkHotPath(b *testing.B) {
	b.Run("run-1core", func(b *testing.B) {
		b.ReportAllocs()
		runOps(b, 1, uint64(b.N))
	})
	b.Run("run-4core", func(b *testing.B) {
		b.ReportAllocs()
		runOps(b, 4, uint64(b.N)/4+1)
	})
	b.Run("timers", func(b *testing.B) {
		// Timer churn: interleaved schedule/fire, the kernel-side pattern of
		// the detector's sampling windows and refresh queues.
		k := &Kernel{}
		fired := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now := sim.Cycles(i) * 10
			for j := 0; j < 8; j++ {
				k.At(now+sim.Cycles(100+j*13), func(sim.Cycles) { fired++ })
			}
			k.fireDue(now)
		}
		b.StopTimer()
		k.fireDue(1 << 62)
		if fired == 0 {
			b.Fatal("no timers fired")
		}
	})
}
