// Package netchaos injects deterministic network faults between HTTP
// clients and servers, for testing the retry, lease-expiry and reassignment
// paths of the distributed sweep plane without flaky timing or real packet
// loss.
//
// Two injection points cover the failure modes that matter:
//
//   - Transport wraps an http.RoundTripper and drops, duplicates or delays
//     individual requests by seeded coin flips — the request-level faults a
//     client's retry loop must absorb. A drop-after fault is the nasty one:
//     the server processed the request, the caller saw an error, and only an
//     idempotent API makes the retry safe.
//   - Proxy is a TCP relay that can be partitioned (new connections refused,
//     live ones severed) and heal again, and can reset connections
//     mid-body after a byte budget — the link-level faults that kill worker
//     heartbeats and force lease reassignment.
//
// All randomness derives from caller-provided seeds through internal/sim, so
// a failing chaos run reproduces exactly; nothing here reads host entropy.
//
//lint:zone host
package netchaos

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/sim"
)

// ErrInjected marks every fault this package injects, so tests and retry
// classifiers can tell injected faults from real ones.
var ErrInjected = fmt.Errorf("netchaos: injected fault")

// Faults declares the seeded request-level fault mix of a Transport. The
// zero value injects nothing — a zero-fault Transport is a transparent
// wrapper, byte for byte.
type Faults struct {
	// Seed roots the fault coin-flip stream. Two Transports with the same
	// Seed and fault mix inject faults at the same request ordinals.
	Seed uint64
	// DropBefore is the probability a request is dropped before reaching
	// the server: the caller sees an error, the server sees nothing.
	DropBefore float64
	// DropAfter is the probability the response is dropped after the server
	// fully processed the request: the caller sees an error, but every
	// server-side effect happened. Retrying is only safe against an
	// idempotent API — which is exactly what this fault exists to prove.
	DropAfter float64
	// Duplicate is the probability a request is delivered twice back to
	// back (the first response is discarded, the second returned) —
	// at-least-once delivery, the other half of the idempotency contract.
	Duplicate float64
	// Latency is added to every request before it is forwarded.
	Latency time.Duration
}

// Transport is a fault-injecting http.RoundTripper. Create with
// NewTransport; safe for concurrent use (draws are serialized, so the fault
// sequence is deterministic in draw order even if arrival order races).
type Transport struct {
	base   http.RoundTripper
	faults Faults

	mu          sync.Mutex
	rng         *sim.Rand
	partitioned bool
	requests    int
	injected    int
}

// NewTransport wraps base (nil means http.DefaultTransport) with the given
// fault mix.
func NewTransport(base http.RoundTripper, faults Faults) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, faults: faults, rng: sim.NewRand(faults.Seed)}
}

// Partition makes every subsequent round trip fail without reaching the
// server, until Heal. It models the client side of a network partition for
// callers that don't route through a Proxy.
func (t *Transport) Partition() {
	t.mu.Lock()
	t.partitioned = true
	t.mu.Unlock()
}

// Heal ends a Partition.
func (t *Transport) Heal() {
	t.mu.Lock()
	t.partitioned = false
	t.mu.Unlock()
}

// Injected reports how many faults the transport has injected so far.
func (t *Transport) Injected() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// plan is one request's drawn fault decisions.
type plan struct {
	partitioned bool
	dropBefore  bool
	dropAfter   bool
	duplicate   bool
}

// draw advances the seeded fault stream by exactly three coins per request,
// so the fault schedule depends only on (Seed, request ordinal).
func (t *Transport) draw() plan {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.requests++
	p := plan{
		partitioned: t.partitioned,
		dropBefore:  t.rng.Bool(t.faults.DropBefore),
		dropAfter:   t.rng.Bool(t.faults.DropAfter),
		duplicate:   t.rng.Bool(t.faults.Duplicate),
	}
	if p.partitioned || p.dropBefore || p.dropAfter || p.duplicate {
		t.injected++
	}
	return p
}

// RoundTrip implements http.RoundTripper with the seeded fault mix.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.draw()
	if p.partitioned {
		return nil, fmt.Errorf("%w: partitioned: %s %s never sent", ErrInjected, req.Method, req.URL.Path)
	}
	if t.faults.Latency > 0 {
		//lint:allow detrand injected latency is host wall-clock by definition
		timer := time.NewTimer(t.faults.Latency)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if p.dropBefore {
		return nil, fmt.Errorf("%w: request dropped: %s %s never sent", ErrInjected, req.Method, req.URL.Path)
	}
	if p.duplicate {
		// Deliver once, discard the response, deliver again. Requests built
		// by http.NewRequest with a byte or string reader carry GetBody;
		// anything unreplayable degrades to a single delivery.
		if req.Body == nil || req.GetBody != nil {
			first, err := t.base.RoundTrip(cloneRequest(req))
			if err == nil {
				first.Body.Close() //nolint:errcheck // discarded duplicate delivery
			}
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, fmt.Errorf("netchaos: replaying request body: %w", err)
				}
				req = cloneRequest(req)
				req.Body = body
			}
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if p.dropAfter {
		resp.Body.Close() //nolint:errcheck // the response is being destroyed
		return nil, fmt.Errorf("%w: response dropped: %s %s processed by the server, reply lost",
			ErrInjected, req.Method, req.URL.Path)
	}
	return resp, nil
}

// cloneRequest shallow-copies a request so a duplicated delivery does not
// mutate the caller's.
func cloneRequest(req *http.Request) *http.Request {
	c := req.Clone(req.Context())
	return c
}
