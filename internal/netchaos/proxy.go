package netchaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/sim"
)

// ProxyOptions tunes a Proxy. The zero value relays transparently.
type ProxyOptions struct {
	// Seed roots the per-connection fault stream (reset-point jitter).
	Seed uint64
	// ResetAfterBytes, when positive, severs each relayed connection with a
	// hard RST after roughly that many relayed bytes (jittered per
	// connection by Seed into [budget/2, budget]) — the mid-body reset a
	// robust client must treat as a transport error, not a short read.
	ResetAfterBytes int64
	// Latency delays each relayed connection's first byte.
	Latency time.Duration
}

// A Proxy is a partitionable TCP relay: workers dial the proxy, the proxy
// dials the coordinator, and the test severs or heals the link at will. A
// partition kills live connections (heartbeats die mid-flight, exactly like
// a pulled cable) and refuses new ones until Heal.
type Proxy struct {
	target string
	ln     net.Listener
	opts   ProxyOptions

	mu          sync.Mutex
	rng         *sim.Rand
	partitioned bool
	closed      bool
	conns       map[net.Conn]struct{}
	wg          sync.WaitGroup
}

// NewProxy starts a relay on an ephemeral localhost port forwarding to
// target ("127.0.0.1:8356"). Close releases it.
func NewProxy(target string, opts ProxyOptions) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netchaos: listening: %w", err)
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		opts:   opts,
		rng:    sim.NewRand(opts.Seed),
		conns:  map[net.Conn]struct{}{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial instead of
// the real target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition severs the link: every live relayed connection is killed with a
// hard close, and new connections are accepted and immediately dropped
// (connection refused semantics without racing the accept loop) until Heal.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	for c := range p.conns { //lint:allow maporder teardown order is irrelevant; every conn is killed
		hardClose(c)
	}
	p.mu.Unlock()
}

// Heal ends a Partition: new connections relay again. Connections killed by
// the partition stay dead — reconnecting is the client's job.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// Close shuts the proxy down and waits for its relay goroutines.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns { //lint:allow maporder teardown order is irrelevant; every conn is killed
		hardClose(c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// acceptLoop accepts and dispatches relayed connections until Close.
func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			hardClose(conn)
			continue
		}
		// Draw this connection's reset budget while holding the lock, so
		// the per-connection fault stream is ordered by accept order.
		var budget int64
		if b := p.opts.ResetAfterBytes; b > 0 {
			budget = b/2 + int64(p.rng.Uint64n(uint64(b-b/2)+1))
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.relay(conn, budget)
	}
}

// forget unregisters a finished connection.
func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// relay shuttles bytes between a client connection and a fresh upstream
// connection, enforcing the reset budget across both directions.
func (p *Proxy) relay(client net.Conn, budget int64) {
	defer p.wg.Done()
	defer p.forget(client)
	defer client.Close()
	if p.opts.Latency > 0 {
		//lint:allow detrand injected latency is host wall-clock by definition
		time.Sleep(p.opts.Latency)
	}
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		hardClose(client)
		return
	}
	p.mu.Lock()
	if p.closed || p.partitioned {
		p.mu.Unlock()
		hardClose(upstream)
		hardClose(client)
		return
	}
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()
	defer p.forget(upstream)
	defer upstream.Close()

	// The shared budget counts bytes relayed in both directions; crossing it
	// RSTs both sides mid-stream.
	var counter *byteBudget
	if budget > 0 {
		counter = &byteBudget{left: budget, kill: func() {
			hardClose(client)
			hardClose(upstream)
		}}
	}
	done := make(chan struct{}, 2)
	pipe := func(dst, src net.Conn) {
		buf := make([]byte, 4096)
		for {
			n, rerr := src.Read(buf)
			if n > 0 {
				if counter != nil && counter.spend(int64(n)) {
					break
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		// Half-close so the peer's reads drain; hard faults use hardClose.
		if tc, ok := dst.(*net.TCPConn); ok {
			tc.CloseWrite() //nolint:errcheck // best-effort half-close
		}
		done <- struct{}{}
	}
	go pipe(upstream, client)
	pipe(client, upstream)
	<-done
}

// byteBudget is the shared reset budget of one relayed connection pair.
type byteBudget struct {
	mu   sync.Mutex
	left int64
	kill func()
	dead bool
}

// spend consumes n bytes of budget, firing the kill exactly once when it
// crosses zero; it reports whether the connection is dead.
func (b *byteBudget) spend(n int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return true
	}
	b.left -= n
	if b.left < 0 {
		b.dead = true
		b.kill()
		return true
	}
	return false
}

// hardClose kills a TCP connection with an RST (linger 0) instead of a
// graceful FIN, so the peer sees a connection reset — the shape of a
// partition, not an orderly shutdown.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0) //nolint:errcheck // best-effort fault injection
	}
	c.Close() //nolint:errcheck // already tearing down
}
