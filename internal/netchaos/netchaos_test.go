package netchaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newBackend serves a counting echo: every request increments hits and
// returns "ok-<n>".
func newBackend(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		io.Copy(io.Discard, r.Body) //nolint:errcheck // draining the request
		w.Write([]byte("ok"))       //nolint:errcheck // test backend
		_ = n
	}))
	t.Cleanup(srv.Close)
	return srv
}

// noKeepAlive returns a client that never reuses connections, so a killed
// pooled connection cannot leak a fault into the next healthy request.
func noKeepAlive(rt http.RoundTripper) *http.Client {
	if rt == nil {
		rt = &http.Transport{DisableKeepAlives: true}
	}
	return &http.Client{Transport: rt, Timeout: 10 * time.Second}
}

func TestTransportZeroFaultsIsTransparent(t *testing.T) {
	var hits atomic.Int64
	srv := newBackend(t, &hits)
	c := noKeepAlive(NewTransport(nil, Faults{}))
	for i := 0; i < 5; i++ {
		resp, err := c.Get(srv.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "ok" {
			t.Fatalf("request %d: body %q", i, body)
		}
	}
	if hits.Load() != 5 {
		t.Fatalf("backend saw %d requests, want 5", hits.Load())
	}
}

func TestTransportFaultScheduleIsSeeded(t *testing.T) {
	var hits atomic.Int64
	srv := newBackend(t, &hits)
	pattern := func(seed uint64) string {
		c := noKeepAlive(NewTransport(nil, Faults{Seed: seed, DropBefore: 0.5}))
		var b strings.Builder
		for i := 0; i < 32; i++ {
			if _, err := c.Get(srv.URL); err != nil {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := pattern(7), pattern(7)
	if a != b {
		t.Fatalf("same seed produced different fault schedules:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("p=0.5 schedule should mix faults and successes: %s", a)
	}
	if c := pattern(8); c == a {
		t.Fatalf("different seeds produced the same schedule: %s", c)
	}
}

// TestTransportDropAfter proves the nasty half of at-most-once: the server
// processed the request, the client saw an error.
func TestTransportDropAfter(t *testing.T) {
	var hits atomic.Int64
	srv := newBackend(t, &hits)
	c := noKeepAlive(NewTransport(nil, Faults{Seed: 1, DropAfter: 1}))
	_, err := c.Get(srv.URL)
	if !errors.Is(errorUnwrapURL(err), ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("backend saw %d requests; a drop-after fault must still deliver exactly one", hits.Load())
	}
}

// TestTransportDuplicate proves at-least-once: the server sees the request
// twice, the client sees one success.
func TestTransportDuplicate(t *testing.T) {
	var hits atomic.Int64
	srv := newBackend(t, &hits)
	c := noKeepAlive(NewTransport(nil, Faults{Seed: 1, Duplicate: 1}))
	req, err := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader([]byte(`{"x":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("backend saw %d deliveries, want 2 (duplicated)", hits.Load())
	}
}

func TestTransportPartitionHeal(t *testing.T) {
	var hits atomic.Int64
	srv := newBackend(t, &hits)
	tr := NewTransport(nil, Faults{})
	c := noKeepAlive(tr)
	tr.Partition()
	if _, err := c.Get(srv.URL); !errors.Is(errorUnwrapURL(err), ErrInjected) {
		t.Fatalf("partitioned transport must fail, got %v", err)
	}
	if hits.Load() != 0 {
		t.Fatal("partitioned request reached the server")
	}
	tr.Heal()
	if _, err := c.Get(srv.URL); err != nil {
		t.Fatalf("healed transport failed: %v", err)
	}
}

func TestProxyRelayAndPartition(t *testing.T) {
	var hits atomic.Int64
	srv := newBackend(t, &hits)
	target := strings.TrimPrefix(srv.URL, "http://")
	p, err := NewProxy(target, ProxyOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := noKeepAlive(nil)
	c.Timeout = 5 * time.Second

	resp, err := c.Get("http://" + p.Addr())
	if err != nil {
		t.Fatalf("relay: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("backend saw %d requests through the relay, want 1", hits.Load())
	}

	p.Partition()
	if _, err := c.Get("http://" + p.Addr()); err == nil {
		t.Fatal("request crossed a partitioned proxy")
	}
	if hits.Load() != 1 {
		t.Fatalf("partitioned request reached the backend (hits %d)", hits.Load())
	}

	p.Heal()
	resp, err = c.Get("http://" + p.Addr())
	if err != nil {
		t.Fatalf("healed relay: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("backend saw %d requests after heal, want 2", hits.Load())
	}
}

// TestProxyMidBodyReset: a connection crossing its byte budget dies with a
// reset mid-response — the client must see a transport error, never a clean
// short body.
func TestProxyMidBodyReset(t *testing.T) {
	big := bytes.Repeat([]byte("anvil"), 1<<16) // 320 KiB
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write(big) //nolint:errcheck // the injected reset makes this fail by design
	}))
	defer srv.Close()
	p, err := NewProxy(strings.TrimPrefix(srv.URL, "http://"), ProxyOptions{Seed: 9, ResetAfterBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := noKeepAlive(nil)
	resp, err := c.Get("http://" + p.Addr())
	if err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(body) == len(big) {
			t.Fatal("full body crossed a proxy with an 8 KiB reset budget")
		}
		if rerr == nil {
			t.Fatalf("short body (%d of %d bytes) delivered without an error", len(body), len(big))
		}
	}
}

// errorUnwrapURL strips the *url.Error wrapper http.Client adds around
// transport errors.
func errorUnwrapURL(err error) error {
	var ue *url.Error
	if errors.As(err, &ue) {
		return ue.Err
	}
	return err
}
