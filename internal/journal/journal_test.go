package journal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeAll creates a journal at path holding the given records.
func writeAll(t *testing.T, path string, records [][]byte) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func sampleRecords() [][]byte {
	return [][]byte{
		[]byte(`{"kind":"meta","sweep":"t"}`),
		[]byte(`{"kind":"replicate","rep":0}`),
		{}, // empty payloads are legal records
		bytes.Repeat([]byte{0xab}, 1000),
	}
}

func TestCreateAppendRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jnl")
	want := sampleRecords()
	writeAll(t, path, want)

	got, w, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}

	// The recovered writer appends where the journal left off.
	extra := []byte("after recovery")
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got2, w2, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got2) != len(want)+1 || !bytes.Equal(got2[len(want)], extra) {
		t.Errorf("after append-and-recover got %d records (last %q)", len(got2), got2[len(got2)-1])
	}
}

func TestCreateRefusesExistingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jnl")
	writeAll(t, path, nil)
	if _, err := Create(path); err == nil {
		t.Fatal("Create on an existing journal succeeded")
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	full := filepath.Join(dir, "full.jnl")
	writeAll(t, full, want)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the file at every byte offset inside the final frame: Recover must
	// always return the first three records and leave an appendable journal.
	lastFrame := int64(len(raw)) - int64(frameHeaderLen+1000)
	for _, cut := range []int64{lastFrame, lastFrame + 3, lastFrame + frameHeaderLen, int64(len(raw)) - 1} {
		path := filepath.Join(dir, fmt.Sprintf("cut%d.jnl", cut))
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, w, err := Recover(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != len(want)-1 {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), len(want)-1)
		}
		if err := w.Append([]byte("tail")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		again, w2, err := Recover(path)
		if err != nil {
			t.Fatalf("cut %d: second recovery: %v", cut, err)
		}
		w2.Close()
		if len(again) != len(want) || !bytes.Equal(again[len(want)-1], []byte("tail")) {
			t.Errorf("cut %d: post-truncation journal did not round-trip", cut)
		}
	}
}

func TestRecoverStopsAtCorruptFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jnl")
	want := sampleRecords()
	writeAll(t, path, want)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second record: records 0 survives, the rest
	// is truncated.
	off := headerLen + frameHeaderLen + len(want[0]) + frameHeaderLen
	raw[off] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, w, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(got) != 1 || !bytes.Equal(got[0], want[0]) {
		t.Fatalf("recovered %d records, want exactly the first", len(got))
	}
}

func TestRecoverEmptyAndTornHeader(t *testing.T) {
	for _, size := range []int{0, 3, headerLen - 1} {
		path := filepath.Join(t.TempDir(), "a.jnl")
		if err := os.WriteFile(path, []byte(magic)[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		got, w, err := Recover(path)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(got) != 0 {
			t.Fatalf("size %d: recovered %d records from a headerless file", size, len(got))
		}
		if err := w.Append([]byte("first")); err != nil {
			t.Fatal(err)
		}
		w.Close()
		again, w2, err := Recover(path)
		if err != nil {
			t.Fatalf("size %d: reopen: %v", size, err)
		}
		w2.Close()
		if len(again) != 1 || !bytes.Equal(again[0], []byte("first")) {
			t.Errorf("size %d: rewound journal did not round-trip", size)
		}
	}
}

func TestRecoverRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("definitely not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(path); err == nil {
		t.Fatal("Recover accepted a foreign file")
	}
}

func TestReaderCleanEOFAndStickyErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jnl")
	writeAll(t, path, [][]byte{[]byte("one")})
	raw, _ := os.ReadFile(path)

	rd, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if p, err := rd.Next(); err != nil || string(p) != "one" {
		t.Fatalf("Next = %q, %v", p, err)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("clean end returned %v, want io.EOF", err)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("EOF is not sticky: %v", err)
	}

	rd2, err := NewReader(bytes.NewReader(raw[:len(raw)-2]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rd2.Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn record returned %v, want ErrCorrupt", err)
	}
	if _, err2 := rd2.Next(); !errors.Is(err2, ErrCorrupt) {
		t.Fatalf("corrupt state is not sticky: %v", err2)
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jnl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jnl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SyncEvery = 3
	for i := 0; i < 7; i++ {
		if err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// 6 of 7 records were covered by batch fsyncs; one is outstanding.
	if w.unsynced != 1 {
		t.Errorf("unsynced = %d after 7 appends with SyncEvery=3, want 1", w.unsynced)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.unsynced != 0 {
		t.Errorf("unsynced = %d after Sync, want 0", w.unsynced)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, w2, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if len(got) != 7 {
		t.Errorf("recovered %d records, want 7", len(got))
	}
}

// TestRecoverRefusesLiveWriter is the concurrent-handle contract: recovering
// a journal while another Writer still holds the file open must fail loudly
// with the typed ErrLocked — never silently truncate data the live writer is
// about to append behind — and must leave every record intact for the
// recovery that runs after the writer closes.
func TestRecoverRefusesLiveWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.jnl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	records := sampleRecords()
	for _, r := range records[:2] {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	// Recovery against the live handle: typed refusal, nothing touched.
	if _, _, err := Recover(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("Recover with a live writer: err = %v, want ErrLocked", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The live writer keeps working after the refused recovery.
	if err := w.Append(records[2]); err != nil {
		t.Fatalf("live writer broken after refused recovery: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Fatalf("file did not grow after refused recovery: %d -> %d bytes", len(before), len(after))
	}

	// With the writer closed, recovery owns the lock and sees every record.
	got, w2, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover after writer close: %v", err)
	}
	defer w2.Close()
	want := records[:3] // the writer appended records 0, 1, and 2
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRecoverRefusesConcurrentRecover: the Writer a successful recovery
// returns holds the same exclusive lock, so a second recovery of the same
// path is refused until the first closes.
func TestRecoverRefusesConcurrentRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "double.jnl")
	writeAll(t, path, sampleRecords())

	_, w1, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("second concurrent Recover: err = %v, want ErrLocked", err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	got, w2, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover after first recovery closed: %v", err)
	}
	defer w2.Close()
	if len(got) != len(sampleRecords()) {
		t.Fatalf("recovered %d records, want %d", len(got), len(sampleRecords()))
	}
}
